"""StatsView derivation tests: distincts, keys, group statistics, joins."""

import pytest

from repro.core.sort_order import AttributeEquivalence
from repro.storage import Schema, StatsView, TableStats


def view(schema_cols, n, distinct, keys=(), groups=None):
    schema = Schema.of(*schema_cols)
    return StatsView(schema, n, distinct, None,
                     [frozenset(k) for k in keys], groups or {})


class TestDistinct:
    def test_single_column(self):
        v = view(["a", "b"], 100, {"a": 10})
        assert v.distinct_of("a") == 10
        assert v.distinct_of("b") == 100  # unknown → unique

    def test_capped_by_rows(self):
        v = view(["a"], 5, {"a": 100})
        assert v.distinct_of("a") == 5

    def test_set_independence(self):
        v = view(["a", "b"], 10_000, {"a": 10, "b": 20})
        assert v.distinct_of_set(["a", "b"]) == 200

    def test_set_capped(self):
        v = view(["a", "b"], 50, {"a": 10, "b": 20})
        assert v.distinct_of_set(["a", "b"]) == 50

    def test_group_statistic_wins(self):
        v = view(["a", "b"], 10_000, {"a": 100, "b": 100},
                 groups={frozenset({"a", "b"}): 150})
        assert v.distinct_of_set(["a", "b"]) == 150

    def test_key_makes_set_unique(self):
        v = view(["a", "b", "c"], 1000, {"a": 10, "b": 10},
                 keys=[{"a", "b"}])
        assert v.distinct_of_set(["a", "b"]) == 1000
        assert v.distinct_of_set(["a", "b", "c"]) == 1000  # superset of key

    def test_equivalence_fallback(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("a", "x")
        schema = Schema.of("a")
        v = StatsView(schema, 100, {"a": 7}, eq)
        assert v.distinct_of("x") == 7

    def test_empty(self):
        v = view(["a"], 0, {})
        assert v.distinct_of("a") == 0
        assert v.distinct_of_set(["a"]) == 0
        assert v.distinct_of_set([]) == 1


class TestDerivation:
    def test_scaled(self):
        v = view(["a"], 1000, {"a": 100})
        half = v.scaled(0.5)
        assert half.N == 500
        assert half.distinct_of("a") == 100

    def test_scaled_caps_distinct(self):
        v = view(["a"], 1000, {"a": 800})
        tiny = v.scaled(0.01)
        assert tiny.distinct_of("a") == 10  # capped at N

    def test_projected_drops_keys(self):
        v = view(["a", "b"], 100, {"a": 10}, keys=[{"a", "b"}])
        p = v.projected(["a"])
        assert p.schema.names == ("a",)
        assert p.keys == ()

    def test_grouped(self):
        v = view(["a", "b"], 1000, {"a": 10, "b": 5})
        out_schema = Schema.of("a", "b", "cnt")
        g = v.grouped(["a", "b"], out_schema)
        assert g.N == 50
        assert frozenset({"a", "b"}) in g.keys

    def test_B_blocks(self):
        v = StatsView(Schema.of(("a", "int", 400)), 100, {})
        assert v.B(4096) == 10


class TestJoinEstimation:
    def test_independent_join(self):
        l = view(["a"], 1000, {"a": 100})
        r = view(["b"], 500, {"b": 50})
        j = l.join(r, [("a", "b")])
        assert j.N == 1000 * 500 / 100

    def test_fk_join_via_key(self):
        """Pair set covering the build side's key ⇒ FK-style cardinality."""
        dim = view(["pk", "payload"], 800, {"pk": 800}, keys=[{"pk"}])
        fact = view(["fk"], 10_000, {"fk": 800})
        j = fact.join(dim, [("fk", "pk")])
        assert j.N == pytest.approx(10_000)

    def test_correlated_pair_group_stat(self):
        """The TPC-H (partkey, suppkey) situation: group statistic keeps the
        estimate at N_fact instead of collapsing it."""
        ps = view(["pk", "sk"], 800, {"pk": 200, "sk": 100}, keys=[{"pk", "sk"}])
        li = view(["lpk", "lsk"], 10_000, {"lpk": 200, "lsk": 100},
                  groups={frozenset({"lpk", "lsk"}): 800})
        j = li.join(ps, [("lpk", "pk"), ("lsk", "sk")])
        assert j.N == pytest.approx(10_000)

    def test_key_propagation(self):
        dim = view(["pk", "d"], 100, {"pk": 100}, keys=[{"pk"}])
        fact = view(["fk", "fid"], 1000, {"fk": 100, "fid": 1000},
                    keys=[{"fid"}])
        j = fact.join(dim, [("fk", "pk")])
        assert frozenset({"fid"}) in j.keys   # dim key covered ⇒ fact keys live

    def test_join_distinct_of_join_columns(self):
        l = view(["a"], 1000, {"a": 100})
        r = view(["b"], 500, {"b": 50})
        j = l.join(r, [("a", "b")])
        assert j.distinct_of("a") == 50
        assert j.distinct_of("b") == 50

    def test_empty_side(self):
        l = view(["a"], 0, {})
        r = view(["b"], 100, {"b": 10})
        assert l.join(r, [("a", "b")]).N == 0


class TestTableStats:
    def test_measure(self):
        schema = Schema.of("a", "b")
        stats = TableStats.measure([(1, 1), (1, 2), (2, 2)], schema)
        assert stats.num_rows == 3
        assert stats.distinct_of("a") == 2

    def test_declared_defaults(self):
        stats = TableStats(100)
        assert stats.distinct_of("anything") == 100

    def test_zero_rows(self):
        assert TableStats(0).distinct_of("a") == 0


class TestPerShardStats:
    def test_measure_shards_matches_shard_bounds(self):
        from repro.engine import shard_bounds
        from repro.storage import measure_shards

        schema = Schema.of("a", "b")
        rows = [(i // 3, i % 7) for i in range(20)]
        shards = measure_shards(rows, schema, 4)
        assert [s.num_rows for s in shards] == [
            hi - lo for lo, hi in (shard_bounds(20, 4, i) for i in range(4))]
        # Distincts are measured per slice, not scaled globals.
        for i, stats in enumerate(shards):
            lo, hi = shard_bounds(20, 4, i)
            assert stats.distinct_of("a") == len({r[0] for r in rows[lo:hi]})

    def test_measure_partitions_row_count_skew(self):
        from repro.storage import RangePartitioning, measure_partitions

        schema = Schema.of("k", "v")
        part = RangePartitioning("k", (10, 20))
        rows = [(k, 0) for k in [1] * 8 + [15] * 1 + [25] * 1]
        stats = measure_partitions(rows, schema, 0, part.partition_index, 3)
        assert [s.num_rows for s in stats] == [8, 1, 1]

    def test_table_caches_and_invalidates(self):
        from repro.core.sort_order import SortOrder
        from repro.storage import RangePartitioning, Table

        schema = Schema.of("k", "v")
        table = Table("t", schema, rows=[(i % 4, i) for i in range(16)],
                      clustering_order=SortOrder(["k"]),
                      partitioning=RangePartitioning("k", (2,)))
        first = table.shard_stats(4)
        assert table.shard_stats(4) is first  # cached
        parts = table.partition_stats()
        assert [p.num_rows for p in parts] == [8, 8]
        table.update_stats()  # stats replaced → measured caches dropped
        assert table.shard_stats(4) is not first

    def test_update_stats_refreshes_partition_row_ranges(self):
        """Regression: the bisected partition row ranges are measured
        state too — growing the rows and refreshing stats must not leave
        partition scans slicing stale ranges (rows were silently dropped
        before the stats setter cleared this cache)."""
        from repro.core.sort_order import SortOrder
        from repro.engine import ExecutionContext, RangePartitionScan
        from repro.storage import RangePartitioning, Table

        schema = Schema.of("k", "v")
        table = Table("t", schema, rows=[(i % 4, i) for i in range(8)],
                      clustering_order=SortOrder(["k"]),
                      partitioning=RangePartitioning("k", (2,)))
        assert table.partition_row_bounds(0) == (0, 4)
        table._rows.extend((i % 4, 100 + i) for i in range(8))
        table._sort_rows_by(SortOrder(["k"]))
        table.update_stats()
        assert table.partition_row_bounds(0) == (0, 8)
        scanned = []
        for i in range(2):
            scanned += RangePartitionScan(table, i).run(ExecutionContext())
        assert scanned == table.rows

    def test_stats_only_table_has_no_shard_stats(self):
        from repro.storage import Table

        schema = Schema.of("k", "v")
        table = Table("t", schema, stats=TableStats(1000, {"k": 10}))
        assert table.shard_stats(4) is None
        assert table.partition_stats() is None


class TestRangePartitioning:
    def test_partition_index_and_bounds(self):
        from repro.storage import RangePartitioning

        part = RangePartitioning("k", (10, 20, 30))
        assert part.num_partitions == 4
        assert part.partition_index(-5) == 0
        assert part.partition_index(10) == 1
        assert part.partition_index(29) == 2
        assert part.partition_index(30) == 3
        assert part.partition_index(None) == 0  # NULLs sort first

    def test_bounds_must_ascend(self):
        from repro.storage import RangePartitioning

        with pytest.raises(ValueError):
            RangePartitioning("k", (10, 10))
        with pytest.raises(ValueError):
            RangePartitioning("k", ())

    def test_contiguous_row_bounds_tile_the_table(self):
        from repro.core.sort_order import SortOrder
        from repro.storage import RangePartitioning, Table

        schema = Schema.of("k", "v")
        rows = [(k, k * 2) for k in [0, 1, 1, 5, 7, 7, 9]]
        table = Table("t", schema, rows=rows,
                      clustering_order=SortOrder(["k"]),
                      partitioning=RangePartitioning("k", (2, 8)))
        assert table.partition_contiguous
        ranges = [table.partition_row_bounds(i) for i in range(3)]
        assert ranges == [(0, 3), (3, 6), (6, 7)]

    def test_unclustered_partitions_not_contiguous(self):
        from repro.storage import RangePartitioning, Table

        schema = Schema.of("k", "v")
        table = Table("t", schema, rows=[(3, 0), (1, 1), (2, 2)],
                      partitioning=RangePartitioning("k", (2,)))
        assert not table.partition_contiguous
        assert table.partition_row_bounds(0) is None
