"""StatsView derivation tests: distincts, keys, group statistics, joins."""

import pytest

from repro.core.sort_order import AttributeEquivalence
from repro.storage import Schema, StatsView, TableStats


def view(schema_cols, n, distinct, keys=(), groups=None):
    schema = Schema.of(*schema_cols)
    return StatsView(schema, n, distinct, None,
                     [frozenset(k) for k in keys], groups or {})


class TestDistinct:
    def test_single_column(self):
        v = view(["a", "b"], 100, {"a": 10})
        assert v.distinct_of("a") == 10
        assert v.distinct_of("b") == 100  # unknown → unique

    def test_capped_by_rows(self):
        v = view(["a"], 5, {"a": 100})
        assert v.distinct_of("a") == 5

    def test_set_independence(self):
        v = view(["a", "b"], 10_000, {"a": 10, "b": 20})
        assert v.distinct_of_set(["a", "b"]) == 200

    def test_set_capped(self):
        v = view(["a", "b"], 50, {"a": 10, "b": 20})
        assert v.distinct_of_set(["a", "b"]) == 50

    def test_group_statistic_wins(self):
        v = view(["a", "b"], 10_000, {"a": 100, "b": 100},
                 groups={frozenset({"a", "b"}): 150})
        assert v.distinct_of_set(["a", "b"]) == 150

    def test_key_makes_set_unique(self):
        v = view(["a", "b", "c"], 1000, {"a": 10, "b": 10},
                 keys=[{"a", "b"}])
        assert v.distinct_of_set(["a", "b"]) == 1000
        assert v.distinct_of_set(["a", "b", "c"]) == 1000  # superset of key

    def test_equivalence_fallback(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("a", "x")
        schema = Schema.of("a")
        v = StatsView(schema, 100, {"a": 7}, eq)
        assert v.distinct_of("x") == 7

    def test_empty(self):
        v = view(["a"], 0, {})
        assert v.distinct_of("a") == 0
        assert v.distinct_of_set(["a"]) == 0
        assert v.distinct_of_set([]) == 1


class TestDerivation:
    def test_scaled(self):
        v = view(["a"], 1000, {"a": 100})
        half = v.scaled(0.5)
        assert half.N == 500
        assert half.distinct_of("a") == 100

    def test_scaled_caps_distinct(self):
        v = view(["a"], 1000, {"a": 800})
        tiny = v.scaled(0.01)
        assert tiny.distinct_of("a") == 10  # capped at N

    def test_projected_drops_keys(self):
        v = view(["a", "b"], 100, {"a": 10}, keys=[{"a", "b"}])
        p = v.projected(["a"])
        assert p.schema.names == ("a",)
        assert p.keys == ()

    def test_grouped(self):
        v = view(["a", "b"], 1000, {"a": 10, "b": 5})
        out_schema = Schema.of("a", "b", "cnt")
        g = v.grouped(["a", "b"], out_schema)
        assert g.N == 50
        assert frozenset({"a", "b"}) in g.keys

    def test_B_blocks(self):
        v = StatsView(Schema.of(("a", "int", 400)), 100, {})
        assert v.B(4096) == 10


class TestJoinEstimation:
    def test_independent_join(self):
        l = view(["a"], 1000, {"a": 100})
        r = view(["b"], 500, {"b": 50})
        j = l.join(r, [("a", "b")])
        assert j.N == 1000 * 500 / 100

    def test_fk_join_via_key(self):
        """Pair set covering the build side's key ⇒ FK-style cardinality."""
        dim = view(["pk", "payload"], 800, {"pk": 800}, keys=[{"pk"}])
        fact = view(["fk"], 10_000, {"fk": 800})
        j = fact.join(dim, [("fk", "pk")])
        assert j.N == pytest.approx(10_000)

    def test_correlated_pair_group_stat(self):
        """The TPC-H (partkey, suppkey) situation: group statistic keeps the
        estimate at N_fact instead of collapsing it."""
        ps = view(["pk", "sk"], 800, {"pk": 200, "sk": 100}, keys=[{"pk", "sk"}])
        li = view(["lpk", "lsk"], 10_000, {"lpk": 200, "lsk": 100},
                  groups={frozenset({"lpk", "lsk"}): 800})
        j = li.join(ps, [("lpk", "pk"), ("lsk", "sk")])
        assert j.N == pytest.approx(10_000)

    def test_key_propagation(self):
        dim = view(["pk", "d"], 100, {"pk": 100}, keys=[{"pk"}])
        fact = view(["fk", "fid"], 1000, {"fk": 100, "fid": 1000},
                    keys=[{"fid"}])
        j = fact.join(dim, [("fk", "pk")])
        assert frozenset({"fid"}) in j.keys   # dim key covered ⇒ fact keys live

    def test_join_distinct_of_join_columns(self):
        l = view(["a"], 1000, {"a": 100})
        r = view(["b"], 500, {"b": 50})
        j = l.join(r, [("a", "b")])
        assert j.distinct_of("a") == 50
        assert j.distinct_of("b") == 50

    def test_empty_side(self):
        l = view(["a"], 0, {})
        r = view(["b"], 100, {"b": 10})
        assert l.join(r, [("a", "b")]).N == 0


class TestTableStats:
    def test_measure(self):
        schema = Schema.of("a", "b")
        stats = TableStats.measure([(1, 1), (1, 2), (2, 2)], schema)
        assert stats.num_rows == 3
        assert stats.distinct_of("a") == 2

    def test_declared_defaults(self):
        stats = TableStats(100)
        assert stats.distinct_of("anything") == 100

    def test_zero_rows(self):
        assert TableStats(0).distinct_of("a") == 0
