"""Phase-2 plan refinement tests (Section 5.2.2, Figure 6 / Query 4)."""

import pytest

from repro.core.refinement import (
    collect_merge_join_tree,
    merge_join_permutation,
    refine_plan,
)
from repro.core.sort_order import SortOrder, longest_common_prefix
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.storage import Catalog, Schema, SystemParameters, TableStats
from repro.workloads import query4, r_tables_stats_catalog


@pytest.fixture
def fig6_catalog():
    """The paper's Figure 6 setup: R1..R4 all clustered on attribute a,
    no other favorable orders."""
    cat = Catalog(SystemParameters(sort_memory_blocks=100))
    for i, extra in ((1, ["b", "c"]), (2, ["d", "h"]), (3, ["e", "h"]),
                     (4, ["h", "x"])):
        cols = [(f"r{i}_a", "int", 8)] + [(f"r{i}_{c}", "int", 8) for c in extra] \
            + [(f"r{i}_pad", "str", 60)]
        cat.create_table(
            f"r{i}", Schema.of(*cols),
            stats=TableStats(500_000, {f"r{i}_a": 20}),
            clustering_order=SortOrder([f"r{i}_a"]))
    return cat


def fig6_query():
    """R1 ⋈ R2 on (a,b,c-ish) …: three joins sharing only attribute a.

    Mirrors Figure 6: join attribute sets {a,h,d}, {a,h,e} and {a,b,c,h}
    where everything beyond the clustering attribute a is free.
    """
    j1 = Query.table("r1").join(
        "r2", on=[("r1_a", "r2_a"), ("r1_b", "r2_d"), ("r1_c", "r2_h")])
    j2 = j1.join(
        "r3", on=[("r1_a", "r3_a"), ("r1_b", "r3_e"), ("r1_c", "r3_h")])
    return j2


class TestCollectSkeleton:
    def test_chain_of_joins(self, fig6_catalog):
        plan = Optimizer(fig6_catalog, enable_hash_join=False,
                         refine=False).optimize(fig6_query())
        tree = collect_merge_join_tree(plan)
        assert tree is not None
        assert sum(1 for _ in tree.walk()) == 2
        assert len(tree.children) == 1

    def test_single_join_returns_none(self, fig6_catalog):
        q = Query.table("r1").join("r2", on=[("r1_a", "r2_a")])
        plan = Optimizer(fig6_catalog, enable_hash_join=False,
                         refine=False).optimize(q)
        assert collect_merge_join_tree(plan) is None

    def test_no_merge_joins_returns_none(self, fig6_catalog):
        plan = Optimizer(fig6_catalog, refine=False).optimize(
            Query.table("r1").order_by("r1_b"))
        assert collect_merge_join_tree(plan) is None


def inner_query4():
    """Query 4's join chain with INNER joins: order propagates between
    the joins, so the Figure 14 prefix-sharing effect is observable."""
    return (Query.table("r1")
            .join("r2", on=[("r1_c5", "r2_c5"), ("r1_c4", "r2_c4"),
                            ("r1_c3", "r2_c3")])
            .join("r3", on=[("r1_c1", "r3_c1"), ("r1_c4", "r3_c4"),
                            ("r1_c5", "r3_c5")]))


class TestRefinementEffect:
    def test_inner_chain_joins_share_prefix_after_refinement(self):
        """The headline Figure 14 effect: after phase 2 the two chained
        joins share the (c4, c5) prefix."""
        cat = r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250))
        plan = Optimizer(cat, enable_hash_join=False).optimize(inner_query4())
        joins = plan.find_all("MergeJoin")
        assert len(joins) == 2
        upper, lower = joins
        shared = longest_common_prefix(upper.order, lower.order)
        assert len(shared) >= 2, (upper.order, lower.order)
        common_names = {a.split("_")[-1] for a in shared}
        assert common_names == {"c4", "c5"}

    def test_query4_full_outer_joins_guarantee_no_order(self):
        """FULL OUTER merge joins pad left key columns of unmatched right
        rows with NULLs mid-stream, so they guarantee no output order: the
        plan must carry an explicit sort between the chained joins instead
        of silently relying on a violated order (regression for the bug
        the plan-parity fuzz suite guards against).  The permutations stay
        recoverable for refinement via the predicate pair order."""
        cat = r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250))
        plan = Optimizer(cat, enable_hash_join=False).optimize(query4())
        joins = plan.find_all("MergeJoin")
        assert len(joins) == 2
        assert all(not j.order for j in joins)
        assert all(len(merge_join_permutation(j)) == 3 for j in joins)
        # The upper join's left input re-establishes order from ε.
        upper = joins[0]
        left_input = upper.children[0]
        assert left_input.op == "Sort"
        assert left_input.children[0].op == "MergeJoin"

    def test_refined_no_worse_all_strategies(self):
        cat = r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250))
        for s in ("pyro", "pyro-p", "pyro-o", "pyro-e"):
            opt = Optimizer(cat, strategy=s, enable_hash_join=False)
            refined = opt.optimize(query4(), refine=True).total_cost
            unrefined = opt.optimize(query4(), refine=False).total_cost
            assert refined <= unrefined * (1 + 1e-9)

    def test_refinement_improves_arbitrary_choice(self):
        """With no favorable orders anywhere, phase 1 picks arbitrary
        permutations; phase 2 must recover the shared prefix."""
        cat = r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250))
        opt = Optimizer(cat, strategy="pyro", enable_hash_join=False)
        refined = opt.optimize(inner_query4(), refine=True).total_cost
        unrefined = opt.optimize(inner_query4(), refine=False).total_cost
        assert refined < unrefined

    def test_fig6_chain_recovers_shared_prefix(self, fig6_catalog):
        plan = Optimizer(fig6_catalog, enable_hash_join=False).optimize(
            fig6_query())
        joins = plan.find_all("MergeJoin")
        assert len(joins) == 2
        shared = longest_common_prefix(joins[0].order, joins[1].order,
                                       None)
        # Clustering attribute a is the fixed prefix; free attrs reworked
        # so the joins agree beyond it.
        assert len(joins[0].order) == 3
        assert len(shared) >= 2

    def test_forced_orders_api(self, fig6_catalog):
        q = fig6_query()
        opt = Optimizer(fig6_catalog, enable_hash_join=False)
        base = opt.optimize(q, refine=False)
        join_expr = q.expr  # outermost Join node
        forced = {join_expr: SortOrder(["r1_c", "r1_b", "r1_a"])}
        forced_plan = opt.optimize_with_forced_orders(
            join_expr, SortOrder(()), forced)
        top_join = forced_plan.find_all("MergeJoin")[0]
        assert top_join.order == SortOrder(["r1_c", "r1_b", "r1_a"])
        assert forced_plan.total_cost >= base.total_cost * 0.99  # sanity
