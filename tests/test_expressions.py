"""Expression language tests: compilation, selectivity, join predicates,
aggregate specs."""

import pytest

from repro.expr import And, Col, Comparison, Const, JoinPredicate, Or, col
from repro.expr.aggregates import (
    AGGREGATES,
    AggSpec,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    aggregate_output_schema,
    count_star,
)
from repro.storage import Schema, StatsView

SCHEMA = Schema.of(("a", "int", 8), ("b", "int", 8), ("s", "str", 10))


def stats(n=100, distinct=None):
    return StatsView(SCHEMA, n, distinct or {"a": 10, "b": 20})


class TestScalarExpressions:
    def test_col(self):
        fn = col("b").compile(SCHEMA)
        assert fn((1, 2, "x")) == 2
        assert col("b").columns() == {"b"}

    def test_const(self):
        fn = Const(42).compile(SCHEMA)
        assert fn((0, 0, "")) == 42
        assert Const(42).columns() == set()

    def test_arithmetic(self):
        expr = (col("a") + col("b")) * 2 - 1
        fn = expr.compile(SCHEMA)
        assert fn((3, 4, "")) == 13
        assert expr.columns() == {"a", "b"}

    def test_division(self):
        fn = (col("a") / col("b")).compile(SCHEMA)
        assert fn((6, 3, "")) == 2

    def test_unknown_operator_rejected(self):
        from repro.expr.expressions import BinOp
        with pytest.raises(ValueError):
            BinOp("%", col("a"), col("b"))


class TestPredicates:
    def test_comparisons(self):
        row = (5, 10, "hi")
        assert col("a").eq(5).compile(SCHEMA)(row)
        assert col("a").lt(col("b")).compile(SCHEMA)(row)
        assert not col("a").ge(6).compile(SCHEMA)(row)
        assert col("s").ne("bye").compile(SCHEMA)(row)

    def test_and_flattens(self):
        p = And(col("a").eq(1), And(col("b").eq(2), col("a").lt(3)))
        assert len(p.parts) == 3
        assert p.conjuncts() == list(p.parts)

    def test_and_or_semantics(self):
        p = Or(col("a").eq(1), And(col("a").eq(2), col("b").eq(3)))
        fn = p.compile(SCHEMA)
        assert fn((1, 0, ""))
        assert fn((2, 3, ""))
        assert not fn((2, 4, ""))

    def test_equality_selectivity(self):
        assert col("a").eq(5).selectivity(stats()) == pytest.approx(0.1)
        assert col("b").eq(5).selectivity(stats()) == pytest.approx(0.05)

    def test_and_selectivity_multiplies(self):
        p = And(col("a").eq(1), col("b").eq(2))
        assert p.selectivity(stats()) == pytest.approx(0.1 * 0.05)

    def test_range_selectivity(self):
        assert col("a").lt(5).selectivity(stats()) == pytest.approx(1 / 3)

    def test_or_selectivity(self):
        p = Or(col("a").eq(1), col("a").eq(2))
        assert p.selectivity(stats()) == pytest.approx(1 - 0.9 * 0.9)


class TestJoinPredicate:
    def test_basic(self):
        p = JoinPredicate([("a", "x"), ("b", "y")])
        assert p.left_columns == ("a", "b")
        assert p.right_columns == ("x", "y")
        assert p.right_for_left("a") == "x"
        assert p.left_for_right("y") == "b"
        assert len(p) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate([("a", "x"), ("a", "y")])

    def test_hashable(self):
        assert hash(JoinPredicate([("a", "x")])) == hash(JoinPredicate([("a", "x")]))


class TestAggregates:
    def test_all_registered(self):
        assert set(AGGREGATES) == {"count", "count_star", "sum", "min", "max", "avg"}

    def test_sum_step(self):
        f = AGGREGATES["sum"]
        s = f.init()
        for v in (1, 2, 3):
            s = f.step(s, v)
        assert f.final(s) == 6

    def test_avg(self):
        f = AGGREGATES["avg"]
        s = f.init()
        for v in (2, 4):
            s = f.step(s, v)
        assert f.final(s) == 3
        assert f.final(f.init()) is None

    def test_min_max(self):
        for name, expect in (("min", 1), ("max", 9)):
            f = AGGREGATES[name]
            s = f.init()
            for v in (5, 1, 9):
                s = f.step(s, v)
            assert f.final(s) == expect

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AggSpec("median", col("a"), "m")

    def test_helpers(self):
        assert agg_sum(col("a"), "s").func == "sum"
        assert agg_min(col("a"), "m").func == "min"
        assert agg_max(col("a"), "m").func == "max"
        assert agg_avg(col("a"), "m").func == "avg"
        assert count_star("n").func == "count_star"

    def test_output_schema(self):
        schema = aggregate_output_schema(["a"], SCHEMA, [agg_sum(col("b"), "sb")])
        assert schema.names == ("a", "sb")
