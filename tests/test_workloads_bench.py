"""Workload generator and bench-harness tests."""

import pytest

from repro.bench import (
    format_table,
    normalize,
    postgres_default_q3,
    pyro_o_q3,
    pyro_o_q4,
    run_plan,
    speedup,
    sys_default_q4,
)
from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext
from repro.storage import SystemParameters
from repro.workloads import (
    add_query3_indexes,
    consolidation_catalog,
    consolidation_stats_catalog,
    identical_r_tables,
    query4,
    query5,
    query6,
    segmented_catalog,
    tpch_catalog,
    tpch_stats_catalog,
    trading_catalog,
    trading_stats_catalog,
)


class TestTpchGenerator:
    def test_deterministic(self):
        a = tpch_catalog(scale=0.001, seed=5)
        b = tpch_catalog(scale=0.001, seed=5)
        assert a.table("lineitem").rows == b.table("lineitem").rows

    def test_foreign_keys_hold(self):
        cat = tpch_catalog(scale=0.001, seed=5)
        pairs = {(r[0], r[1]) for r in cat.table("partsupp").rows}
        for row in cat.table("lineitem").rows:
            assert (row[2], row[3]) in pairs

    def test_clustering_respected(self):
        cat = tpch_catalog(scale=0.001, seed=5)
        for name in ("lineitem", "partsupp", "supplier", "part"):
            assert cat.table(name).verify_clustering()

    def test_group_statistic_recorded(self):
        cat = tpch_catalog(scale=0.001, seed=5)
        gd = cat.table("lineitem").stats.group_distinct
        key = frozenset({"l_partkey", "l_suppkey"})
        assert key in gd
        assert gd[key] <= len(cat.table("partsupp").rows)

    def test_stats_catalog_paper_sizes(self):
        cat = tpch_stats_catalog()
        assert len(cat.table("lineitem")) == 6_000_000
        assert len(cat.table("partsupp")) == 800_000
        assert not cat.table("lineitem").is_materialized

    def test_query3_indexes_cover(self, query3):
        from repro.logical import Annotator
        cat = tpch_stats_catalog()
        add_query3_indexes(cat)
        ann = Annotator(cat, query3.expr)
        assert cat.covering_indexes("partsupp", ann.used_attrs("partsupp"))
        assert cat.covering_indexes("lineitem", ann.used_attrs("lineitem"))


class TestOtherGenerators:
    def test_segmented_table_segments(self):
        cat = segmented_catalog(1000, 10)
        rows = cat.table("r").rows
        assert len(rows) == 1000
        assert len({r[0] for r in rows}) == 100
        assert cat.table("r").verify_clustering()

    def test_identical_r_tables(self):
        cat = identical_r_tables(num_rows=500)
        r1 = [tuple(r) for r in cat.table("r1").rows]
        r2 = [tuple(r) for r in cat.table("r2").rows]
        assert sorted(r1) == sorted(r2)  # identical contents

    def test_trading_self_join_matches(self):
        cat = trading_catalog(scale=0.005)
        rows = cat.table("tran").rows
        new_keys = {r[:5] for r in rows if r[7] == "New"}
        exec_keys = {r[:5] for r in rows if r[7] == "Executed"}
        assert new_keys & exec_keys  # Query 5 has matches

    def test_trading_aliases(self):
        cat = trading_stats_catalog()
        assert cat.table("tran_t1").schema.names[0] == "t1_userid"
        assert cat.table("tran_t2").clustering_order == SortOrder(
            ["t2_userid", "t2_basketid", "t2_parentorderid"])

    def test_consolidation_catalogs(self):
        stats = consolidation_stats_catalog()
        assert len(stats.table("catalog1")) == 2_000_000
        mat = consolidation_catalog(scale=0.002)
        c1 = {r[:4] for r in mat.table("catalog1").rows}
        c2 = {r[:4] for r in mat.table("catalog2").rows}
        assert c1 & c2  # the 4-attribute join has matches

    def test_queries_build(self):
        for q in (query4(), query5(), query6()):
            assert q.expr is not None


class TestHarness:
    def test_run_plan_metrics(self, tpch_mini):
        plan = pyro_o_q3(tpch_mini)
        result = run_plan(plan, tpch_mini, "q3")
        assert result.rows > 0
        assert result.cost_units > 0
        assert result.blocks_read > 0
        assert result.wall_seconds > 0

    def test_timeline_sampling(self, tpch_mini):
        from repro.engine import TableScan
        scan = TableScan(tpch_mini.table("lineitem"))
        result = run_plan(scan, tpch_mini, sample_every=1000)
        assert result.output_timeline
        counts = [n for n, _ in result.output_timeline]
        costs = [c for _, c in result.output_timeline]
        assert counts == sorted(counts)
        assert costs == sorted(costs)

    def test_speedup(self, tpch_mini):
        a = run_plan(postgres_default_q3(tpch_mini), tpch_mini)
        b = run_plan(pyro_o_q3(tpch_mini), tpch_mini)
        assert speedup(a, b) == pytest.approx(a.cost_units / b.cost_units)

    def test_format_table(self):
        text = format_table(["x", "y"], [[1, 2.5], [30000, "z"]], title="T")
        assert "T" in text and "30,000" in text and "x" in text

    def test_normalize(self):
        out = normalize({"a": 50.0, "b": 100.0}, "b")
        assert out == {"a": 50.0, "b": 100.0}
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, "a")


class TestBaselines:
    def test_q3_baselines_agree_on_results(self, tpch_mini):
        expected = None
        for build in (postgres_default_q3, pyro_o_q3):
            rows = sorted(build(tpch_mini).execute(tpch_mini))
            if expected is None:
                expected = rows
            assert rows == expected

    def test_q4_baselines_agree(self):
        cat = identical_r_tables(num_rows=2_000)
        a = sorted(map(repr, sys_default_q4(cat).execute(cat)))
        b = sorted(map(repr, pyro_o_q4(cat).execute(cat)))
        assert a == b

    def test_pyro_o_q3_shape(self, tpch_mini):
        plan = pyro_o_q3(tpch_mini)
        ops = [p.op for p in plan.walk()]
        assert ops.count("PartialSort") == 2
        assert "SortAggregate" in ops

    def test_q4_shared_prefix_costs_less(self):
        cat = identical_r_tables(
            num_rows=5_000,
            params=SystemParameters(block_size=4096, sort_memory_blocks=8))
        default = run_plan(sys_default_q4(cat), cat)
        shared = run_plan(pyro_o_q4(cat), cat)
        assert shared.cost_units <= default.cost_units
