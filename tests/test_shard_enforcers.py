"""Shard-aware enforcer placement: the optimizer's cost-based choice
between one post-union sort and per-shard SRS/MRS enforcers under a
MergeExchange, the serving-layer counters, plan-cache keying, and the
end-to-end acceptance scenario on the large synthetic workload."""

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import (
    BatchedExecutor,
    ExecutionContext,
    MergeExchange,
    Sort,
    TableScan,
)
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.service import QuerySession
from repro.storage import SystemParameters
from repro.workloads import segmented_catalog


def spill_catalog(num_rows=8000, rows_per_segment=100, memory_blocks=200):
    """The post-union sort spills (B > M) while one quarter/half shard
    fits in sort memory (B/k <= M) — the regime where per-shard
    enforcement wins outright."""
    return segmented_catalog(
        num_rows, rows_per_segment,
        params=SystemParameters(sort_memory_blocks=memory_blocks))


class TestEnforcerChoice:
    def test_picks_per_shard_merge_when_cheaper(self):
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")  # no prefix → SRS enforcers
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)

        merges = prepared.plan.find_all("MergeExchange")
        assert len(merges) == 1
        assert [c.op for c in merges[0].children] == ["Sort"] * 4
        assert [c.children[0].op for c in merges[0].children] == \
            ["ShardedScan"] * 4

        baseline = QuerySession(catalog, shard_aware_enforcers=False)
        post_union = baseline.prepare(query, parallelism=4)
        assert post_union.plan.find_all("MergeExchange") == []
        assert prepared.total_cost < post_union.total_cost

        assert session.stats()["shard_merge_plans"] == 1
        assert session.stats()["post_union_sort_plans"] == 0
        assert baseline.stats()["shard_merge_plans"] == 0
        assert baseline.stats()["post_union_sort_plans"] == 1

    def test_falls_back_to_post_union_when_not_cheaper(self):
        """Everything fits in sort memory: the per-shard CPU exactly
        cancels against the merge term, and the tie resolves to the
        simpler post-union plan."""
        catalog = segmented_catalog(500, 50)  # 25 blocks << 10,000-block memory
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        assert prepared.plan.find_all("MergeExchange") == []
        assert prepared.plan.find_all("Sort")
        assert session.stats()["post_union_sort_plans"] == 1
        assert session.stats()["shard_merge_plans"] == 0
        # And the fallback plan still executes correctly when sharded.
        assert prepared.execute() == session.execute(query)

    def test_per_shard_mrs_on_oversized_segments(self):
        """ORDER BY (c1, c2) over clustering (c1) with segments larger
        than sort memory: post-union MRS spills per segment, while the
        shard boundaries cut segments down to memory-sized pieces — the
        per-shard enforcers are PartialSorts and the executed pipeline
        avoids run I/O entirely."""
        catalog = spill_catalog(num_rows=8000, rows_per_segment=4000,
                                memory_blocks=100)
        query = Query.table("r").order_by("c1", "c2")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        merges = prepared.plan.find_all("MergeExchange")
        assert len(merges) == 1
        assert [c.op for c in merges[0].children] == ["PartialSort"] * 4

        baseline = QuerySession(catalog, shard_aware_enforcers=False)
        post_union = baseline.prepare(query, parallelism=4)
        assert prepared.total_cost < post_union.total_cost

        merge_ctx = ExecutionContext(catalog)
        post_ctx = ExecutionContext(catalog)
        assert prepared.execute(merge_ctx) == post_union.execute(post_ctx)
        assert merge_ctx.sort_metrics.runs_created == 0   # pipelined MRS
        assert post_ctx.sort_metrics.runs_created > 0     # segment spills
        assert merge_ctx.cost_units() < post_ctx.cost_units()

    def test_parallelism_one_is_oblivious(self):
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")
        plain = Optimizer(catalog).optimize(query)
        explicit = Optimizer(catalog).optimize(query, parallelism=1)
        assert plain.signature() == explicit.signature()
        assert plain.find_all("MergeExchange") == []


class TestServingIntegration:
    def test_plan_cache_keyed_by_parallelism(self):
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        serial = session.prepare(query)
        sharded = session.prepare(query, parallelism=4)
        assert session.metrics.optimizations == 2  # no cross-fan-out hit
        assert serial.plan.signature() != sharded.plan.signature()
        again = session.prepare(query, parallelism=4)
        assert again.from_cache
        assert again.plan.signature() == sharded.plan.signature()
        assert session.prepare(query).from_cache  # serial entry intact

    def test_engine_level_pushdown_opt_in(self):
        """Hand-built pipelines get the same rewrite (and the same cost
        rule) through BatchedExecutor(shard_aware_sorts=True)."""
        catalog = spill_catalog()
        table = catalog.table("r")
        op = Sort(TableScan(table), SortOrder(["c2"]))
        expected = op.run(ExecutionContext(catalog))

        executor = BatchedExecutor(parallelism=4, shard_aware_sorts=True)
        prepared = executor.prepare(op, catalog.params)
        assert isinstance(prepared, MergeExchange)
        assert executor.run(op, ExecutionContext(catalog)) == expected

        # Off by default: the sort stays above the exchange.
        plain = BatchedExecutor(parallelism=4).prepare(op, catalog.params)
        assert isinstance(plain, Sort)
        # And the rewrite declines when the cost model says it won't pay.
        tiny = segmented_catalog(500, 50)
        cheap_sort = Sort(TableScan(tiny.table("r")), SortOrder(["c2"]))
        assert isinstance(executor.prepare(cheap_sort, tiny.params), Sort)


class TestAcceptance:
    """ISSUE acceptance: on the large synthetic workload with 4 shards,
    an ordered query through QuerySession.execute(parallelism=4) lowers
    to per-shard SRS/MRS + MergeExchange when cheaper, with simulated
    cost strictly below the post-union full-sort plan and bit-identical
    output at batch sizes {1, 64, default}."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return spill_catalog(num_rows=20_000, rows_per_segment=100,
                             memory_blocks=500)

    def test_end_to_end(self, catalog):
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        baseline = QuerySession(catalog, shard_aware_enforcers=False)

        prepared = session.prepare(query, parallelism=4)
        post_union = baseline.prepare(query, parallelism=4)
        merges = prepared.plan.find_all("MergeExchange")
        assert len(merges) == 1 and len(merges[0].children) == 4
        assert prepared.total_cost < post_union.total_cost  # strictly below

        reference = session.execute(query)  # serial plan
        for batch_size in (1, 64, None):
            assert session.execute(query, parallelism=4,
                                   batch_size=batch_size) == reference
        assert baseline.execute(query, parallelism=4) == reference
        assert session.execute(query, parallelism=4,
                               use_threads=True) == reference

        merge_ctx, post_ctx = ExecutionContext(catalog), ExecutionContext(catalog)
        assert prepared.execute(merge_ctx) == post_union.execute(post_ctx)
        assert merge_ctx.cost_units() < post_ctx.cost_units()
        assert merge_ctx.sort_metrics.runs_created == 0   # shards fit in memory
        assert post_ctx.sort_metrics.runs_created > 0     # full sort spilled
