"""Shard-aware enforcer placement: the optimizer's cost-based choice
between one post-union sort and per-shard SRS/MRS enforcers under a
MergeExchange, the serving-layer counters, plan-cache keying, and the
end-to-end acceptance scenario on the large synthetic workload."""

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import (
    BatchedExecutor,
    ExecutionContext,
    MergeExchange,
    Sort,
    TableScan,
)
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.service import QuerySession
from repro.storage import SystemParameters
from repro.workloads import segmented_catalog


def spill_catalog(num_rows=8000, rows_per_segment=100, memory_blocks=200):
    """The post-union sort spills (B > M) while one quarter/half shard
    fits in sort memory (B/k <= M) — the regime where per-shard
    enforcement wins outright."""
    return segmented_catalog(
        num_rows, rows_per_segment,
        params=SystemParameters(sort_memory_blocks=memory_blocks))


class TestEnforcerChoice:
    def test_picks_per_shard_merge_when_cheaper(self):
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")  # no prefix → SRS enforcers
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)

        merges = prepared.plan.find_all("MergeExchange")
        assert len(merges) == 1
        assert [c.op for c in merges[0].children] == ["Sort"] * 4
        assert [c.children[0].op for c in merges[0].children] == \
            ["ShardedScan"] * 4

        baseline = QuerySession(catalog, shard_aware_enforcers=False)
        post_union = baseline.prepare(query, parallelism=4)
        assert post_union.plan.find_all("MergeExchange") == []
        assert prepared.total_cost < post_union.total_cost

        assert session.stats()["shard_merge_plans"] == 1
        assert session.stats()["post_union_sort_plans"] == 0
        assert baseline.stats()["shard_merge_plans"] == 0
        assert baseline.stats()["post_union_sort_plans"] == 1

    def test_falls_back_to_post_union_when_not_cheaper(self):
        """Everything fits in sort memory: the per-shard CPU exactly
        cancels against the merge term, and the tie resolves to the
        simpler post-union plan."""
        catalog = segmented_catalog(500, 50)  # 25 blocks << 10,000-block memory
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        assert prepared.plan.find_all("MergeExchange") == []
        assert prepared.plan.find_all("Sort")
        assert session.stats()["post_union_sort_plans"] == 1
        assert session.stats()["shard_merge_plans"] == 0
        # And the fallback plan still executes correctly when sharded.
        assert prepared.execute() == session.execute(query)

    def test_per_shard_mrs_on_oversized_segments(self):
        """ORDER BY (c1, c2) over clustering (c1) with segments larger
        than sort memory: post-union MRS spills per segment, while the
        shard boundaries cut segments down to memory-sized pieces — the
        per-shard enforcers are PartialSorts and the executed pipeline
        avoids run I/O entirely."""
        catalog = spill_catalog(num_rows=8000, rows_per_segment=4000,
                                memory_blocks=100)
        query = Query.table("r").order_by("c1", "c2")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        merges = prepared.plan.find_all("MergeExchange")
        assert len(merges) == 1
        assert [c.op for c in merges[0].children] == ["PartialSort"] * 4

        baseline = QuerySession(catalog, shard_aware_enforcers=False)
        post_union = baseline.prepare(query, parallelism=4)
        assert prepared.total_cost < post_union.total_cost

        merge_ctx = ExecutionContext(catalog)
        post_ctx = ExecutionContext(catalog)
        assert prepared.execute(merge_ctx) == post_union.execute(post_ctx)
        assert merge_ctx.sort_metrics.runs_created == 0   # pipelined MRS
        assert post_ctx.sort_metrics.runs_created > 0     # segment spills
        assert merge_ctx.cost_units() < post_ctx.cost_units()

    def test_parallelism_one_is_oblivious(self):
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")
        plain = Optimizer(catalog).optimize(query)
        explicit = Optimizer(catalog).optimize(query, parallelism=1)
        assert plain.signature() == explicit.signature()
        assert plain.find_all("MergeExchange") == []


class TestServingIntegration:
    def test_plan_cache_keyed_by_parallelism(self):
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        serial = session.prepare(query)
        sharded = session.prepare(query, parallelism=4)
        assert session.metrics.optimizations == 2  # no cross-fan-out hit
        assert serial.plan.signature() != sharded.plan.signature()
        again = session.prepare(query, parallelism=4)
        assert again.from_cache
        assert again.plan.signature() == sharded.plan.signature()
        assert session.prepare(query).from_cache  # serial entry intact

    def test_engine_level_pushdown_opt_in(self):
        """Hand-built pipelines get the same rewrite (and the same cost
        rule) through BatchedExecutor(shard_aware_sorts=True)."""
        catalog = spill_catalog()
        table = catalog.table("r")
        op = Sort(TableScan(table), SortOrder(["c2"]))
        expected = op.run(ExecutionContext(catalog))

        executor = BatchedExecutor(parallelism=4, shard_aware_sorts=True)
        prepared = executor.prepare(op, catalog.params)
        assert isinstance(prepared, MergeExchange)
        assert executor.run(op, ExecutionContext(catalog)) == expected

        # Off by default: the sort stays above the exchange.
        plain = BatchedExecutor(parallelism=4).prepare(op, catalog.params)
        assert isinstance(plain, Sort)
        # And the rewrite declines when the cost model says it won't pay.
        tiny = segmented_catalog(500, 50)
        cheap_sort = Sort(TableScan(tiny.table("r")), SortOrder(["c2"]))
        assert isinstance(executor.prepare(cheap_sort, tiny.params), Sort)


class TestAcceptance:
    """ISSUE acceptance: on the large synthetic workload with 4 shards,
    an ordered query through QuerySession.execute(parallelism=4) lowers
    to per-shard SRS/MRS + MergeExchange when cheaper, with simulated
    cost strictly below the post-union full-sort plan and bit-identical
    output at batch sizes {1, 64, default}."""

    @pytest.fixture(scope="class")
    def catalog(self):
        return spill_catalog(num_rows=20_000, rows_per_segment=100,
                             memory_blocks=500)

    def test_end_to_end(self, catalog):
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        baseline = QuerySession(catalog, shard_aware_enforcers=False)

        prepared = session.prepare(query, parallelism=4)
        post_union = baseline.prepare(query, parallelism=4)
        merges = prepared.plan.find_all("MergeExchange")
        assert len(merges) == 1 and len(merges[0].children) == 4
        assert prepared.total_cost < post_union.total_cost  # strictly below

        reference = session.execute(query)  # serial plan
        for batch_size in (1, 64, None):
            assert session.execute(query, parallelism=4,
                                   batch_size=batch_size) == reference
        assert baseline.execute(query, parallelism=4) == reference
        assert session.execute(query, parallelism=4,
                               use_threads=True) == reference

        merge_ctx, post_ctx = ExecutionContext(catalog), ExecutionContext(catalog)
        assert prepared.execute(merge_ctx) == post_union.execute(post_ctx)
        assert merge_ctx.cost_units() < post_ctx.cost_units()
        assert merge_ctx.sort_metrics.runs_created == 0   # shards fit in memory
        assert post_ctx.sort_metrics.runs_created > 0     # full sort spilled


# -- shard-aware enforcement under joins and aggregates -----------------------------------
import random

from repro.core.sort_order import EMPTY_ORDER
from repro.expr import col
from repro.expr.aggregates import agg_avg, agg_sum, count_star
from repro.optimizer.cost import CostModel, prefer_sharded
from repro.storage import Catalog, RangePartitioning, Schema, StatsView


def join_agg_catalog(num_rows=20_000, memory_blocks=500, c2_domain=2000,
                     dim_rows=2000, seed=3, cpu_comparisons_per_io=200_000.0):
    """Large synthetic ``r`` (200-byte rows, clustered on c1, c2 in a
    bounded domain) plus a small ``dim`` keyed on that domain — the
    sort-order-consuming join+aggregate scenario: joining on c2 needs a
    spilling sort of r, which per-shard enforcement avoids."""
    catalog = segmented_catalog(
        num_rows, 100,
        params=SystemParameters(sort_memory_blocks=memory_blocks,
                                cpu_comparisons_per_io=cpu_comparisons_per_io))
    rng = random.Random(seed)
    table = catalog.table("r")
    table._rows[:] = [(i // 100, rng.randrange(c2_domain), "p")
                      for i in range(num_rows)]
    table._sort_rows_by(SortOrder(["c1"]))
    table.update_stats()
    dim_schema = Schema.of(("d2", "int", 8), ("weight", "int", 8))
    step = max(1, c2_domain // dim_rows)
    catalog.create_table(
        "dim", dim_schema,
        rows=[(v * step, rng.randrange(10)) for v in range(dim_rows)],
        primary_key=["d2"])
    return catalog


class TestShardedJoins:
    def test_enforcer_composes_below_merge_join(self):
        """The PR-3 enforcer win composes under a join: the join's sorted
        left input is delivered by per-shard sorts under a MergeExchange,
        and the aggregation above consumes the join's order."""
        catalog = join_agg_catalog()
        query = (Query.table("r")
                 .join("dim", on=[("c2", "d2")])
                 .group_by(["c2"], agg_sum(col("weight"), "w"))
                 .order_by("c2"))
        session = QuerySession(catalog)
        baseline = QuerySession(catalog, shard_aware_enforcers=False)
        prepared = session.prepare(query, parallelism=4)
        post_union = baseline.prepare(query, parallelism=4)

        merges = prepared.plan.find_all("MergeExchange")
        assert merges and len(merges[0].children) == 4
        assert prepared.plan.find_all("MergeJoin")
        assert prepared.plan.find_all("SortAggregate")
        assert prepared.total_cost < post_union.total_cost
        assert session.stats()["shard_merge_plans"] == 1

        reference = session.execute(query)
        for batch_size in (1, 64, None):
            assert session.execute(query, parallelism=4,
                                   batch_size=batch_size) == reference
        assert baseline.execute(query, parallelism=4) == reference

    def test_broadcast_sharded_merge_join(self):
        """A selective join (tiny broadcast side, output ≪ input) under
        an expensive CPU→I/O translation: merging the join's 500-row
        output beats merging the 20 000-row left input, so the optimizer
        pushes the join below the exchange — per-shard MergeJoins against
        a broadcast right side, gathered on the join permutation."""
        catalog = join_agg_catalog(dim_rows=50,
                                   cpu_comparisons_per_io=2_000.0)
        query = Query.table("r").join("dim", on=[("c2", "d2")]).order_by("c2")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        merges = prepared.plan.find_all("MergeExchange")
        assert merges and [c.op for c in merges[0].children] == ["MergeJoin"] * 4
        # The broadcast side appears once per shard.
        assert len(prepared.plan.find_all("TableScan")) == 4
        assert session.stats()["sharded_join_plans"] == 1

        baseline = QuerySession(catalog, shard_aware_enforcers=False)
        assert prepared.total_cost < \
            baseline.prepare(query, parallelism=4).total_cost
        reference = session.execute(query)
        assert session.execute(query, parallelism=4) == reference
        assert session.execute(query, parallelism=4, batch_size=1,
                               use_threads=True) == reference

    def test_copartitioned_hash_join_skips_grace_spill(self):
        """Range-co-partitioned inputs hash-join partition against
        partition: per-partition builds fit in sort memory, so the Grace
        partition-spill I/O of a monolithic build disappears — and FULL
        OUTER joins (unshardable by broadcast) shard this way too."""
        rng = random.Random(9)
        catalog = Catalog(SystemParameters(sort_memory_blocks=100))
        bounds = (2000, 4000, 6000)
        for prefix in ("a", "b"):
            schema = Schema.of((f"{prefix}_k", "int", 8),
                               (f"{prefix}_v", "int", 8),
                               (f"{prefix}_pad", "str", 180))
            rows = [(rng.randrange(8000), rng.randrange(100), "x")
                    for _ in range(8000)]
            catalog.create_table(
                f"t{prefix}", schema, rows=rows,
                clustering_order=SortOrder([f"{prefix}_k"]),
                partitioning=RangePartitioning(f"{prefix}_k", bounds))
        query = Query.table("ta").full_outer_join("tb", on=[("a_k", "b_k")])
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        unions = prepared.plan.find_all("ExchangeUnion")
        assert unions and [c.op for c in unions[0].children] == ["HashJoin"] * 4
        assert all(c.children[0].op == "RangePartitionScan"
                   for c in unions[0].children)
        assert session.stats()["sharded_join_plans"] == 1

        key = lambda row: tuple((v is not None, v if v is not None else 0)
                                for v in row)
        reference = sorted(session.execute(query), key=key)
        for batch_size in (1, None):
            got = session.execute(query, parallelism=4, batch_size=batch_size)
            assert sorted(got, key=key) == reference
        got = session.execute(query, parallelism=4, use_threads=True)
        assert sorted(got, key=key) == reference


class TestShardedAggregates:
    def test_per_shard_aggregation_with_final_combine(self):
        """Groups ≪ rows: aggregating below the exchange merges one
        partial row per per-shard group instead of every input row, and a
        SortedCombine folds boundary-straddling groups exactly."""
        catalog = join_agg_catalog(c2_domain=200, dim_rows=200)
        query = Query.table("r").group_by(
            ["c2"], count_star("n"), agg_sum(col("c1"), "s")).order_by("c2")
        session = QuerySession(catalog, enable_hash_aggregate=False)
        prepared = session.prepare(query, parallelism=4)
        combines = prepared.plan.find_all("SortedCombine")
        assert len(combines) == 1
        merge = combines[0].children[0]
        assert merge.op == "MergeExchange"
        assert [c.op for c in merge.children] == ["SortAggregate"] * 4
        assert session.stats()["sharded_agg_plans"] == 1

        reference = session.execute(query)
        for batch_size in (1, 64, None):
            assert session.execute(query, parallelism=4,
                                   batch_size=batch_size) == reference
        assert session.execute(query, parallelism=4,
                               use_threads=True) == reference
        # Recombination is exact: totals equal the table row count.
        assert sum(row[1] for row in reference) == 20_000

    def test_non_combinable_aggregate_stays_unsharded(self):
        """avg has no exact combiner, so the aggregation itself is never
        sharded (the enforcer below it still may be)."""
        catalog = join_agg_catalog(c2_domain=200, dim_rows=200)
        query = Query.table("r").group_by(
            ["c2"], agg_avg(col("c1"), "m")).order_by("c2")
        session = QuerySession(catalog, enable_hash_aggregate=False)
        prepared = session.prepare(query, parallelism=4)
        assert prepared.plan.find_all("SortedCombine") == []
        assert session.stats()["sharded_agg_plans"] == 0
        reference = session.execute(query)
        assert session.execute(query, parallelism=4) == reference


def duplicate_heavy_catalog(seed=5, memory_blocks=100):
    """5000 × 216-byte rows, every tuple duplicated once, small column
    domains: measured per-shard distinct counts sit well below the shard
    row counts, so deduplicating *below* the merge shrinks the gather,
    while the hash-dedup's output sort spills and per-shard sorts fit."""
    import random

    from repro.storage import Catalog, Schema

    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(sort_memory_blocks=memory_blocks))
    schema = Schema.of(("a", "int", 8), ("b", "int", 200), ("c", "int", 8))
    base = [(rng.randrange(40), rng.randrange(10), rng.randrange(5))
            for _ in range(2500)]
    rows = base * 2
    rng.shuffle(rows)
    catalog.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["a"]))
    return catalog


class TestShardedDistinct:
    def test_per_shard_dedup_under_merge_with_final_dedup(self):
        catalog = duplicate_heavy_catalog()
        # ORDER BY leads off-clustering so the enforcers are full sorts.
        query = Query.table("t").distinct().order_by("b", "c", "a")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)

        root = prepared.plan
        assert root.op == "Dedup"           # merge-level final dedup
        merge = root.children[0]
        assert merge.op == "MergeExchange"
        assert [c.op for c in merge.children] == ["Dedup"] * 4
        assert all(c.children[0].op == "Sort" for c in merge.children)
        assert session.stats()["sharded_distinct_plans"] == 1

        reference = session.execute(query)
        assert len(set(reference)) == len(reference)  # really DISTINCT
        assert reference == sorted(reference,
                                   key=lambda r: (r[1], r[2], r[0]))
        for batch_size in (1, 64, None):
            assert session.execute(query, parallelism=4,
                                   batch_size=batch_size) == reference
        checked = ExecutionContext(catalog, check_orders=True)
        assert prepared.execute(ctx=checked) == reference

    def test_cost_gate_keeps_unsharded_dedup_when_not_cheaper(self):
        """High-cardinality rows: per-shard distincts equal the shard row
        counts, so deduplicating below the merge saves nothing and the
        extra final-dedup pass loses the gate."""
        import random

        from repro.storage import Catalog, Schema

        rng = random.Random(2)
        catalog = Catalog(SystemParameters(sort_memory_blocks=40))
        schema = Schema.of(("a", "int", 8), ("b", "int", 64), ("c", "int", 8))
        base = [(rng.randrange(2000), rng.randrange(2000), rng.randrange(2000))
                for _ in range(2500)]
        rows = base * 2
        rng.shuffle(rows)
        catalog.create_table("t", schema, rows=rows,
                             clustering_order=SortOrder(["a"]))
        query = Query.table("t").distinct().order_by("b", "a", "c")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        # The enforcers still go per shard, but the dedup stays above.
        root = prepared.plan
        assert root.op == "Dedup"
        assert root.children[0].op == "MergeExchange"
        assert all(c.op == "Sort" for c in root.children[0].children)
        assert session.stats()["sharded_distinct_plans"] == 0
        assert session.execute(query, parallelism=4) == session.execute(query)

    def test_parallelism_one_never_shards_distinct(self):
        catalog = duplicate_heavy_catalog()
        query = Query.table("t").distinct().order_by("b", "c", "a")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=1)
        assert prepared.plan.find_all("MergeExchange") == []
        assert session.stats()["sharded_distinct_plans"] == 0


def skewed_range_catalog(seed=17, memory_blocks=150):
    """8000 × 200-byte rows (400 blocks — a post-union SRS spills) with a
    range partitioning whose first partition holds ~90% of the rows: the
    regime where uniform ``scaled(1/k)`` per-shard estimates and measured
    per-partition statistics disagree about spilling."""
    rng = random.Random(seed)
    schema = Schema.of(("k", "int", 8), ("v", "int", 8), ("pad", "str", 184))
    rows = []
    for i in range(8000):
        k = rng.randrange(0, 900) if i % 10 else rng.randrange(900, 1000)
        rows.append((k, rng.randrange(1_000_000), "p"))
    catalog = Catalog(SystemParameters(sort_memory_blocks=memory_blocks))
    catalog.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["k"]),
                         partitioning=RangePartitioning("k", (900, 940, 970)))
    return catalog


class TestPerShardStatistics:
    def test_uniform_estimate_flips_placement_measured_fixes_it(self):
        """The satellite regression: under the uniform ``scaled(1/k)``
        model the skewed range fan-out looks identical to contiguous
        shards *minus* the heap merge (its partitions are disjoint on the
        leading sort attribute), so the uniform estimate picks range
        partitions — whose dominant partition actually spills.  Measured
        per-partition row counts expose the spill, the optimizer keeps
        contiguous equal shards, and execution confirms nothing spills."""
        catalog = skewed_range_catalog()
        table = catalog.table("t")
        model = CostModel(catalog.params)
        stats = StatsView.of_table(table.schema, table.stats)
        target = SortOrder(["k", "v"])
        clustered = SortOrder(["k"])

        range_uniform = model.sharded_coe(stats, clustered, target, 4,
                                          partial_enabled=False,
                                          disjoint_merge=True)
        contiguous_uniform = model.sharded_coe(stats, clustered, target, 4,
                                               partial_enabled=False)
        partition_views = [StatsView.of_table(table.schema, s)
                           for s in table.partition_stats()]
        range_measured = model.sharded_coe(stats, clustered, target, 4,
                                           partial_enabled=False,
                                           shard_stats=partition_views,
                                           disjoint_merge=True)
        shard_views = [StatsView.of_table(table.schema, s)
                      for s in table.shard_stats(4)]
        contiguous_measured = model.sharded_coe(stats, clustered, target, 4,
                                                partial_enabled=False,
                                                shard_stats=shard_views)
        # Uniform flips to range; measured keeps contiguous.
        assert range_uniform < contiguous_uniform
        assert contiguous_measured < range_measured
        # And the skewed partition genuinely spills (the measured numbers
        # price real run I/O, not just a reshuffled tie).
        assert range_measured > 100 * contiguous_measured

        session = QuerySession(catalog, strategy="pyro-o-")  # SRS enforcers
        prepared = session.prepare(Query.table("t").order_by("k", "v"),
                                   parallelism=4)
        merges = prepared.plan.find_all("MergeExchange")
        assert merges
        assert [c.children[0].op for c in merges[0].children] == \
            ["ShardedScan"] * 4  # contiguous, not the spilling range plan
        ctx = ExecutionContext(catalog)
        prepared.execute(ctx)
        assert ctx.sort_metrics.runs_created == 0


class TestRangePartitionedEnforcement:
    def test_disjoint_merge_skips_the_heap(self):
        """Per-partition sorts of a range-partitioned table concatenate
        without heap comparisons when the merge order leads with the
        partition column."""
        from repro.engine import MergeExchange as EngineMergeExchange
        from repro.engine import RangePartitionScan, partitions_disjoint_on

        rng = random.Random(7)
        catalog = Catalog(SystemParameters())
        schema = Schema.of(("k", "int", 8), ("v", "int", 8))
        rows = [(rng.randrange(1000), rng.randrange(50)) for _ in range(4000)]
        catalog.create_table("t", schema, rows=rows,
                             partitioning=RangePartitioning("k", (250, 500, 750)))
        table = catalog.table("t")
        order = SortOrder(["k", "v"])
        children = [Sort(RangePartitionScan(table, i), order) for i in range(4)]
        assert partitions_disjoint_on(children, order)
        exchange = EngineMergeExchange(children, order)
        assert exchange.partition_disjoint

        merged_ctx = ExecutionContext(catalog, check_orders=True)
        merged = exchange.run(merged_ctx)
        reference_ctx = ExecutionContext(catalog)
        reference = Sort(TableScan(table), order).run(reference_ctx)
        assert merged == reference
        # The heap would have paid ~N·log2(k) comparisons on top of the
        # sorts; concatenation pays none, so the disjoint gather does
        # strictly fewer comparisons than the monolithic sort.
        assert merged_ctx.comparisons.value < reference_ctx.comparisons.value

    def test_filtered_partition_scan_charges_full_table(self):
        """On a table not clustered on the partition column, each
        partition scan reads (and pays for) every block."""
        from repro.engine import RangePartitionScan

        catalog = Catalog(SystemParameters())
        schema = Schema.of(("k", "int", 8), ("v", "int", 8))
        rows = [(i % 10, i) for i in range(4096)]
        catalog.create_table("t", schema, rows=rows,
                             partitioning=RangePartitioning("k", (5,)))
        table = catalog.table("t")
        full_ctx = ExecutionContext(catalog)
        TableScan(table).run(full_ctx)
        part_ctx = ExecutionContext(catalog)
        part_rows = RangePartitionScan(table, 0).run(part_ctx)
        assert part_ctx.io.blocks_read == full_ctx.io.blocks_read
        assert part_rows == [r for r in rows if r[0] < 5]

    def test_executor_shards_along_partition_boundaries(self):
        """shard_scans prefers a matching clustered-contiguous partition
        spec over equal row counts, so the pushed-down sort gets the
        heap-free merge."""
        rng = random.Random(11)
        catalog = Catalog(SystemParameters(sort_memory_blocks=20))
        schema = Schema.of(("k", "int", 64), ("v", "int", 64))
        rows = [(rng.randrange(100), rng.randrange(50)) for _ in range(2000)]
        catalog.create_table("t", schema, rows=rows,
                             clustering_order=SortOrder(["k"]),
                             partitioning=RangePartitioning("k", (25, 50, 75)))
        table = catalog.table("t")
        # A full (SRS) sort: 62 blocks spill post-union, ~15-block
        # partitions fit — and the merge order leads with the partition
        # column, so the pushed-down gather is the heap-free concat.
        op = Sort(TableScan(table), SortOrder(["k", "v"]), algorithm="srs")
        executor = BatchedExecutor(parallelism=4, shard_aware_sorts=True)
        prepared = executor.prepare(op, catalog.params)
        assert isinstance(prepared, MergeExchange)
        assert prepared.partition_disjoint
        assert executor.run(op, ExecutionContext(catalog)) == \
            Sort(TableScan(table), SortOrder(["k", "v"])).run(
                ExecutionContext(catalog))


class TestServingKnobs:
    def test_partition_spec_salts_the_cache(self):
        """Declaring (or changing) a range partition spec bumps the
        table version, so cached plans for that table re-optimize."""
        catalog = skewed_range_catalog()
        query = Query.table("t").order_by("k", "v")
        session = QuerySession(catalog)
        first = session.prepare(query, parallelism=4)
        assert session.prepare(query, parallelism=4).from_cache
        catalog.table("t").set_partitioning(
            RangePartitioning("k", (450, 900, 950)))
        replanned = session.prepare(query, parallelism=4)
        assert not replanned.from_cache
        assert session.metrics.optimizations == 2

    def test_refresh_stats_invalidates_per_shard_decision(self):
        """refresh_stats drops the measured per-shard caches and the
        cached plan, so the next prepare re-decides placement from the
        new boundaries."""
        catalog = spill_catalog()
        query = Query.table("r").order_by("c2")
        session = QuerySession(catalog)
        prepared = session.prepare(query, parallelism=4)
        assert prepared.plan.find_all("MergeExchange")
        table = catalog.table("r")
        first_shard_stats = table.shard_stats(4)
        catalog.refresh_stats("r")
        assert table.shard_stats(4) is not first_shard_stats
        again = session.prepare(query, parallelism=4)
        assert not again.from_cache
        assert session.metrics.optimizations == 2

    def test_decision_counters_account_once_per_fresh_plan(self):
        """Counters tick on fresh optimizations only — cache hits do not
        double-count — and each counter tracks its own plan family."""
        catalog = join_agg_catalog(c2_domain=200, dim_rows=200)
        session = QuerySession(catalog, enable_hash_aggregate=False)
        agg_query = Query.table("r").group_by(
            ["c2"], count_star("n")).order_by("c2")
        session.prepare(agg_query, parallelism=4)
        session.prepare(agg_query, parallelism=4)  # cache hit
        stats = session.stats()
        assert stats["sharded_agg_plans"] == 1
        assert stats["shard_merge_plans"] == 1
        assert stats["sharded_join_plans"] == 0
        assert stats["cache_hits"] == 1
