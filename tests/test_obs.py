"""Observability: span trees end to end (serial / threads / process,
streaming and gathered, pool-rebuild mid-query), EXPLAIN ANALYZE
estimated-vs-actual annotations, the histogram-backed latency tracker,
Prometheus/JSON exposition, the slow-query log, and the fuzz-corpus pin
that tracing changes no rows and no tallies."""

import json
import random
import threading
from concurrent.futures import BrokenExecutor

import pytest

from repro.engine.context import ExecutionContext
from repro.logical import Query
from repro.obs import ObservabilityConfig
from repro.obs.export import SlowQueryLog, json_snapshot, prometheus_text
from repro.obs.trace import (
    Trace,
    Tracer,
    _NULL_SPAN,
    active_span,
    child_span,
)
from repro.service import QueryServer, QuerySession, TracedResult
from repro.service.backends import ProcessPoolBackend
from repro.service.metrics import LatencyTracker, ServerMetrics

from tests.test_server import (
    _worker_suicide,
    serving_catalog,
    serving_queries,
)


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


OPTIMIZER_STAGES = ("pre_check", "join_enumeration", "physical_selection",
                    "parameterization")


def assert_full_query_tree(trace, *, shards: int) -> None:
    """The acceptance shape: one tree covering admission, queue wait,
    all four optimizer stages, per-shard worker execution and merge."""
    root = trace.root
    assert root is not None and root.name == "query"
    assert root.end is not None
    for name in ("admission", "queue_wait", "plan", "bind", "execute"):
        span = trace.find(name)
        assert span is not None and span.end is not None, name
    plan_span = trace.find("plan")
    for stage in OPTIMIZER_STAGES:
        span = trace.find(stage)
        assert span is not None, stage
        assert span.parent_id == plan_span.span_id
        assert span.end is not None
    execute = trace.find("execute")
    dispatches = trace.find_all("shard_dispatch")
    assert len(dispatches) == shards
    assert {d.tags["shard"] for d in dispatches} == set(range(shards))
    assert all(d.parent_id == execute.span_id for d in dispatches)
    workers = trace.find_all("worker_execute")
    assert len(workers) == shards
    # Worker spans carry the parent trace id: they are spans *of this
    # trace*, grafted under their shard's dispatch span.
    assert all(w.trace_id == trace.trace_id for w in workers)
    dispatch_ids = {d.span_id for d in dispatches}
    assert {w.parent_id for w in workers} == dispatch_ids
    merge = trace.find("merge")
    assert merge is not None and merge.parent_id == execute.span_id


# -- the tracing primitives ---------------------------------------------------------------
class TestTracePrimitives:
    def test_span_tree_with_fake_clock(self):
        clock = FakeClock(step=1.0)
        trace = Trace("t-1", clock=clock)
        root = trace.begin("query")
        with trace.span("child", parent=root, shard=3) as child:
            assert active_span() is child
        trace.finish(root)
        assert child.parent_id == root.span_id
        assert child.duration == pytest.approx(1.0)
        assert child.tags == {"shard": 3}
        assert root.end is not None and root.end > child.end
        assert trace.root is root

    def test_span_cm_tags_error_class(self):
        trace = Trace("t-err", clock=FakeClock())
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("nope")
        span = trace.find("boom")
        assert span.tags["error"] == "ValueError"
        assert span.end is not None

    def test_child_span_is_noop_outside_any_trace(self):
        assert active_span() is None
        cm = child_span("anything", rows=1)
        assert cm is _NULL_SPAN
        with cm as span:
            assert span.tag(more=2) is span  # chainable no-op
        assert active_span() is None

    def test_child_span_nests_under_ambient(self):
        trace = Trace("t-nest", clock=FakeClock())
        with trace.span("outer") as outer:
            with child_span("inner") as inner:
                assert active_span() is inner
            assert active_span() is outer
        assert inner.parent_id == outer.span_id

    def test_activate_hands_ambient_across_threads(self):
        trace = Trace("t-thread", clock=FakeClock())
        root = trace.begin("query")
        seen = []

        def body():
            with trace.activate(root):
                with child_span("work") as span:
                    seen.append(span)

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert seen[0].parent_id == root.span_id

    def test_attach_rebases_worker_offsets(self):
        parent = Trace("t-p", clock=FakeClock(step=0.0))
        dispatch = parent.begin("shard_dispatch")
        worker = Trace("t-p", clock=FakeClock(step=1.0),
                       id_prefix=f"{dispatch.span_id}.")
        w = worker.begin("worker_execute", parent_id=dispatch.span_id)
        worker.finish(w)
        parent.attach(worker.to_records(), base_offset=10.0)
        grafted = parent.find("worker_execute")
        assert grafted.span_id.startswith(f"{dispatch.span_id}.")
        assert grafted.start == pytest.approx(10.0 + w.start)
        assert grafted.end == pytest.approx(10.0 + w.end)
        assert grafted.trace_id == parent.trace_id

    def test_disabled_tracer_starts_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.start("query") is None
        assert tracer.traces_started == 0
        enabled = Tracer(clock=FakeClock())
        t1, t2 = enabled.start(), enabled.start()
        assert enabled.traces_started == 2
        assert t1.trace_id != t2.trace_id

    def test_render_contains_every_span(self):
        trace = Trace("t-render", clock=FakeClock(step=0.25))
        root = trace.begin("query")
        with trace.span("plan", parent=root):
            pass
        trace.finish(root)
        text = trace.render()
        assert "trace t-render" in text
        assert "- query" in text and "- plan" in text


# -- the histogram latency tracker --------------------------------------------------------
class TestLatencyTracker:
    def test_quantiles_track_sorted_sample_within_bucket_error(self):
        """Parity: histogram quantiles stay within one bucket's relative
        width (2**0.25 ≈ 19%) of the exact sorted-sample quantile."""
        rng = random.Random(42)
        tracker = LatencyTracker()
        samples = [rng.lognormvariate(-4.0, 1.5) for _ in range(5000)]
        for s in samples:
            tracker.record(s)
        ordered = sorted(samples)
        for q in (0.10, 0.50, 0.90, 0.95, 0.99):
            exact = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            approx = tracker.quantile(q)
            assert approx == pytest.approx(exact, rel=0.20), q

    def test_small_n_clamped_to_observed_range(self):
        tracker = LatencyTracker()
        tracker.record(0.030)
        assert tracker.quantile(0.5) == pytest.approx(0.030)
        assert tracker.quantile(0.99) == pytest.approx(0.030)
        tracker.record(0.050)
        assert 0.030 <= tracker.quantile(0.5) <= 0.050
        assert tracker.quantile(0.0) == pytest.approx(0.030)

    def test_buckets_cumulative_ending_inf(self):
        tracker = LatencyTracker()
        for s in (0.001, 0.002, 0.004, 120.0):  # last beyond top bound
            tracker.record(s)
        buckets = tracker.buckets()
        assert buckets[-1][0] == float("inf")
        assert buckets[-1][1] == 4
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)  # cumulative, monotone
        assert tracker.count == 4
        assert tracker.mean == pytest.approx(sum((0.001, 0.002, 0.004,
                                                  120.0)) / 4)

    def test_empty_tracker(self):
        tracker = LatencyTracker()
        assert tracker.quantile(0.5) == 0.0
        assert tracker.mean == 0.0
        assert tracker.buckets()[-1] == (float("inf"), 0)


# -- per-tenant latency percentiles -------------------------------------------------------
class TestTenantLatency:
    def test_tenant_percentiles_partition_by_tenant(self):
        metrics = ServerMetrics()
        for tenant, seconds in (("fast", 0.01), ("fast", 0.012),
                                ("slow", 0.8), ("slow", 1.0)):
            _, outcome = metrics.try_admit(8, tenant=tenant)
            metrics.start_execution(outcome)
            metrics.finish_execution(seconds, "completed", outcome)
        tenants = metrics.tenants_dict()
        assert tenants["fast"]["latency_p95_ms"] < 20
        assert tenants["slow"]["latency_p50_ms"] > 500
        # The global histogram covers both.
        stats = metrics.as_dict(slots=1)
        assert stats["latency_count"] == 4
        assert stats["latency_histogram"][-1][1] == 4


# -- exposition ---------------------------------------------------------------------------
class TestExposition:
    def test_prometheus_text_shape(self, catalog=None):
        srv_catalog = serving_catalog(num_rows=400)
        with QueryServer(srv_catalog, obs=True) as server:
            server.execute(serving_queries()[0])
            text = server.metrics_text()
        assert "# TYPE repro_completed gauge" in text
        assert "repro_completed 1" in text
        assert 'repro_backend_info{value="serial"} 1' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_latency_seconds_count 1" in text
        assert 'repro_tenant_completed{tenant="default"} 1' in text
        assert "repro_traces_started 1" in text

    def test_json_snapshot_stable_and_versioned(self):
        doc1 = json_snapshot({"b": 2, "a": 1, "nan": float("nan"),
                              "inf": float("inf")})
        doc2 = json_snapshot({"a": 1, "inf": float("inf"),
                              "nan": float("nan"), "b": 2})
        assert doc1 == doc2  # sorted keys: insertion order is invisible
        parsed = json.loads(doc1)
        assert parsed["schema_version"] == 1
        assert parsed["stats"]["nan"] == "NaN"
        assert parsed["stats"]["inf"] == "+Inf"

    def test_slow_query_log_threshold_and_bound(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.1)
        assert not log.observe(fingerprint="f0", tenant="t",
                               latency_seconds=0.05, backend="serial")
        assert len(log) == 0
        for i in range(3):
            assert log.observe(fingerprint=f"f{i}", tenant="t",
                               latency_seconds=0.2 + i, backend="serial")
        assert log.recorded == 3
        entries = log.entries()
        assert len(entries) == 2  # bounded: oldest aged out
        assert [e["fingerprint"] for e in entries] == ["f1", "f2"]

    def test_server_slow_log_captures_trace(self):
        srv_catalog = serving_catalog(num_rows=400)
        obs = ObservabilityConfig(slow_query_seconds=0.0)
        with QueryServer(srv_catalog, obs=obs) as server:
            result = server.execute(serving_queries()[0])
            entries = server.slow_queries()
        assert len(entries) == 1
        assert entries[0]["trace_id"] == result.trace.trace_id
        assert entries[0]["backend"] == "serial"


# -- EXPLAIN ANALYZE ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_every_node_reports_est_actual_and_time(self):
        catalog = serving_catalog(num_rows=800)
        session = QuerySession(catalog)
        ea = session.explain_analyze(serving_queries()[0])
        assert ea.row_count == 800 and len(ea.rows) == 800
        reports = ea.node_reports()
        assert reports  # one entry per plan node, pre-order
        for report in reports:
            assert report["tag"] is not None, report["op"]
            assert report["actual_rows"] is not None
            assert report["estimated_rows"] is not None
            assert report["seconds"] is not None
            assert report["batches"] is not None
        text = ea.render()
        assert "EXPLAIN ANALYZE" in text
        assert "rows est=" in text and "act=" in text
        assert "time=" in text and "batches=" in text

    def test_shared_meter_marked_with_multiplicity(self):
        # Default size: the ORDER BY b sort spills at parallelism 1 and
        # fits per shard, so the parallelism-4 plan carries the
        # MergeExchange whose shard pipelines share meters.
        catalog = serving_catalog()
        session = QuerySession(catalog)
        ea = session.explain_analyze(serving_queries()[0], parallelism=4)
        shared = [r for r in ea.node_reports() if r["shared_nodes"] > 1]
        assert shared, "parallel plan should share shard meters"
        assert "share this meter" in ea.render()

    def test_traced_result_explain_analyze(self):
        catalog = serving_catalog(num_rows=400)
        with QueryServer(catalog, obs=True) as server:
            result = server.execute(serving_queries()[0])
        ea = result.explain_analyze()
        assert ea.row_count == len(result.rows)
        assert any(r["seconds"] is not None for r in ea.node_reports())

    def test_meter_timing_off_keeps_times_empty(self):
        catalog = serving_catalog(num_rows=400)
        ctx = ExecutionContext(catalog)
        QuerySession(catalog).execute(serving_queries()[0], ctx=ctx)
        assert ctx.operator_times == {}
        assert ctx.tallies()["operator_times"] == {}


# -- end-to-end span trees ----------------------------------------------------------------
class TestServerTracing:
    def test_process_backend_full_span_tree(self):
        """Acceptance: a traced query on the process backend yields one
        span tree from admission through per-shard worker execution to
        the merge, worker spans carrying the parent trace id."""
        catalog = serving_catalog()
        with QueryServer(catalog, backend="process", parallelism=4,
                         pool_workers=2, obs=True) as server:
            result = server.execute(serving_queries()[0])
        assert isinstance(result, TracedResult)
        assert_full_query_tree(result.trace, shards=4)
        # Cache-status agreement between the span and the result.
        assert result.trace.find("plan").tags["cache_hit"] \
            == result.from_cache

    def test_gathered_transfer_also_reattaches_workers(self):
        catalog = serving_catalog()
        backend = ProcessPoolBackend(catalog, workers=2, streaming=False)
        with QueryServer(catalog, backend=backend, parallelism=4,
                         obs=True) as server:
            result = server.execute(serving_queries()[0])
        assert_full_query_tree(result.trace, shards=4)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_in_process_backends_trace(self, backend):
        catalog = serving_catalog(num_rows=600)
        with QueryServer(catalog, backend=backend, parallelism=2,
                         obs=True) as server:
            result = server.execute(serving_queries()[0])
        trace = result.trace
        for name in ("admission", "queue_wait", "plan", "bind", "execute",
                     "local_execute"):
            assert trace.find(name) is not None, name
        local = trace.find("local_execute")
        assert local.parent_id == trace.find("execute").span_id
        assert local.tags["rows"] == len(result.rows)

    def test_trace_survives_pool_rebuild_mid_query(self):
        """BrokenExecutor retry: the retried attempt's spans land in the
        same trace (attempt tag distinguishes them) and the result is
        still correct."""
        catalog = serving_catalog(num_rows=800, seed=5)
        query = serving_queries()[0]
        reference = QuerySession(catalog).execute(query)
        backend = ProcessPoolBackend(catalog, workers=2)
        with QueryServer(catalog, backend=backend, parallelism=2,
                         obs=True) as server:
            handle = backend._ensure_pool()
            doomed = handle.pool.submit(_worker_suicide, 0)
            with pytest.raises(BrokenExecutor):
                doomed.result(timeout=30)
            result = server.execute(query)
        assert result.rows == reference
        trace = result.trace
        dispatches = trace.find_all("shard_dispatch")
        attempts = {d.tags["attempt"] for d in dispatches}
        assert attempts == {0, 1}, "first attempt + rebuilt retry"
        # Every retried dispatch finished; failed ones carry the error.
        assert all(d.end is not None for d in dispatches)
        workers = [w for w in trace.find_all("worker_execute")]
        assert workers and all(w.trace_id == trace.trace_id
                               for w in workers)
        assert trace.root.tags.get("retries") is None \
            or trace.root.tags["retries"] >= 1

    def test_per_call_trace_override(self):
        catalog = serving_catalog(num_rows=400)
        obs = ObservabilityConfig(trace_queries=False)
        with QueryServer(catalog, obs=obs) as server:
            plain = server.execute(serving_queries()[0])
            traced = server.execute(serving_queries()[0], trace=True)
            off = server.execute(serving_queries()[0], trace=False)
        assert not isinstance(plain, TracedResult)
        assert not isinstance(off, TracedResult)
        assert isinstance(traced, TracedResult)

    def test_untraced_server_returns_plain_results(self):
        catalog = serving_catalog(num_rows=400)
        with QueryServer(catalog) as server:
            result = server.execute(serving_queries()[0])
            assert not isinstance(result, TracedResult)
            # trace=True without obs= stays plain: no tracer exists.
            result = server.execute(serving_queries()[0], trace=True)
            assert not isinstance(result, TracedResult)
            stats = server.stats()
        assert "traces_started" not in stats

    def test_injected_fake_clock_tracer(self):
        catalog = serving_catalog(num_rows=400)
        obs = ObservabilityConfig(tracer=Tracer(clock=FakeClock(step=1.0)))
        with QueryServer(catalog, obs=obs) as server:
            result = server.execute(serving_queries()[0])
        root = result.trace.root
        assert root.duration is not None and root.duration >= 1.0
        assert root.duration == int(root.duration)  # fake-clock steps

    def test_ambient_never_leaks_across_queries(self):
        catalog = serving_catalog(num_rows=400)
        with QueryServer(catalog, obs=True) as server:
            server.execute(serving_queries()[0])
        assert active_span() is None


# -- determinism: tracing changes nothing -------------------------------------------------
class TestTracingDeterminism:
    def test_fuzz_corpus_rows_and_tallies_identical(self):
        """Pin: tracing on vs off is bit-identical in rows AND in every
        deterministic tally on the fuzz corpus (wall times excluded by
        construction — they are only collected when tracing is on)."""
        from tests.test_plan_fuzz import random_catalog, random_query

        def strip_times(tallies: dict) -> dict:
            return {k: v for k, v in tallies.items()
                    if k != "operator_times"}

        for seed in range(8):
            rng = random.Random(seed)
            fuzz_catalog = random_catalog(rng)
            query = random_query(rng, fuzz_catalog)
            reference = QuerySession(fuzz_catalog).execute(query)
            plan = QuerySession(fuzz_catalog).prepare(
                query, parallelism=4).plan
            backend = ProcessPoolBackend(fuzz_catalog, workers=2)
            try:
                ctx_off = ExecutionContext(fuzz_catalog)
                rows_off = backend.run_plan(plan, fuzz_catalog,
                                            parallelism=4, ctx=ctx_off)
                tracer = Tracer()
                trace = tracer.start("fuzz")
                root = trace.begin("query")
                ctx_on = ExecutionContext(fuzz_catalog, meter_timing=True)
                with trace.activate(root):
                    rows_on = backend.run_plan(plan, fuzz_catalog,
                                               parallelism=4, ctx=ctx_on)
                trace.finish(root)
            finally:
                backend.close()
            assert rows_off == reference, f"fuzz seed {seed}"
            assert rows_on == reference, f"fuzz seed {seed}"
            # Same backend, same plan: every deterministic tally is
            # bit-identical with tracing on vs off, and the untraced run
            # collected no wall times at all.
            assert strip_times(ctx_on.tallies()) \
                == strip_times(ctx_off.tallies()), f"fuzz seed {seed}"
            assert ctx_off.tallies()["operator_times"] == {}
            assert trace.find_all("shard_dispatch"), \
                "traced run produced no dispatch spans"

    def test_serial_tallies_identical_with_tracing(self):
        catalog = serving_catalog(num_rows=600)
        query = serving_queries()[0]
        ref_ctx = ExecutionContext(catalog)
        QuerySession(catalog).execute(query, ctx=ref_ctx)
        with QueryServer(catalog, obs=True) as server:
            traced = server.execute(query)
        assert traced.operator_rows == ref_ctx.tallies()["operator_rows"]
