"""Tests for the external sort: SRS, MRS, spill behaviour, metrics.

These cover the claims of paper Section 3.1: identical output, zero run
I/O for MRS when segments fit, early output, fewer comparisons, and the
graceful degradation when a segment outgrows memory.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext, sort_stream
from repro.storage import Catalog, Schema, SystemParameters

SCHEMA = Schema.of(("k1", "int", 8), ("k2", "int", 8), ("v", "int", 8))


def ctx_with(block_size=256, memory_blocks=8) -> ExecutionContext:
    return ExecutionContext(params=SystemParameters(
        block_size=block_size, sort_memory_blocks=memory_blocks))


def presorted_rows(n, segments, seed=5):
    rng = random.Random(seed)
    rows = [(i % segments, rng.randrange(1000), i) for i in range(n)]
    rows.sort(key=lambda r: r[0])
    return rows


class TestSrs:
    def test_sorts_correctly_in_memory(self):
        rng = random.Random(1)
        rows = [(rng.randrange(50), rng.randrange(50), i) for i in range(500)]
        ctx = ExecutionContext()
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx,
                               algorithm="srs"))
        assert [r[:2] for r in out] == sorted(r[:2] for r in rows)

    def test_in_memory_no_io(self):
        rows = [(i % 5, i, i) for i in range(100)]
        ctx = ctx_with(memory_blocks=1000)
        list(sort_stream(rows, SCHEMA, SortOrder(["k2"]), ctx, algorithm="srs"))
        assert ctx.io.total_blocks == 0
        assert ctx.sort_metrics.in_memory_sorts == 1

    def test_spill_and_merge(self):
        rng = random.Random(2)
        rows = [(rng.randrange(1000), 0, i) for i in range(2000)]
        ctx = ctx_with(block_size=256, memory_blocks=4)
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1"]), ctx,
                               algorithm="srs"))
        assert [r[0] for r in out] == sorted(r[0] for r in rows)
        assert ctx.io.blocks_written > 0
        assert ctx.io.blocks_read > 0
        assert ctx.sort_metrics.runs_created >= 2

    def test_run_count_doubles_memory_on_random_input(self):
        # Replacement selection produces runs of ~2× memory on random input.
        rng = random.Random(3)
        n = 4000
        rows = [(rng.randrange(10**6), 0, i) for i in range(n)]
        ctx = ctx_with(block_size=240, memory_blocks=10)  # 100 rows of memory
        list(sort_stream(rows, SCHEMA, SortOrder(["k1"]), ctx, algorithm="srs"))
        capacity = ctx.memory_capacity_rows(SCHEMA.row_bytes)
        naive_runs = n / capacity
        assert ctx.sort_metrics.runs_created < naive_runs * 0.8

    def test_presorted_input_single_run_still_does_io(self):
        """The paper's critique: SRS on presorted input writes one giant
        run and reads it back."""
        rows = [(i, 0, i) for i in range(2000)]
        ctx = ctx_with(block_size=256, memory_blocks=4)
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx,
                               algorithm="srs"))
        assert [r[0] for r in out] == list(range(2000))
        assert ctx.sort_metrics.runs_created == 1
        assert ctx.io.blocks_written > 0   # the pipeline-breaking run I/O

    def test_multi_pass_merge(self):
        rng = random.Random(4)
        rows = [(rng.randrange(10**6), 0, i) for i in range(3000)]
        ctx = ctx_with(block_size=256, memory_blocks=3)  # fan-in 2
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1"]), ctx,
                               algorithm="srs"))
        assert [r[0] for r in out] == sorted(r[0] for r in rows)
        assert ctx.sort_metrics.merge_passes >= 2


class TestMrs:
    def test_matches_srs_output(self):
        rows = presorted_rows(1000, segments=20)
        target = SortOrder(["k1", "k2"])
        ctx1, ctx2 = ExecutionContext(), ExecutionContext()
        srs = list(sort_stream(rows, SCHEMA, target, ctx1, algorithm="srs"))
        mrs = list(sort_stream(rows, SCHEMA, target, ctx2,
                               known_prefix=SortOrder(["k1"]), algorithm="mrs"))
        assert [r[:2] for r in srs] == [r[:2] for r in mrs]

    def test_zero_io_when_segments_fit(self):
        rows = presorted_rows(2000, segments=50)
        ctx = ctx_with(block_size=256, memory_blocks=8)  # 85 rows memory, 40-row segments
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx,
                               known_prefix=SortOrder(["k1"])))
        assert [r[:2] for r in out] == sorted(r[:2] for r in rows)
        assert ctx.io.total_blocks == 0
        assert ctx.sort_metrics.segments_sorted == 50

    def test_fewer_comparisons_than_srs(self):
        rows = presorted_rows(3000, segments=30)
        target = SortOrder(["k1", "k2"])
        ctx_srs, ctx_mrs = ExecutionContext(), ExecutionContext()
        list(sort_stream(rows, SCHEMA, target, ctx_srs, algorithm="srs"))
        list(sort_stream(rows, SCHEMA, target, ctx_mrs,
                         known_prefix=SortOrder(["k1"])))
        assert ctx_mrs.comparisons.value < ctx_srs.comparisons.value

    def test_early_output(self):
        """MRS must emit the first segment before consuming all input."""
        consumed = [0]

        def tracked():
            rows = presorted_rows(1000, segments=10)
            for row in rows:
                consumed[0] += 1
                yield row

        ctx = ExecutionContext()
        stream = sort_stream(tracked(), SCHEMA, SortOrder(["k1", "k2"]), ctx,
                             known_prefix=SortOrder(["k1"]))
        first = next(iter(stream))
        assert first[0] == 0
        assert consumed[0] <= 102  # one segment + lookahead, not all 1000

    def test_oversized_segment_spills_per_segment(self):
        rows = presorted_rows(2000, segments=2)  # 1000-row segments
        ctx = ctx_with(block_size=256, memory_blocks=8)  # ~85 rows of memory
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx,
                               known_prefix=SortOrder(["k1"])))
        assert [r[:2] for r in out] == sorted(r[:2] for r in rows)
        assert ctx.io.blocks_written > 0
        assert ctx.sort_metrics.segments_sorted == 2

    def test_single_value_segment_degenerates_to_full_sort(self):
        rows = [(7, v, i) for i, v in enumerate(
            random.Random(6).sample(range(10_000), 1500))]
        ctx_mrs = ctx_with(block_size=256, memory_blocks=4)
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx_mrs,
                               known_prefix=SortOrder(["k1"])))
        assert [r[1] for r in out] == sorted(r[1] for r in rows)
        ctx_srs = ctx_with(block_size=256, memory_blocks=4)
        list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx_srs,
                         algorithm="srs"))
        # Same order of magnitude of I/O: MRS has no advantage left.
        assert ctx_mrs.io.total_blocks >= ctx_srs.io.total_blocks * 0.5

    def test_fully_sorted_prefix_is_noop(self):
        rows = presorted_rows(100, segments=100)
        ctx = ExecutionContext()
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1"]), ctx,
                               known_prefix=SortOrder(["k1"])))
        assert out == rows
        assert ctx.comparisons.value == 0


class TestDispatch:
    def test_bad_algorithm(self):
        with pytest.raises(ValueError):
            list(sort_stream([], SCHEMA, SortOrder(["k1"]), ExecutionContext(),
                             algorithm="quick"))

    def test_prefix_must_prefix_target(self):
        with pytest.raises(ValueError):
            list(sort_stream([], SCHEMA, SortOrder(["k1"]), ExecutionContext(),
                             known_prefix=SortOrder(["k2"])))

    def test_mrs_requires_prefix(self):
        with pytest.raises(ValueError):
            list(sort_stream([], SCHEMA, SortOrder(["k1"]), ExecutionContext(),
                             algorithm="mrs"))

    def test_empty_input(self):
        ctx = ExecutionContext()
        assert list(sort_stream([], SCHEMA, SortOrder(["k1"]), ctx)) == []

    def test_auto_uses_mrs_with_prefix(self):
        rows = presorted_rows(300, segments=10)
        ctx = ExecutionContext()
        list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx,
                         known_prefix=SortOrder(["k1"])))
        assert ctx.sort_metrics.segments_sorted == 10


@st.composite
def rows_and_keys(draw):
    n_cols = 3
    n_rows = draw(st.integers(0, 120))
    rows = [tuple(draw(st.integers(0, 8)) for _ in range(n_cols))
            for _ in range(n_rows)]
    key_len = draw(st.integers(1, n_cols))
    key_cols = draw(st.permutations(["k1", "k2", "v"]))[:key_len]
    prefix_len = draw(st.integers(0, key_len - 1))
    return rows, list(key_cols), prefix_len


class TestPropertyBased:
    @given(rows_and_keys())
    @settings(max_examples=120, deadline=None)
    def test_sort_equals_python_sorted(self, case):
        rows, key_cols, prefix_len = case
        positions = [SCHEMA.position(c) for c in key_cols]
        prefix_positions = positions[:prefix_len]
        rows = sorted(rows, key=lambda r: tuple(r[i] for i in prefix_positions))
        ctx = ctx_with(block_size=64, memory_blocks=4)  # force spills
        out = list(sort_stream(rows, SCHEMA, SortOrder(key_cols), ctx,
                               known_prefix=SortOrder(key_cols[:prefix_len])))
        expected = sorted(rows, key=lambda r: tuple(r[i] for i in positions))
        assert [tuple(r[i] for i in positions) for r in out] == \
               [tuple(r[i] for i in positions) for r in expected]
        assert sorted(out) == sorted(rows)  # it is a permutation of the input

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 1000),
                              st.integers()), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_mrs_srs_agree(self, rows):
        rows = sorted(rows, key=lambda r: r[0])
        target = SortOrder(["k1", "k2"])
        srs = list(sort_stream(rows, SCHEMA, target,
                               ctx_with(block_size=64, memory_blocks=4),
                               algorithm="srs"))
        mrs = list(sort_stream(rows, SCHEMA, target,
                               ctx_with(block_size=64, memory_blocks=4),
                               known_prefix=SortOrder(["k1"]), algorithm="mrs"))
        assert [r[:2] for r in srs] == [r[:2] for r in mrs]

    @given(st.lists(st.tuples(st.integers(0, 3), st.one_of(st.none(),
                                                           st.integers(0, 9)),
                              st.integers()), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_null_keys_sort_first(self, rows):
        rows = sorted(rows, key=lambda r: r[0])
        ctx = ExecutionContext()
        out = list(sort_stream(rows, SCHEMA, SortOrder(["k1", "k2"]), ctx,
                               known_prefix=SortOrder(["k1"])))
        for (a1, b1, _), (a2, b2, _) in zip(out, out[1:]):
            if a1 == a2:
                k1 = (b1 is not None, b1 if b1 is not None else 0)
                k2 = (b2 is not None, b2 if b2 is not None else 0)
                assert k1 <= k2
