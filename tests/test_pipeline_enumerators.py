"""Staged-pipeline and join-enumerator tests.

Pins the refactored optimizer to its pre-pipeline behavior (the default
exhaustive enumerator must be **bit-identical** on the Fig. 16 queries
and the fuzz corpus — golden explains/costs/hash live in
``tests/golden_plans.json``), and covers the new pluggable
join-ordering layer: the enumerator registry, the region-rewrite
bail-outs, enumerator-salted plan-cache fingerprints, pipeline reuse
across ``optimize``/refinement/``cost_of``, and the per-stage telemetry
surfaced by sessions and the server.
"""

import hashlib
import json
import pathlib
import random

import pytest

from repro.logical import Query
from repro.logical.algebra import Annotator
from repro.optimizer import (
    ENUMERATORS,
    ExhaustiveEnumerator,
    GreedyManyToManyEnumerator,
    Optimizer,
    SimpliSquaredEnumerator,
    make_enumerator,
)
from repro.optimizer.pipeline import OptimizationPipeline, PreCheckError
from repro.service import PlanCache, QueryServer, QuerySession
from repro.workloads import (
    many_join_catalog,
    many_join_query,
    trading_stats_catalog,
    query5,
)

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_plans.json").read_text())


# -- golden pins: the refactor must be invisible under the default enumerator ------------
def _fig16_cases():
    import sys
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
    from bench_plan_cache import bench_cases
    return bench_cases()


def test_exhaustive_bit_identical_on_fig16():
    """Default-enumerator plans on Q3–Q6 match the pre-refactor golden
    explains and costs byte for byte."""
    for name, catalog, query in _fig16_cases():
        plan = Optimizer(catalog).optimize(query)
        golden = GOLDEN["fig16"][name]
        assert plan.explain() == golden["explain"], name
        assert plan.total_cost == golden["cost"], name


def test_exhaustive_bit_identical_on_fuzz_corpus():
    """Plan explains over the 40-seed fuzz corpus (parallelism 1 and 4)
    hash to the pre-refactor golden digest."""
    import test_plan_fuzz as fuzz
    h = hashlib.sha256()
    for seed in range(GOLDEN["fuzz"]["seeds"]):
        rng = random.Random(seed)
        catalog = fuzz.random_catalog(rng)
        query = fuzz.random_query(rng, catalog)
        session = QuerySession(catalog)
        for parallelism in (1, 4):
            plan = session.prepare(query, parallelism=parallelism).plan
            h.update(plan.explain().encode())
    assert h.hexdigest() == GOLDEN["fuzz"]["sha256"]


# -- registry and pre-check --------------------------------------------------------------
def test_registry_and_salts():
    assert set(ENUMERATORS) == {"exhaustive", "simpli-squared", "greedy-m2m"}
    # The default enumerator salts with the empty string so every
    # pre-pipeline cache fingerprint stays valid.
    assert ExhaustiveEnumerator().cache_salt == ""
    assert SimpliSquaredEnumerator().cache_salt == "simpli-squared"
    assert GreedyManyToManyEnumerator().cache_salt == "greedy-m2m"
    inst = SimpliSquaredEnumerator()
    assert make_enumerator(inst) is inst
    assert isinstance(make_enumerator("greedy-m2m"), GreedyManyToManyEnumerator)


def test_unknown_enumerator_fails_pre_check():
    with pytest.raises(ValueError, match="exhaustive"):
        make_enumerator("nope")
    catalog = trading_stats_catalog()
    with pytest.raises(PreCheckError, match="nope"):
        Optimizer(catalog, join_enumerator="nope")
    with pytest.raises(PreCheckError):
        Optimizer(catalog, parallelism=0)


# -- region rewriting --------------------------------------------------------------------
def test_rewrite_bails_on_small_and_outer_regions():
    """Regions under three leaves and outer-join boundaries are left
    exactly as written."""
    catalog = many_join_catalog()
    enum = SimpliSquaredEnumerator()
    two_way = Query.table("l0").join("l1", on=[("l0_a", "l1_a")]).expr
    assert list(enum.candidate_trees(catalog, two_way)) == [two_way]
    outer = (Query.table("l0")
             .join("l1", on=[("l0_a", "l1_a")], how="full")
             .join("l2", on=[("l1_b", "l2_a")], how="full")).expr
    assert list(enum.candidate_trees(catalog, outer)) == [outer]


@pytest.mark.parametrize("name", ["simpli-squared", "greedy-m2m"])
def test_rewrite_preserves_tables_and_schema(name):
    """The many-join region is actually reordered, and the rewritten
    tree reads the same tables and exposes the same output columns in
    the same order (a Project restores the as-written column order)."""
    catalog = many_join_catalog()
    root = many_join_query().expr
    enum = make_enumerator(name)
    trees = list(enum.candidate_trees(catalog, root))
    assert len(trees) == 1 and trees[0] != root
    annotator = Annotator(catalog, root)
    rewritten_annotator = Annotator(catalog, trees[0])
    assert (rewritten_annotator.schema_of(trees[0]).names
            == annotator.schema_of(root).names)


def test_reordered_plan_not_worse_on_many_join():
    catalog = many_join_catalog()
    query = many_join_query()
    exhaustive_cost = Optimizer(catalog).optimize(query).total_cost
    for name in ("simpli-squared", "greedy-m2m"):
        cost = Optimizer(catalog, join_enumerator=name) \
            .optimize(query).total_cost
        assert cost <= exhaustive_cost * 1.001, name


def test_simpli_squared_searches_fewer_goals_under_pyro_e():
    """The benchmark gate's core claim, pinned as a unit test: committing
    to the size-ordered left-deep tree avoids the five-attribute bridge
    join's interesting-order explosion under exhaustive PYRO-E."""
    catalog = many_join_catalog()
    query = many_join_query()
    goals = {}
    for name in ("exhaustive", "simpli-squared"):
        optimizer = Optimizer(catalog, strategy="pyro-e",
                              join_enumerator=name)
        optimizer.optimize(query)
        goals[name] = optimizer.last_telemetry["goals_examined"]
    assert goals["exhaustive"] >= 5 * goals["simpli-squared"], goals


# -- cache salting -----------------------------------------------------------------------
def test_enumerators_never_share_a_cache_entry():
    """Two sessions over one shared cache with different enumerators must
    each optimize: a plan cached under one enumerator is unreachable
    from the other (fingerprints carry the enumerator salt)."""
    catalog = many_join_catalog()
    query = many_join_query()
    cache = PlanCache(capacity=16)
    exhaustive = QuerySession(catalog, cache=cache)
    simpli = QuerySession(catalog, cache=cache,
                          join_enumerator="simpli-squared")
    plan_a = exhaustive.prepare(query).plan
    plan_b = simpli.prepare(query).plan
    assert exhaustive.metrics.optimizations == 1
    assert simpli.metrics.optimizations == 1      # no cross-enumerator hit
    assert cache.stats.hits == 0
    assert len(cache) == 2
    assert plan_a.explain() != plan_b.explain()
    # Same-enumerator re-prepare still hits.
    simpli.prepare(query)
    assert cache.stats.hits == 1
    assert simpli.metrics.optimizations == 1


def test_exhaustive_fingerprint_is_unsalted():
    """The default enumerator's fingerprints carry no ``#j`` salt, so
    caches populated before the pipeline refactor stay warm."""
    catalog = trading_stats_catalog()
    session = QuerySession(catalog)
    prepared = session.prepare(query5())
    assert "#j" not in prepared.fingerprint
    salted = QuerySession(catalog, join_enumerator="greedy-m2m")
    assert "#jgreedy-m2m" in salted.prepare(query5()).fingerprint


# -- pipeline reuse across optimize / refine / cost_of -----------------------------------
class _CountingEnumerator(ExhaustiveEnumerator):
    def __init__(self):
        self.calls = 0

    def candidate_trees(self, catalog, expr):
        self.calls += 1
        return [expr]


def test_pipeline_reused_across_optimize_refine_and_cost_of():
    """`Optimizer` builds its pipeline once: refinement and ``cost_of``
    see the exact enumerator instance `optimize` used (the historical
    bug was `_config_for` rebuilding a default config)."""
    catalog = trading_stats_catalog()
    enum = _CountingEnumerator()
    optimizer = Optimizer(catalog, join_enumerator=enum)
    assert optimizer.pipeline.enumerator is enum
    # with_parallelism must share the enumerator, not rebuild one.
    assert optimizer._pipeline_for(4).enumerator is enum
    assert optimizer._config_for(4).parallelism == 4
    optimizer.optimize(query5())
    # Refinement re-searches the chosen tree without re-enumerating:
    # exactly one candidate_trees call per optimize().
    assert enum.calls == 1
    optimizer.cost_of(query5())
    assert enum.calls == 2
    assert optimizer.pipeline.enumerator is enum


def test_pipeline_with_parallelism_identity():
    catalog = trading_stats_catalog()
    optimizer = Optimizer(catalog)
    pipeline = optimizer.pipeline
    assert pipeline.with_parallelism(None) is pipeline
    assert pipeline.with_parallelism(pipeline.config.parallelism) is pipeline
    wide = pipeline.with_parallelism(4)
    assert wide is not pipeline
    assert wide.strategy is pipeline.strategy
    assert wide.enumerator is pipeline.enumerator
    assert isinstance(pipeline, OptimizationPipeline)


# -- telemetry ---------------------------------------------------------------------------
def test_session_stats_surface_stage_telemetry():
    catalog = many_join_catalog()
    session = QuerySession(catalog, join_enumerator="simpli-squared")
    session.prepare(many_join_query())
    stats = session.stats()
    assert stats["join_enumerator"] == "simpli-squared"
    assert stats["join_order_candidates"] >= 1
    assert stats["enumerator_seconds"] > 0.0
    assert stats["goals_examined"] > 0
    assert stats["memo_hits"] >= 0
    assert stats["failure_memo_hits"] >= 0
    # A cache hit must not re-accumulate optimizer telemetry.
    goals = stats["goals_examined"]
    session.prepare(many_join_query())
    assert session.stats()["goals_examined"] == goals


def test_server_stats_aggregate_stage_telemetry():
    """New SessionMetrics fields must flow through the serving tier's
    cross-session aggregation (QueryServer.stats iterates the dataclass
    fields, so this is a canary against field-list drift)."""
    rng = random.Random(7)
    from repro.storage import Catalog, Schema, SystemParameters
    catalog = Catalog(SystemParameters())
    schema = Schema.of(("a", "int", 8), ("b", "int", 8))
    catalog.create_table("t", schema,
                         rows=[(rng.randrange(9), rng.randrange(9))
                               for _ in range(200)])
    server = QueryServer(catalog, join_enumerator="greedy-m2m")
    try:
        server.execute(Query.table("t").order_by("b", "a"))
        stats = server.stats()
        assert stats["goals_examined"] > 0
        assert stats["join_order_candidates"] >= 1
        assert stats["enumerator_seconds"] >= 0.0
    finally:
        server.close()
