"""Cost model tests: the coe() formulas of Section 3.2 and operator costs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sort_order import AttributeEquivalence, EMPTY_ORDER, SortOrder
from repro.optimizer.cost import CostModel
from repro.storage import Schema, StatsView, SystemParameters

SCHEMA = Schema.of(("a", "int", 40), ("b", "int", 40), ("c", "int", 20))


def make(params=None, eq=None):
    return CostModel(params or SystemParameters(), eq)


def stats(n, distinct=None):
    return StatsView(SCHEMA, n, distinct or {})


class TestFullSortFormula:
    def test_in_memory_is_cpu_only(self):
        cm = make(SystemParameters(sort_memory_blocks=10_000))
        s = stats(10_000, {"a": 100})
        cost = cm.coe(s, EMPTY_ORDER, SortOrder(["a"]))
        assert cost == pytest.approx(cm.cpu_sort(10_000))

    def test_external_uses_paper_formula(self):
        params = SystemParameters(sort_memory_blocks=10)
        cm = make(params)
        s = stats(100_000)           # 100000 rows × 100B = 2442 blocks
        B = s.B(params.block_size)
        cost = cm.coe(s, EMPTY_ORDER, SortOrder(["a"]))
        passes = math.ceil(math.log(B / 10, 9))
        expected_io = B * (2 * passes + 1)
        assert cost >= expected_io
        assert cost == pytest.approx(expected_io + cm.cpu_sort(100_000))

    def test_zero_when_satisfied(self):
        cm = make()
        s = stats(1000)
        assert cm.coe(s, SortOrder(["a", "b"]), SortOrder(["a"])) == 0.0
        assert cm.coe(s, SortOrder(["a"]), EMPTY_ORDER) == 0.0

    def test_zero_rows(self):
        assert make().coe(stats(0), EMPTY_ORDER, SortOrder(["a"])) == 0.0


class TestPartialSortFormula:
    def test_segments_divide_cost(self):
        """coe(e, o1, o2) = D · coe(segment, ε, or)."""
        params = SystemParameters(sort_memory_blocks=10)
        cm = make(params)
        s = stats(100_000, {"a": 1000})
        partial = cm.coe(s, SortOrder(["a"]), SortOrder(["a", "b"]))
        full = cm.coe(s, EMPTY_ORDER, SortOrder(["a", "b"]))
        # 1000 segments of 100 rows each fit in memory → CPU only.
        assert partial < full / 10
        assert partial == pytest.approx(1000 * cm.full_sort(100, 1.0))

    def test_partial_disabled_falls_back_to_full(self):
        cm = make()
        s = stats(50_000, {"a": 100})
        full = cm.coe(s, EMPTY_ORDER, SortOrder(["a", "b"]))
        disabled = cm.coe(s, SortOrder(["a"]), SortOrder(["a", "b"]),
                          partial_enabled=False)
        assert disabled == pytest.approx(full)

    def test_equivalence_aware_prefix(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("a", "x")
        cm = make(eq=eq)
        s = stats(10_000, {"a": 100})
        via_eq = cm.coe(s, SortOrder(["x"]), SortOrder(["a", "b"]))
        direct = cm.coe(s, SortOrder(["a"]), SortOrder(["a", "b"]))
        assert via_eq == pytest.approx(direct)

    @given(st.integers(1, 6), st.integers(10, 200_000))
    @settings(max_examples=60, deadline=None)
    def test_more_segments_never_costlier(self, exp, n):
        """Deeper known prefixes (more, smaller segments) can only help."""
        cm = make(SystemParameters(sort_memory_blocks=50))
        few = stats(n, {"a": 10})
        many = stats(n, {"a": 10 ** exp})
        c_few = cm.coe(few, SortOrder(["a"]), SortOrder(["a", "b"]))
        c_many = cm.coe(many, SortOrder(["a"]), SortOrder(["a", "b"]))
        assert c_many <= c_few + 1e-6

    @given(st.integers(2, 500_000))
    @settings(max_examples=60, deadline=None)
    def test_partial_never_beats_free_and_never_exceeds_full(self, n):
        cm = make(SystemParameters(sort_memory_blocks=100))
        s = stats(n, {"a": max(2, n // 50)})
        partial = cm.coe(s, SortOrder(["a"]), SortOrder(["a", "b"]))
        full = cm.coe(s, EMPTY_ORDER, SortOrder(["a", "b"]))
        assert 0 <= partial <= full * 1.01


class TestOperatorCosts:
    def test_scan_is_blocks(self):
        cm = make()
        s = stats(10_000)
        assert cm.table_scan(s) == s.B(4096)

    def test_index_scan_uses_entry_width(self):
        cm = make()
        assert cm.index_scan(10_000, 20) < cm.index_scan(10_000, 200)

    def test_hash_join_spill_penalty(self):
        params = SystemParameters(sort_memory_blocks=5)
        cm = make(params)
        big = stats(100_000)
        small = stats(100)
        assert cm.hash_join(big, small, 100) > \
            cm.hash_join(small, big, 100)  # build side drives the spill

    def test_merge_join_linear(self):
        cm = make()
        a, b = stats(1000), stats(2000)
        assert cm.merge_join(a, b, 100) == pytest.approx(
            cm.cpu(1000 + 2000 + 100))

    def test_nested_loops_quadratic_io(self):
        params = SystemParameters(block_size=4096, sort_memory_blocks=10)
        cm = make(params)
        outer, inner = stats(100_000), stats(50_000)
        assert cm.nested_loops_join(outer, inner, 10) > \
            cm.merge_join(outer, inner, 10) * 10

    def test_hash_aggregate_spill(self):
        params = SystemParameters(sort_memory_blocks=2)
        cm = make(params)
        in_stats, out_stats = stats(100_000), stats(90_000)
        spilled = cm.hash_aggregate(in_stats, out_stats)
        fit = CostModel(SystemParameters()).hash_aggregate(in_stats, out_stats)
        assert spilled > fit

    def test_cpu_translation(self):
        cm = make(SystemParameters(cpu_comparisons_per_io=100.0))
        assert cm.cpu(1000) == 10.0

    def test_cpu_sort_segments(self):
        cm = make()
        assert cm.cpu_sort(1000, segments=100) < cm.cpu_sort(1000, segments=1)
        assert cm.cpu_sort(1) == 0.0


class TestShardedFormulas:
    """The closed-form sharded formulas must equal the per-node pricing
    the volcano builders materialise plans with — the drift guard for the
    two statements of the same math."""

    def test_sharded_coe_measured_equals_per_shard_sum(self):
        cm = make()
        views = [stats(n) for n in (900, 500, 400, 200)]
        whole = stats(2000)
        target = SortOrder(["a"])
        per_shard = sum(cm.coe(v, EMPTY_ORDER, target) for v in views)
        assert cm.sharded_coe(whole, EMPTY_ORDER, target, 4,
                              shard_stats=views) == pytest.approx(
            per_shard + cm.merge_exchange(2000, 4))
        # Disjoint partitions drop the merge term entirely.
        assert cm.sharded_coe(whole, EMPTY_ORDER, target, 4,
                              shard_stats=views, disjoint_merge=True) == \
            pytest.approx(per_shard)

    def test_sharded_join_equals_per_shard_merge_joins(self):
        cm = make()
        views = [stats(n) for n in (1000, 600, 300, 100)]
        right = stats(50)
        out_rows = 800.0
        total = sum(v.N for v in views)
        expected = sum(cm.merge_join(v, right, out_rows * v.N / total)
                       for v in views) + cm.merge_exchange(out_rows, 4)
        assert cm.sharded_join(views, right, out_rows) == pytest.approx(expected)
        assert cm.sharded_join(views, right, out_rows, disjoint_merge=True) \
            == pytest.approx(expected - cm.merge_exchange(out_rows, 4))

    def test_sharded_agg_equals_per_shard_aggs_plus_combine(self):
        cm = make()
        views = [stats(n, {"a": d}) for n, d in
                 ((1000, 10), (600, 40), (300, 300), (100, 5))]
        partial_rows = sum(v.distinct_of_set(["a"]) for v in views)
        expected = (sum(cm.sort_aggregate(v) for v in views)
                    + cm.merge_exchange(partial_rows, 4)
                    + cm.combine_groups(partial_rows))
        assert cm.sharded_agg(views, ["a"]) == pytest.approx(expected)

    def test_sharded_dedup_equals_per_shard_dedups_plus_final(self):
        cm = make()
        views = [stats(n, {"a": d, "b": 5, "c": 2}) for n, d in
                 ((1000, 10), (600, 40), (300, 300), (100, 5))]
        columns = ["a", "b", "c"]
        partial_rows = sum(v.distinct_of_set(columns) for v in views)
        expected = (sum(cm.dedup(v) for v in views)
                    + cm.merge_exchange(partial_rows, 4)
                    + cm.cpu(partial_rows))
        assert cm.sharded_dedup(views, columns) == pytest.approx(expected)
        # Disjoint partitions drop the merge term entirely.
        assert cm.sharded_dedup(views, columns, disjoint_merge=True) == \
            pytest.approx(expected - cm.merge_exchange(partial_rows, 4))
