"""Plan lowering, I/O accounting, and paper-claim integration tests."""

import pytest

from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.engine import ExecutionContext, operators_from_plan
from repro.engine.context import ComparisonCounter, CountedKey, IOAccountant
from repro.optimizer import Optimizer
from repro.optimizer.manual import PlanBuilder
from repro.storage import Catalog, Schema, SystemParameters


class TestIOAccounting:
    def test_counters(self):
        io = IOAccountant()
        io.read(5)
        io.write(3)
        io.read(2, category="run")
        assert io.blocks_read == 7
        assert io.blocks_written == 3
        assert io.scan_blocks == 5
        assert io.run_blocks_read == 2
        assert io.total_blocks == 10

    def test_negative_rejected(self):
        io = IOAccountant()
        with pytest.raises(ValueError):
            io.read(-1)

    def test_snapshot_isolated(self):
        io = IOAccountant()
        io.read(1)
        snap = io.snapshot()
        io.read(1)
        assert snap.blocks_read == 1 and io.blocks_read == 2

    def test_charged_stream_per_block(self):
        ctx = ExecutionContext(params=SystemParameters(block_size=100))
        rows = [(i,) for i in range(25)]
        out = list(ctx.charged_stream(rows, row_bytes=10))  # 10 rows/block
        assert out == rows
        assert ctx.io.blocks_read == 3  # ceil(25/10)

    def test_cost_units_combines_io_and_cpu(self):
        params = SystemParameters(cpu_comparisons_per_io=100)
        ctx = ExecutionContext(params=params)
        ctx.io.read(10)
        ctx.comparisons.add(500)
        assert ctx.cost_units() == pytest.approx(15.0)

    def test_counted_key_counts(self):
        counter = ComparisonCounter()
        a, b = CountedKey((1,), counter), CountedKey((2,), counter)
        assert a < b
        assert a != b
        assert counter.value == 2

    def test_reset(self):
        ctx = ExecutionContext()
        ctx.io.read(5)
        ctx.comparisons.add(5)
        ctx.reset()
        assert ctx.cost_units() == 0


class TestLowering:
    @pytest.fixture
    def catalog(self, rng):
        cat = Catalog()
        schema = Schema.of(("a", "int", 8), ("b", "int", 8), ("v", "int", 8))
        rows = [(rng.randrange(5), rng.randrange(5), i) for i in range(100)]
        cat.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["a"]))
        cat.create_index("t_ab", "t", SortOrder(["a", "b"]), included=["v"])
        return cat

    def test_every_builder_op_lowers_and_runs(self, catalog):
        from repro.expr import col
        from repro.expr.aggregates import count_star
        b = PlanBuilder(catalog)
        scan = b.table_scan("t")
        plans = {
            "scan": scan,
            "cov": b.covering_scan("t", "t_ab"),
            "clustering": b.clustering_scan("t"),
            "filter": b.filter(scan, col("a").eq(1)),
            "project": b.project(scan, ["b", "a"]),
            "compute": b.compute(scan, [("ab", col("a") + col("b"))]),
            "sort": b.sort(scan, SortOrder(["b"])),
            "partial": b.sort(scan, SortOrder(["a", "b"])),
            "agg": b.sort_aggregate(b.sort(scan, SortOrder(["a"])),
                                    SortOrder(["a"]), [count_star("n")]),
            "hashagg": b.hash_aggregate(scan, ["a"], [count_star("n")]),
            "limit": b.limit(scan, 3),
            "union_all": b.union_all(scan, scan),
        }
        for name, plan in plans.items():
            op = operators_from_plan(plan, catalog)
            rows = list(op.execute(ExecutionContext(catalog,
                                                    check_orders=True)))
            assert isinstance(rows, list), name

    def test_partial_sort_plan_requires_prefix(self, catalog):
        from repro.optimizer.plans import make_plan
        b = PlanBuilder(catalog)
        scan = b.table_scan("t")
        bogus = make_plan("PartialSort", scan.schema, SortOrder(["b"]),
                          scan.stats, 1.0, [scan], prefix=EMPTY_ORDER)
        with pytest.raises(ValueError):
            operators_from_plan(bogus, catalog)

    def test_unknown_op_rejected(self, catalog):
        from repro.optimizer.plans import make_plan
        b = PlanBuilder(catalog)
        scan = b.table_scan("t")
        bogus = make_plan("Teleport", scan.schema, EMPTY_ORDER, scan.stats, 0.0)
        with pytest.raises(ValueError):
            operators_from_plan(bogus, catalog)

    def test_merge_join_lowering_respects_permutation(self, catalog):
        cat = catalog
        cat.create_table(
            "u", Schema.of(("x", "int", 8), ("y", "int", 8)),
            rows=[(i % 5, i % 5) for i in range(50)])
        b = PlanBuilder(cat)
        join = b.merge_join(b.table_scan("t"), b.table_scan("u"),
                            [("b", "y"), ("a", "x")])
        rows = list(operators_from_plan(join, cat).execute(
            ExecutionContext(cat, check_orders=True)))
        expected = [l + r for l in cat.table("t").rows
                    for r in cat.table("u").rows
                    if l[1] == r[1] and l[0] == r[0]]
        assert sorted(rows) == sorted(expected)

    def test_plan_signature_and_describe(self, catalog):
        b = PlanBuilder(catalog)
        plan = b.sort(b.table_scan("t"), SortOrder(["a", "b"]))
        assert "PartialSort" in plan.signature()
        assert plan.describe()
        assert plan.arg("missing", 42) == 42


class TestPaperClaims:
    """Integration checks of headline statements in the paper's text."""

    def test_optimality_with_exhaustive_contains_required_order(self):
        """Appendix A's flavour: the PYRO-E optimum is matched by PYRO-O's
        candidate set I(e, o) on a catalog where favorable orders exist."""
        cat = Catalog()
        cat.create_table("l", Schema.of(("a", "int", 8), ("b", "int", 8),
                                        ("c", "int", 8), ("p", "str", 72)),
                         stats=__import__("repro.storage", fromlist=["TableStats"]
                                          ).TableStats(500_000, {"a": 20, "b": 1000,
                                                                 "c": 1000}),
                         clustering_order=SortOrder(["a", "b"]))
        cat.create_table("r", Schema.of(("x", "int", 8), ("y", "int", 8),
                                        ("z", "int", 8), ("q", "str", 72)),
                         stats=__import__("repro.storage", fromlist=["TableStats"]
                                          ).TableStats(500_000, {"x": 20, "y": 1000,
                                                                 "z": 1000}))
        from repro.logical import Query
        q = Query.table("l").join("r", on=[("a", "x"), ("b", "y"), ("c", "z")])
        for required in (EMPTY_ORDER, SortOrder(["c", "a"])):
            e_cost = Optimizer(cat, strategy="pyro-e", refine=False,
                               enable_hash_join=False).optimize(
                q, required_order=required).total_cost
            o_cost = Optimizer(cat, strategy="pyro-o", refine=False,
                               enable_hash_join=False).optimize(
                q, required_order=required).total_cost
            assert o_cost == pytest.approx(e_cost, rel=1e-9), required

    def test_mrs_comparison_complexity(self):
        """§3.1 benefit 3: sorting k segments of n/k elements costs
        O(n log(n/k)) comparisons — verify the measured trend."""
        import math
        import random
        from repro.engine import sort_stream
        schema = Schema.of(("s", "int", 8), ("v", "int", 8))
        rng = random.Random(0)
        n = 20_000
        measured = {}
        for k in (10, 100, 1000):
            rows = sorted(((i % k, rng.randrange(10**6)) for i in range(n)))
            ctx = ExecutionContext()
            list(sort_stream(rows, schema, SortOrder(["s", "v"]), ctx,
                             known_prefix=SortOrder(["s"])))
            measured[k] = ctx.comparisons.value
        # More segments → fewer comparisons, roughly n·log2(n/k) shaped.
        assert measured[10] > measured[100] > measured[1000]
        for k in (10, 100, 1000):
            bound = n * math.log2(n / k) * 2.5 + 3 * n
            assert measured[k] < bound, (k, measured[k], bound)

    def test_interesting_order_count_is_index_bound(self):
        """§6.3: "the number of interesting orders we try at each join …
        is of the order of the number of indices useful for the query"."""
        from repro.core.favorable import FavorableOrders
        from repro.core.interesting import FavorableOrderStrategy, OrderContext
        from repro.logical import Annotator, Query, query_fds
        from repro.workloads import add_query3_indexes, tpch_stats_catalog
        cat = tpch_stats_catalog()
        add_query3_indexes(cat)
        q = Query.table("partsupp").join(
            "lineitem", on=[("ps_suppkey", "l_suppkey"),
                            ("ps_partkey", "l_partkey")])
        ann = Annotator(cat, q.expr)
        octx = OrderContext(FavorableOrders(cat, ann),
                            query_fds(cat, q.expr), ann.eq)
        orders = FavorableOrderStrategy().join_orders(octx, q.expr, EMPTY_ORDER)
        assert 1 <= len(orders) <= 3  # clustering + covering indexes only
