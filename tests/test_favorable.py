"""Favorable-order (afm) computation tests, per Section 5.1.2's rules."""

import pytest

from repro.core.favorable import FavorableOrders, ford_min
from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.expr import col
from repro.expr.aggregates import count_star
from repro.logical import Annotator, Query
from repro.storage import Catalog, Schema, TableStats


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table(
        "r", Schema.of(("r_a", "int", 8), ("r_b", "int", 8), ("r_c", "int", 8)),
        stats=TableStats(100_000, {"r_a": 50, "r_b": 1000}),
        clustering_order=SortOrder(["r_a"]))
    cat.create_index("r_bc", "r", SortOrder(["r_b", "r_c"]), included=["r_a"])
    cat.create_table(
        "s", Schema.of(("s_a", "int", 8), ("s_b", "int", 8), ("s_d", "int", 8)),
        stats=TableStats(50_000, {"s_a": 50, "s_b": 1000}),
        clustering_order=SortOrder(["s_b"]))
    return cat


def favorable_for(catalog, query):
    ann = Annotator(catalog, query.expr)
    return FavorableOrders(catalog, ann), ann


class TestBaseRelation:
    def test_clustering_and_covering_index(self, catalog):
        q = Query.table("r")
        fav, _ = favorable_for(catalog, q)
        afm = fav.afm(q.expr)
        assert SortOrder(["r_a"]) in afm            # clustering order
        assert SortOrder(["r_b", "r_c"]) in afm     # covering index key

    def test_non_covering_index_excluded(self, catalog):
        # Make the index non-covering by referencing a column it lacks…
        # r_bc includes all three columns, so build a query on a table
        # where the index misses a used column.
        cat = Catalog()
        cat.create_table("t", Schema.of("a", "b", "c"),
                         stats=TableStats(1000, {}))
        cat.create_index("t_a", "t", SortOrder(["a"]))  # covers only {a}
        q = Query.table("t").select("a", "b")
        fav, _ = favorable_for(cat, q)
        assert SortOrder(["a"]) not in fav.afm(q.expr.child)

    def test_no_orders_for_heap_table(self):
        cat = Catalog()
        cat.create_table("h", Schema.of("a"), stats=TableStats(10, {}))
        q = Query.table("h")
        fav, _ = favorable_for(cat, q)
        assert fav.afm(q.expr) == ()


class TestSelectProject:
    def test_select_passthrough(self, catalog):
        q = Query.table("r").where(col("r_a").eq(1))
        fav, _ = favorable_for(catalog, q)
        assert fav.afm(q.expr) == fav.afm(q.expr.children[0])

    def test_project_prefix(self, catalog):
        q = Query.table("r").select("r_b", "r_a")
        fav, _ = favorable_for(catalog, q)
        afm = fav.afm(q.expr)
        # (r_b, r_c) truncates to (r_b); (r_a) survives.
        assert SortOrder(["r_a"]) in afm
        assert SortOrder(["r_b"]) in afm
        assert SortOrder(["r_b", "r_c"]) not in afm


class TestJoin:
    def test_join_extends_prefixes_over_attrs(self, catalog):
        q = Query.table("r").join("s", on=[("r_a", "s_a"), ("r_b", "s_b")])
        fav, _ = favorable_for(catalog, q)
        afm = fav.afm(q.expr)
        # clustering (r_a) → (r_a, r_b); s clustering (s_b) → (s_b ~ r_b, r_a)
        assert any(o.as_tuple == ("r_a", "r_b") for o in afm)
        assert any(o.as_tuple[0] in ("s_b", "r_b") and len(o) >= 2 for o in afm)

    def test_join_keeps_input_orders(self, catalog):
        q = Query.table("r").join("s", on=[("r_a", "s_a")])
        fav, _ = favorable_for(catalog, q)
        afm = fav.afm(q.expr)
        assert SortOrder(["r_a"]) in afm           # NL join propagates outer
        assert SortOrder(["r_b", "r_c"]) in afm

    def test_afm_on_restriction(self, catalog):
        q = Query.table("r").join("s", on=[("r_a", "s_a"), ("r_b", "s_b")])
        fav, _ = favorable_for(catalog, q)
        restricted = fav.afm_on(q.expr.left, {"r_a", "r_b", "s_a", "s_b"})
        assert SortOrder(["r_a"]) in restricted
        for o in restricted:
            assert o.attrs() <= {"r_a", "r_b"}


class TestGroupBy:
    def test_group_extends_over_group_columns(self, catalog):
        q = Query.table("r").group_by(["r_b", "r_a"], count_star("n"))
        fav, _ = favorable_for(catalog, q)
        afm = fav.afm(q.expr)
        # Clustering (r_a) prefix extended over {r_a, r_b}.
        assert any(o.as_tuple == ("r_a", "r_b") for o in afm)
        # Arbitrary permutation from the ε seed also present.
        assert all(o.attrs() <= {"r_a", "r_b"} for o in afm)


class TestMemoisationAndCaps:
    def test_memoised(self, catalog):
        q = Query.table("r")
        fav, _ = favorable_for(catalog, q)
        assert fav.afm(q.expr) is fav.afm(q.expr)

    def test_dedupe(self, catalog):
        q = Query.table("r").where(col("r_a").eq(1)).where(col("r_b").eq(2))
        fav, _ = favorable_for(catalog, q)
        afm = fav.afm(q.expr)
        assert len(afm) == len(set(afm))


class TestFordMin:
    def test_prefix_pruning(self):
        # cbp values: obtaining (a) costs 10; (a,b) costs 10 + enforcement 5.
        orders = {SortOrder(["a"]): 10.0, SortOrder(["a", "b"]): 15.0}
        kept = ford_min(orders, coe_from=lambda o1, o2: 5.0)
        assert kept == {SortOrder(["a"])}

    def test_subsuming_order_pruned_at_equal_cost(self):
        # (a,b) costs the same as (a): keep the longer one only.
        orders = {SortOrder(["a"]): 10.0, SortOrder(["a", "b"]): 10.0}
        kept = ford_min(orders, coe_from=lambda o1, o2: 100.0)
        assert kept == {SortOrder(["a", "b"])}

    def test_independent_orders_kept(self):
        orders = {SortOrder(["a"]): 10.0, SortOrder(["b"]): 12.0}
        kept = ford_min(orders, coe_from=lambda o1, o2: 1.0)
        assert kept == set(orders)
