"""Serving layer: fingerprints, plan cache, sessions, parameter binding."""

import pytest

from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.logical import Query, canonical_text, logical_fingerprint
from repro.optimizer import Optimizer
from repro.service import PlanCache, PreparedQuery, QuerySession
from repro.storage import Catalog, Schema, TableStats


# -- fingerprints ------------------------------------------------------------------------
class TestFingerprint:
    def q(self, threshold=3):
        return (Query.table("left")
                .where(col("a").lt(threshold))
                .select("a", "b")
                .order_by("a"))

    def test_structurally_identical_queries_share_fingerprint(self):
        assert logical_fingerprint(self.q().expr) == \
            logical_fingerprint(self.q().expr)

    def test_different_constant_changes_fingerprint(self):
        assert logical_fingerprint(self.q(3).expr) != \
            logical_fingerprint(self.q(4).expr)

    def test_required_order_is_part_of_the_key(self):
        e = Query.table("left").expr
        assert logical_fingerprint(e, SortOrder(["a"])) != \
            logical_fingerprint(e, SortOrder(["b"]))

    def test_parameterized_queries_share_fingerprint(self):
        def q():
            return Query.table("left").where(col("a").eq(param("pa"))).expr
        assert logical_fingerprint(q()) == logical_fingerprint(q())
        assert "param:pa" in canonical_text(q())

    def test_type_tagging_prevents_const_col_collisions(self):
        a = Query.table("t").where(col("x").eq("y")).expr
        b = Query.table("t").where(col("x").eq(col("y"))).expr
        assert logical_fingerprint(a) != logical_fingerprint(b)


# -- the cache itself --------------------------------------------------------------------
class TestPlanCache:
    def test_hit_miss_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k", stats_version=1) is None
        cache.put("k", "plan", stats_version=1)
        assert cache.get("k", stats_version=1) == "plan"
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_stats_version_invalidates(self):
        cache = PlanCache(capacity=4)
        cache.put("k", "plan", stats_version=1)
        assert cache.get("k", stats_version=2) is None
        assert cache.stats.invalidations == 1
        assert "k" not in cache

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1, 0)
        cache.put("b", 2, 0)
        cache.get("a", 0)  # refresh a
        cache.put("c", 3, 0)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_all(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1, 0)
        cache.put("b", 2, 0)
        assert cache.invalidate_all() == 2
        assert len(cache) == 0


# -- the session -------------------------------------------------------------------------
class TestQuerySession:
    def query(self):
        return (Query.table("left")
                .join("right", on=[("a", "c"), ("b", "d")])
                .select("a", "b", "x", "y")
                .order_by("a", "b"))

    def test_second_execute_hits_cache(self, small_catalog):
        session = QuerySession(small_catalog)
        first = session.execute(self.query())
        assert session.metrics.optimizations == 1
        assert session.cache.stats.hits == 0
        second = session.execute(self.query())
        assert second == first
        # The observable part of the acceptance criterion: optimization
        # skipped, served from the plan cache.
        assert session.metrics.optimizations == 1
        assert session.cache.stats.hits == 1

    def test_cached_plan_identical_to_uncached(self, small_catalog):
        session = QuerySession(small_catalog)
        cached = session.prepare(self.query())
        again = session.prepare(self.query())
        assert again.from_cache and not cached.from_cache
        direct = Optimizer(small_catalog).optimize(self.query())
        assert again.plan.signature() == direct.signature()
        assert again.total_cost == pytest.approx(direct.total_cost)

    def test_stats_refresh_invalidates(self, small_catalog):
        session = QuerySession(small_catalog)
        session.execute(self.query())
        small_catalog.refresh_stats("left")
        session.execute(self.query())
        assert session.cache.stats.invalidations == 1
        assert session.metrics.optimizations == 2

    def test_new_index_invalidates(self, small_catalog):
        session = QuerySession(small_catalog)
        session.prepare(self.query())
        small_catalog.create_index("right_cd", "right",
                                   SortOrder(["c", "d"]), included=["y"])
        prepared = session.prepare(self.query())
        assert not prepared.from_cache
        assert session.cache.stats.invalidations == 1

    def test_parameterized_execution(self, small_catalog):
        template = (Query.table("left")
                    .where(col("a").eq(param("pa")))
                    .select("a", "b", "x")
                    .order_by("b"))
        session = QuerySession(small_catalog)
        prepared = session.prepare(template)
        assert prepared.param_names == frozenset({"pa"})
        rows = small_catalog.table("left").rows
        for value in (3, 7):
            got = prepared.execute(pa=value)
            expected = sorted(((r[0], r[1], r[2]) for r in rows
                               if r[0] == value), key=lambda r: r[1])
            assert sorted(got) == sorted(expected)
            assert [r[1] for r in got] == sorted(r[1] for r in got)
        # Same template re-prepared: served from cache for any binding.
        assert session.prepare(template).from_cache
        assert session.metrics.optimizations == 1

    def test_missing_binding_raises(self, small_catalog):
        template = Query.table("left").where(col("a").eq(param("pa")))
        prepared = QuerySession(small_catalog).prepare(template)
        with pytest.raises(KeyError, match="pa"):
            prepared.execute()
        with pytest.raises(KeyError, match="bogus"):
            prepared.execute(pa=1, bogus=2)

    def test_stats_only_catalog_can_prepare(self):
        cat = Catalog()
        cat.create_table(
            "r", Schema.of(("a", "int", 8), ("b", "int", 8)),
            stats=TableStats(1_000_000, {"a": 100, "b": 10_000}),
            clustering_order=SortOrder(["a"]))
        session = QuerySession(cat)
        cost = session.cost_of(Query.table("r").order_by("a", "b"))
        assert cost > 0
        assert session.cost_of(Query.table("r").order_by("a", "b")) == cost
        assert session.cache.stats.hits == 1

    def test_explain_and_invalidate_plans(self, small_catalog):
        session = QuerySession(small_catalog)
        text = session.explain(self.query())
        assert "cost=" in text
        assert session.invalidate_plans() == 1
        assert not session.prepare(self.query()).from_cache


# -- stats versioning ------------------------------------------------------------------
class TestStatsVersioning:
    def test_table_setter_bumps_version(self):
        cat = Catalog()
        table = cat.create_table(
            "t", Schema.of(("a", "int", 8)), stats=TableStats(10, {"a": 5}))
        v0 = cat.stats_version
        table.stats = TableStats(20, {"a": 10})
        assert table.stats_version == 1
        assert cat.stats_version == v0 + 1

    def test_update_stats_remeasures_rows(self):
        cat = Catalog()
        table = cat.create_table(
            "t", Schema.of(("a", "int", 8)), rows=[(1,), (2,), (2,)])
        table.rows.append((9,))
        measured = cat.refresh_stats("t")
        assert measured.num_rows == 4
        assert measured.distinct_of("a") == 3
        assert table.stats_version == 1

    def test_registrations_bump_version(self):
        cat = Catalog()
        v0 = cat.stats_version
        cat.create_table("t", Schema.of(("a", "int", 8)),
                         stats=TableStats(10, {"a": 5}),
                         clustering_order=SortOrder(["a"]))
        v1 = cat.stats_version
        assert v1 > v0
        cat.create_index("t_a", "t", SortOrder(["a"]))
        assert cat.stats_version > v1
