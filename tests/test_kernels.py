"""Batch kernels: NULL propagation, short-circuit parity, the kernel
cache, per-plan bundles, and the zero-recompilation serving contract."""

import pickle

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import (
    KERNELS,
    ExecutionContext,
    OperatorKernels,
    RowBatch,
    attach_plan_kernels,
    kernel_stats,
    strip_plan,
)
from repro.expr import And, Const, Or, UnboundParamError, col, param
from repro.expr.aggregates import AggSpec
from repro.logical import Query
from repro.service import QuerySession
from repro.storage import Catalog, Schema, SystemParameters

SCHEMA = Schema.of(("a", "int", 8), ("b", "int", 8), ("c", "int", 8))


def batch_eval(expr, rows):
    """Evaluate *expr* over *rows* via the whole-column kernel."""
    return list(expr.compile_batch(SCHEMA)(RowBatch(rows)))


def row_eval(expr, rows):
    """Reference: the per-row compiled closure, row by row."""
    fn = expr.compile(SCHEMA)
    return [fn(r) for r in rows]


NULLY_ROWS = [
    (1, 2, 3),
    (None, 2, 3),
    (1, None, 3),
    (None, None, None),
    (0, 0, 0),
    (-5, 7, None),
]

EXPRESSIONS = [
    col("a"),
    Const(42),
    Const(None),
    col("a") + col("b"),
    col("a") + Const(3),
    Const(3) * col("b"),
    col("a") - Const(None),
    col("a").lt(col("b")),
    col("a").ge(Const(2)),
    Const(2).lt(col("b")),
    col("a").eq(Const(None)),
    And(col("a").lt(2), col("b").ge(0)),
    Or(col("a").lt(2), col("b").ge(7)),
    Or(And(col("a").lt(2), col("b").ge(0)), col("c").eq(3)),
    col("a").eq(col("a")),
]


class TestKernelParity:
    @pytest.mark.parametrize("expr", EXPRESSIONS, ids=str)
    def test_matches_row_compile_under_nulls(self, expr):
        assert batch_eval(expr, NULLY_ROWS) == row_eval(expr, NULLY_ROWS)

    @pytest.mark.parametrize("expr", EXPRESSIONS, ids=str)
    def test_empty_and_singleton_batches(self, expr):
        assert batch_eval(expr, []) == []
        for row in NULLY_ROWS:
            assert batch_eval(expr, [row]) == row_eval(expr, [row])

    def test_conjunction_short_circuit_matches_eager(self):
        # All-False first conjunct: the selection vector empties out and
        # later conjuncts never run — the verdicts must still line up.
        expr = And(col("a").lt(-100), col("b").ge(0))
        assert batch_eval(expr, NULLY_ROWS) == row_eval(expr, NULLY_ROWS)
        # All-True first disjunct: dual case for Or.
        expr = Or(col("a").eq(col("a")), col("b").lt(0))
        assert batch_eval(expr, NULLY_ROWS) == row_eval(expr, NULLY_ROWS)

    def test_columnar_batch_input(self):
        cols = [tuple(r[i] for r in NULLY_ROWS) for i in range(3)]
        batch = RowBatch.from_columns(cols, len(NULLY_ROWS))
        expr = (col("a") + col("b")).lt(5)
        assert list(expr.compile_batch(SCHEMA)(batch)) == \
            row_eval(expr, NULLY_ROWS)

    def test_unbound_param_raises(self):
        with pytest.raises(UnboundParamError):
            col("a").lt(param("x")).compile_batch(SCHEMA)
        with pytest.raises(ValueError):  # seed-era contract: a ValueError
            col("a").lt(param("x")).compile(SCHEMA)


class TestKernelCache:
    def test_hits_and_compiles_are_counted(self):
        expr = col("a") + col("b") + Const(17)  # unlikely to collide
        KERNELS.clear()
        before = kernel_stats()
        first = KERNELS.batch_fn(expr, SCHEMA)
        second = KERNELS.batch_fn(expr, SCHEMA)
        after = kernel_stats()
        assert first is second
        assert after["kernels_compiled"] == before["kernels_compiled"] + 1
        assert after["kernel_cache_hits"] == before["kernel_cache_hits"] + 1

    def test_schema_is_part_of_the_key(self):
        other = Schema.of(("b", "int", 8), ("a", "int", 8))
        KERNELS.clear()
        fn1 = KERNELS.row_fn(col("a"), SCHEMA)
        fn2 = KERNELS.row_fn(col("a"), other)
        assert fn1((10, 20, 30)) == 10
        assert fn2((10, 20)) == 20

    def test_unhashable_expression_compiles_uncached(self):
        expr = col("a").eq(Const([1, 2]))  # list payload: unhashable
        fn = KERNELS.row_fn(expr, SCHEMA)
        assert fn(([1, 2], 0, 0)) is True


def _catalog():
    cat = Catalog(SystemParameters())
    schema = Schema.of(("k", "int", 8), ("v", "int", 8))
    rows = [(i % 7, i % 11) for i in range(300)]
    cat.create_table("t", schema, rows=rows,
                     clustering_order=SortOrder(["k"]))
    return cat


def _query():
    return (Query.table("t").where(col("v").lt(9))
            .compute(w=col("v") + 1)
            .group_by(["k"], AggSpec("sum", col("w"), "s"))
            .order_by("k"))


class TestPlanBundles:
    def test_attach_marks_expression_nodes(self):
        cat = _catalog()
        session = QuerySession(cat)
        plan = session.prepare(_query()).plan
        kinds = {p.op: p.arg("kernels") for p in plan.walk()
                 if p.op in ("Filter", "Compute", "SortAggregate",
                             "HashAggregate")}
        assert kinds, "query should lower to expression-bearing nodes"
        for op, bundle in kinds.items():
            assert isinstance(bundle, OperatorKernels), op

    def test_bundles_do_not_leak_into_explain(self):
        cat = _catalog()
        session = QuerySession(cat)
        prepared = session.prepare(_query())
        assert "kernels" not in prepared.explain().lower()
        assert "OperatorKernels" not in prepared.explain()

    def test_parameterized_nodes_stay_bundle_free(self):
        cat = _catalog()
        session = QuerySession(cat)
        q = Query.table("t").where(col("v").lt(param("cut"))).order_by("k", "v")
        prepared = session.prepare(q)
        for node in prepared.plan.walk():
            if node.op == "Filter":
                assert node.arg("kernels") is None
        # Binding compiles at execute time, same answer as a literal.
        expected = session.execute(
            Query.table("t").where(col("v").lt(5)).order_by("k", "v"))
        assert prepared.execute(cut=5) == expected

    def test_bundle_refuses_pickling_and_strip_drops_it(self):
        cat = _catalog()
        session = QuerySession(cat)
        plan = session.prepare(_query()).plan
        with pytest.raises(TypeError):
            pickle.dumps(plan)
        stripped = strip_plan(plan)
        assert all(p.arg("kernels") is None for p in stripped.walk())
        pickle.dumps(stripped)  # must not raise
        # The stripped plan still executes (kernels recompile on lowering).
        ctx = ExecutionContext(cat)
        assert stripped.execute(cat, ctx) == plan.execute(cat)

    def test_attach_is_idempotent_and_memoized(self):
        cat = _catalog()
        session = QuerySession(cat)
        plan = session.prepare(_query()).plan
        assert attach_plan_kernels(plan) is plan


class TestZeroRecompilationServing:
    def test_cached_plan_reexecution_compiles_nothing(self):
        """The acceptance pin: prepare once, then every further execute
        of the cached plan performs zero expression compilations."""
        cat = _catalog()
        session = QuerySession(cat)
        query = _query()
        first = session.execute(query)  # prepare + attach + execute
        baseline = kernel_stats()["kernels_compiled"]
        for _ in range(3):
            assert session.execute(query) == first
        prepared = session.prepare(query)
        assert prepared.from_cache
        assert prepared.execute() == first
        assert kernel_stats()["kernels_compiled"] == baseline

    def test_columnar_batches_counter_moves(self):
        cat = _catalog()
        session = QuerySession(cat)
        before = kernel_stats()["columnar_batches"]
        session.execute(_query())
        assert kernel_stats()["columnar_batches"] > before

    def test_session_and_server_stats_expose_kernel_counters(self):
        from repro.service import QueryServer

        cat = _catalog()
        session = QuerySession(cat)
        session.execute(_query())
        stats = session.stats()
        for key in ("kernels_compiled", "kernel_cache_hits",
                    "columnar_batches"):
            assert key in stats and stats[key] >= 0
        with QueryServer(cat) as server:
            server.execute(_query())
            sstats = server.stats()
        for key in ("kernels_compiled", "kernel_cache_hits",
                    "columnar_batches"):
            assert key in sstats and sstats[key] >= 0
