"""2-approximation for binary trees (Section 4.2): the ½ bound, path
decomposition, and the paper's Figure 3 instance."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sort_order import SortOrder
from repro.core.tree_approx import (
    OrderTreeNode,
    approximate_tree_orders,
    brute_force_tree_orders,
    build_tree,
    tree_benefit,
)

ATTRS = list("abcde")


def random_tree(rng, n_nodes, max_attrs=3):
    nodes = [OrderTreeNode(0, frozenset(rng.sample(ATTRS,
                                                   rng.randrange(1, max_attrs + 1))))]
    for i in range(1, n_nodes):
        node = OrderTreeNode(i, frozenset(rng.sample(ATTRS,
                                                     rng.randrange(1, max_attrs + 1))))
        candidates = [p for p in nodes if len(p.children) < 2]
        rng.choice(candidates).add_child(node)
        nodes.append(node)
    return nodes[0]


class TestBuildTree:
    def test_leaf(self):
        t = build_tree({"a", "b"})
        assert t.attrs == {"a", "b"}
        assert t.children == []

    def test_nested(self):
        t = build_tree(({"a"}, {"b"}, ({"c"}, {"d"})))
        assert t.attrs == {"a"}
        assert len(t.children) == 2
        assert t.children[1].children[0].attrs == {"d"}

    def test_binary_enforced(self):
        node = OrderTreeNode(0, frozenset("a"))
        node.add_child(OrderTreeNode(1, frozenset("b")))
        node.add_child(OrderTreeNode(2, frozenset("c")))
        with pytest.raises(ValueError):
            node.add_child(OrderTreeNode(3, frozenset("d")))

    def test_ids_unique(self):
        t = build_tree(({"a"}, {"b"}, ({"c"}, {"d"}, {"e"})))
        ids = [n.node_id for n in t.walk()]
        assert len(ids) == len(set(ids)) == 5


class TestApproximation:
    def test_single_node(self):
        t = build_tree({"a", "b"})
        res = approximate_tree_orders(t)
        assert res.benefit == 0
        assert res.assignment[t.node_id].attrs() == {"a", "b"}

    def test_identical_chain(self):
        t = build_tree(({"a", "b"}, ({"a", "b"}, {"a", "b"})))
        res = approximate_tree_orders(t)
        exact = brute_force_tree_orders(t)
        assert res.benefit * 2 >= exact.benefit

    def test_figure3_instance(self):
        """The paper's Figure 3 tree (optimal benefit = 8)."""
        t = build_tree((
            {"a", "b", "c", "d", "e"},
            ({"a", "b", "c", "k"}, {"c", "e", "i", "j"}, {"c", "k", "l", "m"}),
            ({"c", "d"}, {"c", "d", "h", "n"}, {"f", "g", "p", "q"}),
        ))
        res = approximate_tree_orders(t)
        assert res.benefit >= 4  # ≥ OPT/2 = 8/2
        for node in t.walk():
            assert res.assignment[node.node_id].attrs() == node.attrs

    def test_paper_fig3_manual_solution_feasible(self):
        """The permutations printed in Figure 3 achieve benefit 8."""
        t = build_tree((
            {"a", "b", "c", "d", "e"},
            ({"a", "b", "c", "k"}, {"c", "e", "i", "j"}, {"c", "k", "l", "m"}),
            ({"c", "d"}, {"c", "d", "h", "n"}, {"f", "g", "p", "q"}),
        ))
        nodes = list(t.walk())
        manual = {
            nodes[0].node_id: SortOrder("cdabe"),
            nodes[1].node_id: SortOrder("ckab"),
            nodes[2].node_id: SortOrder("ceij"),
            nodes[3].node_id: SortOrder("cklm"),
            nodes[4].node_id: SortOrder("cd"),
            nodes[5].node_id: SortOrder("cdhn"),
            nodes[6].node_id: SortOrder(("f", "g", "p", "q")),
        }
        assert tree_benefit(t, manual) == 8

    @pytest.mark.parametrize("seed", range(25))
    def test_half_optimal_bound_random(self, seed):
        rng = random.Random(seed)
        t = random_tree(rng, rng.randrange(2, 7), max_attrs=2)
        approx = approximate_tree_orders(t)
        exact = brute_force_tree_orders(t)
        assert 2 * approx.benefit >= exact.benefit, \
            f"approx {approx.benefit} < half of {exact.benefit}"
        assert approx.benefit <= exact.benefit

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_half_optimal_bound_property(self, seed):
        rng = random.Random(seed)
        t = random_tree(rng, rng.randrange(2, 6), max_attrs=2)
        approx = approximate_tree_orders(t)
        exact = brute_force_tree_orders(t)
        assert 2 * approx.benefit >= exact.benefit
        # All permutations are complete.
        for node in t.walk():
            assert approx.assignment[node.node_id].attrs() == node.attrs

    def test_odd_even_split_reported(self):
        t = build_tree(({"a"}, ({"a"}, {"a"}), {"a"}))
        res = approximate_tree_orders(t)
        assert res.chosen_parity in ("odd", "even")
        assert res.odd_benefit >= 0 and res.even_benefit >= 0

    def test_brute_force_size_guard(self):
        rng = random.Random(0)
        big = random_tree(rng, 10, max_attrs=5)
        with pytest.raises(ValueError):
            brute_force_tree_orders(big, limit=10)
