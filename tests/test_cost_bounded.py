"""Cost-bounded (branch-and-bound) search invariants and regression
tests for the strategy-flag, sort-capacity and union-stats bugfixes."""

import math
import random

import pytest

from repro.core.interesting import (
    PostgresHeuristicStrategy,
    STRATEGY_VARIANTS,
    make_strategy,
)
from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.engine import ExecutionContext, sort_stream
from repro.expr import col
from repro.expr.aggregates import agg_sum
from repro.logical import Annotator, Query, Union
from repro.logical.algebra import OrderBy
from repro.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.volcano import OptimizationRun
from repro.storage import Catalog, Schema, SystemParameters, TableStats
from repro.workloads import (
    add_query3_indexes,
    query4,
    query5,
    query6,
    r_tables_stats_catalog,
    tpch_stats_catalog,
    trading_stats_catalog,
)


def _query3():
    return (Query.table("partsupp")
            .join("lineitem", on=[("ps_suppkey", "l_suppkey"),
                                  ("ps_partkey", "l_partkey")])
            .where(col("l_linestatus").eq("O"))
            .group_by(["ps_availqty", "ps_partkey", "ps_suppkey"],
                      agg_sum(col("l_quantity"), "sum_qty"))
            .having(col("sum_qty").gt(col("ps_availqty")))
            .select("ps_suppkey", "ps_partkey", "ps_availqty", "sum_qty")
            .order_by("ps_partkey"))


def bench_cases():
    cat3 = tpch_stats_catalog()
    add_query3_indexes(cat3)
    return [
        ("Q3", cat3, _query3()),
        ("Q4", r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250)), query4()),
        ("Q5", trading_stats_catalog(), query5()),
        ("Q6", trading_stats_catalog(), query6()),
    ]


def _run_goal(cat, query, strategy, prune):
    expr = query.expr
    required = EMPTY_ORDER
    if isinstance(expr, OrderBy):
        required, expr = expr.order, expr.child
    strat, partial = make_strategy(strategy)
    config = OptimizerConfig(strategy=strategy,
                             partial_sort_enforcers=partial,
                             cost_bound_pruning=prune)
    run = OptimizationRun(cat, expr, strat, config)
    plan = run.optimize_goal(expr, required)
    return plan, run


class TestBranchAndBound:
    """Pruning must never change the chosen plan, only the effort."""

    @pytest.mark.parametrize("strategy", ["pyro-o", "pyro-e"])
    def test_same_cost_fewer_goals_on_bench_queries(self, strategy):
        reductions = 0
        for name, cat, query in bench_cases():
            pruned_plan, pruned_run = _run_goal(cat, query, strategy, True)
            exact_plan, exact_run = _run_goal(cat, query, strategy, False)
            assert pruned_plan.total_cost == pytest.approx(
                exact_plan.total_cost, rel=1e-12), (strategy, name)
            assert pruned_plan.signature() == exact_plan.signature(), (
                strategy, name)
            assert pruned_run.goals_examined <= exact_run.goals_examined, (
                strategy, name)
            if pruned_run.goals_examined < exact_run.goals_examined:
                reductions += 1
        # At least one bench query must show an actual effort reduction.
        assert reductions >= 1, strategy

    def test_exhausted_budget_skips_goal(self):
        cat = trading_stats_catalog()
        q = query5()
        _, run = _run_goal(cat, q, "pyro-o", True)
        expr = q.expr.child if isinstance(q.expr, OrderBy) else q.expr
        fresh = OptimizationRun(cat, expr, make_strategy("pyro-o")[0],
                                OptimizerConfig())
        assert fresh.optimize_goal(expr, EMPTY_ORDER, limit=0.0) is None
        assert fresh.goals_pruned == 1
        assert fresh.goals_examined == 0
        # With a real budget the goal is searched normally and memoised.
        plan = fresh.optimize_goal(expr, EMPTY_ORDER, limit=math.inf)
        assert plan is not None
        # Memo hits are served even under an exhausted budget.
        assert fresh.optimize_goal(expr, EMPTY_ORDER, limit=0.0) is plan

    def test_enforce_honours_limit(self, ):
        cat = Catalog()
        cat.create_table(
            "r", Schema.of(("a", "int", 8), ("b", "int", 8)),
            stats=TableStats(100_000, {"a": 50, "b": 5000}),
            clustering_order=SortOrder(["a"]))
        expr = Query.table("r").expr
        run = OptimizationRun(cat, expr, make_strategy("pyro-o")[0],
                              OptimizerConfig())
        scan = run.optimize_goal(expr, EMPTY_ORDER)
        enforced = run.enforce(scan, SortOrder(["b"]))
        assert enforced is not None and enforced.op == "Sort"
        # A budget at (or below) the enforced cost rejects the candidate.
        assert run.enforce(scan, SortOrder(["b"]),
                           limit=enforced.total_cost) is None
        assert run.enforce(scan, SortOrder(["b"]),
                           limit=enforced.total_cost + 1.0) is not None

    def test_pruning_disabled_examines_like_seed(self):
        """cost_bound_pruning=False must never return None for inf limits
        and must leave goals_pruned at zero."""
        for name, cat, query in bench_cases()[:2]:
            _, run = _run_goal(cat, query, "pyro-o", False)
            assert run.goals_pruned == 0, name


class TestFailureMemo:
    """The *first* search of a goal is bounded too; fruitless bounded
    searches leave an exact budget-infeasible marker (Columbia's
    re-search discipline) instead of being repeated."""

    @pytest.fixture
    def run_and_goal(self):
        cat = Catalog()
        cat.create_table(
            "r", Schema.of(("a", "int", 8), ("b", "int", 8)),
            stats=TableStats(500_000, {"a": 50, "b": 5000}),
            clustering_order=SortOrder(["a"]))
        expr = Query.table("r").expr
        run = OptimizationRun(cat, expr, make_strategy("pyro-o")[0],
                              OptimizerConfig())
        return run, expr

    def test_bounded_first_search_fails_and_memoizes(self, run_and_goal):
        run, expr = run_and_goal
        required = SortOrder(["b"])
        # Budget far below any feasible plan: the bounded search fails...
        assert run.optimize_goal(expr, required, limit=1.0) is None
        assert run.goals_failed == 1
        assert run.goals_examined == 1
        # ...and the second request at no-larger budget is a memo hit.
        assert run.optimize_goal(expr, required, limit=1.0) is None
        assert run.failure_memo_hits == 1
        assert run.goals_examined == 1  # no second search

    def test_larger_budget_triggers_research(self, run_and_goal):
        run, expr = run_and_goal
        required = SortOrder(["b"])
        assert run.optimize_goal(expr, required, limit=1.0) is None
        plan = run.optimize_goal(expr, required, limit=math.inf)
        assert plan is not None
        assert run.goals_researched == 1
        assert run.goals_examined == 1  # distinct-goal metric unchanged
        # Success supersedes the failure marker: exact memo from now on.
        assert run.optimize_goal(expr, required, limit=0.5) is plan

    def test_memo_entries_stay_exact(self, run_and_goal):
        """A plan found under a finite budget is the true optimum."""
        run, expr = run_and_goal
        required = SortOrder(["b"])
        unbounded = OptimizationRun(run.catalog, expr,
                                    make_strategy("pyro-o")[0],
                                    OptimizerConfig(cost_bound_pruning=False))
        exact = unbounded.optimize_goal(expr, required)
        bounded = run.optimize_goal(expr, required,
                                    limit=exact.total_cost + 1.0)
        assert bounded is not None
        assert bounded.total_cost == exact.total_cost
        assert bounded.signature() == exact.signature()

    def test_failure_threshold_is_tight(self, run_and_goal):
        """Failing at budget L must prove only `no plan < L`: a budget
        just above the optimum must succeed after a failure just below."""
        run, expr = run_and_goal
        required = SortOrder(["b"])
        probe = OptimizationRun(run.catalog, expr, make_strategy("pyro-o")[0],
                                OptimizerConfig(cost_bound_pruning=False))
        optimum = probe.optimize_goal(expr, required).total_cost
        assert run.optimize_goal(expr, required, limit=optimum * 0.5) is None
        plan = run.optimize_goal(expr, required, limit=optimum + 1.0)
        assert plan is not None and plan.total_cost == optimum

    def test_bench_queries_unchanged_by_failure_memo(self):
        """End-to-end invariant: deepened pruning still returns the same
        plan as exhaustive search on every bench query (and records its
        extra effort in the re-search counters, not goals_examined)."""
        for name, cat, query in bench_cases():
            pruned_plan, pruned_run = _run_goal(cat, query, "pyro-o", True)
            exact_plan, exact_run = _run_goal(cat, query, "pyro-o", False)
            assert pruned_plan.signature() == exact_plan.signature(), name
            assert pruned_plan.total_cost == pytest.approx(
                exact_plan.total_cost, rel=1e-12), name
            assert exact_run.goals_failed == 0, name
            assert exact_run.goals_researched == 0, name


class TestStrategyFlagRegression:
    """`Optimizer.__init__` must honour the registry's partial flag and
    must not mutate a caller-supplied config."""

    @pytest.fixture
    def stats_catalog(self):
        cat = Catalog()
        cat.create_table(
            "r", Schema.of(("a", "int", 8), ("b", "int", 8)),
            stats=TableStats(2_000_000, {"a": 50, "b": 5000}),
            clustering_order=SortOrder(["a"]))
        return cat

    def test_registry_flag_disables_partial(self, stats_catalog, monkeypatch):
        # A partial-disabled variant that is NOT named "pyro-o-": the old
        # string match missed it and left partial enforcers on.
        monkeypatch.setitem(STRATEGY_VARIANTS, "pyro-p-",
                            (PostgresHeuristicStrategy, False))
        opt = Optimizer(stats_catalog, strategy="pyro-p-")
        assert opt.config.partial_sort_enforcers is False
        plan = opt.optimize(Query.table("r").order_by("a", "b"))
        assert plan.op == "Sort"  # not PartialSort

    def test_pyro_o_minus_still_disables_partial(self, stats_catalog):
        opt = Optimizer(stats_catalog, strategy="pyro-o-")
        assert opt.config.partial_sort_enforcers is False

    def test_caller_config_not_mutated(self, stats_catalog):
        config = OptimizerConfig(strategy="pyro-o-")
        assert config.partial_sort_enforcers is True
        opt = Optimizer(stats_catalog, config=config, enable_hash_join=False)
        # The optimizer's working copy changed; the caller's object did not.
        assert opt.config.partial_sort_enforcers is False
        assert opt.config.enable_hash_join is False
        assert config.partial_sort_enforcers is True
        assert config.enable_hash_join is True


class TestSortCapacityRegression:
    """A row wider than sort memory must degrade, not drop the input."""

    SCHEMA = Schema.of(("k1", "int", 8), ("k2", "int", 8), ("v", "int", 8))

    @pytest.fixture
    def zero_capacity_ctx(self, monkeypatch):
        ctx = ExecutionContext(params=SystemParameters(
            block_size=256, sort_memory_blocks=4))
        monkeypatch.setattr(type(ctx), "memory_capacity_rows",
                            lambda self, row_bytes: 0)
        return ctx

    def test_srs_keeps_all_rows(self, zero_capacity_ctx):
        rng = random.Random(3)
        rows = [(rng.randrange(100), rng.randrange(100), i) for i in range(300)]
        out = list(sort_stream(rows, self.SCHEMA, SortOrder(["k1", "k2"]),
                               zero_capacity_ctx, algorithm="srs"))
        assert len(out) == len(rows)
        assert [r[:2] for r in out] == sorted(r[:2] for r in rows)

    def test_mrs_spill_path_keeps_all_rows(self, zero_capacity_ctx):
        rng = random.Random(4)
        rows = sorted(((i % 3, rng.randrange(100), i) for i in range(300)),
                      key=lambda r: r[0])
        out = list(sort_stream(rows, self.SCHEMA, SortOrder(["k1", "k2"]),
                               zero_capacity_ctx,
                               known_prefix=SortOrder(["k1"]),
                               algorithm="mrs"))
        assert len(out) == len(rows)
        assert [r[:2] for r in out] == sorted(r[:2] for r in rows)


class TestUnionStatsRegression:
    """Union cardinality must combine left AND right distinct counts."""

    @pytest.fixture
    def union_catalog(self):
        cat = Catalog()
        cat.create_table(
            "small_domain", Schema.of(("a", "int", 8), ("b", "int", 8)),
            stats=TableStats(10_000, {"a": 10, "b": 10}))
        cat.create_table(
            "large_domain", Schema.of(("c", "int", 8), ("d", "int", 8)),
            stats=TableStats(10_000, {"c": 1_000, "d": 1_000}))
        return cat

    def test_annotator_union_distincts_combined(self, union_catalog):
        expr = Query.table("small_domain").union(
            Query.table("large_domain")).expr
        assert isinstance(expr, Union)
        stats = Annotator(union_catalog, expr).stats_of(expr)
        # Old behaviour: left-only → 10.  Fixed: 10 + 1000 (capped at N).
        assert stats.distinct_of("a") == 1_010
        assert stats.N == 20_000

    def test_planned_union_stats_combined(self, union_catalog):
        q = Query.table("small_domain").union(Query.table("large_domain"))
        plan = Optimizer(union_catalog).optimize(q)
        union_nodes = plan.find_all("MergeUnion") + plan.find_all("UnionAll")
        assert union_nodes, plan.explain()
        for node in union_nodes:
            assert node.stats.distinct_of("a") >= 1_010, node.op

    def test_union_dedup_estimate_not_capped_by_left(self, union_catalog):
        q = Query.table("small_domain").union(Query.table("large_domain"))
        plan = Optimizer(union_catalog).optimize(q)
        # The dedup output estimate must exceed what the left side alone
        # could produce (10 × 10 = 100 combinations).
        assert plan.rows > 100
