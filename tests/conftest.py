"""Shared fixtures: small deterministic catalogs and queries."""

from __future__ import annotations

import random

import pytest

from repro.core.sort_order import SortOrder
from repro.expr import col
from repro.expr.aggregates import agg_sum
from repro.logical import Query
from repro.storage import Catalog, Schema, SystemParameters


@pytest.fixture
def rng():
    return random.Random(20240610)


@pytest.fixture
def small_catalog(rng):
    """Two joinable tables + a covering index, small enough for exhaustive
    reference computations."""
    cat = Catalog()
    left_schema = Schema.of(("a", "int", 8), ("b", "int", 8), ("x", "int", 8))
    right_schema = Schema.of(("c", "int", 8), ("d", "int", 8), ("y", "int", 8))
    left_rows = [(rng.randrange(12), rng.randrange(6), i) for i in range(400)]
    right_rows = [(rng.randrange(12), rng.randrange(6), i) for i in range(300)]
    cat.create_table("left", left_schema, rows=left_rows,
                     clustering_order=SortOrder(["a"]))
    cat.create_table("right", right_schema, rows=right_rows,
                     clustering_order=SortOrder(["c", "d"]))
    cat.create_index("left_ab", "left", SortOrder(["a", "b"]), included=["x"])
    return cat


@pytest.fixture
def tpch_mini():
    """Materialised miniature TPC-H catalog (deterministic)."""
    from repro.workloads import add_query3_indexes, tpch_catalog
    cat = tpch_catalog(scale=0.002, seed=99)
    add_query3_indexes(cat)
    return cat


@pytest.fixture
def query3():
    return (Query.table("partsupp")
            .join("lineitem", on=[("ps_suppkey", "l_suppkey"),
                                  ("ps_partkey", "l_partkey")])
            .where(col("l_linestatus").eq("O"))
            .group_by(["ps_availqty", "ps_partkey", "ps_suppkey"],
                      agg_sum(col("l_quantity"), "sum_qty"))
            .having(col("sum_qty").gt(col("ps_availqty")))
            .select("ps_suppkey", "ps_partkey", "ps_availqty", "sum_qty")
            .order_by("ps_partkey"))


def reference_query3(catalog):
    """Hand-computed Query 3 answer on a materialised catalog."""
    ps = catalog.table("partsupp").rows
    li = catalog.table("lineitem").rows
    avail = {(p, s): a for p, s, a, *_ in ps}
    sums: dict[tuple, int] = {}
    for orderkey, linenumber, p, s, qty, price, status, _ in li:
        if status == "O" and (p, s) in avail:
            sums[(p, s)] = sums.get((p, s), 0) + qty
    rows = [(s, p, avail[(p, s)], total)
            for (p, s), total in sums.items() if total > avail[(p, s)]]
    return sorted(rows, key=lambda r: r[1])
