"""Engine operator tests: scans, filter/project/compute, sort enforcers,
aggregates, sets, limit/topk, lowering payloads."""

import random

import pytest

from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.engine import (
    ClusteringIndexScan,
    Compute,
    CoveringIndexScan,
    Dedup,
    ExecutionContext,
    Filter,
    HashAggregate,
    HashDedup,
    Limit,
    MergeUnion,
    PartialSort,
    Project,
    RowSource,
    Sort,
    SortAggregate,
    TableScan,
    TopK,
    UnionAll,
)
from repro.expr import col
from repro.expr.aggregates import agg_sum, count_star
from repro.storage import Catalog, Schema, SystemParameters

SCHEMA = Schema.of(("a", "int", 8), ("b", "int", 8), ("v", "int", 8))


@pytest.fixture
def catalog(rng):
    cat = Catalog()
    rows = [(rng.randrange(8), rng.randrange(5), i) for i in range(200)]
    cat.create_table("t", SCHEMA, rows=rows, clustering_order=SortOrder(["a"]))
    cat.create_index("t_ab", "t", SortOrder(["a", "b"]), included=["v"])
    return cat


class TestScans:
    def test_table_scan_charges_blocks(self, catalog):
        ctx = ExecutionContext(catalog)
        rows = TableScan(catalog.table("t")).run(ctx)
        assert len(rows) == 200
        assert ctx.io.blocks_read == catalog.table("t").num_blocks

    def test_table_scan_order_is_clustering(self, catalog):
        op = TableScan(catalog.table("t"))
        assert op.output_order == SortOrder(["a"])
        out = op.run(ExecutionContext(catalog))
        assert [r[0] for r in out] == sorted(r[0] for r in out)

    def test_clustering_scan_requires_clustering(self):
        cat = Catalog()
        t = cat.create_table("u", SCHEMA, rows=[(1, 1, 1)])
        with pytest.raises(ValueError):
            ClusteringIndexScan(t)

    def test_covering_scan_order_and_schema(self, catalog):
        ix = catalog.indexes_of("t")[0]
        op = CoveringIndexScan(ix)
        assert op.output_order == SortOrder(["a", "b"])
        assert op.schema.names == ("a", "b", "v")
        out = op.run(ExecutionContext(catalog))
        keys = [(r[0], r[1]) for r in out]
        assert keys == sorted(keys)

    def test_covering_scan_cheaper_than_table_scan_when_narrow(self):
        cat = Catalog()
        wide = Schema.of(("a", "int", 8), ("pad", "str", 400))
        rows = [(i, "x" * 10) for i in range(2000)]
        t = cat.create_table("w", wide, rows=rows)
        cat.create_index("w_a", "w", SortOrder(["a"]))
        ctx1 = ExecutionContext(cat)
        TableScan(t).run(ctx1)
        ctx2 = ExecutionContext(cat)
        CoveringIndexScan(cat.indexes_of("w")[0]).run(ctx2)
        assert ctx2.io.blocks_read < ctx1.io.blocks_read / 5


class TestRowOps:
    def test_filter(self, catalog):
        op = Filter(TableScan(catalog.table("t")), col("a").eq(3))
        out = op.run(ExecutionContext(catalog))
        assert all(r[0] == 3 for r in out)
        assert op.output_order == SortOrder(["a"])

    def test_filter_missing_column(self, catalog):
        with pytest.raises(ValueError):
            Filter(TableScan(catalog.table("t")), col("zz").eq(1))

    def test_project_schema_and_order(self, catalog):
        scan = TableScan(catalog.table("t"))
        op = Project(scan, ["a", "v"])
        assert op.schema.names == ("a", "v")
        assert op.output_order == SortOrder(["a"])
        dropped = Project(scan, ["v"])
        assert dropped.output_order == EMPTY_ORDER

    def test_compute(self):
        src = RowSource(SCHEMA, [(1, 2, 3), (4, 5, 6)])
        op = Compute(src, [("ab", col("a") + col("b"))])
        out = op.run()
        assert out == [(1, 2, 3, 3), (4, 5, 6, 9)]
        assert op.schema.names == ("a", "b", "v", "ab")


class TestSortOperator:
    def test_auto_uses_child_prefix(self, catalog):
        op = Sort(TableScan(catalog.table("t")), SortOrder(["a", "b"]))
        assert op.known_prefix == SortOrder(["a"])
        assert op.is_partial
        ctx = ExecutionContext(catalog, check_orders=True)
        out = op.run(ctx)
        assert [(r[0], r[1]) for r in out] == sorted((r[0], r[1]) for r in out)
        assert ctx.sort_metrics.segments_sorted > 0

    def test_forced_srs_ignores_prefix(self, catalog):
        op = Sort(TableScan(catalog.table("t")), SortOrder(["a", "b"]),
                  algorithm="srs")
        assert not op.is_partial
        ctx = ExecutionContext(catalog)
        out = op.run(ctx)
        assert [(r[0], r[1]) for r in out] == sorted((r[0], r[1]) for r in out)
        assert ctx.sort_metrics.segments_sorted == 0

    def test_partial_sort_alias(self, catalog):
        op = PartialSort(TableScan(catalog.table("t")), SortOrder(["a", "b"]))
        assert op.name == "PartialSort"
        assert op.is_partial

    def test_input_prefix_violation_detected(self):
        src = RowSource(SCHEMA, [(2, 1, 1), (1, 1, 2)], SortOrder(["a"]))
        op = Sort(src, SortOrder(["a", "b"]))
        with pytest.raises(AssertionError):
            op.run(ExecutionContext(check_orders=True))

    def test_missing_sort_column(self, catalog):
        with pytest.raises(ValueError):
            Sort(TableScan(catalog.table("t")), SortOrder(["zz"]))


class TestAggregateOps:
    def make_sorted(self, catalog):
        return Sort(TableScan(catalog.table("t")), SortOrder(["a", "b"]))

    def reference(self, catalog):
        ref = {}
        for a, b, v in catalog.table("t").rows:
            cnt, tot = ref.get((a, b), (0, 0))
            ref[(a, b)] = (cnt + 1, tot + v)
        return sorted((a, b, c, s) for (a, b), (c, s) in ref.items())

    def test_sort_aggregate(self, catalog):
        op = SortAggregate(self.make_sorted(catalog), SortOrder(["a", "b"]),
                           [count_star("n"), agg_sum(col("v"), "sv")])
        out = op.run(ExecutionContext(catalog, check_orders=True))
        assert sorted(out) == self.reference(catalog)
        assert op.output_order == SortOrder(["a", "b"])

    def test_hash_aggregate_agrees(self, catalog):
        op = HashAggregate(TableScan(catalog.table("t")), ["a", "b"],
                           [count_star("n"), agg_sum(col("v"), "sv")])
        assert sorted(op.run(ExecutionContext(catalog))) == self.reference(catalog)
        assert op.output_order == EMPTY_ORDER

    def test_fd_reduced_group_columns(self, catalog):
        """Sort key (a, b) but emit group columns (a, b, v)-style superset
        is allowed when determined; here we use (b, a) ordering with full
        output columns (a, b)."""
        sorted_in = Sort(TableScan(catalog.table("t")), SortOrder(["b", "a"]))
        op = SortAggregate(sorted_in, SortOrder(["b", "a"]),
                           [count_star("n")], group_columns=["a", "b"])
        out = op.run(ExecutionContext(catalog, check_orders=True))
        expected = {}
        for a, b, v in catalog.table("t").rows:
            expected[(a, b)] = expected.get((a, b), 0) + 1
        assert sorted(out) == sorted((a, b, n) for (a, b), n in expected.items())

    def test_group_order_not_subset_rejected(self, catalog):
        with pytest.raises(ValueError):
            SortAggregate(self.make_sorted(catalog), SortOrder(["a", "b"]),
                          [count_star("n")], group_columns=["a"])

    def test_sort_aggregate_detects_bad_grouping(self):
        src = RowSource(SCHEMA, [(1, 0, 0), (2, 0, 0), (1, 0, 0)],
                        SortOrder(["a"]))
        op = SortAggregate(src, SortOrder(["a"]), [count_star("n")])
        with pytest.raises(AssertionError):
            op.run(ExecutionContext(check_orders=True))

    def test_null_handling(self):
        src = RowSource(SCHEMA, [(1, 1, None), (1, 1, 5)], SortOrder(["a"]))
        op = SortAggregate(src, SortOrder(["a"]),
                           [agg_sum(col("v"), "sv"), count_star("n")])
        assert op.run() == [(1, 5, 2)]  # sum skips NULL, count(*) does not


class TestSetOps:
    def test_union_all(self):
        l = RowSource(SCHEMA, [(1, 1, 1)])
        r = RowSource(SCHEMA, [(2, 2, 2)])
        assert UnionAll(l, r).run() == [(1, 1, 1), (2, 2, 2)]

    def test_merge_union_dedups(self):
        order = SortOrder(["a", "b", "v"])
        l = RowSource(SCHEMA, [(1, 1, 1), (2, 2, 2)], order)
        r = RowSource(SCHEMA, [(1, 1, 1), (3, 3, 3)], order)
        out = MergeUnion(l, r, order).run(ExecutionContext(check_orders=True))
        assert out == [(1, 1, 1), (2, 2, 2), (3, 3, 3)]

    def test_merge_union_validates_order_columns(self):
        l = RowSource(SCHEMA, [])
        r = RowSource(SCHEMA, [])
        with pytest.raises(ValueError):
            MergeUnion(l, r, SortOrder(["a"]))

    def test_dedup(self):
        order = SortOrder(["a", "b", "v"])
        src = RowSource(SCHEMA, [(1, 1, 1), (1, 1, 1), (2, 1, 1)], order)
        assert Dedup(src, order).run() == [(1, 1, 1), (2, 1, 1)]

    def test_hash_dedup(self, rng):
        rows = [(rng.randrange(3), rng.randrange(3), rng.randrange(2))
                for _ in range(50)]
        out = HashDedup(RowSource(SCHEMA, rows)).run()
        assert sorted(out) == sorted(set(rows))


class TestLimitTopK:
    def test_limit(self):
        src = RowSource(SCHEMA, [(i, 0, 0) for i in range(10)])
        assert len(Limit(src, 3).run()) == 3
        assert Limit(src, 0).run() == []

    def test_limit_early_stop_saves_io(self, catalog):
        ctx_all = ExecutionContext(catalog)
        TableScan(catalog.table("t")).run(ctx_all)
        ctx_lim = ExecutionContext(catalog)
        Limit(TableScan(catalog.table("t")), 1).run(ctx_lim)
        assert ctx_lim.io.blocks_read <= ctx_all.io.blocks_read

    def test_topk(self, rng):
        rows = [(rng.randrange(1000), 0, i) for i in range(300)]
        out = TopK(RowSource(SCHEMA, rows), 5, SortOrder(["a"])).run()
        assert [r[0] for r in out] == sorted(r[0] for r in rows)[:5]

    def test_topk_validation(self):
        with pytest.raises(ValueError):
            TopK(RowSource(SCHEMA, []), 0, SortOrder(["a"]))


class TestExplain:
    def test_tree_rendering(self, catalog):
        op = Filter(Sort(TableScan(catalog.table("t")), SortOrder(["a", "b"])),
                    col("a").eq(1))
        text = op.explain()
        assert "Filter" in text and "Sort" in text and "TableScan" in text
        assert "(a, b)" in text

    def test_walk(self, catalog):
        op = Filter(TableScan(catalog.table("t")), col("a").eq(1))
        assert [o.name for o in op.walk()] == ["Filter", "TableScan"]
