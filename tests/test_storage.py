"""Storage substrate tests: schemas, tables, indexes, catalog, aliasing."""

import pytest

from repro.core.sort_order import SortOrder
from repro.storage import (
    Catalog,
    Column,
    FunctionalDependency,
    Index,
    Schema,
    SystemParameters,
    Table,
    TableStats,
    blocks_for,
)


class TestSchema:
    def test_of_shorthand(self):
        s = Schema.of(("a", "int", 4), "b", Column("c", "str", 20))
        assert s.names == ("a", "b", "c")
        assert s["a"].avg_size == 4
        assert s["b"].avg_size == 8

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Schema.of("a", "a")

    def test_positions(self):
        s = Schema.of("a", "b", "c")
        assert s.positions(["c", "a"]) == (2, 0)
        with pytest.raises(KeyError):
            s.position("zz")

    def test_row_bytes(self):
        s = Schema.of(("a", "int", 4), ("b", "str", 16))
        assert s.row_bytes == 20

    def test_project_and_concat(self):
        s = Schema.of("a", "b", "c")
        assert s.project(["c", "a"]).names == ("c", "a")
        t = Schema.of("x", "y")
        assert s.concat(t).names == ("a", "b", "c", "x", "y")

    def test_rename(self):
        s = Schema.of("a", "b")
        assert s.rename({"a": "z"}).names == ("z", "b")

    def test_bad_column(self):
        with pytest.raises(ValueError):
            Column("", "int", 8)
        with pytest.raises(ValueError):
            Column("a", "int", 0)


class TestFunctionalDependency:
    def test_key_fd(self):
        fd = FunctionalDependency.key(["a"], ["a", "b", "c"])
        assert fd.determinants == {"a"}
        assert fd.dependents == {"b", "c"}

    def test_empty_determinants_rejected(self):
        with pytest.raises(ValueError):
            FunctionalDependency(frozenset(), frozenset({"a"}))


class TestTable:
    def test_materialised_sorted_by_clustering(self):
        schema = Schema.of("a", "b")
        t = Table("t", schema, rows=[(3, 1), (1, 2), (2, 3)],
                  clustering_order=SortOrder(["a"]))
        assert [r[0] for r in t.rows] == [1, 2, 3]
        assert t.verify_clustering()

    def test_stats_measured(self):
        schema = Schema.of("a", "b")
        t = Table("t", schema, rows=[(1, 1), (1, 2), (2, 2)])
        assert t.stats.num_rows == 3
        assert t.stats.distinct_of("a") == 2
        assert t.stats.distinct_of("b") == 2

    def test_stats_only_rejects_scan(self):
        schema = Schema.of("a")
        t = Table("t", schema, stats=TableStats(100, {"a": 10}))
        assert len(t) == 100
        assert not t.is_materialized
        with pytest.raises(RuntimeError):
            _ = t.rows

    def test_requires_rows_or_stats(self):
        with pytest.raises(ValueError):
            Table("t", Schema.of("a"))

    def test_invalid_clustering_column(self):
        with pytest.raises(ValueError):
            Table("t", Schema.of("a"), rows=[], clustering_order=SortOrder(["b"]))

    def test_primary_key_fds(self):
        t = Table("t", Schema.of("a", "b", "c"), rows=[(1, 2, 3)],
                  primary_key=["a"])
        fds = t.functional_dependencies()
        assert len(fds) == 1
        assert fds[0].determinants == {"a"}
        assert fds[0].dependents == {"b", "c"}


class TestIndex:
    def make_table(self):
        schema = Schema.of(("a", "int", 8), ("b", "int", 8), ("c", "str", 30))
        rows = [(i % 5, i, f"v{i}") for i in range(20)]
        return Table("t", schema, rows=rows, clustering_order=SortOrder(["b"]))

    def test_covers(self):
        t = self.make_table()
        ix = Index("ix", t, SortOrder(["a"]), included=["b"])
        assert ix.covers({"a", "b"})
        assert not ix.covers({"a", "c"})
        assert ix.columns == ("a", "b")

    def test_scan_rows_sorted_by_key(self):
        t = self.make_table()
        ix = Index("ix", t, SortOrder(["a"]), included=["b"])
        rows = ix.scan_rows()
        assert len(rows) == 20
        assert [r[0] for r in rows] == sorted(r[0] for r in t.rows)

    def test_entry_bytes_narrower_than_row(self):
        t = self.make_table()
        ix = Index("ix", t, SortOrder(["a"]), included=["b"])
        assert ix.entry_bytes() < t.schema.row_bytes + 8

    def test_key_overlap_rejected(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            Index("ix", t, SortOrder(["a"]), included=["a"])

    def test_unknown_column_rejected(self):
        t = self.make_table()
        with pytest.raises(ValueError):
            Index("ix", t, SortOrder(["zz"]))


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog()
        t = cat.create_table("t", Schema.of("a"), rows=[(1,)])
        assert cat.table("t") is t
        assert cat.has_table("t")
        with pytest.raises(KeyError):
            cat.table("missing")

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.create_table("t", Schema.of("a"), rows=[])
        with pytest.raises(ValueError):
            cat.create_table("t", Schema.of("a"), rows=[])

    def test_covering_indexes(self):
        cat = Catalog()
        cat.create_table("t", Schema.of("a", "b", "c"), rows=[(1, 2, 3)])
        cat.create_index("ix", "t", SortOrder(["a"]), included=["b"])
        assert [i.name for i in cat.covering_indexes("t", {"a", "b"})] == ["ix"]
        assert cat.covering_indexes("t", {"a", "c"}) == []

    def test_alias_table(self):
        cat = Catalog()
        cat.create_table("t", Schema.of(("a", "int", 8), ("b", "int", 8)),
                         rows=[(2, 1), (1, 2)], clustering_order=SortOrder(["a"]),
                         primary_key=["a"])
        alias = cat.alias_table("t", "t2", "x_")
        assert alias.schema.names == ("x_a", "x_b")
        assert alias.clustering_order == SortOrder(["x_a"])
        assert alias.primary_key == ("x_a",)
        assert alias.rows == cat.table("t").rows  # shared, not copied
        assert alias.stats.distinct_of("x_a") == 2

    def test_system_parameters(self):
        p = SystemParameters(block_size=4096, sort_memory_blocks=10)
        assert p.sort_memory_bytes == 40960


class TestBlocksFor:
    def test_rounding(self):
        assert blocks_for(0, 100) == 0
        assert blocks_for(1, 100, 4096) == 1
        assert blocks_for(41, 100, 4096) == 2

    @pytest.mark.parametrize("rows,width", [(10, 10), (1000, 55), (77, 4096)])
    def test_monotone(self, rows, width):
        assert blocks_for(rows, width) <= blocks_for(rows + 1, width)
        assert blocks_for(rows, width) <= blocks_for(rows, width + 1)
