"""Interesting-order strategy tests (PYRO family, Section 5.2.1)."""

import pytest

from repro.core.favorable import FavorableOrders
from repro.core.interesting import (
    ArbitraryOrderStrategy,
    ExhaustiveOrderStrategy,
    FavorableOrderStrategy,
    ForcedOrderStrategy,
    OrderContext,
    PostgresHeuristicStrategy,
    STRATEGY_VARIANTS,
    make_strategy,
)
from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.logical import Annotator, Query, query_fds
from repro.storage import Catalog, Schema, TableStats


@pytest.fixture
def setup():
    cat = Catalog()
    cat.create_table(
        "r", Schema.of(("a", "int", 8), ("b", "int", 8), ("c", "int", 8)),
        stats=TableStats(10_000, {"a": 100, "b": 100, "c": 100}),
        clustering_order=SortOrder(["b", "a"]))
    cat.create_table(
        "s", Schema.of(("x", "int", 8), ("y", "int", 8), ("z", "int", 8)),
        stats=TableStats(10_000, {"x": 100, "y": 100, "z": 100}))
    q = Query.table("r").join("s", on=[("a", "x"), ("b", "y"), ("c", "z")])
    ann = Annotator(cat, q.expr)
    octx = OrderContext(FavorableOrders(cat, ann), query_fds(cat, q.expr), ann.eq)
    return cat, q.expr, octx


class TestArbitrary:
    def test_single_deterministic_order(self, setup):
        _, join, octx = setup
        orders = ArbitraryOrderStrategy().join_orders(octx, join, EMPTY_ORDER)
        assert len(orders) == 1
        assert orders[0].attrs() == {"a", "b", "c"}
        # deterministic
        again = ArbitraryOrderStrategy().join_orders(octx, join, EMPTY_ORDER)
        assert orders == again


class TestPostgresHeuristic:
    def test_one_order_per_attribute(self, setup):
        _, join, octx = setup
        orders = PostgresHeuristicStrategy().join_orders(octx, join, EMPTY_ORDER)
        assert len(orders) == 3
        assert {o[0] for o in orders} == {"a", "b", "c"}
        for o in orders:
            assert o.attrs() == {"a", "b", "c"}

    def test_group_orders(self, setup):
        _, join, octx = setup
        orders = PostgresHeuristicStrategy().group_orders(
            octx, None, ["a", "b"], EMPTY_ORDER)
        assert {o[0] for o in orders} == {"a", "b"}


class TestExhaustive:
    def test_all_permutations(self, setup):
        _, join, octx = setup
        orders = ExhaustiveOrderStrategy().join_orders(octx, join, EMPTY_ORDER)
        assert len(orders) == 6
        assert len(set(orders)) == 6

    def test_limit_guard(self, setup):
        _, join, octx = setup
        with pytest.raises(ValueError):
            ExhaustiveOrderStrategy(limit=2).join_orders(octx, join, EMPTY_ORDER)


class TestFavorable:
    def test_includes_clustering_prefix(self, setup):
        _, join, octx = setup
        orders = FavorableOrderStrategy().join_orders(octx, join, EMPTY_ORDER)
        # r clustered on (b, a) → candidate starting (b, a).
        assert any(o.as_tuple[:2] == ("b", "a") for o in orders)
        for o in orders:
            assert o.attrs() == {"a", "b", "c"}

    def test_includes_required_prefix(self, setup):
        _, join, octx = setup
        required = SortOrder(["c", "a"])
        orders = FavorableOrderStrategy().join_orders(octx, join, required)
        assert any(o.as_tuple[:2] == ("c", "a") for o in orders)

    def test_far_fewer_than_exhaustive(self, setup):
        _, join, octx = setup
        fav = FavorableOrderStrategy().join_orders(octx, join, EMPTY_ORDER)
        assert len(fav) < 6

    def test_redundant_prefixes_dropped(self, setup):
        _, join, octx = setup
        orders = FavorableOrderStrategy().join_orders(octx, join, EMPTY_ORDER)
        assert len(orders) == len(set(orders))

    def test_right_side_names_canonicalised(self, setup):
        _, join, octx = setup
        for o in FavorableOrderStrategy().join_orders(octx, join, EMPTY_ORDER):
            assert o.attrs() <= {"a", "b", "c"}  # never x/y/z


class TestForced:
    def test_forces_specific_order(self, setup):
        _, join, octx = setup
        forced_perm = SortOrder(["c", "b", "a"])
        strategy = ForcedOrderStrategy(FavorableOrderStrategy(), {join: forced_perm})
        assert strategy.join_orders(octx, join, EMPTY_ORDER) == [forced_perm]

    def test_falls_back_for_other_nodes(self, setup):
        _, join, octx = setup
        strategy = ForcedOrderStrategy(ArbitraryOrderStrategy(), {})
        assert len(strategy.join_orders(octx, join, EMPTY_ORDER)) == 1


class TestRegistry:
    def test_variants(self):
        assert set(STRATEGY_VARIANTS) == {"pyro", "pyro-p", "pyro-o",
                                          "pyro-o-", "pyro-e"}

    def test_make_strategy_partial_flag(self):
        _, partial_o = make_strategy("pyro-o")
        _, partial_minus = make_strategy("pyro-o-")
        assert partial_o is True
        assert partial_minus is False

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("pyro-x")
