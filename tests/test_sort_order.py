"""Unit and property tests for the sort-order algebra (paper Section 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sort_order import (
    EMPTY_ORDER,
    AttributeEquivalence,
    SortOrder,
    all_permutations,
    arbitrary_permutation,
    extend_to_set,
    longest_common_prefix,
    prefix_in_set,
)

ATTRS = "abcdefgh"


def orders(max_size=5):
    return st.lists(st.sampled_from(ATTRS), max_size=max_size, unique=True).map(SortOrder)


class TestConstruction:
    def test_empty(self):
        assert len(EMPTY_ORDER) == 0
        assert not EMPTY_ORDER
        assert EMPTY_ORDER.is_empty()
        assert str(EMPTY_ORDER) == "ε"

    def test_basic(self):
        o = SortOrder(["a", "b"])
        assert len(o) == 2
        assert list(o) == ["a", "b"]
        assert o[0] == "a"
        assert o.attrs() == {"a", "b"}

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SortOrder(["a", "a"])

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            SortOrder([1, 2])

    def test_empty_attr_rejected(self):
        with pytest.raises(TypeError):
            SortOrder([""])

    def test_equality_and_hash(self):
        assert SortOrder(["a", "b"]) == SortOrder(["a", "b"])
        assert SortOrder(["a", "b"]) != SortOrder(["b", "a"])
        assert hash(SortOrder(["a"])) == hash(SortOrder(["a"]))
        assert {SortOrder(["a"]): 1}[SortOrder(["a"])] == 1

    def test_slice_returns_order(self):
        o = SortOrder(["a", "b", "c"])
        assert o[:2] == SortOrder(["a", "b"])
        assert isinstance(o[:2], SortOrder)


class TestPrefixRelations:
    def test_prefix(self):
        assert SortOrder(["a"]).is_prefix_of(SortOrder(["a", "b"]))
        assert SortOrder(["a", "b"]).is_prefix_of(SortOrder(["a", "b"]))
        assert not SortOrder(["b"]).is_prefix_of(SortOrder(["a", "b"]))
        assert EMPTY_ORDER.is_prefix_of(SortOrder(["a"]))

    def test_strict_prefix(self):
        assert SortOrder(["a"]).is_strict_prefix_of(SortOrder(["a", "b"]))
        assert not SortOrder(["a", "b"]).is_strict_prefix_of(SortOrder(["a", "b"]))

    def test_satisfies(self):
        # (a, b, c) satisfies requirement (a, b) but not vice versa
        guaranteed = SortOrder(["a", "b", "c"])
        assert guaranteed.satisfies(SortOrder(["a", "b"]))
        assert not SortOrder(["a", "b"]).satisfies(guaranteed)
        assert SortOrder(["a"]).satisfies(EMPTY_ORDER)

    @given(orders(), orders())
    def test_prefix_antisymmetry(self, o1, o2):
        if o1.is_prefix_of(o2) and o2.is_prefix_of(o1):
            assert o1 == o2


class TestConcatMinus:
    def test_concat(self):
        assert SortOrder(["a"]) + SortOrder(["b"]) == SortOrder(["a", "b"])

    def test_concat_skips_duplicates(self):
        assert SortOrder(["a", "b"]) + SortOrder(["b", "c"]) == SortOrder(["a", "b", "c"])

    def test_minus(self):
        o = SortOrder(["a", "b", "c"])
        assert o.minus(SortOrder(["a", "b"])) == SortOrder(["c"])
        assert o.minus(EMPTY_ORDER) == o
        assert o.minus(o) == EMPTY_ORDER

    def test_minus_requires_prefix(self):
        with pytest.raises(ValueError):
            SortOrder(["a", "b"]).minus(SortOrder(["b"]))

    @given(orders())
    def test_minus_inverts_concat(self, o):
        # o2 + (o − o2) == o for every prefix o2 of o
        for k in range(len(o) + 1):
            prefix = o[:k]
            assert prefix + o.minus(prefix) == o


class TestLcp:
    def test_lcp_basic(self):
        assert longest_common_prefix(SortOrder(["a", "b", "c"]),
                                     SortOrder(["a", "b", "d"])) == SortOrder(["a", "b"])
        assert longest_common_prefix(SortOrder(["a"]), SortOrder(["b"])) == EMPTY_ORDER

    @given(orders(), orders())
    def test_lcp_commutes_on_length(self, o1, o2):
        assert len(longest_common_prefix(o1, o2)) == len(longest_common_prefix(o2, o1))

    @given(orders(), orders())
    def test_lcp_is_common_prefix(self, o1, o2):
        lcp = longest_common_prefix(o1, o2)
        assert lcp.is_prefix_of(o1)
        assert lcp.is_prefix_of(o2)

    @given(orders(), orders())
    def test_lcp_maximal(self, o1, o2):
        lcp = longest_common_prefix(o1, o2)
        k = len(lcp)
        if k < min(len(o1), len(o2)):
            assert o1[k] != o2[k]


class TestPrefixInSet:
    def test_basic(self):
        o = SortOrder(["a", "b", "c"])
        assert prefix_in_set(o, {"a", "b"}) == SortOrder(["a", "b"])
        assert prefix_in_set(o, {"b", "c"}) == EMPTY_ORDER
        assert prefix_in_set(o, {"a", "c"}) == SortOrder(["a"])

    @given(orders(), st.sets(st.sampled_from(ATTRS)))
    def test_result_within_set(self, o, s):
        result = prefix_in_set(o, s)
        assert result.attrs() <= s
        assert result.is_prefix_of(o)


class TestPermutations:
    def test_arbitrary_is_deterministic(self):
        assert arbitrary_permutation({"b", "a"}) == arbitrary_permutation({"a", "b"})
        assert arbitrary_permutation({"b", "a"}) == SortOrder(["a", "b"])

    def test_all_permutations(self):
        perms = all_permutations({"a", "b", "c"})
        assert len(perms) == 6
        assert len(set(perms)) == 6
        for p in perms:
            assert p.attrs() == {"a", "b", "c"}

    def test_extend_to_set(self):
        o = SortOrder(["c"])
        extended = extend_to_set(o, {"a", "b", "c"})
        assert extended[0] == "c"
        assert extended.attrs() == {"a", "b", "c"}


class TestEquivalence:
    def test_same(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("ps_suppkey", "l_suppkey")
        assert eq.same("ps_suppkey", "l_suppkey")
        assert eq.same("l_suppkey", "ps_suppkey")
        assert not eq.same("ps_suppkey", "l_partkey")

    def test_transitivity(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("a", "b")
        eq.add_equivalence("b", "c")
        assert eq.same("a", "c")

    def test_canonical_deterministic(self):
        eq1 = AttributeEquivalence()
        eq1.add_equivalence("a", "b")
        eq2 = AttributeEquivalence()
        eq2.add_equivalence("b", "a")
        assert eq1.canonical("b") == eq2.canonical("b") == "a"

    def test_prefix_with_equivalence(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("ps_suppkey", "l_suppkey")
        eq.add_equivalence("ps_partkey", "l_partkey")
        guaranteed = SortOrder(["l_suppkey", "l_partkey"])
        required = SortOrder(["ps_suppkey", "ps_partkey"])
        assert guaranteed.satisfies(required, eq)
        assert longest_common_prefix(guaranteed, required, eq) == guaranteed

    def test_translate_and_project(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("a", "b")
        o = SortOrder(["a", "x"])
        assert o.translate({"a": "b"}) == SortOrder(["b", "x"])
        assert o.project_onto(["b", "x"], eq) == SortOrder(["b", "x"])

    def test_copy_isolated(self):
        eq = AttributeEquivalence()
        eq.add_equivalence("a", "b")
        clone = eq.copy()
        clone.add_equivalence("a", "c")
        assert clone.same("b", "c")
        assert not eq.same("b", "c")
