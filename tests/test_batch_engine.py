"""Batch container, block charger, sharded scans, exchange union and the
batched executor driver."""

import pytest

from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.engine import (
    BatchBuilder,
    BatchedExecutor,
    BlockCharger,
    ExchangeUnion,
    ExecutionContext,
    Filter,
    IOAccountant,
    Project,
    RowBatch,
    RowSource,
    ShardedScan,
    Sort,
    TableScan,
    batches_of,
    flatten_batches,
    shard_bounds,
    shard_scans,
)
from repro.expr import col
from repro.storage import Catalog, Schema, SystemParameters

SCHEMA = Schema.of(("a", "int", 8), ("b", "int", 8), ("v", "int", 8))


@pytest.fixture
def catalog(rng):
    cat = Catalog()
    rows = [(rng.randrange(8), rng.randrange(5), i) for i in range(500)]
    cat.create_table("t", SCHEMA, rows=rows, clustering_order=SortOrder(["a"]))
    return cat


class TestRowBatch:
    def test_container_basics(self):
        batch = RowBatch([(1, 2), (3, 4)])
        assert len(batch) == 2 and bool(batch)
        assert list(batch) == [(1, 2), (3, 4)]
        assert batch[1] == (3, 4)
        assert not RowBatch([])

    def test_columnar_accessors(self):
        batch = RowBatch([(1, 2, 3), (4, 5, 6)])
        assert list(batch.column(1)) == [2, 5]
        # Zero-copy contract: the same cached column object comes back.
        assert batch.column(1) is batch.column(1)
        assert batch.take([2, 0]) == [(3, 1), (6, 4)]
        assert batch.filter(lambda r: r[0] > 1).rows == [(4, 5, 6)]

    def test_batches_of_chunking(self):
        batches = list(batches_of(iter([(i,) for i in range(10)]), 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert list(flatten_batches(batches)) == [(i,) for i in range(10)]
        assert list(batches_of([], 4)) == []
        with pytest.raises(ValueError):
            list(batches_of([(1,)], 0))

    def test_batch_builder(self):
        out = BatchBuilder(3)
        emitted = [out.append((i,)) for i in range(4)]
        assert [e for e in emitted if e is not None][0].rows == [(0,), (1,), (2,)]
        tail = out.flush()
        assert tail.rows == [(3,)]
        assert out.flush() is None


class TestBlockCharger:
    def test_matches_progressive_charging(self):
        # Seed behaviour: one block per per_block rows from row 0.
        for n in (0, 1, 7, 8, 9, 40):
            io = IOAccountant()
            charger = BlockCharger(io, 8)
            for start in range(0, n, 3):  # arbitrary batching
                charger.charge_range(start, min(start + 3, n))
            assert io.blocks_read == -(-n // 8), n  # ceil

    def test_mid_block_shard_pays_opening_block(self):
        io = IOAccountant()
        BlockCharger(io, 8).charge_range(4, 12)  # spans blocks 0 and 1
        assert io.blocks_read == 2

    def test_no_double_charge(self):
        io = IOAccountant()
        charger = BlockCharger(io, 8)
        charger.charge_range(0, 8)
        charger.charge_range(8, 8)  # empty
        charger.charge_range(8, 16)
        assert io.blocks_read == 2


class TestShardedScans:
    def test_shard_bounds_cover_exactly(self):
        for n in (0, 1, 7, 100):
            for count in (1, 2, 3, 7):
                ranges = [shard_bounds(n, count, i) for i in range(count)]
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                    assert hi == lo

    def test_sharded_rows_concatenate_to_full_scan(self, catalog):
        table = catalog.table("t")
        full = TableScan(table).run(ExecutionContext(catalog))
        pieces = []
        for i in range(3):
            pieces.extend(ShardedScan(table, 3, i).run(ExecutionContext(catalog)))
        assert pieces == full

    def test_shard_validation(self, catalog):
        table = catalog.table("t")
        with pytest.raises(ValueError):
            ShardedScan(table, 1, 0)  # use TableScan for unsharded
        with pytest.raises(ValueError):
            TableScan(table, 4, 4)
        with pytest.raises(ValueError):
            TableScan(table, 0, 0)

    def test_exchange_union_preserves_contiguous_order(self, catalog):
        table = catalog.table("t")
        exchange = ExchangeUnion([ShardedScan(table, 4, i) for i in range(4)])
        assert exchange.output_order == table.clustering_order
        ctx = ExecutionContext(catalog, check_orders=True)
        out = Sort(exchange, SortOrder(["a", "b"])).run(ctx)
        assert [(r[0], r[1]) for r in out] == sorted((r[0], r[1]) for r in out)

    def test_exchange_union_unrelated_children_get_no_order(self):
        l = RowSource(SCHEMA, [(1, 1, 1)], SortOrder(["a"]))
        r = RowSource(SCHEMA, [(0, 0, 0)], SortOrder(["a"]))
        assert ExchangeUnion([l, r]).output_order == EMPTY_ORDER

    def test_exchange_union_rejects_mismatched_schemas(self, catalog):
        other = Schema.of(("x", "int", 8))
        with pytest.raises(ValueError):
            ExchangeUnion([TableScan(catalog.table("t")),
                           RowSource(other, [])])


class TestShardScansTransform:
    def make_pipeline(self, catalog):
        return Project(Filter(TableScan(catalog.table("t")), col("a").lt(6)),
                       ["a", "v"])

    def test_rewrite_replaces_scans(self, catalog):
        op = shard_scans(self.make_pipeline(catalog), 3)
        kinds = [o.name for o in op.walk()]
        assert "ExchangeUnion" in kinds
        assert kinds.count("ShardedScan") == 3
        assert "TableScan" not in kinds

    def test_rewrite_is_answer_preserving(self, catalog):
        expected = self.make_pipeline(catalog).run(ExecutionContext(catalog))
        sharded = shard_scans(self.make_pipeline(catalog), 3)
        assert sharded.run(ExecutionContext(catalog)) == expected

    def test_parallelism_one_is_identity(self, catalog):
        op = self.make_pipeline(catalog)
        assert shard_scans(op, 1) is op
        assert [o.name for o in op.walk()].count("TableScan") == 1

    def test_rewrite_leaves_original_tree_intact(self, catalog):
        op = self.make_pipeline(catalog)
        expected = op.run(ExecutionContext(catalog))
        sharded = shard_scans(op, 3)
        assert sharded is not op
        # The caller's tree still holds its unsharded scan and can be
        # re-run (and re-sharded differently) with unsharded I/O.
        assert [o.name for o in op.walk()].count("TableScan") == 1
        ctx = ExecutionContext(catalog)
        assert op.run(ctx) == expected
        assert ctx.io.blocks_read == catalog.table("t").num_blocks
        resharded = shard_scans(op, 5)
        assert [o.name for o in resharded.walk()].count("ShardedScan") == 5

    def test_tiny_tables_left_unsharded(self):
        cat = Catalog()
        cat.create_table("tiny", SCHEMA, rows=[(1, 1, 1), (2, 2, 2)])
        op = shard_scans(TableScan(cat.table("tiny")), 8)
        assert op.name == "TableScan"


class TestBatchedExecutor:
    def pipeline(self, catalog):
        return Project(Filter(TableScan(catalog.table("t")), col("a").lt(6)),
                       ["a", "v"])

    def test_serial_and_sharded_agree(self, catalog):
        baseline = BatchedExecutor().run(self.pipeline(catalog),
                                         ExecutionContext(catalog))
        for parallelism in (2, 4):
            got = BatchedExecutor(parallelism=parallelism).run(
                self.pipeline(catalog), ExecutionContext(catalog))
            assert got == baseline

    def test_threaded_shards_deterministic(self, catalog):
        baseline_ctx = ExecutionContext(catalog)
        baseline = BatchedExecutor().run(self.pipeline(catalog), baseline_ctx)
        ctx = ExecutionContext(catalog)
        got = BatchedExecutor(parallelism=4, use_threads=True).run(
            self.pipeline(catalog), ctx)
        assert got == baseline
        assert ctx.io.blocks_read >= baseline_ctx.io.blocks_read

    def test_threaded_exchange_charges_before_first_batch(self, catalog):
        """All shard work is folded into the parent context up front, so
        an early-terminating consumer still sees the I/O that ran."""
        table = catalog.table("t")
        exchange = ExchangeUnion([ShardedScan(table, 4, i) for i in range(4)],
                                 max_workers=4)
        ctx = ExecutionContext(catalog)
        first = next(iter(exchange.execute_batches(ctx)))
        assert len(first) > 0
        assert ctx.io.blocks_read >= table.num_blocks

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedExecutor(parallelism=0)


class TestSessionKnobs:
    def query(self):
        from repro.logical import Query
        return Query.table("t").where(col("a").lt(6)).select("a", "v")

    def test_session_parallelism_matches_serial(self, catalog):
        from repro.service import QuerySession
        session = QuerySession(catalog)
        serial = session.execute(self.query())
        sharded = session.execute(self.query(), parallelism=4)
        threaded = session.execute(self.query(), parallelism=4,
                                   use_threads=True)
        assert sharded == serial and threaded == serial
        assert session.metrics.executions == 3
        # Parallelism is part of the plan-cache key (the enforcer
        # placement depends on it): one plan per fan-out, and the
        # threaded run reuses the parallelism=4 entry.
        assert session.metrics.optimizations == 2
        assert session.cache.stats.hits == 1

    def test_session_batch_size_knob(self, catalog):
        from repro.service import QuerySession
        session = QuerySession(catalog)
        assert session.execute(self.query(), batch_size=1) == \
            session.execute(self.query(), batch_size=4096)
