"""End-to-end optimizer tests: enforcer placement, plan correctness vs
executed results, strategy dominance invariants, memoisation."""

import pytest

from repro.core.sort_order import EMPTY_ORDER, SortOrder
from repro.engine import ExecutionContext
from repro.expr import col
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.optimizer import Optimizer, OptimizerConfig
from repro.storage import Catalog, Schema, SystemParameters, TableStats
from tests.conftest import reference_query3

ALL_STRATEGIES = ["pyro", "pyro-p", "pyro-o", "pyro-o-", "pyro-e"]


@pytest.fixture
def stats_catalog():
    cat = Catalog()
    cat.create_table(
        "r", Schema.of(("a", "int", 8), ("b", "int", 8), ("p", "str", 80)),
        stats=TableStats(2_000_000, {"a": 50, "b": 5000}),
        clustering_order=SortOrder(["a"]))
    cat.create_table(
        "s", Schema.of(("x", "int", 8), ("y", "int", 8), ("q", "str", 60)),
        stats=TableStats(1_000_000, {"x": 50, "y": 5000}),
        clustering_order=SortOrder(["y", "x"]))
    return cat


class TestEnforcers:
    def test_satisfied_requirement_no_sort(self, stats_catalog):
        q = Query.table("r").order_by("a")
        plan = Optimizer(stats_catalog).optimize(q)
        assert plan.op in ("TableScan", "ClusteringIndexScan")

    def test_partial_sort_enforcer_used(self, stats_catalog):
        q = Query.table("r").order_by("a", "b")
        plan = Optimizer(stats_catalog).optimize(q)
        assert plan.op == "PartialSort"
        assert plan.arg("prefix") == SortOrder(["a"])
        assert plan.children[0].op == "TableScan"

    def test_full_sort_when_no_prefix(self, stats_catalog):
        q = Query.table("r").order_by("b")
        plan = Optimizer(stats_catalog).optimize(q)
        assert plan.op == "Sort"

    def test_partial_disabled_uses_full_sort(self, stats_catalog):
        q = Query.table("r").order_by("a", "b")
        plan = Optimizer(stats_catalog, strategy="pyro-o-").optimize(q)
        assert plan.op == "Sort"

    def test_partial_sort_cheaper_than_full(self, stats_catalog):
        q = Query.table("r").order_by("a", "b")
        partial = Optimizer(stats_catalog).optimize(q).total_cost
        full = Optimizer(stats_catalog, strategy="pyro-o-").optimize(q).total_cost
        assert partial < full

    def test_fd_reduced_requirement(self):
        cat = Catalog()
        cat.create_table(
            "t", Schema.of("k1", "k2", "v"),
            stats=TableStats(10_000, {"k1": 100, "k2": 100}),
            clustering_order=SortOrder(["k1", "k2"]),
            primary_key=["k1", "k2"])
        # ORDER BY (k1, k2, v): v is determined by the key → no sort at all.
        plan = Optimizer(cat).optimize(Query.table("t").order_by("k1", "k2", "v"))
        assert plan.op in ("TableScan", "ClusteringIndexScan")


class TestStrategyDominance:
    """Cost invariants that must hold query-independently."""

    def queries(self, cat):
        yield Query.table("r").join("s", on=[("a", "x"), ("b", "y")]).order_by("a")
        yield (Query.table("r").join("s", on=[("a", "x"), ("b", "y")])
               .group_by(["a", "b"], count_star("n")))
        yield Query.table("r").join("s", on=[("b", "y"), ("a", "x")])

    def test_pyro_e_lower_bound(self, stats_catalog):
        """Exhaustive enumeration is never beaten by any other strategy."""
        for q in self.queries(stats_catalog):
            exhaustive = Optimizer(stats_catalog, strategy="pyro-e",
                                   refine=False).optimize(q).total_cost
            for s in ("pyro", "pyro-p", "pyro-o"):
                other = Optimizer(stats_catalog, strategy=s,
                                  refine=False).optimize(q).total_cost
                assert exhaustive <= other * (1 + 1e-9), (s, q)

    def test_pyro_o_at_least_as_good_as_arbitrary(self, stats_catalog):
        for q in self.queries(stats_catalog):
            pyro_o = Optimizer(stats_catalog, strategy="pyro-o",
                               refine=False).optimize(q).total_cost
            pyro = Optimizer(stats_catalog, strategy="pyro",
                             refine=False).optimize(q).total_cost
            assert pyro_o <= pyro * (1 + 1e-9)

    def test_partial_sort_never_hurts(self, stats_catalog):
        for q in self.queries(stats_catalog):
            with_partial = Optimizer(stats_catalog, strategy="pyro-o",
                                     refine=False).optimize(q).total_cost
            without = Optimizer(stats_catalog, strategy="pyro-o-",
                                refine=False).optimize(q).total_cost
            assert with_partial <= without * (1 + 1e-9)

    def test_refinement_never_regresses(self, stats_catalog):
        for q in self.queries(stats_catalog):
            for s in ALL_STRATEGIES:
                unrefined = Optimizer(stats_catalog, strategy=s,
                                      refine=False).optimize(q).total_cost
                refined = Optimizer(stats_catalog, strategy=s,
                                    refine=True).optimize(q).total_cost
                assert refined <= unrefined * (1 + 1e-9)


class TestPlanExecution:
    """Every strategy's plan must produce the same, correct result."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_query3_results_identical(self, tpch_mini, query3, strategy):
        plan = Optimizer(tpch_mini, strategy=strategy).optimize(query3)
        ctx = ExecutionContext(tpch_mini, check_orders=True)
        rows = plan.execute(tpch_mini, ctx)
        expected = reference_query3(tpch_mini)
        assert sorted(rows) == sorted(expected)
        partkeys = [r[1] for r in rows]
        assert partkeys == sorted(partkeys)  # ORDER BY ps_partkey honoured

    def test_join_plan_executes(self, small_catalog):
        q = (Query.table("left").join("right", on=[("a", "c"), ("b", "d")])
             .select("a", "b", "x", "y").order_by("a", "b"))
        plan = Optimizer(small_catalog).optimize(q)
        rows = plan.execute(small_catalog,
                            ExecutionContext(small_catalog, check_orders=True))
        lrows = small_catalog.table("left").rows
        rrows = small_catalog.table("right").rows
        expected = sorted((l[0], l[1], l[2], r[2]) for l in lrows for r in rrows
                          if (l[0], l[1]) == (r[0], r[1]))
        assert sorted(rows) == expected

    def test_distinct_plan(self, small_catalog):
        q = Query.table("left").select("a", "b").distinct()
        plan = Optimizer(small_catalog).optimize(q)
        rows = plan.execute(small_catalog)
        expected = {(r[0], r[1]) for r in small_catalog.table("left").rows}
        assert set(rows) == expected
        assert len(rows) == len(expected)

    def test_union_plan(self, small_catalog):
        q = Query.table("left").select("a", "b").union(
            Query.table("right").select("c", "d"))
        plan = Optimizer(small_catalog).optimize(q)
        rows = plan.execute(small_catalog)
        l = {(r[0], r[1]) for r in small_catalog.table("left").rows}
        r = {(x[0], x[1]) for x in small_catalog.table("right").rows}
        assert set(rows) == l | r
        assert len(rows) == len(l | r)

    def test_limit_plan(self, small_catalog):
        q = Query.table("left").order_by("a", "b").limit(5)
        plan = Optimizer(small_catalog).optimize(q)
        rows = plan.execute(small_catalog)
        assert len(rows) == 5
        keys = [(r[0], r[1]) for r in rows]
        assert keys == sorted((r[0], r[1])
                              for r in small_catalog.table("left").rows)[:5]

    def test_left_outer_join(self, small_catalog):
        q = Query.table("left").left_outer_join("right", on=[("a", "c"),
                                                             ("b", "d")])
        plan = Optimizer(small_catalog).optimize(q)
        rows = plan.execute(small_catalog)
        lrows = small_catalog.table("left").rows
        rrows = small_catalog.table("right").rows
        expected = []
        for l in lrows:
            matches = [r for r in rrows if (l[0], l[1]) == (r[0], r[1])]
            if matches:
                expected.extend(l + r for r in matches)
            else:
                expected.append(l + (None, None, None))
        assert sorted(rows, key=repr) == sorted(expected, key=repr)


class TestPlanStructure:
    def test_covering_index_chosen_when_narrow(self, tpch_mini, query3):
        plan = Optimizer(tpch_mini, enable_hash_join=False,
                         enable_hash_aggregate=False).optimize(query3)
        scans = plan.find_all("CoveringIndexScan")
        assert len(scans) == 2  # both sides read from covering indexes

    def test_merge_join_on_suppkey_first(self, query3):
        """Paper Fig. 10(b): the cost-based choice is (suppkey, partkey),
        exploiting both covering indexes' partial order."""
        from repro.workloads import add_query3_indexes, tpch_stats_catalog
        cat = tpch_stats_catalog()
        add_query3_indexes(cat)
        plan = Optimizer(cat, enable_hash_join=False,
                         enable_hash_aggregate=False).optimize(query3)
        joins = plan.find_all("MergeJoin")
        assert len(joins) == 1
        assert joins[0].order.as_tuple in (("ps_suppkey", "ps_partkey"),
                                           ("l_suppkey", "l_partkey"))
        partial_sorts = plan.find_all("PartialSort")
        assert len(partial_sorts) >= 2

    def test_memo_reuses_subgoals(self, stats_catalog):
        from repro.logical import Annotator
        from repro.optimizer.volcano import OptimizationRun
        from repro.core.interesting import make_strategy
        q = Query.table("r").join("s", on=[("a", "x"), ("b", "y")])
        strategy, _ = make_strategy("pyro-e")
        run = OptimizationRun(stats_catalog, q.expr, strategy, OptimizerConfig())
        run.optimize_goal(q.expr, EMPTY_ORDER)
        first = run.goals_examined
        run.optimize_goal(q.expr, EMPTY_ORDER)
        assert run.goals_examined == first  # fully memoised

    def test_output_schema_matches_logical(self, tpch_mini, query3):
        plan = Optimizer(tpch_mini).optimize(query3)
        assert plan.schema.names == ("ps_suppkey", "ps_partkey",
                                     "ps_availqty", "sum_qty")

    def test_explain_contains_costs(self, stats_catalog):
        q = Query.table("r").order_by("a", "b")
        text = Optimizer(stats_catalog).optimize(q).explain()
        assert "cost=" in text and "PartialSort" in text

    def test_unknown_option_rejected(self, stats_catalog):
        with pytest.raises(TypeError):
            Optimizer(stats_catalog, bogus_flag=True)

    def test_cost_of_helper(self, stats_catalog):
        q = Query.table("r").order_by("b")
        assert Optimizer(stats_catalog).cost_of(q) > 0


class TestPerSubtreeEquivalenceScoping:
    """Equivalence classes, like FDs since the fuzz-suite fixes, must be
    scoped to the subtree they were established in: a join equality in
    one union branch says nothing about a name-colliding sibling branch.
    The logical trees here are built with raw algebra nodes — the Query
    builder cannot express two branches that reuse column names."""

    def colliding_union(self):
        """Left branch joins on a = c (so a ≡ c holds *there*); the right
        branch scans t3(a, c) where a ≠ c on most rows and only c is
        clustered.  ORDER BY (a, c) must fully sort the right branch."""
        import random

        from repro.expr.expressions import JoinPredicate
        from repro.logical.algebra import (
            BaseRelation,
            Join,
            OrderBy,
            Project,
            Union,
        )

        rng = random.Random(7)
        catalog = Catalog()
        catalog.create_table(
            "t1", Schema.of(("a", "int", 8), ("b", "int", 8)),
            rows=[(i % 6, i) for i in range(30)],
            clustering_order=SortOrder(["a"]))
        catalog.create_table(
            "t2", Schema.of(("c", "int", 8), ("d", "int", 8)),
            rows=[(i % 6, i * 2) for i in range(12)],
            clustering_order=SortOrder(["c"]))
        catalog.create_table(
            "t3", Schema.of(("a", "int", 8), ("c", "int", 8)),
            rows=sorted([(rng.randrange(8), i % 7) for i in range(40)],
                        key=lambda r: r[1]),
            clustering_order=SortOrder(["c"]))
        left = Project(Join(BaseRelation("t1"), BaseRelation("t2"),
                            JoinPredicate([("a", "c")])), ("a", "c"))
        expr = OrderBy(Union(left, BaseRelation("t3")),
                       SortOrder(["a", "c"]))
        lrows = {(a, c) for a, _ in catalog.table("t1").rows
                 for c, _ in catalog.table("t2").rows if a == c}
        expected = sorted(lrows | set(catalog.table("t3").rows))
        return catalog, expr, expected

    def test_name_colliding_sibling_union_branches(self):
        """Regression: with whole-query classes the sibling branch's
        a ≡ c reduced the root requirement to (a) and the right branch
        was never sorted on c."""
        catalog, expr, expected = self.colliding_union()
        plan = Optimizer(catalog).optimize(expr)
        ctx = ExecutionContext(catalog, check_orders=True)
        assert plan.execute(catalog, ctx) == expected

    def test_equivalence_valid_in_both_branches_still_transfers(self):
        """The intersection must not throw away facts that do hold in
        both branches: identical join branches keep a ≡ c, so neither
        branch re-sorts for ORDER BY (a, c)."""
        from repro.expr.expressions import JoinPredicate
        from repro.logical.algebra import (
            BaseRelation,
            Join,
            OrderBy,
            Project,
            Union,
        )

        catalog = Catalog()
        catalog.create_table(
            "t1", Schema.of(("a", "int", 8), ("b", "int", 8)),
            rows=[(i % 6, i) for i in range(30)],
            clustering_order=SortOrder(["a"]))
        catalog.create_table(
            "t2", Schema.of(("c", "int", 8), ("d", "int", 8)),
            rows=[(i % 6, i * 2) for i in range(12)],
            clustering_order=SortOrder(["c"]))

        def branch():
            return Project(Join(BaseRelation("t1"), BaseRelation("t2"),
                                JoinPredicate([("a", "c")])), ("a", "c"))

        expr = OrderBy(Union(branch(), branch()), SortOrder(["a", "c"]))
        plan = Optimizer(catalog).optimize(expr)
        assert plan.find_all("Sort") == []  # both branches deliver (a)≡(a, c)
        ctx = ExecutionContext(catalog, check_orders=True)
        rows = plan.execute(catalog, ctx)
        assert rows == sorted({(a, c) for a, _ in catalog.table("t1").rows
                               for c, _ in catalog.table("t2").rows
                               if a == c})

    def test_union_intersects_fds_across_branches(self):
        """query_fds at a Union keeps only dependencies both branches
        entail (cross-branch FD leakage at the union level)."""
        from repro.logical.algebra import BaseRelation, Select, Union
        from repro.logical.fds import query_fds

        catalog, _, _ = self.colliding_union()
        left = Select(BaseRelation("t3"), col("a").eq(3))  # a constant here
        right = BaseRelation("t3")
        union_fds = query_fds(catalog, Union(left, right))
        assert union_fds.reduce_order(SortOrder(["a", "c"])) == \
            SortOrder(["a", "c"])  # the sibling's constant must not leak
        left_fds = query_fds(catalog, left)
        assert left_fds.reduce_order(SortOrder(["a", "c"])) == \
            SortOrder(["c"])  # within the branch it still applies
