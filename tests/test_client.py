"""The cooperative client: transient classification, jittered backoff,
token-bucket rate limiting, the sync and async retry loops, and a real
round trip through an overloaded :class:`QueryServer`."""

import asyncio
import random
import threading
import time

import pytest

from repro.logical import Query
from repro.service import (
    CircuitOpen,
    QueryRejected,
    QueryResult,
    QueryServer,
    QueryTimeout,
    RetriesExhausted,
    RetryingClient,
    RetryPolicy,
    TokenBucket,
    is_transient,
)

from tests.test_server import _BlockingBackend, serving_catalog


def _ok(rows=(("ok",),)):
    return QueryResult(rows=list(rows), from_cache=False,
                       latency_seconds=0.0, backend="scripted")


class _ScriptedServer:
    """Stands in for QueryServer: pops one scripted outcome per call
    (an exception instance to raise, or a QueryResult to return)."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def _next(self, query, required_order, kwargs):
        self.calls.append((query, required_order, dict(kwargs)))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def execute(self, query, required_order=None, **kwargs):
        return self._next(query, required_order, kwargs)

    async def submit(self, query, required_order=None, **kwargs):
        return self._next(query, required_order, kwargs)


class _FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestClassification:
    def test_rejections_and_timeouts_are_transient(self):
        assert is_transient(QueryRejected("full", retry_after=0.2,
                                          reason="queue_full"))
        assert is_transient(CircuitOpen("open", retry_after=0.5))
        assert is_transient(QueryTimeout("deadline"))

    def test_plan_errors_are_permanent(self):
        assert not is_transient(KeyError("no such table"))
        assert not is_transient(ValueError("unbound parameter"))
        assert not is_transient(RuntimeError("backend failure"))


class TestRetryPolicy:
    def test_backoff_full_jitter_within_growing_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0)
        rng = random.Random(42)
        for attempt in range(8):
            cap = min(1.0, 0.1 * 2.0 ** attempt)
            for _ in range(50):
                delay = policy.backoff(attempt, None, rng)
                assert 0.0 <= delay <= cap

    def test_backoff_honours_retry_after_as_floor(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=1.0)
        rng = random.Random(0)
        assert all(policy.backoff(0, 0.5, rng) >= 0.5 for _ in range(20))

    def test_backoff_caps_pathological_retry_after(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.25)
        assert policy.backoff(0, 3600.0, random.Random(0)) <= 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(rate_limit=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(burst=0)


class TestTokenBucket:
    def test_burst_then_paced(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.reserve() == 0.0
        assert bucket.reserve() == 0.0
        # Bucket empty: the third caller waits one token period …
        assert bucket.reserve() == pytest.approx(0.5)
        # … and the debt compounds for the fourth (reservation style).
        assert bucket.reserve() == pytest.approx(1.0)

    def test_refill_capped_at_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        bucket.reserve(), bucket.reserve()
        clock.now += 100.0  # long idle never accumulates beyond burst
        assert bucket.reserve() == 0.0
        assert bucket.reserve() == 0.0
        assert bucket.reserve() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestSyncRetryLoop:
    def test_retries_transient_then_succeeds(self):
        server = _ScriptedServer([
            QueryRejected("full", retry_after=0.2, reason="queue_full"),
            QueryTimeout("deadline"),
            _ok(),
        ])
        sleeps = []
        client = RetryingClient(server, RetryPolicy(base_delay=0.05,
                                                    max_delay=1.0),
                                rng=random.Random(7), sleep=sleeps.append)
        result = client.execute(Query.table("t"))
        assert result.rows == [("ok",)]
        # First retry honoured the 0.2s retry_after floor.
        assert len(sleeps) == 2 and sleeps[0] >= 0.2
        stats = client.stats()
        assert stats["attempts"] == 3
        assert stats["retries"] == 2
        assert stats["successes"] == 1
        assert stats["backoff_seconds"] == pytest.approx(sum(sleeps))

    def test_permanent_error_reraised_unchanged_no_retry(self):
        boom = KeyError("no such table")
        server = _ScriptedServer([boom])
        sleeps = []
        client = RetryingClient(server, sleep=sleeps.append)
        with pytest.raises(KeyError) as exc_info:
            client.execute(Query.table("missing"))
        assert exc_info.value is boom
        assert sleeps == []
        assert client.stats()["permanent_failures"] == 1
        assert len(server.calls) == 1

    def test_exhaustion_raises_retries_exhausted_with_last_error(self):
        last = QueryRejected("still full", retry_after=0.1,
                             reason="queue_full")
        server = _ScriptedServer([
            QueryRejected("full", retry_after=0.1, reason="queue_full"),
            QueryRejected("full", retry_after=0.1, reason="queue_full"),
            last,
        ])
        client = RetryingClient(server, RetryPolicy(max_attempts=3),
                                sleep=lambda _: None)
        with pytest.raises(RetriesExhausted) as exc_info:
            client.execute(Query.table("t"))
        assert exc_info.value.last_error is last
        stats = client.stats()
        assert stats["attempts"] == 3
        assert stats["giveups"] == 1
        assert stats["successes"] == 0

    def test_tenant_default_applied_but_overridable(self):
        server = _ScriptedServer([_ok(), _ok()])
        client = RetryingClient(server, tenant="alice")
        client.execute(Query.table("t"))
        client.execute(Query.table("t"), tenant="bob")
        assert server.calls[0][2]["tenant"] == "alice"
        assert server.calls[1][2]["tenant"] == "bob"

    def test_rate_limit_paces_attempts(self):
        server = _ScriptedServer([_ok() for _ in range(3)])
        sleeps = []
        client = RetryingClient(
            server, RetryPolicy(rate_limit=10.0, burst=1),
            sleep=sleeps.append)
        clock = _FakeClock()
        client.bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        for _ in range(3):
            client.execute(Query.table("t"))
        # First attempt rode the burst; the next two each waited 0.1s.
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]
        stats = client.stats()
        assert stats["rate_limit_waits"] == 2
        assert stats["rate_limit_wait_seconds"] == pytest.approx(0.3)


class TestAsyncRetryLoop:
    def test_submit_retries_then_succeeds(self):
        server = _ScriptedServer([
            CircuitOpen("open", retry_after=0.3),
            _ok(),
        ])
        sleeps = []

        async def fake_sleep(seconds):
            sleeps.append(seconds)

        client = RetryingClient(server,
                                RetryPolicy(base_delay=0.05, max_delay=1.0),
                                tenant="alice", rng=random.Random(3),
                                async_sleep=fake_sleep)
        result = asyncio.run(client.submit(Query.table("t")))
        assert result.rows == [("ok",)]
        assert len(sleeps) == 1 and sleeps[0] >= 0.3
        assert server.calls[0][2]["tenant"] == "alice"
        stats = client.stats()
        assert stats["attempts"] == 2 and stats["retries"] == 1

    def test_submit_permanent_error_reraised(self):
        boom = ValueError("unbound parameter")
        client = RetryingClient(_ScriptedServer([boom]))
        with pytest.raises(ValueError):
            asyncio.run(client.submit(Query.table("t")))
        assert client.stats()["permanent_failures"] == 1

    def test_sync_and_async_share_one_budget(self):
        server = _ScriptedServer([_ok(), _ok()])
        client = RetryingClient(server)
        client.execute(Query.table("t"))
        asyncio.run(client.submit(Query.table("t")))
        stats = client.stats()
        assert stats["attempts"] == 2 and stats["successes"] == 2


class TestAgainstRealServer:
    def test_client_rides_out_saturation_raw_caller_rejected(self):
        """While the queue is saturated a raw caller is rejected with a
        retry hint, but a RetryingClient quietly backs off and lands the
        query once capacity frees."""
        catalog = serving_catalog(num_rows=200, seed=3)
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=1) as server:
            async def scenario():
                loop = asyncio.get_running_loop()
                first = asyncio.ensure_future(server.submit(query))
                await loop.run_in_executor(None, backend.started.wait, 10)
                second = asyncio.ensure_future(server.submit(query))
                await asyncio.sleep(0.05)
                # Queue full: the uncooperative caller bounces …
                with pytest.raises(QueryRejected) as exc_info:
                    await server.submit(query)
                assert exc_info.value.retry_after > 0.0

                # … while the cooperative client retries in a thread.
                client = RetryingClient(
                    server, RetryPolicy(max_attempts=12, base_delay=0.01,
                                        max_delay=0.05))
                done = loop.run_in_executor(None, client.execute, query)
                await asyncio.sleep(0.05)
                backend.release.set()
                result = await done
                await asyncio.gather(first, second)
                return client, result

            client, result = asyncio.run(scenario())
            assert result.rows == [("done",)]
            stats = client.stats()
            assert stats["successes"] == 1
            assert stats["retries"] >= 1
            assert stats["giveups"] == 0
