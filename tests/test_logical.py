"""Logical algebra, query builder, annotator, and FD tests."""

import pytest

from repro.core.sort_order import SortOrder
from repro.expr import col
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import (
    Annotator,
    BaseRelation,
    FDSet,
    GroupBy,
    Join,
    OrderBy,
    Project,
    Query,
    Select,
    query_fds,
)
from repro.storage import Catalog, Schema, TableStats


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table("t", Schema.of(("a", "int", 8), ("b", "int", 8),
                                    ("c", "int", 8)),
                     stats=TableStats(1000, {"a": 10, "b": 100}),
                     clustering_order=SortOrder(["a"]), primary_key=["a", "b"])
    cat.create_table("u", Schema.of(("x", "int", 8), ("y", "int", 8)),
                     stats=TableStats(500, {"x": 10, "y": 50}))
    return cat


class TestBuilder:
    def test_chain_produces_expected_tree(self):
        q = (Query.table("t")
             .where(col("c").eq(1))
             .join("u", on=[("a", "x")])
             .group_by(["a"], count_star("n"))
             .order_by("a"))
        assert isinstance(q.expr, OrderBy)
        assert isinstance(q.expr.child, GroupBy)
        assert isinstance(q.expr.child.child, Join)
        assert isinstance(q.expr.child.child.left, Select)
        assert isinstance(q.expr.child.child.left.child, BaseRelation)

    def test_outer_joins(self):
        q = Query.table("t").full_outer_join("u", on=[("a", "x")])
        assert q.expr.join_type == "full"
        q2 = Query.table("t").left_outer_join("u", on=[("a", "x")])
        assert q2.expr.join_type == "left"

    def test_nodes_hashable(self):
        q1 = Query.table("t").where(col("a").eq(1)).expr
        q2 = Query.table("t").where(col("a").eq(1)).expr
        assert q1 == q2
        assert hash(q1) == hash(q2)
        assert len({q1, q2}) == 1

    def test_pretty(self):
        text = Query.table("t").join("u", on=[("a", "x")]).pretty()
        assert "Join" in text and "Relation(t)" in text

    def test_bad_source(self):
        with pytest.raises(TypeError):
            Query.table("t").join(42, on=[("a", "x")])


class TestAnnotator:
    def test_schemas(self, catalog):
        q = Query.table("t").join("u", on=[("a", "x")]).select("a", "y")
        ann = Annotator(catalog, q.expr)
        assert ann.schema_of(q.expr).names == ("a", "y")
        join_schema = ann.schema_of(q.expr.child)
        assert join_schema.names == ("a", "b", "c", "x", "y")

    def test_equivalences_from_joins(self, catalog):
        q = Query.table("t").join("u", on=[("a", "x")])
        ann = Annotator(catalog, q.expr)
        assert ann.eq.same("a", "x")
        assert not ann.eq.same("a", "y")

    def test_used_attrs(self, catalog):
        q = (Query.table("t").join("u", on=[("a", "x")])
             .where(col("c").eq(1)).select("a", "y"))
        ann = Annotator(catalog, q.expr)
        assert ann.used_attrs("t") == {"a", "c"}
        assert ann.used_attrs("u") == {"x", "y"}

    def test_join_cardinality(self, catalog):
        q = Query.table("t").join("u", on=[("a", "x")])
        ann = Annotator(catalog, q.expr)
        # 1000 × 500 / max(10, 10)
        assert ann.stats_of(q.expr).N == pytest.approx(50_000)

    def test_groupby_cardinality(self, catalog):
        q = Query.table("t").group_by(["a"], count_star("n"))
        ann = Annotator(catalog, q.expr)
        assert ann.stats_of(q.expr).N == pytest.approx(10)

    def test_select_scaling(self, catalog):
        q = Query.table("t").where(col("a").eq(1))
        ann = Annotator(catalog, q.expr)
        assert ann.stats_of(q.expr).N == pytest.approx(100)

    def test_limit_caps(self, catalog):
        q = Query.table("t").limit(7)
        ann = Annotator(catalog, q.expr)
        assert ann.stats_of(q.expr).N == 7

    def test_outer_join_rows_at_least_input(self, catalog):
        q = Query.table("t").full_outer_join("u", on=[("b", "y")])
        ann = Annotator(catalog, q.expr)
        assert ann.stats_of(q.expr).N >= 1000


class TestFDs:
    def test_closure(self):
        fds = FDSet()
        fds.add_key(["a"], ["a", "b", "c"])
        assert fds.closure({"a"}) == {"a", "b", "c"}
        assert fds.closure({"b"}) == {"b"}

    def test_transitive_closure(self):
        fds = FDSet()
        fds.add_key(["a"], ["a", "b"])
        fds.add_key(["b"], ["b", "c"])
        assert "c" in fds.closure({"a"})

    def test_equivalence(self):
        fds = FDSet()
        fds.add_equivalence("x", "y")
        assert fds.determines({"x"}, "y")
        assert fds.determines({"y"}, "x")

    def test_constants(self):
        fds = FDSet()
        fds.add_constant("status")
        assert fds.determines(set(), "status")
        assert fds.reduce_order(SortOrder(["status", "a"])) == SortOrder(["a"])

    def test_reduce_order(self):
        fds = FDSet()
        fds.add_key(["pk", "sk"], ["pk", "sk", "avail"])
        reduced = fds.reduce_order(SortOrder(["pk", "sk", "avail"]))
        assert reduced == SortOrder(["pk", "sk"])
        # Order of determinants matters: avail first cannot be dropped.
        kept = fds.reduce_order(SortOrder(["avail", "pk", "sk"]))
        assert kept == SortOrder(["avail", "pk", "sk"])

    def test_reduce_group_columns(self):
        fds = FDSet()
        fds.add_key(["pk", "sk"], ["pk", "sk", "avail"])
        reduced = fds.reduce_group_columns(["avail", "pk", "sk"])
        assert set(reduced) == {"pk", "sk"}

    def test_query_fds_from_predicate(self, catalog):
        q = (Query.table("t").join("u", on=[("a", "x")])
             .where(col("c").eq(5)))
        fds = query_fds(catalog, q.expr)
        assert fds.determines({"a"}, "x")       # join equivalence
        assert fds.determines(set(), "c")       # constant filter
        assert fds.determines({"a", "b"}, "c")  # primary key of t

    def test_outer_join_equalities_not_fds(self, catalog):
        """FULL OUTER join equalities do not hold on padded rows."""
        q = Query.table("t").full_outer_join("u", on=[("a", "x")])
        fds = query_fds(catalog, q.expr)
        assert not fds.determines({"a"}, "x")
