"""Join operator tests: merge vs hash vs nested loops, inner/left/full,
NULL semantics, order guarantees, Grace spill charging."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sort_order import SortOrder
from repro.engine import (
    ExecutionContext,
    HashJoin,
    MergeJoin,
    NestedLoopsJoin,
    RowSource,
    Sort,
)
from repro.expr import JoinPredicate
from repro.storage import Schema, SystemParameters

LEFT = Schema.of(("a", "int", 8), ("b", "int", 8), ("x", "int", 8))
RIGHT = Schema.of(("c", "int", 8), ("d", "int", 8), ("y", "int", 8))
PRED = JoinPredicate([("a", "c"), ("b", "d")])


def reference_join(lrows, rrows, join_type="inner"):
    """Nested-loop reference with SQL NULL semantics."""
    out = []
    matched_r = set()
    for l in lrows:
        hit = False
        for j, r in enumerate(rrows):
            if (l[0] is not None and l[1] is not None
                    and l[0] == r[0] and l[1] == r[1]):
                out.append(l + r)
                hit = True
                matched_r.add(j)
        if not hit and join_type in ("left", "full"):
            out.append(l + (None, None, None))
    if join_type == "full":
        for j, r in enumerate(rrows):
            if j not in matched_r:
                out.append((None, None, None) + r)
    return sorted(out, key=repr)


def sorted_source(schema, rows, cols):
    src = RowSource(schema, list(rows))
    return Sort(src, SortOrder(cols))


def run_merge(lrows, rrows, join_type="inner"):
    op = MergeJoin(sorted_source(LEFT, lrows, ["a", "b"]),
                   sorted_source(RIGHT, rrows, ["c", "d"]), PRED, join_type)
    return sorted(op.run(ExecutionContext(check_orders=True)), key=repr)


def run_hash(lrows, rrows, join_type="inner"):
    op = HashJoin(RowSource(LEFT, list(lrows)), RowSource(RIGHT, list(rrows)),
                  PRED, join_type)
    return sorted(op.run(ExecutionContext()), key=repr)


ROWS = st.lists(st.tuples(st.one_of(st.none(), st.integers(0, 4)),
                          st.one_of(st.none(), st.integers(0, 3)),
                          st.integers(0, 99)), max_size=40)


class TestJoinCorrectness:
    @pytest.mark.parametrize("join_type", ["inner", "left", "full"])
    def test_small_example(self, join_type):
        lrows = [(1, 1, 10), (1, 2, 11), (2, 1, 12), (None, 1, 13)]
        rrows = [(1, 1, 20), (1, 1, 21), (3, 3, 22), (None, 1, 23)]
        expected = reference_join(lrows, rrows, join_type)
        assert run_merge(lrows, rrows, join_type) == expected
        assert run_hash(lrows, rrows, join_type) == expected

    @given(ROWS, ROWS)
    @settings(max_examples=80, deadline=None)
    def test_merge_inner_matches_reference(self, lrows, rrows):
        assert run_merge(lrows, rrows) == reference_join(lrows, rrows)

    @given(ROWS, ROWS)
    @settings(max_examples=60, deadline=None)
    def test_merge_full_matches_reference(self, lrows, rrows):
        assert run_merge(lrows, rrows, "full") == \
            reference_join(lrows, rrows, "full")

    @given(ROWS, ROWS)
    @settings(max_examples=60, deadline=None)
    def test_merge_left_matches_reference(self, lrows, rrows):
        assert run_merge(lrows, rrows, "left") == \
            reference_join(lrows, rrows, "left")

    @given(ROWS, ROWS)
    @settings(max_examples=60, deadline=None)
    def test_hash_agrees_with_merge(self, lrows, rrows):
        for jt in ("inner", "left", "full"):
            assert run_hash(lrows, rrows, jt) == run_merge(lrows, rrows, jt)

    def test_nested_loops_matches_reference(self):
        rng = random.Random(8)
        lrows = [(rng.randrange(5), rng.randrange(3), i) for i in range(60)]
        rrows = [(rng.randrange(5), rng.randrange(3), i) for i in range(40)]
        op = NestedLoopsJoin(RowSource(LEFT, lrows), RowSource(RIGHT, rrows), PRED)
        assert sorted(op.run(ExecutionContext()), key=repr) == \
            reference_join(lrows, rrows)


class TestJoinProperties:
    def test_merge_output_order_guarantee(self):
        rng = random.Random(9)
        lrows = [(rng.randrange(6), rng.randrange(4), i) for i in range(100)]
        rrows = [(rng.randrange(6), rng.randrange(4), i) for i in range(80)]
        op = MergeJoin(sorted_source(LEFT, lrows, ["a", "b"]),
                       sorted_source(RIGHT, rrows, ["c", "d"]), PRED)
        assert op.output_order == SortOrder(["a", "b"])
        out = op.run(ExecutionContext(check_orders=True))
        keys = [(r[0], r[1]) for r in out]
        assert keys == sorted(keys)

    def test_merge_requires_sorted_inputs(self):
        lrows = [(2, 1, 0), (1, 1, 1)]  # unsorted; right key larger so the
        # merge must consume the whole left stream and hit the violation
        op = MergeJoin(RowSource(LEFT, lrows, SortOrder(["a", "b"])),
                       sorted_source(RIGHT, [(3, 1, 5)], ["c", "d"]), PRED)
        with pytest.raises(AssertionError):
            op.run(ExecutionContext(check_orders=True))

    def test_permuted_pair_order(self):
        """Merge join must respect the *permutation* in the predicate."""
        pred_ba = JoinPredicate([("b", "d"), ("a", "c")])
        rng = random.Random(10)
        lrows = [(rng.randrange(5), rng.randrange(5), i) for i in range(50)]
        rrows = [(rng.randrange(5), rng.randrange(5), i) for i in range(50)]
        op = MergeJoin(sorted_source(LEFT, lrows, ["b", "a"]),
                       sorted_source(RIGHT, rrows, ["d", "c"]), pred_ba)
        out = sorted(op.run(ExecutionContext(check_orders=True)), key=repr)
        assert out == reference_join(lrows, rrows)

    def test_nested_loops_preserves_outer_order(self):
        lrows = [(i // 10, i % 10, i) for i in range(50)]
        op = NestedLoopsJoin(RowSource(LEFT, lrows, SortOrder(["a", "b"])),
                             RowSource(RIGHT, [(i // 10, i % 10, i)
                                               for i in range(30)]), PRED)
        assert op.output_order == SortOrder(["a", "b"])
        out = op.run(ExecutionContext())
        keys = [(r[0], r[1]) for r in out]
        assert keys == sorted(keys)

    def test_hash_join_grace_spill_charged(self):
        params = SystemParameters(block_size=256, sort_memory_blocks=2)
        lrows = [(i % 7, i % 3, i) for i in range(500)]
        rrows = [(i % 7, i % 3, i) for i in range(200)]
        op = HashJoin(RowSource(LEFT, lrows), RowSource(RIGHT, rrows), PRED)
        ctx = ExecutionContext(params=params)
        op.run(ctx)
        assert ctx.io.partition_blocks > 0

    def test_hash_join_no_spill_when_fits(self):
        op = HashJoin(RowSource(LEFT, [(1, 1, 1)]), RowSource(RIGHT, [(1, 1, 2)]),
                      PRED)
        ctx = ExecutionContext()
        op.run(ctx)
        assert ctx.io.partition_blocks == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MergeJoin(RowSource(LEFT, []), RowSource(RIGHT, []), PRED, "cross")
        with pytest.raises(ValueError):
            MergeJoin(RowSource(LEFT, []), RowSource(RIGHT, []),
                      JoinPredicate([("nope", "c")]))
