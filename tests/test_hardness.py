"""NP-hardness reduction tests (Theorem 4.1): SUM-CUT ↔ Problem 1."""

import itertools

import pytest

from repro.core.hardness import (
    assignment_from_numbering,
    benefit_from_numbering,
    best_numbering,
    numbering_from_assignment,
    problem3_objective,
    reduction_from_graph,
    sum_cut_objective,
)
from repro.core.tree_approx import brute_force_tree_orders, tree_benefit

TRIANGLE = {"u": {"v", "w"}, "v": {"u", "w"}, "w": {"u", "v"}}
PATH3 = {"u": {"v"}, "v": {"u", "w"}, "w": {"v"}}
TWO_ISOLATED = {"u": set(), "v": set()}


class TestObjectives:
    def test_triangle_problem3(self):
        # Every vertex adjacent to both others: q1 = 2 (two neighbours of u),
        # q2 = 1 (w adjacent to u and v), q3 = 0.
        assert problem3_objective(TRIANGLE, ["u", "v", "w"]) == 3

    def test_path_problem3(self):
        # numbering (v, u, w): q1 = |N(v)| = 2; q2 = 0; q3 = 0
        assert problem3_objective(PATH3, ["v", "u", "w"]) == 2
        # numbering (u, v, w): q1 = 1; q2 = 1 (w adj to u? no, w adj v only) →
        # vertices adjacent to both u and v: none; q2 = 0
        assert problem3_objective(PATH3, ["u", "v", "w"]) == 1

    def test_sum_cut_requires_complete_numbering(self):
        with pytest.raises(ValueError):
            sum_cut_objective(PATH3, ["u", "v"])

    def test_asymmetric_graph_rejected(self):
        with pytest.raises(ValueError):
            problem3_objective({"a": {"b"}, "b": set()}, ["a", "b"])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            problem3_objective({"a": {"a"}}, ["a"])

    def test_best_numbering(self):
        order, value = best_numbering(PATH3)
        assert value == 2
        assert problem3_objective(PATH3, order) == 2


class TestReductionConstruction:
    def test_caterpillar_shape(self):
        inst = reduction_from_graph(PATH3, pad_size=2)
        assert len(inst.spine) == 3
        assert len(inst.leaves) == 3
        # Spine nodes carry V(G) ∪ L.
        for node in inst.spine:
            assert set(inst.graph_vertices) <= node.attrs
            assert set(inst.pad_attrs) <= node.attrs
        # Leaves carry neighbourhoods.
        leaf_attrs = [set(l.attrs) for l in inst.leaves]
        assert {"v"} in leaf_attrs and {"u", "w"} in leaf_attrs

    def test_isolated_vertex_leaf_nonempty(self):
        inst = reduction_from_graph(TWO_ISOLATED, pad_size=1)
        for leaf in inst.leaves:
            assert leaf.attrs  # placeholder attr, since ⟨∅⟩ is not a node

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            reduction_from_graph({})


class TestForwardDirection:
    """A numbering yields tree benefit (m−1)(n+|L|) + Σq_i."""

    @pytest.mark.parametrize("graph", [TRIANGLE, PATH3, TWO_ISOLATED])
    def test_formula(self, graph):
        inst = reduction_from_graph(graph, pad_size=3)
        m = len(inst.graph_vertices)
        spine_edge = inst.spine_full_benefit
        for numbering in itertools.permutations(sorted(graph)):
            achieved = benefit_from_numbering(inst, graph, list(numbering))
            expected = (m - 1) * spine_edge + problem3_objective(graph, numbering)
            assert achieved == expected

    def test_assignment_is_valid(self):
        inst = reduction_from_graph(PATH3, pad_size=2)
        assignment = assignment_from_numbering(inst, ["v", "u", "w"])
        for node in inst.root.walk():
            assert assignment[node.node_id].attrs() == node.attrs


class TestReverseDirection:
    def test_numbering_extraction(self):
        inst = reduction_from_graph(PATH3, pad_size=2)
        assignment = assignment_from_numbering(inst, ["w", "v", "u"])
        assert numbering_from_assignment(inst, assignment) == ("w", "v", "u")


class TestEquivalenceOnTinyGraph:
    def test_optimal_tree_benefit_matches_best_numbering(self):
        """End-to-end check of the reduction on a 2-vertex graph, small
        enough for brute force over all permutation assignments."""
        graph = {"u": {"v"}, "v": {"u"}}
        inst = reduction_from_graph(graph, pad_size=2)
        exact = brute_force_tree_orders(inst.root, limit=2_000_000)
        _, best_q = best_numbering(graph)
        m = len(inst.graph_vertices)
        expected = (m - 1) * inst.spine_full_benefit + best_q
        assert exact.benefit == expected

    def test_numbering_solution_is_optimal_for_tree(self):
        graph = {"u": {"v"}, "v": {"u"}}
        inst = reduction_from_graph(graph, pad_size=2)
        best_order, _ = best_numbering(graph)
        achieved = benefit_from_numbering(inst, graph, best_order)
        exact = brute_force_tree_orders(inst.root, limit=2_000_000)
        assert achieved == exact.benefit
