"""PathOrder DP (Fig. 4): optimality against brute force, permutation
validity, and the paper's worked examples."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.path_order import (
    PathOrderResult,
    brute_force_path_order,
    path_benefit,
    path_order,
)
from repro.core.sort_order import SortOrder

ATTRS = list("abcdef")


def random_sets(rng, n, max_attrs=3):
    return [frozenset(rng.sample(ATTRS, rng.randrange(1, max_attrs + 1)))
            for _ in range(n)]


class TestPathOrderBasics:
    def test_empty_path(self):
        assert path_order([]) == PathOrderResult((), 0)

    def test_single_node(self):
        res = path_order([{"b", "a"}])
        assert res.benefit == 0
        assert res.permutations[0].attrs() == {"a", "b"}

    def test_two_identical_nodes(self):
        res = path_order([{"a", "b"}, {"a", "b"}])
        assert res.benefit == 2
        assert res.permutations[0] == res.permutations[1]

    def test_disjoint_nodes(self):
        res = path_order([{"a"}, {"b"}, {"c"}])
        assert res.benefit == 0

    def test_middle_node_shares_both_sides(self):
        # {a,b} - {a} - ... the middle can only serve one neighbour fully
        res = path_order([{"a", "b"}, {"a"}, {"a", "b"}])
        assert res.benefit == 2  # 'a' prefix shared across the whole path

    def test_fig3_style_chain(self):
        # A chain where interior segments share different attributes.
        res = path_order([{"a", "b"}, {"a", "b"}, {"c"}, {"a", "d"}, {"a", "d"}])
        assert res.benefit == 4
        assert path_benefit(res.permutations) == 4

    def test_permutations_cover_sets(self):
        sets = [{"a", "b", "c"}, {"b", "c"}, {"c", "d"}]
        res = path_order(sets)
        for s, p in zip(sets, res.permutations):
            assert p.attrs() == frozenset(s)

    def test_global_subtraction_bug_avoided(self):
        """Literal pseudocode subtracts used attrs from *disjoint* segments,
        which would truncate their permutations; see module docstring."""
        sets = [{"a", "b"}, {"a", "b"}, {"c"}, {"a", "d"}, {"a", "d"}]
        res = path_order(sets)
        for s, p in zip(sets, res.permutations):
            assert p.attrs() == frozenset(s)
        # Benefit of the (a,d) pair must be fully realised.
        assert len(res.permutations[3]) == 2
        assert res.permutations[3] == res.permutations[4]


class TestOptimality:
    @pytest.mark.parametrize("seed", range(30))
    def test_matches_brute_force_random(self, seed):
        rng = random.Random(seed)
        sets = random_sets(rng, rng.randrange(1, 6))
        dp = path_order(sets)
        bf = brute_force_path_order(sets)
        assert dp.benefit == bf.benefit, sets
        assert path_benefit(dp.permutations) == dp.benefit

    @given(st.lists(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3),
                    min_size=1, max_size=5))
    @settings(max_examples=150, deadline=None)
    def test_dp_optimal_property(self, sets):
        dp = path_order(sets)
        bf = brute_force_path_order(sets)
        assert dp.benefit == bf.benefit
        # The DP's claimed benefit must be achieved by its permutations.
        assert path_benefit(dp.permutations) == dp.benefit

    @given(st.lists(st.sets(st.sampled_from(ATTRS), min_size=1, max_size=4),
                    min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_benefit_bounds(self, sets):
        dp = path_order(sets)
        upper = sum(len(frozenset(a) & frozenset(b))
                    for a, b in zip(sets, sets[1:]))
        assert 0 <= dp.benefit <= upper

    def test_custom_permute_hook(self):
        calls = []

        def tracking(s):
            calls.append(frozenset(s))
            return SortOrder(sorted(s, reverse=True))

        res = path_order([{"a", "b"}, {"a", "b"}], permute=tracking)
        assert res.benefit == 2
        assert res.permutations[0] == SortOrder(["b", "a"])
        assert calls
