"""Plan-cache admission policy (LRU + TTL), per-table invalidation
granularity, and session-level observability via QuerySession.stats()."""

import pytest

from repro.core.sort_order import SortOrder
from repro.expr import col
from repro.logical import Query, referenced_tables
from repro.service import PlanCache, QuerySession
from repro.storage import Catalog, Schema, TableStats


def make_catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "orders", Schema.of(("o_id", "int", 8), ("o_cust", "int", 8)),
        stats=TableStats(100_000, {"o_id": 100_000, "o_cust": 5_000}),
        clustering_order=SortOrder(["o_id"]))
    cat.create_table(
        "customers", Schema.of(("c_id", "int", 8), ("c_region", "int", 8)),
        stats=TableStats(5_000, {"c_id": 5_000, "c_region": 10}),
        clustering_order=SortOrder(["c_id"]))
    cat.create_table(
        "items", Schema.of(("i_id", "int", 8), ("i_price", "int", 8)),
        stats=TableStats(50_000, {"i_id": 50_000, "i_price": 900}))
    return cat


def orders_query():
    return Query.table("orders").where(col("o_cust").lt(100)).order_by("o_id")


def items_query():
    return Query.table("items").order_by("i_id")


# -- TTL ---------------------------------------------------------------------------------
class TestTTL:
    def test_entries_expire(self):
        now = [0.0]
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("k", "plan", stats_version=1)
        assert cache.get("k", 1) == "plan"
        now[0] = 9.9
        assert cache.get("k", 1) == "plan"
        now[0] = 10.0
        assert cache.get("k", 1) is None
        assert cache.stats.expirations == 1
        assert "k" not in cache

    def test_put_refreshes_age(self):
        now = [0.0]
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("k", "old", 1)
        now[0] = 8.0
        cache.put("k", "new", 1)
        now[0] = 15.0
        assert cache.get("k", 1) == "new"

    def test_no_ttl_never_expires(self):
        now = [0.0]
        cache = PlanCache(capacity=4, clock=lambda: now[0])
        cache.put("k", "plan", 1)
        now[0] = 1e9
        assert cache.get("k", 1) == "plan"
        assert cache.stats.expirations == 0

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            PlanCache(ttl_seconds=0)

    def test_session_ttl_forces_reoptimization(self):
        now = [0.0]
        session = QuerySession(make_catalog(), cache_ttl=30.0)
        session.cache._clock = lambda: now[0]
        session.prepare(orders_query())
        assert session.prepare(orders_query()).from_cache
        now[0] = 31.0
        assert not session.prepare(orders_query()).from_cache
        assert session.stats()["cache_expirations"] == 1
        assert session.metrics.optimizations == 2


# -- per-table invalidation --------------------------------------------------------------
class TestPerTableInvalidation:
    def test_referenced_tables(self):
        q = (Query.table("orders")
             .join("customers", on=[("o_cust", "c_id")])
             .order_by("o_id"))
        assert referenced_tables(q.expr) == frozenset({"orders", "customers"})

    def test_unrelated_refresh_keeps_plan(self):
        cat = make_catalog()
        session = QuerySession(cat)
        session.prepare(orders_query())
        session.prepare(items_query())
        cat.refresh_stats("customers", TableStats(9_000, {"c_id": 9_000,
                                                          "c_region": 12}))
        # Neither cached plan reads customers: both still served hot.
        assert session.prepare(orders_query()).from_cache
        assert session.prepare(items_query()).from_cache
        assert session.cache.stats.invalidations == 0

    def test_targeted_refresh_evicts_only_readers(self):
        cat = make_catalog()
        session = QuerySession(cat)
        session.prepare(orders_query())
        session.prepare(items_query())
        cat.refresh_stats("orders", TableStats(200_000, {"o_id": 200_000,
                                                         "o_cust": 5_000}))
        assert not session.prepare(orders_query()).from_cache
        assert session.prepare(items_query()).from_cache
        assert session.cache.stats.invalidations == 1

    def test_new_index_evicts_only_that_tables_plans(self):
        cat = make_catalog()
        session = QuerySession(cat)
        session.prepare(orders_query())
        session.prepare(items_query())
        cat.create_index("items_id", "items", SortOrder(["i_id"]),
                         included=["i_price"])
        assert session.prepare(orders_query()).from_cache
        assert not session.prepare(items_query()).from_cache

    def test_new_unrelated_table_keeps_all_plans(self):
        cat = make_catalog()
        session = QuerySession(cat)
        session.prepare(orders_query())
        cat.create_table("audit", Schema.of(("a_id", "int", 8)),
                         stats=TableStats(10, {"a_id": 10}))
        assert session.prepare(orders_query()).from_cache

    def test_join_plan_invalidated_by_either_side(self):
        cat = make_catalog()
        session = QuerySession(cat)
        join = (Query.table("orders")
                .join("customers", on=[("o_cust", "c_id")])
                .order_by("o_id"))
        session.prepare(join)
        cat.refresh_stats("customers", TableStats(6_000, {"c_id": 6_000,
                                                          "c_region": 10}))
        assert not session.prepare(join).from_cache


# -- observability -----------------------------------------------------------------------
class TestSessionStats:
    def test_stats_surface_all_counters(self):
        session = QuerySession(make_catalog(), cache_capacity=1)
        session.prepare(orders_query())
        session.prepare(orders_query())
        session.prepare(items_query())  # evicts the orders plan (capacity 1)
        session.prepare(orders_query())  # miss again
        stats = session.stats()
        assert stats["prepares"] == 4
        assert stats["optimizations"] == 3
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 3
        assert stats["cache_evictions"] == 2
        assert stats["cache_size"] == 1
        assert stats["cache_capacity"] == 1
        assert stats["cache_ttl_seconds"] is None
        assert 0.0 < stats["cache_hit_rate"] < 1.0
        assert stats["optimize_seconds"] > 0.0
