"""Adaptive statistics and feedback-driven re-optimization.

Covers the estimate→execution feedback loop end to end:

* :class:`~repro.storage.statistics.DistinctSketch` — merge semantics
  (register-wise max == sketch of the unioned value sets, commutative,
  idempotent), estimation accuracy, cross-process determinism via
  pickling;
* the overlap-aware union estimate — summing per-branch distinct counts
  double-counts overlapping domains; the sketch union does not, and the
  difference flips the optimizer's enforcer placement around a union
  (one sort above the dedup vs a full sort per branch);
* per-operator estimated-vs-actual row tallies
  (``ExecutionContext.operator_rows``) — stamped at lowering, counted at
  execution, bit-identical across serial / threaded / process-pool
  backends over a fuzz-corpus subset;
* drift detection and re-optimization — a query whose scan actuals leave
  the drift band refreshes the catalog statistics, invalidates the
  cached plan, and converges to a cheaper plan under live
  ``QueryServer`` traffic, without ever changing result rows;
* range-partition disjointness through serving-side re-assembly — the
  ``disjoint`` plan arg is the only witness the gather has (RowSource
  children defeat operator-shape re-detection), so comparison tallies
  stay identical to local execution;
* the greedy many-to-many enumerator's measured path — per-shard distinct
  sketches reveal duplicate-heavy columns the declared statistics are
  silent about, and the resulting join order moves fewer rows.
"""

import concurrent.futures
import pickle
import random

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext
from repro.engine.exchange import MergeExchange
from repro.engine.executor import BatchedExecutor
from repro.engine.subplan import assemble, shard_subplans
from repro.logical import Query
from repro.optimizer import GreedyManyToManyEnumerator, Optimizer
from repro.service import FeedbackConfig, QuerySession, QueryServer, make_backend
from repro.service.feedback import scan_table
from repro.storage import (
    Catalog,
    DistinctSketch,
    RangePartitioning,
    Schema,
    StatsView,
    SystemParameters,
    TableStats,
)

import test_plan_fuzz as fuzz
from test_server import reconciles


# -- DistinctSketch ----------------------------------------------------------------------
class TestDistinctSketch:
    def test_estimate_accuracy(self):
        for n in (0, 1, 5, 50, 500, 5000, 20000):
            sketch = DistinctSketch.of_values(range(n))
            assert sketch.estimate() == pytest.approx(n, abs=1, rel=0.1)

    def test_union_is_sketch_of_unioned_value_sets(self):
        rng = random.Random(7)
        left = {rng.randrange(10_000) for _ in range(2000)}
        right = {rng.randrange(10_000) for _ in range(2000)}
        merged = DistinctSketch.of_values(left).union(
            DistinctSketch.of_values(right))
        direct = DistinctSketch.of_values(left | right)
        assert bytes(merged.registers) == bytes(direct.registers)
        assert merged.estimate() == pytest.approx(len(left | right), rel=0.1)

    def test_union_commutative_and_idempotent(self):
        a = DistinctSketch.of_values(range(100))
        b = DistinctSketch.of_values(range(50, 200))
        ab, ba = a.union(b), b.union(a)
        assert bytes(ab.registers) == bytes(ba.registers)
        assert bytes(a.union(a).registers) == bytes(a.registers)

    def test_overlap_not_double_counted(self):
        # Identical value sets: the merged estimate stays ~n, the
        # no-overlap sum would claim 2n.
        a = DistinctSketch.of_values(range(1000))
        b = DistinctSketch.of_values(range(1000))
        assert a.union(b).estimate() == pytest.approx(1000, rel=0.1)

    def test_pickle_roundtrip(self):
        sketch = DistinctSketch.of_values(range(333))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.p == sketch.p
        assert bytes(clone.registers) == bytes(sketch.registers)
        assert clone.estimate() == sketch.estimate()

    def test_validation(self):
        with pytest.raises(ValueError):
            DistinctSketch(p=3)
        with pytest.raises(ValueError):
            DistinctSketch(p=10, registers=b"\x00" * 7)
        with pytest.raises(ValueError):
            DistinctSketch(p=10).union(DistinctSketch(p=11))

    def test_measured_stats_carry_sketches(self):
        schema = Schema.of(("a", "int", 8), ("b", "int", 8))
        rows = [(i % 13, i % 7) for i in range(200)]
        stats = TableStats.measure(rows, schema)
        assert set(stats.sketches) == {"a", "b"}
        assert stats.sketches["a"].estimate() == pytest.approx(13, abs=1)
        assert stats.sketches["b"].estimate() == pytest.approx(7, abs=1)


# -- the union distinct estimate (the double-count fix) ----------------------------------
def overlap_catalog(with_sketches=True, num_rows=2000, domain=30):
    """Two unclustered tables over the same value domain — a union's
    worst case for the no-overlap estimate.  ``with_sketches=False``
    restores the pre-sketch estimator (sum of per-branch distincts)."""
    rng = random.Random(5)
    catalog = Catalog(SystemParameters(sort_memory_blocks=8))
    schema = Schema.of(("a", "int", 64), ("b", "int", 64))
    for name in ("u1", "u2"):
        rows = [(rng.randrange(domain), rng.randrange(domain))
                for _ in range(num_rows)]
        catalog.create_table(name, schema, rows=rows)
    if not with_sketches:
        for table in catalog.tables():
            table.stats.sketches.clear()
    return catalog


class TestUnionEstimate:
    def test_overlapping_union_distinct_not_summed(self):
        catalog = overlap_catalog()
        u1, u2 = catalog.table("u1"), catalog.table("u2")
        left = StatsView.of_table(u1.schema, u1.stats)
        right = StatsView.of_table(u2.schema, u2.stats)
        merged = left.union(right)
        truth = len({row[0] for row in catalog.table("u1").rows}
                    | {row[0] for row in catalog.table("u2").rows})
        assert merged.distinct_of("a") == pytest.approx(truth, rel=0.1)
        # The no-overlap sum is ~2x the truth; without sketches the
        # estimator still falls back to it.
        no_overlap = left.distinct_of("a") + right.distinct_of("a")
        assert merged.distinct_of("a") < 0.75 * no_overlap
        blind = StatsView(left.schema, left.N,
                          {c: left.distinct_of(c) for c in left.schema.names})
        assert blind.union(right).distinct_of("a") == no_overlap

    def test_estimate_flips_enforcer_placement(self):
        """Pinned regression: with the summed estimate the dedup output
        looks nearly as big as the union input, so the optimizer sorts
        both branches below a MergeUnion; the sketch estimate reveals the
        overlap and one enforcer above HashDedup wins — and actually
        executes cheaper."""
        query = Query.table("u1").union("u2").order_by("a", "b")
        costs = {}
        ops = {}
        rows = {}
        for with_sketches in (True, False):
            catalog = overlap_catalog(with_sketches)
            plan = Optimizer(catalog).optimize(query)
            ops[with_sketches] = {p.op for p in plan.walk()}
            ctx = ExecutionContext(catalog)
            rows[with_sketches] = QuerySession(catalog).execute(query, ctx=ctx)
            costs[with_sketches] = ctx.cost_units()
        assert {"HashDedup", "UnionAll"} <= ops[True]
        assert "MergeUnion" not in ops[True]
        assert "MergeUnion" in ops[False]
        assert rows[True] == rows[False]
        assert costs[True] < costs[False]


# -- estimated-vs-actual operator tallies ------------------------------------------------
class TestOperatorRowTallies:
    def test_scan_estimates_exact_on_measured_stats(self):
        catalog = overlap_catalog()
        session = QuerySession(catalog)
        ctx = ExecutionContext(catalog)
        session.execute(Query.table("u1").order_by("a", "b"), ctx=ctx)
        assert ctx.operator_rows["TableScan:u1"] == [2000, 2000]

    def test_limit_truncated_scan_underruns_estimate(self):
        catalog = overlap_catalog()
        session = QuerySession(catalog)
        ctx = ExecutionContext(catalog)
        rows = session.execute(Query.table("u1").limit(5), ctx=ctx)
        assert len(rows) == 5
        estimated, actual = ctx.operator_rows["TableScan:u1"]
        assert estimated == 2000
        assert actual < estimated  # lazy scan stopped early

    def test_tallies_survive_absorb_and_reset(self):
        ctx = ExecutionContext()
        cell = ctx.meter_start("Sort", 10)
        cell[1] += 7
        child = {"blocks_read": 0, "blocks_written": 0, "scan_blocks": 0,
                 "run_blocks_written": 0, "run_blocks_read": 0,
                 "partition_blocks": 0, "comparisons": 0, "runs_created": 0,
                 "segments_sorted": 0, "rows_spilled": 0, "merge_passes": 0,
                 "in_memory_sorts": 0,
                 "operator_rows": {"Sort": (10, 8), "TableScan:t": (5, 5)}}
        ctx.absorb_tallies(child)
        assert ctx.tallies()["operator_rows"] == {
            "Sort": (20, 15), "TableScan:t": (5, 5)}
        # Pre-operator-rows tally dicts (older snapshots) still absorb.
        del child["operator_rows"]
        ctx.absorb_tallies(child)
        ctx.reset()
        assert ctx.operator_rows == {}

    def test_parity_across_backends_on_fuzz_corpus(self):
        """One prepared parallel plan, three execution strategies: the
        per-operator (estimated, actual) tallies are bit-identical —
        worker processes meter the same lowered operators the local
        engine does, and serving-side re-assembly stamps the gathered
        exchanges from the same plan stats."""
        for seed in range(fuzz.BASE_SEED, fuzz.BASE_SEED + 6):
            rng = random.Random(seed)
            catalog = fuzz.random_catalog(rng)
            query = fuzz.random_query(rng, catalog)
            prepared = QuerySession(catalog).prepare(query, parallelism=4)
            serial = ExecutionContext(catalog)
            reference = prepared.execute(ctx=serial)
            threaded = ExecutionContext(catalog)
            assert prepared.execute(ctx=threaded, use_threads=True) == reference
            assert (serial.tallies()["operator_rows"]
                    == threaded.tallies()["operator_rows"]), seed
            backend = make_backend("process", catalog, pool_workers=2)
            try:
                process = ExecutionContext(catalog)
                assert backend.run_plan(prepared.plan, catalog, parallelism=4,
                                        ctx=process) == reference
            finally:
                backend.close()
            assert (serial.tallies()["operator_rows"]
                    == process.tallies()["operator_rows"]), seed


# -- drift detection and feedback-driven re-optimization ---------------------------------
def stale_catalog(num_rows=4000, memory_blocks=40, seed=1, claimed=50):
    """A materialised table whose *declared* statistics are stale by 80x
    — the optimizer plans for 50 rows, execution sees 4000."""
    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(sort_memory_blocks=memory_blocks))
    schema = Schema.of(("a", "int", 8), ("b", "int", 64), ("c", "int", 8))
    rows = [tuple(rng.randrange(50) for _ in range(3)) for _ in range(num_rows)]
    catalog.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["a"]),
                         stats=TableStats(claimed, {"a": 25, "b": 25, "c": 25}))
    return catalog


class TestFeedbackConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FeedbackConfig(drift_threshold=1.0)
        with pytest.raises(ValueError):
            FeedbackConfig(min_rows=-1)

    def test_drift_band(self):
        config = FeedbackConfig(drift_threshold=2.0, min_rows=64)
        assert not config.drifted(10, 1000000 // 100000)  # both under floor
        assert not config.drifted(100, 199)               # inside the band
        assert config.drifted(100, 201)
        assert config.drifted(201, 100)
        assert config.drifted(0, 64)

    def test_scan_tags(self):
        assert scan_table("TableScan:t") == "t"
        assert scan_table("ShardedScan:orders") == "orders"
        assert scan_table("Sort") is None
        # Covering-index scans count index rows, not table rows.
        assert scan_table("CoveringIndexScan:t") is None


class TestDriftReoptimization:
    def test_session_converges_after_drift(self):
        catalog = stale_catalog()
        session = QuerySession(catalog, feedback=FeedbackConfig())
        query = Query.table("t").order_by("b", "a", "c")
        stale = session.prepare(query, parallelism=4)
        # The stale plan believed a 50-row sort was enough.
        assert all(p.op != "MergeExchange" for p in stale.plan.walk())
        stale_ctx = ExecutionContext(catalog)
        reference = stale.execute(ctx=stale_ctx)
        assert session.metrics.drift_events == 1
        assert session.metrics.feedback_refreshes == 1
        assert session.stats()["cache_invalidations"] == 0  # lazy: at next get
        fresh = session.prepare(query, parallelism=4)
        assert session.metrics.optimizations == 2
        assert session.stats()["cache_invalidations"] == 1
        assert any(p.op == "MergeExchange" for p in fresh.plan.walk())
        fresh_ctx = ExecutionContext(catalog)
        assert fresh.execute(ctx=fresh_ctx) == reference
        # The acceptance bar: the converged plan is >= 1.5x cheaper.
        assert stale_ctx.cost_units() >= 1.5 * fresh_ctx.cost_units()
        # Statistics now match reality; a third prepare is a cache hit.
        session.prepare(query, parallelism=4)
        assert session.metrics.optimizations == 2

    def test_feedback_off_by_default(self):
        session = QuerySession(stale_catalog())
        ctx = ExecutionContext(session.catalog)
        session.execute(Query.table("t").order_by("b"), ctx=ctx)
        assert session.metrics.drift_checks == 0
        assert session.metrics.feedback_refreshes == 0
        assert session.catalog.table("t").stats.num_rows == 50  # untouched

    def test_ground_truth_guard_blocks_benign_drift(self):
        """A Limit pulls far fewer rows than estimated — per-run drift —
        but the declared stats agree with the materialised row count, so
        no refresh fires (anti-thrash)."""
        catalog = overlap_catalog()  # accurate measured stats
        session = QuerySession(catalog, feedback=FeedbackConfig())
        version = catalog.stats_version
        # Small batches so the lazy scan stops almost immediately: the
        # scan meter reads ~64 of 2000 estimated rows — way past the
        # drift threshold.
        session.execute(Query.table("u1").limit(5), batch_size=64)
        assert session.metrics.drift_checks == 1
        assert session.metrics.drift_events == 1
        assert session.metrics.feedback_refreshes == 0
        assert catalog.stats_version == version

    def test_server_reoptimizes_under_concurrent_traffic(self):
        catalog = stale_catalog()
        query = Query.table("t").order_by("b", "a", "c")
        reference = QuerySession(catalog).execute(query)
        with QueryServer(catalog, feedback=FeedbackConfig(), parallelism=4,
                         max_inflight=4) as server:
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                futures = [pool.submit(server.execute, query, timeout=30)
                           for _ in range(12)]
                results = [f.result() for f in futures]
            stats = server.stats()
        assert all(r.rows == reference for r in results)
        assert reconciles(stats)
        assert stats["completed"] == 12
        assert stats["feedback_refreshes"] >= 1
        assert stats["cache_invalidations"] >= 1
        assert stats["optimizations"] >= 2  # stale plan + re-prepare
        # The shared catalog converged: a fresh session plans sharded.
        converged = QuerySession(catalog).prepare(query, parallelism=4)
        assert any(p.op == "MergeExchange" for p in converged.plan.walk())

    def test_server_without_feedback_reports_zero(self):
        catalog = stale_catalog()
        with QueryServer(catalog, parallelism=4) as server:
            server.execute(Query.table("t").order_by("b", "a", "c"))
            stats = server.stats()
        assert stats["drift_checks"] == 0
        assert stats["feedback_refreshes"] == 0

    def test_fuzz_rows_bit_identical_with_feedback(self):
        """Feedback only changes which plan serves the *next* query —
        result rows over the fuzz corpus stay bit-identical."""
        for seed in range(fuzz.BASE_SEED, fuzz.BASE_SEED + 10):
            rng = random.Random(seed)
            catalog = fuzz.random_catalog(rng)
            query = fuzz.random_query(rng, catalog)
            reference = QuerySession(catalog).execute(query)
            session = QuerySession(
                catalog, feedback=FeedbackConfig(min_rows=1))
            for parallelism in (1, 4):
                assert (session.execute(query, parallelism=parallelism)
                        == reference), seed


# -- range-partition disjointness through serving re-assembly ----------------------------
def disjoint_plan_case():
    """Fuzz seed 12 is the corpus witness: its parallel plan gathers
    range partitions through a declared-disjoint MergeExchange."""
    rng = random.Random(12)
    catalog = fuzz.random_catalog(rng)
    query = fuzz.random_query(rng, catalog)
    prepared = QuerySession(catalog).prepare(query, parallelism=4)
    exchanges = [p for p in prepared.plan.walk() if p.op == "MergeExchange"]
    assert any(p.arg("disjoint", False) for p in exchanges)
    return catalog, prepared


class TestDisjointGatherParity:
    def test_reassembled_gather_keeps_disjoint_concat(self):
        """The re-assembled exchange's children are RowSources, so shape
        re-detection cannot prove disjointness — only the forwarded plan
        arg can.  Dropping it (the old behavior) heap-merges and pays
        extra comparisons."""
        catalog, prepared = disjoint_plan_case()
        occurrences, _ = shard_subplans(prepared.plan)
        shard_rows = [[BatchedExecutor().run(child.to_operator(catalog),
                                             ExecutionContext(catalog))
                       for child in node.children]
                      for node in occurrences]
        root = assemble(prepared.plan, occurrences, shard_rows, catalog)

        def operators(op):
            yield op
            for child in op.children:
                yield from operators(child)

        gathers = [op for op in operators(root)
                   if isinstance(op, MergeExchange)]
        assert gathers and all(g.partition_disjoint for g in gathers)
        declared = ExecutionContext(catalog)
        rows = BatchedExecutor().run(root, declared)
        for gather in gathers:
            gather.declared_disjoint = False
        assert not any(g.partition_disjoint for g in gathers)
        undeclared = ExecutionContext(catalog)
        assert BatchedExecutor().run(root, undeclared) == rows
        assert declared.comparisons.value < undeclared.comparisons.value

    @pytest.mark.parametrize("streaming", [False, True])
    def test_process_backend_comparison_parity(self, streaming):
        catalog, prepared = disjoint_plan_case()
        local = ExecutionContext(catalog)
        reference = prepared.execute(ctx=local)
        backend = make_backend("process", catalog, pool_workers=2,
                               streaming=streaming)
        try:
            ctx = ExecutionContext(catalog)
            rows = backend.run_plan(prepared.plan, catalog, parallelism=4,
                                    ctx=ctx)
        finally:
            backend.close()
        assert rows == reference
        assert ctx.comparisons.value == local.comparisons.value
        assert (ctx.tallies()["operator_rows"]
                == local.tallies()["operator_rows"])


# -- measured distincts in greedy many-to-many ordering ----------------------------------
def m2m_star_catalog(materialized=True):
    """Star query whose declared statistics are silent about ``c_y`` —
    the duplicate-heavy fan-out column (5 values over 600 rows).  Only
    the measured per-shard sketches can reveal it."""
    rng = random.Random(11)
    catalog = Catalog(SystemParameters())
    sa = Schema.of(("a_id", "int", 8), ("a_x", "int", 8), ("a_y", "int", 8))
    sb = Schema.of(("b_x", "int", 8), ("b_v", "int", 8))
    sc = Schema.of(("c_y", "int", 8), ("c_v", "int", 8))
    a_rows = [(i, rng.randrange(300), rng.randrange(5)) for i in range(50)]
    b_rows = [(i % 300, rng.randrange(9)) for i in range(600)]
    c_rows = [(rng.randrange(5), rng.randrange(9)) for _ in range(600)]
    catalog.create_table("a", sa, rows=a_rows if materialized else None,
                         stats=TableStats(50, {"a_id": 50, "a_x": 50, "a_y": 5}))
    catalog.create_table("b", sb, rows=b_rows if materialized else None,
                         stats=TableStats(600, {"b_x": 300, "b_v": 9}))
    catalog.create_table("c", sc, rows=c_rows if materialized else None,
                         stats=TableStats(600, {"c_v": 9}))
    return catalog


class TestGreedyM2MMeasuredDistincts:
    def test_measured_sketches_change_and_improve_the_order(self):
        root = (Query.table("a")
                .join("b", on=[("a_x", "b_x")])
                .join("c", on=[("a_y", "c_y")])).expr
        enumerator = GreedyManyToManyEnumerator()
        catalog = m2m_star_catalog(materialized=True)
        # Stats-only tables have no shards to sketch: c_y defaults to
        # key-like and the blowup join is ordered first.
        blind_tree, = enumerator.candidate_trees(
            m2m_star_catalog(materialized=False), root)
        measured_tree, = enumerator.candidate_trees(catalog, root)
        assert blind_tree != measured_tree
        rows = {}
        join_rows = {}
        for label, tree in (("measured", measured_tree), ("blind", blind_tree)):
            ctx = ExecutionContext(catalog)
            rows[label] = sorted(QuerySession(catalog).execute(
                Query.of(tree), ctx=ctx))
            join_rows[label] = sum(
                actual for tag, (_, actual) in ctx.operator_rows.items()
                if "Join" in tag)
        assert rows["measured"] == rows["blind"]
        # The deferred many-to-many join moves strictly fewer rows.
        assert join_rows["measured"] < 0.75 * join_rows["blind"]
