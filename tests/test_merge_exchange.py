"""MergeExchange unit tests: edge shapes (empty/single/oversharded
shards, duplicate keys), spilling per-shard sorts, and the deterministic
thread-pool drain discipline shared with ExchangeUnion."""

import time

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import (
    ExchangeUnion,
    ExecutionContext,
    MergeExchange,
    Operator,
    RowSource,
    ShardedScan,
    Sort,
    TableScan,
)
from repro.storage import Catalog, Schema, SystemParameters

SCHEMA = Schema.of(("k", "int", 8), ("v", "int", 8))
ORDER_K = SortOrder(["k"])


def source(rows, order=ORDER_K):
    return RowSource(SCHEMA, rows, output_order=order)


def _counters(ctx):
    return (ctx.io.blocks_read, ctx.io.blocks_written, ctx.comparisons.value,
            ctx.sort_metrics.runs_created, ctx.sort_metrics.in_memory_sorts)


class SlowOperator(Operator):
    """Pass-through that sleeps before producing — forces thread-pool
    workers to finish out of shard order."""

    name = "SlowOperator"

    def __init__(self, child, delay: float) -> None:
        super().__init__(child.schema, child.output_order, [child])
        self.delay = delay

    def execute_batches(self, ctx):
        time.sleep(self.delay)
        return self.children[0].execute_batches(ctx)


class TestMergeExchangeShapes:
    def test_merges_sorted_shards(self):
        left = source([(1, 0), (3, 0), (5, 0)])
        right = source([(2, 1), (4, 1), (6, 1)])
        merged = MergeExchange([left, right], ORDER_K)
        assert merged.output_order == ORDER_K
        assert merged.run() == [(1, 0), (2, 1), (3, 0), (4, 1), (5, 0), (6, 1)]

    def test_empty_shards_are_skipped(self):
        children = [source([]), source([(2, 0), (9, 0)]), source([]),
                    source([(1, 1)])]
        assert MergeExchange(children, ORDER_K).run() == [(1, 1), (2, 0), (9, 0)]

    def test_all_shards_empty(self):
        merged = MergeExchange([source([]), source([])], ORDER_K)
        assert merged.run() == []
        assert list(merged.execute_batches(ExecutionContext())) == []

    def test_single_shard_is_a_free_passthrough(self):
        rows = [(1, 0), (2, 0), (3, 0)]
        ctx = ExecutionContext()
        merged = MergeExchange([source(rows)], ORDER_K)
        assert merged.run(ctx) == rows
        assert ctx.comparisons.value == 0  # no heap contention to pay for

    def test_duplicate_keys_stable_tie_break(self):
        """Equal keys come out in shard order, within a shard in arrival
        order — exactly what a stable full sort of the shard-order
        concatenation would produce."""
        shard0 = source([(1, 100), (1, 101), (2, 102)])
        shard1 = source([(1, 200), (2, 201), (2, 202)])
        merged = MergeExchange([shard0, shard1], ORDER_K)
        concatenated = [(1, 100), (1, 101), (2, 102), (1, 200), (2, 201), (2, 202)]
        assert merged.run() == sorted(concatenated, key=lambda r: r[0])
        assert merged.run() == [(1, 100), (1, 101), (1, 200), (2, 102),
                                (2, 201), (2, 202)]

    def test_shard_count_exceeding_row_count(self):
        """More shards than rows: the trailing shards are empty streams
        and the merge still reproduces the full sorted table."""
        cat = Catalog()
        rows = [(3, 0), (1, 1), (2, 2)]
        cat.create_table("tiny", SCHEMA, rows=rows)
        table = cat.table("tiny")
        shards = [Sort(ShardedScan(table, 8, i), ORDER_K) for i in range(8)]
        merged = MergeExchange(shards, ORDER_K)
        assert merged.run(ExecutionContext(cat)) == \
            sorted(table.rows, key=lambda r: r[0])

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one child"):
            MergeExchange([], ORDER_K)
        with pytest.raises(ValueError, match="non-empty merge order"):
            MergeExchange([source([])], SortOrder())
        with pytest.raises(ValueError, match="missing columns"):
            MergeExchange([source([])], SortOrder(["nope"]))
        other = RowSource(Schema.of(("x", "int", 8)), [])
        with pytest.raises(ValueError, match="share a schema"):
            MergeExchange([source([]), other], ORDER_K)
        with pytest.raises(ValueError, match="max_workers"):
            MergeExchange([source([])], ORDER_K, max_workers=0)

    def test_check_orders_catches_lying_child(self):
        liar = source([(5, 0), (1, 0)])  # declares (k) but is not sorted
        merged = MergeExchange([liar], ORDER_K)
        ctx = ExecutionContext(check_orders=True)
        with pytest.raises(AssertionError, match="MergeExchange input shard 0"):
            merged.run(ctx)


class TestMergeExchangeCosts:
    def make_sharded_sorts(self, num_rows=2000, shard_count=4,
                           params=None, seed=7):
        import random
        rng = random.Random(seed)
        cat = Catalog(params or SystemParameters())
        rows = [(rng.randrange(50), i) for i in range(num_rows)]
        cat.create_table("t", SCHEMA, rows=rows)
        table = cat.table("t")
        shards = [Sort(ShardedScan(table, shard_count, i), ORDER_K)
                  for i in range(shard_count)]
        return cat, table, MergeExchange(shards, ORDER_K)

    def test_spilling_per_shard_sorts(self):
        """Shards larger than sort memory spill SRS runs; the merged
        result is still the full stable sort and the tallies are
        batch-size independent."""
        params = SystemParameters(block_size=256, sort_memory_blocks=4)
        cat, table, merged = self.make_sharded_sorts(params=params)
        expected = sorted(table.rows, key=lambda r: r[0])

        ref_ctx = ExecutionContext(cat, batch_size=1)
        assert merged.run(ref_ctx) == expected
        assert ref_ctx.sort_metrics.runs_created > 0  # genuinely spilled
        for batch_size in (3, 64, 4096):
            ctx = ExecutionContext(cat, batch_size=batch_size)
            assert merged.run(ctx) == expected, batch_size
            assert _counters(ctx) == _counters(ref_ctx), batch_size

    def test_merge_comparisons_counted(self):
        cat, table, merged = self.make_sharded_sorts(num_rows=64)
        sort_only = Sort(TableScan(table), ORDER_K)
        merge_ctx, sort_ctx = ExecutionContext(cat), ExecutionContext(cat)
        assert merged.run(merge_ctx) == sort_only.run(sort_ctx)
        # The k-way heap merge pays comparisons the single sort does not
        # (they are what the cost model's merge_exchange term estimates).
        assert merge_ctx.comparisons.value > 0


class TestDeterministicThreadDrain:
    """Thread-pool drains must absorb forked contexts in shard order and
    emit rows in shard order even when workers finish out of order."""

    def make_catalog(self, num_rows=800, seed=3):
        import random
        rng = random.Random(seed)
        cat = Catalog()
        rows = [(rng.randrange(40), i) for i in range(num_rows)]
        cat.create_table("t", SCHEMA, rows=rows)
        return cat

    def slow_shards(self, table, shard_count):
        """Shard 0 is the slowest, so completion order inverts shard
        order on the pool."""
        return [SlowOperator(ShardedScan(table, shard_count, i),
                             delay=0.05 if i == 0 else 0.0)
                for i in range(shard_count)]

    def test_exchange_union_absorbs_in_shard_order(self):
        cat = self.make_catalog()
        table = cat.table("t")
        serial = ExchangeUnion(self.slow_shards(table, 4), max_workers=1)
        threaded = ExchangeUnion(self.slow_shards(table, 4), max_workers=4)
        serial_ctx, threaded_ctx = ExecutionContext(cat), ExecutionContext(cat)
        assert threaded.run(threaded_ctx) == serial.run(serial_ctx) == table.rows
        assert _counters(threaded_ctx) == _counters(serial_ctx)

    def test_merge_exchange_parallel_drain_deterministic(self):
        cat = self.make_catalog()
        table = cat.table("t")

        def shards():
            return [Sort(slow, ORDER_K)
                    for slow in self.slow_shards(table, 4)]

        serial = MergeExchange(shards(), ORDER_K, max_workers=1)
        threaded = MergeExchange(shards(), ORDER_K, max_workers=4)
        serial_ctx, threaded_ctx = ExecutionContext(cat), ExecutionContext(cat)
        assert threaded.run(threaded_ctx) == serial.run(serial_ctx) == \
            sorted(table.rows, key=lambda r: r[0])
        assert _counters(threaded_ctx) == _counters(serial_ctx)
