"""The concurrent query server: admission control, deadlines, the shared
cross-session plan cache, backend parity (including the process pool on
the fuzz-suite plan corpus), and the many-clients stress test."""

import asyncio
import random
import threading

import pytest

from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum
from repro.logical import Query
from repro.service import (
    ExecutionBackend,
    ProcessPoolBackend,
    QueryRejected,
    QueryServer,
    QuerySession,
    QueryTimeout,
    SharedPlanCache,
)
from repro.storage import Catalog, Schema, SystemParameters


def serving_catalog(num_rows=4000, memory_blocks=40, seed=1):
    """Small catalog whose ORDER BY b sort spills at parallelism 1 and
    fits per shard — parallelism 4 plans carry a MergeExchange."""
    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(sort_memory_blocks=memory_blocks))
    schema = Schema.of(("a", "int", 8), ("b", "int", 64), ("c", "int", 8))
    rows = [tuple(rng.randrange(50) for _ in range(3))
            for _ in range(num_rows)]
    catalog.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["a"]))
    return catalog


def serving_queries():
    return [
        Query.table("t").order_by("b", "a", "c"),
        (Query.table("t").where(col("a").lt(param("lim")))
         .group_by(["a"], agg_sum(col("c"), "s")).order_by("a")),
        Query.table("t").where(col("c").ge(10)).select("c", "b")
        .order_by("c", "b"),
    ]


@pytest.fixture(scope="module")
def catalog():
    return serving_catalog()


@pytest.fixture(scope="module")
def references(catalog):
    session = QuerySession(catalog)
    q0, q1, q2 = serving_queries()
    return [session.execute(q0), session.execute(q1, lim=30),
            session.execute(q2)]


class _BlockingBackend(ExecutionBackend):
    """Deterministic concurrency probe: executions park on an event."""

    name = "blocking"

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()

    def run_plan(self, plan, catalog, parallelism=1, batch_size=None,
                 check_orders=False):
        self.started.set()
        assert self.release.wait(timeout=10)
        return [("done",)]


# -- admission control -------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_rejects_and_counters_balance(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=1) as server:
            async def scenario():
                first = asyncio.ensure_future(server.submit(query))
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                # Slot busy; one submission queues, the next is rejected.
                second = asyncio.ensure_future(server.submit(query))
                await asyncio.sleep(0.05)
                with pytest.raises(QueryRejected):
                    await server.submit(query)
                with pytest.raises(QueryRejected):
                    server.execute(query)  # sync path rejects identically
                backend.release.set()
                return await asyncio.gather(first, second)

            results = asyncio.run(scenario())
            assert [r.rows for r in results] == [[("done",)], [("done",)]]
            stats = server.stats()
            assert stats["submitted"] == 4
            assert stats["admitted"] == 2
            assert stats["rejected_queue_full"] == 2
            assert stats["completed"] == 2
            assert stats["queue_depth"] == 0 and stats["in_flight"] == 0

    def test_deadline_timeout_counted(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=4) as server:
            async def scenario():
                with pytest.raises(QueryTimeout):
                    await server.submit(query, timeout=0.05)

            try:
                asyncio.run(scenario())
            finally:
                backend.release.set()
            assert server.stats()["timeouts"] == 1

    def test_expired_while_queued_never_executes(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=4, default_timeout=0.05) as server:
            async def scenario():
                first = asyncio.ensure_future(
                    server.submit(query, timeout=30.0))
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                with pytest.raises(QueryTimeout):
                    await server.submit(query)  # queued past its deadline
                backend.release.set()
                await first

            asyncio.run(scenario())
            stats = server.stats()
            assert stats["timeouts"] == 1
            assert stats["completed"] == 1

    def test_bad_knobs_rejected(self, catalog):
        with pytest.raises(ValueError):
            QueryServer(catalog, max_inflight=0)
        with pytest.raises(ValueError):
            QueryServer(catalog, queue_limit=0)
        with pytest.raises(ValueError):
            QueryServer(catalog, backend="bogus")


# -- the stress test ---------------------------------------------------------------------
class TestConcurrencyStress:
    def test_async_and_thread_clients_share_one_server(self, catalog,
                                                       references):
        """Many async clients and plain threads drive one shared server:
        every result is bit-identical to serial execution and the
        admission/cache counters reconcile exactly."""
        queries = serving_queries()
        mismatches: list[str] = []
        ASYNC_CLIENTS, ROUNDS, THREADS = 8, 4, 4

        with QueryServer(catalog, backend="serial", parallelism=4,
                         max_inflight=4, queue_limit=256) as server:
            async def async_client(i):
                for r in range(ROUNDS):
                    pick = (i + r) % 3
                    result = await server.submit(
                        queries[pick],
                        **({"lim": 30} if pick == 1 else {}))
                    if result.rows != references[pick]:
                        mismatches.append(f"async{i}/q{pick}")

            def thread_client(i):
                for r in range(ROUNDS):
                    pick = (i + r) % 3
                    result = server.execute(
                        queries[pick],
                        **({"lim": 30} if pick == 1 else {}))
                    if result.rows != references[pick]:
                        mismatches.append(f"thread{i}/q{pick}")

            threads = [threading.Thread(target=thread_client, args=(i,))
                       for i in range(THREADS)]
            for t in threads:
                t.start()

            async def fan_out():
                await asyncio.gather(*[async_client(i)
                                       for i in range(ASYNC_CLIENTS)])

            asyncio.run(fan_out())
            for t in threads:
                t.join()

            assert mismatches == []
            stats = server.stats()
            total = (ASYNC_CLIENTS + THREADS) * ROUNDS
            assert stats["submitted"] == total
            assert stats["admitted"] == total
            assert stats["completed"] == total
            assert stats["failed"] == 0
            assert stats["rejected_queue_full"] == 0
            assert stats["timeouts"] == 0
            assert stats["queue_depth"] == 0 and stats["in_flight"] == 0
            # Shared cache: every prepare was a cache lookup, and only
            # the first optimization(s) of each distinct plan missed.
            assert stats["prepares"] == total
            assert stats["executions"] == total
            assert stats["cache_hits"] + stats["cache_misses"] == total
            assert stats["cache_misses"] == stats["optimizations"]
            assert stats["cache_size"] <= 3
            assert 1 <= stats["sessions"] <= 4
            # Only fresh optimizations count sharded-plan decisions, so
            # the decision counters stay tied to misses, not traffic.
            assert stats["shard_merge_plans"] <= stats["optimizations"]
            assert stats["latency_p95_ms"] >= stats["latency_p50_ms"] > 0
            assert 0.0 < stats["worker_utilization"] <= 1.0

    def test_sessions_share_the_plan_cache(self, catalog):
        """Two explicit sessions over one SharedPlanCache: a plan
        optimized by the first is served to the second from cache."""
        cache = SharedPlanCache(capacity=16)
        s1 = QuerySession(catalog, cache=cache)
        s2 = QuerySession(catalog, cache=cache)
        query = Query.table("t").order_by("b", "a", "c")
        p1 = s1.prepare(query, parallelism=4)
        p2 = s2.prepare(query, parallelism=4)
        assert not p1.from_cache and p2.from_cache
        assert p1.plan is p2.plan
        assert s1.metrics.optimizations == 1
        assert s2.metrics.optimizations == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1


# -- backend parity ----------------------------------------------------------------------
class TestProcessBackend:
    def test_bit_identical_on_fuzz_corpus(self):
        """Acceptance: the process-pool backend returns bit-identical
        rows to serial execution on the fuzz-suite plan corpus."""
        from tests.test_plan_fuzz import random_catalog, random_query

        seeds = range(12)
        for seed in seeds:
            rng = random.Random(seed)
            fuzz_catalog = random_catalog(rng)
            query = random_query(rng, fuzz_catalog)
            reference = QuerySession(fuzz_catalog).execute(query)
            with QueryServer(fuzz_catalog, backend="process", parallelism=4,
                             max_inflight=2, pool_workers=2) as server:
                result = server.execute(query)
                assert result.rows == reference, f"fuzz seed {seed}"

    def test_shard_subplans_ship_to_workers(self, catalog, references):
        """A MergeExchange plan is cut at the exchange: per-shard sorts
        run in worker processes, the stable merge runs in the server."""
        from repro.engine import shard_subplans

        session = QuerySession(catalog)
        plan = session.prepare(serving_queries()[0], parallelism=4).plan
        occurrences, tasks = shard_subplans(plan)
        assert len(occurrences) == 1 and len(tasks) == 4
        assert all(t.op in ("Sort", "PartialSort") for t in tasks)

        with QueryServer(catalog, backend="process", parallelism=4,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[0]).rows == references[0]

    def test_whole_plan_fallback_without_exchange(self, catalog, references):
        """parallelism=1 plans carry no exchange and ship whole — the
        pool then parallelizes across queries instead of within one."""
        with QueryServer(catalog, backend="process", parallelism=1,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[2]).rows == references[2]

    def test_stale_pool_detection_and_refresh(self):
        catalog = serving_catalog(num_rows=500, seed=3)
        query = Query.table("t").order_by("b", "a", "c")
        backend = ProcessPoolBackend(catalog, workers=2)
        try:
            with QueryServer(catalog, backend=backend,
                             parallelism=2) as server:
                before = server.execute(query).rows
                table = catalog.table("t")
                table._rows[:] = table._rows[: len(table._rows) // 2]
                table._sort_rows_by(SortOrder(["a"]))
                catalog.refresh_stats("t")
                assert backend.stale()
                backend.refresh()
                assert not backend.stale()
                after = server.execute(query).rows
                assert after == QuerySession(catalog).execute(query)
                assert len(after) < len(before)
        finally:
            backend.close()

    def test_parameterized_binds_reach_workers(self, catalog, references):
        with QueryServer(catalog, backend="process", parallelism=4,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[1],
                                  lim=30).rows == references[1]

    def test_worker_tallies_surface_through_ctx(self, catalog, references):
        """Worker-side counters (absorbed in shard order) are observable
        by passing an ExecutionContext to the backend."""
        from repro.engine import ExecutionContext

        session = QuerySession(catalog)
        plan = session.prepare(serving_queries()[0], parallelism=4).plan
        backend = ProcessPoolBackend(catalog, workers=2)
        try:
            ctx = ExecutionContext(catalog)
            rows = backend.run_plan(plan, catalog, parallelism=4, ctx=ctx)
            assert rows == references[0]
            # The shards' scan I/O was charged in the workers and folded
            # back here; the k-way merge comparisons accrue locally.
            assert ctx.io.blocks_read > 0
            assert ctx.comparisons.value > 0
        finally:
            backend.close()


class TestThreadBackendParity:
    def test_threads_backend_matches_serial(self, catalog, references):
        with QueryServer(catalog, backend="threads", parallelism=4,
                         max_inflight=2) as server:
            for i, (query, reference) in enumerate(zip(serving_queries(),
                                                       references)):
                binds = {"lim": 30} if i == 1 else {}
                assert server.execute(query, **binds).rows == reference
