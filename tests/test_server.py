"""The concurrent query server: admission control, deadlines, the shared
cross-session plan cache, backend parity (including the process pool on
the fuzz-suite plan corpus), cooperative backpressure (retry-after,
tenant quotas, circuit breaker), pool resilience under breakage and
refresh, streaming shard transfer, and the many-clients stress tests
that pin the admission-counter reconciliation invariant."""

import asyncio
import os
import random
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum
from repro.logical import Query
from repro.service import (
    CircuitOpen,
    ExecutionBackend,
    ProcessPoolBackend,
    QueryRejected,
    QueryServer,
    QuerySession,
    QueryTimeout,
    SharedPlanCache,
    make_backend,
)
from repro.storage import Catalog, Schema, SystemParameters


def reconciles(stats) -> bool:
    """The outcome-exclusivity invariant: every submission is counted in
    exactly one terminal bucket."""
    return stats["submitted"] == (
        stats["completed"] + stats["failed"] + stats["timeouts"]
        + stats["rejected_queue_full"] + stats["rejected_quota"]
        + stats["rejected_circuit"])


def wait_quiescent(server, timeout=10.0) -> dict:
    """Poll until no query is queued or executing, then return stats."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = server.stats()
        if stats["queue_depth"] == 0 and stats["in_flight"] == 0:
            return stats
        time.sleep(0.01)
    raise AssertionError("server never drained")


def serving_catalog(num_rows=4000, memory_blocks=40, seed=1):
    """Small catalog whose ORDER BY b sort spills at parallelism 1 and
    fits per shard — parallelism 4 plans carry a MergeExchange."""
    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(sort_memory_blocks=memory_blocks))
    schema = Schema.of(("a", "int", 8), ("b", "int", 64), ("c", "int", 8))
    rows = [tuple(rng.randrange(50) for _ in range(3))
            for _ in range(num_rows)]
    catalog.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["a"]))
    return catalog


def serving_queries():
    return [
        Query.table("t").order_by("b", "a", "c"),
        (Query.table("t").where(col("a").lt(param("lim")))
         .group_by(["a"], agg_sum(col("c"), "s")).order_by("a")),
        Query.table("t").where(col("c").ge(10)).select("c", "b")
        .order_by("c", "b"),
    ]


@pytest.fixture(scope="module")
def catalog():
    return serving_catalog()


@pytest.fixture(scope="module")
def references(catalog):
    session = QuerySession(catalog)
    q0, q1, q2 = serving_queries()
    return [session.execute(q0), session.execute(q1, lim=30),
            session.execute(q2)]


class _BlockingBackend(ExecutionBackend):
    """Deterministic concurrency probe: executions park on an event."""

    name = "blocking"

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()

    def run_plan(self, plan, catalog, parallelism=1, batch_size=None,
                 check_orders=False):
        self.started.set()
        assert self.release.wait(timeout=10)
        return [("done",)]


# -- admission control -------------------------------------------------------------------
class TestAdmission:
    def test_queue_full_rejects_and_counters_balance(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=1) as server:
            async def scenario():
                first = asyncio.ensure_future(server.submit(query))
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                # Slot busy; one submission queues, the next is rejected.
                second = asyncio.ensure_future(server.submit(query))
                await asyncio.sleep(0.05)
                with pytest.raises(QueryRejected):
                    await server.submit(query)
                with pytest.raises(QueryRejected):
                    server.execute(query)  # sync path rejects identically
                backend.release.set()
                return await asyncio.gather(first, second)

            results = asyncio.run(scenario())
            assert [r.rows for r in results] == [[("done",)], [("done",)]]
            stats = server.stats()
            assert stats["submitted"] == 4
            assert stats["admitted"] == 2
            assert stats["rejected_queue_full"] == 2
            assert stats["completed"] == 2
            assert stats["queue_depth"] == 0 and stats["in_flight"] == 0

    def test_deadline_timeout_counted(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=4) as server:
            async def scenario():
                with pytest.raises(QueryTimeout):
                    await server.submit(query, timeout=0.05)

            try:
                asyncio.run(scenario())
            finally:
                backend.release.set()
            assert server.stats()["timeouts"] == 1

    def test_expired_while_queued_never_executes(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=4, default_timeout=0.05) as server:
            async def scenario():
                first = asyncio.ensure_future(
                    server.submit(query, timeout=30.0))
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                with pytest.raises(QueryTimeout):
                    await server.submit(query)  # queued past its deadline
                backend.release.set()
                await first

            asyncio.run(scenario())
            stats = server.stats()
            assert stats["timeouts"] == 1
            assert stats["completed"] == 1

    def test_bad_knobs_rejected(self, catalog):
        with pytest.raises(ValueError):
            QueryServer(catalog, max_inflight=0)
        with pytest.raises(ValueError):
            QueryServer(catalog, queue_limit=0)
        with pytest.raises(ValueError):
            QueryServer(catalog, backend="bogus")


# -- the stress test ---------------------------------------------------------------------
class TestConcurrencyStress:
    def test_async_and_thread_clients_share_one_server(self, catalog,
                                                       references):
        """Many async clients and plain threads drive one shared server:
        every result is bit-identical to serial execution and the
        admission/cache counters reconcile exactly."""
        queries = serving_queries()
        mismatches: list[str] = []
        ASYNC_CLIENTS, ROUNDS, THREADS = 8, 4, 4

        with QueryServer(catalog, backend="serial", parallelism=4,
                         max_inflight=4, queue_limit=256) as server:
            async def async_client(i):
                for r in range(ROUNDS):
                    pick = (i + r) % 3
                    result = await server.submit(
                        queries[pick],
                        **({"lim": 30} if pick == 1 else {}))
                    if result.rows != references[pick]:
                        mismatches.append(f"async{i}/q{pick}")

            def thread_client(i):
                for r in range(ROUNDS):
                    pick = (i + r) % 3
                    result = server.execute(
                        queries[pick],
                        **({"lim": 30} if pick == 1 else {}))
                    if result.rows != references[pick]:
                        mismatches.append(f"thread{i}/q{pick}")

            threads = [threading.Thread(target=thread_client, args=(i,))
                       for i in range(THREADS)]
            for t in threads:
                t.start()

            async def fan_out():
                await asyncio.gather(*[async_client(i)
                                       for i in range(ASYNC_CLIENTS)])

            asyncio.run(fan_out())
            for t in threads:
                t.join()

            assert mismatches == []
            stats = server.stats()
            total = (ASYNC_CLIENTS + THREADS) * ROUNDS
            assert stats["submitted"] == total
            assert stats["admitted"] == total
            assert stats["completed"] == total
            assert stats["failed"] == 0
            assert stats["rejected_queue_full"] == 0
            assert stats["timeouts"] == 0
            assert stats["queue_depth"] == 0 and stats["in_flight"] == 0
            # Shared cache: every prepare was a cache lookup, and only
            # the first optimization(s) of each distinct plan missed.
            assert stats["prepares"] == total
            assert stats["executions"] == total
            assert stats["cache_hits"] + stats["cache_misses"] == total
            assert stats["cache_misses"] == stats["optimizations"]
            assert stats["cache_size"] <= 3
            assert 1 <= stats["sessions"] <= 4
            # Only fresh optimizations count sharded-plan decisions, so
            # the decision counters stay tied to misses, not traffic.
            assert stats["shard_merge_plans"] <= stats["optimizations"]
            assert stats["latency_p95_ms"] >= stats["latency_p50_ms"] > 0
            assert 0.0 < stats["worker_utilization"] <= 1.0

    def test_sessions_share_the_plan_cache(self, catalog):
        """Two explicit sessions over one SharedPlanCache: a plan
        optimized by the first is served to the second from cache."""
        cache = SharedPlanCache(capacity=16)
        s1 = QuerySession(catalog, cache=cache)
        s2 = QuerySession(catalog, cache=cache)
        query = Query.table("t").order_by("b", "a", "c")
        p1 = s1.prepare(query, parallelism=4)
        p2 = s2.prepare(query, parallelism=4)
        assert not p1.from_cache and p2.from_cache
        assert p1.plan is p2.plan
        assert s1.metrics.optimizations == 1
        assert s2.metrics.optimizations == 0
        assert cache.stats.hits == 1 and cache.stats.misses == 1


# -- backend parity ----------------------------------------------------------------------
class TestProcessBackend:
    def test_bit_identical_on_fuzz_corpus(self):
        """Acceptance: the process-pool backend returns bit-identical
        rows to serial execution on the fuzz-suite plan corpus."""
        from tests.test_plan_fuzz import random_catalog, random_query

        seeds = range(12)
        for seed in seeds:
            rng = random.Random(seed)
            fuzz_catalog = random_catalog(rng)
            query = random_query(rng, fuzz_catalog)
            reference = QuerySession(fuzz_catalog).execute(query)
            with QueryServer(fuzz_catalog, backend="process", parallelism=4,
                             max_inflight=2, pool_workers=2) as server:
                result = server.execute(query)
                assert result.rows == reference, f"fuzz seed {seed}"

    def test_shard_subplans_ship_to_workers(self, catalog, references):
        """A MergeExchange plan is cut at the exchange: per-shard sorts
        run in worker processes, the stable merge runs in the server."""
        from repro.engine import shard_subplans

        session = QuerySession(catalog)
        plan = session.prepare(serving_queries()[0], parallelism=4).plan
        occurrences, tasks = shard_subplans(plan)
        assert len(occurrences) == 1 and len(tasks) == 4
        assert all(t.op in ("Sort", "PartialSort") for t in tasks)

        with QueryServer(catalog, backend="process", parallelism=4,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[0]).rows == references[0]

    def test_whole_plan_fallback_without_exchange(self, catalog, references):
        """parallelism=1 plans carry no exchange and ship whole — the
        pool then parallelizes across queries instead of within one."""
        with QueryServer(catalog, backend="process", parallelism=1,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[2]).rows == references[2]

    def test_stale_pool_detection_and_refresh(self):
        catalog = serving_catalog(num_rows=500, seed=3)
        query = Query.table("t").order_by("b", "a", "c")
        backend = ProcessPoolBackend(catalog, workers=2)
        try:
            with QueryServer(catalog, backend=backend,
                             parallelism=2) as server:
                before = server.execute(query).rows
                table = catalog.table("t")
                table._rows[:] = table._rows[: len(table._rows) // 2]
                table._sort_rows_by(SortOrder(["a"]))
                catalog.refresh_stats("t")
                assert backend.stale()
                backend.refresh()
                assert not backend.stale()
                after = server.execute(query).rows
                assert after == QuerySession(catalog).execute(query)
                assert len(after) < len(before)
        finally:
            backend.close()

    def test_parameterized_binds_reach_workers(self, catalog, references):
        with QueryServer(catalog, backend="process", parallelism=4,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[1],
                                  lim=30).rows == references[1]

    def test_worker_tallies_surface_through_ctx(self, catalog, references):
        """Worker-side counters (absorbed in shard order) are observable
        by passing an ExecutionContext to the backend."""
        from repro.engine import ExecutionContext

        session = QuerySession(catalog)
        plan = session.prepare(serving_queries()[0], parallelism=4).plan
        backend = ProcessPoolBackend(catalog, workers=2)
        try:
            ctx = ExecutionContext(catalog)
            rows = backend.run_plan(plan, catalog, parallelism=4, ctx=ctx)
            assert rows == references[0]
            # The shards' scan I/O was charged in the workers and folded
            # back here; the k-way merge comparisons accrue locally.
            assert ctx.io.blocks_read > 0
            assert ctx.comparisons.value > 0
        finally:
            backend.close()


class TestThreadBackendParity:
    def test_threads_backend_matches_serial(self, catalog, references):
        with QueryServer(catalog, backend="threads", parallelism=4,
                         max_inflight=2) as server:
            for i, (query, reference) in enumerate(zip(serving_queries(),
                                                       references)):
                binds = {"lim": 30} if i == 1 else {}
                assert server.execute(query, **binds).rows == reference


# -- cooperative backpressure ------------------------------------------------------------
class _FailingBackend(ExecutionBackend):
    """Fails the first *n* executions with an injected backend error,
    then serves a canned row."""

    name = "failing"

    def __init__(self, fail_first: int) -> None:
        self.fail_first = fail_first
        self.calls = 0
        self._lock = threading.Lock()

    def run_plan(self, plan, catalog, parallelism=1, batch_size=None,
                 check_orders=False, ctx=None):
        with self._lock:
            self.calls += 1
            n = self.calls
        if n <= self.fail_first:
            raise RuntimeError("injected backend failure")
        return [("ok",)]


class TestBackpressure:
    def test_queue_full_rejection_carries_retry_after(self, catalog):
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=1) as server:
            async def scenario():
                first = asyncio.ensure_future(server.submit(query))
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                second = asyncio.ensure_future(server.submit(query))
                await asyncio.sleep(0.05)
                with pytest.raises(QueryRejected) as exc_info:
                    await server.submit(query)
                backend.release.set()
                await asyncio.gather(first, second)
                return exc_info.value

            rejection = asyncio.run(scenario())
            assert rejection.reason == "queue_full"
            assert rejection.retry_after > 0.0
            assert reconciles(server.stats())

    def test_dispatch_submit_failure_releases_admission_slot(self, catalog):
        """Regression: a submission the dispatch pool refuses (shutdown
        race past the _closed check) must release its admission slot —
        previously `queued` inflated forever and eventually every
        submission was rejected."""
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend="serial", max_inflight=1,
                         queue_limit=2) as server:
            real_submit = server._dispatch.submit

            def refusing_submit(*args, **kwargs):
                raise RuntimeError("cannot schedule new futures")

            server._dispatch.submit = refusing_submit
            try:
                for _ in range(3):  # more failures than queue_limit slots
                    with pytest.raises(RuntimeError):
                        server.execute(query)
            finally:
                server._dispatch.submit = real_submit
            stats = server.stats()
            assert stats["queue_depth"] == 0
            assert stats["failed"] == 3
            # The queue is empty again, so admission still works.
            assert server.execute(query).rows
            stats = server.stats()
            assert stats["completed"] == 1
            assert reconciles(stats)

    def test_client_abandoned_query_not_recounted_completed(self, catalog):
        """A query whose client stopped waiting mid-run is counted as
        that client's timeout and *only* that: the late backend result is
        discarded as `abandoned`, never double-counted `completed`."""
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=2) as server:
            with pytest.raises(QueryTimeout):
                server.execute(query, timeout=0.05)
            backend.release.set()
            stats = wait_quiescent(server)
            assert stats["timeouts"] == 1
            assert stats["completed"] == 0
            assert stats["abandoned"] == 1
            assert reconciles(stats)

    def test_queued_deadline_expiry_not_double_counted(self, catalog):
        """Regression: the dispatch body's queued-deadline expiry used to
        count both `failed` and `timeouts`; outcomes are exclusive now."""
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=4, default_timeout=0.05) as server:
            async def scenario():
                first = asyncio.ensure_future(
                    server.submit(query, timeout=30.0))
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                with pytest.raises(QueryTimeout):
                    await server.submit(query)
                backend.release.set()
                await first

            asyncio.run(scenario())
            stats = wait_quiescent(server)
            assert stats["timeouts"] == 1
            assert stats["failed"] == 0
            assert stats["completed"] == 1
            assert reconciles(stats)

    def test_circuit_breaker_open_halfopen_close(self, catalog):
        """Consecutive backend failures trip the circuit; the open
        circuit sheds load with CircuitOpen + retry_after; the half-open
        probe after the reset timeout closes it again."""
        backend = _FailingBackend(fail_first=3)
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         circuit_threshold=3,
                         circuit_reset_timeout=0.05) as server:
            for _ in range(3):
                with pytest.raises(RuntimeError):
                    server.execute(query)
            stats = server.stats()
            assert stats["circuit_state"] == "open"
            assert stats["circuit_opens"] == 1
            with pytest.raises(CircuitOpen) as exc_info:
                server.execute(query)
            assert exc_info.value.reason == "circuit_open"
            assert exc_info.value.retry_after > 0.0
            # The open circuit never reaches the backend.
            assert backend.calls == 3
            time.sleep(0.06)
            result = server.execute(query)  # the half-open probe
            assert result.rows == [("ok",)]
            stats = server.stats()
            assert stats["circuit_state"] == "closed"
            assert stats["circuit_half_opens"] == 1
            assert stats["circuit_closes"] == 1
            assert stats["rejected_circuit"] == 1
            assert stats["failed"] == 3 and stats["completed"] == 1
            assert reconciles(stats)

    def test_tenant_quota_weighted_fairness(self, catalog):
        """Under contention (wait queue at least half full), a tenant
        over its weighted-fair share is rejected with reason "quota"
        while a below-share tenant is still admitted."""
        backend = _BlockingBackend()
        query = Query.table("t").order_by("a")
        with QueryServer(catalog, backend=backend, max_inflight=1,
                         queue_limit=4,
                         tenant_weights={"alice": 1.0, "bob": 1.0}) as server:
            async def scenario():
                # alice: one running + two queued (occupancy 3).
                pending = [asyncio.ensure_future(
                    server.submit(query, tenant="alice"))]
                await asyncio.get_running_loop().run_in_executor(
                    None, backend.started.wait, 10)
                for _ in range(2):
                    pending.append(asyncio.ensure_future(
                        server.submit(query, tenant="alice")))
                await asyncio.sleep(0.05)
                # Queue is half full now: fair shares bind.  bob's first
                # query is under his entitlement (floor(5/2) = 2) …
                pending.append(asyncio.ensure_future(
                    server.submit(query, tenant="bob")))
                await asyncio.sleep(0.05)
                # … while alice (occupancy 3 >= 2) is over hers.
                with pytest.raises(QueryRejected) as exc_info:
                    await server.submit(query, tenant="alice")
                backend.release.set()
                await asyncio.gather(*pending)
                return exc_info.value

            rejection = asyncio.run(scenario())
            assert rejection.reason == "quota"
            assert rejection.retry_after > 0.0
            stats = wait_quiescent(server)
            tenants = stats["tenants"]
            assert tenants["alice"]["rejected_quota"] == 1
            assert tenants["alice"]["completed"] == 3
            assert tenants["bob"]["rejected_quota"] == 0
            assert tenants["bob"]["completed"] == 1
            assert stats["rejected_quota"] == 1
            assert reconciles(stats)
            # Per-tenant counters partition the global ones exactly.
            for key in ("submitted", "completed", "failed", "timeouts",
                        "rejected_queue_full", "rejected_quota",
                        "rejected_circuit"):
                assert sum(t[key] for t in tenants.values()) == stats[key]


# -- pool resilience ---------------------------------------------------------------------
def _worker_suicide(_: int) -> None:
    """Kills the worker process outright: breaks the pool."""
    os._exit(17)


class TestPoolResilience:
    def test_concurrent_broken_pool_single_rebuild(self):
        """Many dispatch threads hitting one broken pool: the first
        attempt's futures are cancelled, exactly one replacement pool is
        built (the expectation guard makes racing rebuilds idempotent),
        and every query succeeds on retry."""
        catalog = serving_catalog(num_rows=800, seed=5)
        query = Query.table("t").order_by("b", "a", "c")
        session = QuerySession(catalog)
        reference = session.execute(query)
        plan = session.prepare(query, parallelism=2).plan
        backend = ProcessPoolBackend(catalog, workers=2)
        try:
            handle = backend._ensure_pool()
            doomed = handle.pool.submit(_worker_suicide, 0)
            with pytest.raises(BrokenExecutor):
                doomed.result(timeout=30)
            results: list = [None] * 4
            errors: list = []

            def client(i):
                try:
                    results[i] = backend.run_plan(plan, catalog,
                                                  parallelism=2)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert all(rows == reference for rows in results)
            assert backend.describe()["pool_rebuilds"] == 1
        finally:
            backend.close()

    def test_refresh_while_serving(self):
        """refresh() swaps the pool under traffic: dispatch threads
        mid-flight drain on the old generation or retry on the new one —
        never an error, never a wrong result."""
        catalog = serving_catalog(num_rows=600, seed=7)
        query = Query.table("t").order_by("b", "a", "c")
        session = QuerySession(catalog)
        reference = session.execute(query)
        plan = session.prepare(query, parallelism=2).plan
        backend = ProcessPoolBackend(catalog, workers=2)
        stop = threading.Event()
        errors: list = []
        served = [0]

        def client():
            while not stop.is_set():
                try:
                    rows = backend.run_plan(plan, catalog, parallelism=2)
                except Exception as exc:
                    errors.append(exc)
                    return
                if rows != reference:
                    errors.append(AssertionError("rows diverged"))
                    return
                served[0] += 1

        try:
            threads = [threading.Thread(target=client) for _ in range(2)]
            for t in threads:
                t.start()
            for _ in range(2):
                time.sleep(0.05)
                backend.refresh()
            stop.set()
            for t in threads:
                t.join()
            assert errors == []
            assert served[0] > 0
        finally:
            backend.close()


# -- streaming shard transfer ------------------------------------------------------------
class TestStreamingTransfer:
    def test_streaming_matches_gathered_rows_and_tallies(self, catalog,
                                                         references):
        """Chunked transfer is bit-identical to whole-result pickles —
        rows and absorbed worker tallies alike — and the worker-side
        subplan cache hits on a re-served identical plan."""
        from repro.engine import ExecutionContext

        session = QuerySession(catalog)
        plan = session.prepare(serving_queries()[0], parallelism=4).plan
        streaming = ProcessPoolBackend(catalog, workers=1, chunk_rows=256)
        gathered = ProcessPoolBackend(catalog, workers=1, streaming=False)
        try:
            ctx_s = ExecutionContext(catalog)
            ctx_g = ExecutionContext(catalog)
            rows_s = streaming.run_plan(plan, catalog, parallelism=4,
                                        ctx=ctx_s)
            rows_g = gathered.run_plan(plan, catalog, parallelism=4,
                                       ctx=ctx_g)
            assert rows_s == rows_g == references[0]
            assert ctx_s.tallies() == ctx_g.tallies()

            d = streaming.describe()
            assert d["streaming"] and not gathered.describe()["streaming"]
            assert d["streamed_queries"] == 1
            # 4 shards of ~1000 rows in 256-row chunks.
            assert d["streamed_chunks"] >= 8
            assert d["subplan_cache_misses"] == 4
            assert d["subplan_cache_hits"] == 0

            # Re-serve the identical plan: the single worker has every
            # shard subplan warm.
            assert streaming.run_plan(plan, catalog,
                                      parallelism=4) == references[0]
            d = streaming.describe()
            assert d["subplan_cache_hits"] == 4
        finally:
            streaming.close()
            gathered.close()

    def test_streaming_server_end_to_end(self, catalog, references):
        """The default process backend streams: full server round trip
        stays bit-identical, and the telemetry surfaces in stats()."""
        with QueryServer(catalog, backend="process", parallelism=4,
                         pool_workers=2) as server:
            assert server.execute(serving_queries()[0]).rows == references[0]
            stats = server.stats()
            assert stats["streamed_queries"] == 1
            assert stats["streamed_chunks"] > 0


# -- the chaos reconciliation suite ------------------------------------------------------
class _FlakyBackend(ExecutionBackend):
    """Delegates to a real backend, injecting periodic failures and a
    small fixed delay (to force queueing), plus an on-demand fail-
    everything mode for tripping the circuit deterministically."""

    name = "flaky"

    def __init__(self, inner, fail_every=6, delay=0.004) -> None:
        self.inner = inner
        self.fail_every = fail_every
        self.delay = delay
        self.fail_mode = False
        self.calls = 0
        self._lock = threading.Lock()

    def run_plan(self, plan, catalog, parallelism=1, batch_size=None,
                 check_orders=False, ctx=None):
        with self._lock:
            self.calls += 1
            n = self.calls
            forced = self.fail_mode
        if self.delay:
            time.sleep(self.delay)
        if forced or (self.fail_every and n % self.fail_every == 0):
            raise RuntimeError("injected backend failure")
        return self.inner.run_plan(plan, catalog, parallelism, batch_size,
                                   check_orders, ctx)

    def close(self):
        self.inner.close()


class TestChaosReconciliation:
    @pytest.mark.parametrize("inner", ["serial", "threads", "process"])
    def test_counters_reconcile_exactly_under_chaos(self, inner):
        """Mixed async + thread clients against an overloaded server with
        an injected flaky backend: rejections, queued-deadline expiries,
        mid-run client timeouts and backend failures all occur — and the
        admission counters still reconcile exactly, on every backend,
        with observable circuit transitions at the end."""
        catalog = serving_catalog(num_rows=500, seed=11)
        query = Query.table("t").order_by("b", "a", "c")
        reference = QuerySession(catalog).execute(query)
        flaky = _FlakyBackend(make_backend(inner, catalog, pool_workers=2))
        mismatches: list[str] = []
        ASYNC_CLIENTS, THREADS, ROUNDS = 6, 3, 6

        with QueryServer(catalog, backend=flaky, max_inflight=2,
                         queue_limit=3, circuit_threshold=4,
                         circuit_reset_timeout=0.05) as server:
            def run_one(execute, label, r):
                """One request with a rotating hazard profile."""
                tenant = "alice" if r % 2 == 0 else "bob"
                timeout = None
                if r % 4 == 3:
                    timeout = 0.001  # guaranteed mid-run client timeout
                elif r % 4 == 2:
                    timeout = 0.05   # may expire while queued
                try:
                    result = execute(timeout=timeout, tenant=tenant)
                except (QueryRejected, QueryTimeout, RuntimeError):
                    return
                if result.rows != reference:
                    mismatches.append(label)

            async def async_client(i):
                for r in range(ROUNDS):
                    try:
                        result = await server.submit(
                            query,
                            timeout=(0.001 if r % 4 == 3
                                     else 0.05 if r % 4 == 2 else None),
                            tenant="alice" if r % 2 == 0 else "bob")
                    except (QueryRejected, QueryTimeout, RuntimeError):
                        continue
                    if result.rows != reference:
                        mismatches.append(f"async{i}/{r}")

            def thread_client(i):
                for r in range(ROUNDS):
                    run_one(lambda **kw: server.execute(query, **kw),
                            f"thread{i}/{r}", r)

            threads = [threading.Thread(target=thread_client, args=(i,))
                       for i in range(THREADS)]
            for t in threads:
                t.start()

            async def fan_out():
                await asyncio.gather(*[async_client(i)
                                       for i in range(ASYNC_CLIENTS)])

            asyncio.run(fan_out())
            for t in threads:
                t.join()
            stats = wait_quiescent(server)
            assert mismatches == []
            assert reconciles(stats)
            total = (ASYNC_CLIENTS + THREADS) * ROUNDS
            assert stats["submitted"] >= total  # circuit retries excluded

            # Deterministic circuit phase: fail everything until the
            # breaker opens and sheds at least one submission …
            flaky.fail_every = 0  # fail_mode alone decides from here on
            flaky.fail_mode = True
            saw_circuit_open = False
            for _ in range(50):
                try:
                    server.execute(query)
                except CircuitOpen:
                    saw_circuit_open = True
                    break
                except (QueryRejected, QueryTimeout, RuntimeError):
                    continue
            assert saw_circuit_open
            assert server.stats()["circuit_state"] == "open"
            # … then heal: the half-open probe closes it again.
            flaky.fail_mode = False
            time.sleep(0.06)
            assert server.execute(query).rows == reference
            stats = wait_quiescent(server)
            assert stats["circuit_state"] == "closed"
            assert stats["circuit_opens"] >= 1
            assert stats["circuit_half_opens"] >= 1
            assert stats["circuit_closes"] >= 1
            assert stats["rejected_circuit"] >= 1
            assert reconciles(stats)
            # Per-tenant counters partition the global ones exactly.
            tenants = stats["tenants"]
            for key in ("submitted", "completed", "failed", "timeouts",
                        "rejected_queue_full", "rejected_quota",
                        "rejected_circuit"):
                assert sum(t[key] for t in tenants.values()) == stats[key], key
