"""Batch/row parity: every query must produce identical rows, orders and
cost-counter totals at any batch size.

The batch-vectorized engine's contract (docs/execution.md): batching is
a pure execution-granularity choice — ``batch_size=1`` degenerates to
the seed's row-at-a-time behaviour, and for run-to-completion queries
the simulated I/O block counts and comparison tallies are *bit-identical*
across batch sizes.  (Early-terminating LIMIT consumers pay scan I/O at
batch granularity, which is why they are exercised for row parity only.)

Property-style: the paper's example queries (Q3 on mini TPC-H, Q4 on the
identical R-tables, Q5/Q6 on the trading workload, Example 1 on the
catalog-consolidation workload) are each executed at batch sizes 1, 7,
64 and 4096 and compared field by field.
"""

import pytest

from repro.engine import ExecutionContext
from repro.optimizer import Optimizer
from repro.service import QuerySession
from repro.storage import SystemParameters
from repro.workloads import (
    consolidation_catalog,
    example1_query,
    identical_r_tables,
    query4,
    query5,
    query6,
    trading_catalog,
)

BATCH_SIZES = (1, 7, 64, 4096)


def _counters(ctx: ExecutionContext) -> dict:
    return {
        "blocks_read": ctx.io.blocks_read,
        "blocks_written": ctx.io.blocks_written,
        "scan_blocks": ctx.io.scan_blocks,
        "run_blocks_written": ctx.io.run_blocks_written,
        "run_blocks_read": ctx.io.run_blocks_read,
        "partition_blocks": ctx.io.partition_blocks,
        "comparisons": ctx.comparisons.value,
        "cost_units": ctx.cost_units(),
        "runs_created": ctx.sort_metrics.runs_created,
        "segments_sorted": ctx.sort_metrics.segments_sorted,
        "in_memory_sorts": ctx.sort_metrics.in_memory_sorts,
    }


def _execute_at(catalog, query, batch_size: int):
    plan = Optimizer(catalog).optimize(query)
    ctx = ExecutionContext(catalog, check_orders=True, batch_size=batch_size)
    rows = plan.to_operator(catalog).run(ctx)
    return rows, _counters(ctx)


def parity_cases():
    small_params = SystemParameters(sort_memory_blocks=64)
    yield "Q4", identical_r_tables(2_000, params=small_params), query4()
    trading = trading_catalog(scale=0.01)
    yield "Q5", trading, query5()
    yield "Q6", trading, query6()
    yield "Example1", consolidation_catalog(scale=0.01), example1_query()


@pytest.mark.parametrize("name,catalog,query",
                         parity_cases(), ids=lambda v: v if isinstance(v, str) else "")
def test_example_queries_batch_row_parity(name, catalog, query):
    reference_rows, reference_counters = _execute_at(catalog, query, 1)
    for batch_size in BATCH_SIZES[1:]:
        rows, counters = _execute_at(catalog, query, batch_size)
        assert rows == reference_rows, (name, batch_size)
        assert counters == reference_counters, (name, batch_size)


def test_query3_batch_row_parity(tpch_mini, query3):
    reference_rows, reference_counters = _execute_at(tpch_mini, query3, 1)
    assert reference_rows  # the mini catalog must produce a non-trivial answer
    for batch_size in BATCH_SIZES[1:]:
        rows, counters = _execute_at(tpch_mini, query3, batch_size)
        assert rows == reference_rows, batch_size
        assert counters == reference_counters, batch_size


def test_parity_under_spilling_sorts(rng):
    """Tiny sort memory forces SRS/MRS run spills; tallies must still be
    batch-size independent."""
    from repro.core.sort_order import SortOrder
    from repro.engine import Sort, TableScan
    from repro.storage import Catalog, Schema

    params = SystemParameters(block_size=256, sort_memory_blocks=4)
    cat = Catalog(params)
    schema = Schema.of(("a", "int", 8), ("b", "int", 8), ("v", "int", 8))
    rows = [(rng.randrange(5), rng.randrange(1000), i) for i in range(3000)]
    cat.create_table("t", schema, rows=rows, clustering_order=SortOrder(["a"]))

    def run(algorithm, batch_size):
        op = Sort(TableScan(cat.table("t")), SortOrder(["a", "b"]),
                  algorithm=algorithm)
        ctx = ExecutionContext(cat, batch_size=batch_size)
        return op.run(ctx), _counters(ctx)

    for algorithm in ("srs", "mrs", "auto"):
        ref_rows, ref_counters = run(algorithm, 1)
        assert ref_counters["blocks_written"] > 0 or algorithm != "srs"
        for batch_size in (3, 257, 4096):
            got_rows, got_counters = run(algorithm, batch_size)
            assert got_rows == ref_rows, (algorithm, batch_size)
            assert got_counters == ref_counters, (algorithm, batch_size)


def test_limit_row_parity(tpch_mini):
    """LIMIT answers are batch-size independent (its I/O legitimately is
    not — early termination stops paying at batch granularity)."""
    from repro.logical import Query
    query = (Query.table("partsupp")
             .select("ps_partkey", "ps_suppkey", "ps_availqty")
             .order_by("ps_partkey", "ps_suppkey")
             .limit(25))
    session = QuerySession(tpch_mini)
    reference = session.execute(query, batch_size=1)
    assert len(reference) == 25
    for batch_size in BATCH_SIZES[1:]:
        assert session.execute(query, batch_size=batch_size) == reference


def test_parallel_execution_row_parity(tpch_mini, query3):
    """Sharded execution returns the same rows in the same order."""
    session = QuerySession(tpch_mini)
    reference = session.execute(query3)
    for parallelism in (2, 5):
        assert session.execute(query3, parallelism=parallelism) == reference
    assert session.execute(query3, parallelism=4, use_threads=True) == reference
