"""Property-based parity: per-shard-sort-plus-merge must be bit-identical
to the post-union full sort.

For seeded random tables (row counts including empty, duplicate-heavy key
domains, varying clustering), random required orders, shard counts and
batch sizes, the pipeline

    MergeExchange([Sort(ShardedScan_i)] ...)

must return exactly the rows, in exactly the order, of

    Sort(ExchangeUnion([ShardedScan_i] ...))

— both are stable, and the merge breaks ties by shard index, which equals
the concatenation's arrival order.  The same property is checked through
the serving layer, where the optimizer (not the test) decides the plan
shape."""

import random

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import (
    ExchangeUnion,
    ExecutionContext,
    MergeExchange,
    ShardedScan,
    Sort,
    TableScan,
)
from repro.logical import Query
from repro.service import QuerySession
from repro.storage import Catalog, Schema, SystemParameters
from repro.workloads import segmented_catalog

BATCH_SIZES = (1, 64, None)  # None → DEFAULT_BATCH_SIZE
SCHEMA = Schema.of(("a", "int", 8), ("b", "int", 8), ("c", "int", 8),
                   ("id", "int", 8))


def random_catalog(rng: random.Random):
    """A table with duplicate-heavy keys, a unique payload column and a
    randomly chosen clustering order (sometimes none)."""
    num_rows = rng.choice([0, 1, 7, 100, 400])
    rows = [(rng.randrange(5), rng.randrange(7), rng.randrange(3), i)
            for i in range(num_rows)]
    clustering = rng.choice([(), ("a",), ("a", "b")])
    # Tiny sort memory on some cases so the per-shard sorts really spill.
    params = (SystemParameters(block_size=256, sort_memory_blocks=4)
              if rng.random() < 0.4 else SystemParameters())
    cat = Catalog(params)
    cat.create_table("t", SCHEMA, rows=rows,
                     clustering_order=SortOrder(clustering))
    return cat


def random_target(rng: random.Random) -> SortOrder:
    attrs = ["a", "b", "c"]
    rng.shuffle(attrs)
    return SortOrder(attrs[:rng.randrange(1, 4)])


def shard_sources(table, shard_count):
    if shard_count == 1:
        return [TableScan(table)]
    return [ShardedScan(table, shard_count, i) for i in range(shard_count)]


def post_union_pipeline(table, shard_count, target):
    sources = shard_sources(table, shard_count)
    src = sources[0] if shard_count == 1 else ExchangeUnion(sources)
    return Sort(src, target)


def merge_pipeline(table, shard_count, target):
    shards = [Sort(src, target) for src in shard_sources(table, shard_count)]
    return MergeExchange(shards, target)


@pytest.mark.parametrize("seed", range(20))
def test_merge_parity_random_plans(seed):
    rng = random.Random(20260730 + seed)
    cat = random_catalog(rng)
    table = cat.table("t")
    target = random_target(rng)
    shard_count = rng.choice([1, 2, 3, 5, 8])

    reference = None
    for batch_size in BATCH_SIZES:
        ref_ctx = ExecutionContext(cat, check_orders=True, batch_size=batch_size)
        expected = post_union_pipeline(table, shard_count, target).run(ref_ctx)
        ctx = ExecutionContext(cat, check_orders=True, batch_size=batch_size)
        got = merge_pipeline(table, shard_count, target).run(ctx)
        assert got == expected, (seed, target, shard_count, batch_size)
        if reference is None:
            reference = got
        else:  # the answer itself is batch-size invariant
            assert got == reference, (seed, target, shard_count, batch_size)


@pytest.mark.parametrize("seed", range(20))
def test_merge_counters_batch_size_independent(seed):
    """Simulated I/O and comparison tallies of the merge pipeline are a
    pure function of the data, not of the batching."""
    rng = random.Random(90 + seed)
    cat = random_catalog(rng)
    table = cat.table("t")
    target = random_target(rng)
    shard_count = rng.choice([2, 3, 5])

    def counters_at(batch_size):
        ctx = ExecutionContext(cat, batch_size=batch_size)
        rows = merge_pipeline(table, shard_count, target).run(ctx)
        return rows, (ctx.io.blocks_read, ctx.io.blocks_written,
                      ctx.comparisons.value, ctx.sort_metrics.runs_created,
                      ctx.sort_metrics.segments_sorted,
                      ctx.sort_metrics.in_memory_sorts)

    ref_rows, ref_counters = counters_at(1)
    for batch_size in (7, 64, 4096):
        rows, counters = counters_at(batch_size)
        assert rows == ref_rows, (seed, batch_size)
        assert counters == ref_counters, (seed, batch_size)


@pytest.mark.parametrize("seed", range(8))
def test_session_parity_optimizer_chooses(seed):
    """Through the serving layer: whatever enforcer placement the
    optimizer picks at any parallelism and batch size, the answer is
    bit-identical to the serial plan and to the forced post-union
    baseline."""
    rng = random.Random(777 + seed)
    num_rows = rng.choice([500, 2000, 8000])
    rows_per_segment = rng.choice([10, 100, num_rows // 2 or 1])
    memory_blocks = rng.choice([50, 200, 10_000])
    catalog = segmented_catalog(
        num_rows, rows_per_segment, seed=seed,
        params=SystemParameters(sort_memory_blocks=memory_blocks))
    query = Query.table("r").order_by(*rng.choice([("c2",), ("c1", "c2"),
                                                   ("c2", "c1")]))

    session = QuerySession(catalog)
    baseline = QuerySession(catalog, shard_aware_enforcers=False)
    reference = session.execute(query)
    for parallelism in (2, 4):
        for batch_size in BATCH_SIZES:
            assert session.execute(query, parallelism=parallelism,
                                   batch_size=batch_size) == reference, \
                (seed, parallelism, batch_size)
        assert baseline.execute(query, parallelism=parallelism) == reference, \
            (seed, parallelism)
