"""Randomized plan-parity fuzz suite.

Generates seeded random logical plans mixing joins (inner / left / full
outer), aggregates, unions, distinct, computed columns, limits and a
root ORDER BY over random catalogs (random clustering, random range
partition specs, random sort-memory sizes), and asserts the result rows
are **bit-identical** across every execution configuration:

* ``parallelism`` ∈ {1, 2, 4} (different physical plans: the shard-aware
  search may place enforcers, joins and aggregations per shard);
* ``batch_size`` ∈ {1, 64, default};
* threads on/off (thread-pool exchange drains);
* row-at-a-time vs batch-vectorized driving;
* order-checked execution (``check_orders=True``), so every operator's
  declared sort order is verified at run time;
* columnar kernels on vs off (``ExecutionContext(columnar=False)`` is
  the row-tuple batched engine), including a tally comparison: the
  evaluation layout must not change any simulated cost counter.

Every generated query ends with ``ORDER BY *all output columns*``, which
totally orders the output up to fully-duplicate rows — interchangeable
by definition — so exact list equality is the right oracle even when
different parallelism levels pick structurally different plans.  All
table values are small ints, keeping SUM/COUNT/MIN/MAX recombination
bit-exact across per-shard partial aggregation.

On a mismatch the suite *shrinks* the failing query: every logical
subtree is re-checked smallest-first and the minimal failing fragment is
reported together with the seed, so a one-line repro lands in the
assertion message.

The seed base is ``REPRO_FUZZ_SEED`` (default 0 — what CI pins) and the
plan count ``REPRO_FUZZ_PLANS`` (default 200, per the acceptance bar).
"""

import os
import random

import pytest

from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext
from repro.expr import col
from repro.expr.aggregates import AggSpec, count_star
from repro.logical import Query
from repro.logical.algebra import Annotator
from repro.service import QuerySession
from repro.storage import Catalog, RangePartitioning, Schema, SystemParameters

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
NUM_PLANS = int(os.environ.get("REPRO_FUZZ_PLANS", "200"))
CHUNKS = 4

AGG_FUNCS = ("sum", "min", "max", "count", "avg")


# -- random catalogs ---------------------------------------------------------------------
def random_catalog(rng: random.Random) -> Catalog:
    """2–3 small int tables; random clustering, range partitioning and
    sort-memory size so in-memory, spilling, contiguous and filtered-
    partition regimes all appear across seeds."""
    catalog = Catalog(SystemParameters(
        sort_memory_blocks=rng.choice([2, 4, 16, 10_000])))
    for t in range(rng.randint(2, 3)):
        names = [f"t{t}_c{i}" for i in range(rng.randint(2, 4))]
        # Declared widths vary so sorts cross the spill boundary: a
        # 60-row table of 200-byte columns is ~12 blocks against 2–16
        # blocks of sort memory, putting per-shard enforcement in play.
        schema = Schema.of(*[(n, "int", rng.choice([8, 8, 64, 200]))
                             for n in names])
        num_rows = rng.randint(20, 60)
        domain = rng.choice([4, 10, 40])
        rows = [tuple(rng.randrange(domain) for _ in names)
                for _ in range(num_rows)]
        clustered = rng.random() < 0.6
        clustering = SortOrder([names[0]]) if clustered else SortOrder(())
        partitioning = None
        if domain > 2 and rng.random() < 0.45:
            cuts = sorted(rng.sample(range(1, domain),
                                     min(rng.randint(1, 3), domain - 1)))
            partitioning = RangePartitioning(names[0], tuple(cuts))
        catalog.create_table(f"t{t}", schema, rows=rows,
                             clustering_order=clustering,
                             partitioning=partitioning)
    return catalog


# -- random queries ----------------------------------------------------------------------
def _random_filter(rng: random.Random, q: Query, cols: list[str]) -> Query:
    c = rng.choice(cols)
    value = rng.randrange(40)
    comparison = rng.choice([col(c).lt, col(c).le, col(c).gt, col(c).ge,
                             col(c).eq])
    return q.where(comparison(value))


def random_query(rng: random.Random, catalog: Catalog) -> Query:
    available = [table.name for table in catalog.tables()]
    rng.shuffle(available)
    q = Query.table(available.pop())
    cols = list(catalog.table(q.expr.table_name).schema.names)
    fresh = [0]

    for _ in range(rng.randint(1, 4)):
        choice = rng.random()
        if choice < 0.18:
            q = _random_filter(rng, q, cols)
        elif choice < 0.30 and len(cols) > 1:
            keep = sorted(rng.sample(range(len(cols)),
                                     rng.randint(1, len(cols))))
            cols = [cols[i] for i in keep]
            q = q.select(*cols)
        elif choice < 0.40:
            name = f"x{fresh[0]}"
            fresh[0] += 1
            q = q.compute(**{name: col(rng.choice(cols)) + rng.randrange(5)})
            cols = cols + [name]
        elif choice < 0.62 and available:
            other = available.pop()
            other_cols = list(catalog.table(other).schema.names)
            pairs = [(rng.choice(cols), rng.choice(other_cols))
                     for _ in range(rng.randint(1, 2))]
            # Join predicates reject duplicates on either side.
            seen_l: set[str] = set()
            seen_r: set[str] = set()
            deduped = []
            for l, r in pairs:
                if l not in seen_l and r not in seen_r:
                    deduped.append((l, r))
                    seen_l.add(l)
                    seen_r.add(r)
            pairs = deduped
            how = rng.choice(["inner", "inner", "left", "full"])
            q = q.join(other, on=pairs, how=how)
            cols = cols + other_cols
        elif choice < 0.80:
            group = sorted(rng.sample(range(len(cols)),
                                      rng.randint(1, min(2, len(cols)))))
            group_cols = [cols[i] for i in group]
            aggs = []
            for j in range(rng.randint(1, 2)):
                name = f"a{fresh[0]}"
                fresh[0] += 1
                if rng.random() < 0.2:
                    aggs.append(count_star(name))
                else:
                    aggs.append(AggSpec(rng.choice(AGG_FUNCS),
                                        col(rng.choice(cols)), name))
            q = q.group_by(group_cols, *aggs)
            cols = group_cols + [a.output_name for a in aggs]
        elif choice < 0.90:
            q = _random_filter(rng, q, cols).union(_random_filter(rng, q, cols))
        else:
            q = q.distinct()

    q = q.order_by(*cols)
    if rng.random() < 0.2:
        q = q.limit(rng.randint(1, 40))
    return q


# -- the parity oracle -------------------------------------------------------------------
def execution_mismatches(catalog: Catalog, query) -> list[str]:
    """Run *query* under every configuration; names of configs whose rows
    differ from the serial reference (empty = parity holds)."""
    session = QuerySession(catalog)
    reference = session.execute(query)
    results: dict[str, list[tuple]] = {}
    for parallelism in (1, 2, 4):
        for batch_size in (1, 64, None):
            name = f"p{parallelism}/b{batch_size or 'def'}"
            results[name] = session.execute(query, parallelism=parallelism,
                                            batch_size=batch_size)
        results[f"p{parallelism}/threads"] = session.execute(
            query, parallelism=parallelism, use_threads=True)
    # Order-checked execution: every declared order is verified per row.
    checked = ExecutionContext(catalog, check_orders=True)
    results["p4/checked"] = session.execute(query, parallelism=4, ctx=checked)
    # Row-at-a-time driving of the sharded plan (the seed engine's API).
    plan = session.prepare(query, parallelism=4).plan
    row_ctx = ExecutionContext(catalog, batch_size=1)
    results["p4/rows"] = list(plan.to_operator(catalog).execute(row_ctx))
    # Columnar-vs-row parity: the same plans driven with whole-column
    # kernels disabled (columnar=False reproduces the row-tuple batched
    # engine) must return the same rows...
    for parallelism in (1, 4):
        for batch_size in (1, 64, None):
            engine_ctx = ExecutionContext(catalog, batch_size=batch_size,
                                          columnar=False)
            name = f"p{parallelism}/b{batch_size or 'def'}/rowengine"
            results[name] = session.execute(query, parallelism=parallelism,
                                            ctx=engine_ctx)
    bad = [name for name, rows in results.items() if rows != reference]
    # ...and bit-identical simulated costs: I/O blocks, comparison
    # counts and sort metrics may not depend on the evaluation layout.
    columnar_ctx = ExecutionContext(catalog)
    rowwise_ctx = ExecutionContext(catalog, columnar=False)
    session.execute(query, ctx=columnar_ctx)
    session.execute(query, ctx=rowwise_ctx)
    if columnar_ctx.tallies() != rowwise_ctx.tallies():
        bad.append("tallies/columnar-vs-row")
    return bad


def shrink_failure(catalog: Catalog, query) -> str:
    """Smallest failing logical fragment (each subtree re-ordered on its
    own output columns and re-checked), for the assertion message."""
    candidates = sorted(query.expr.walk(), key=lambda e: sum(1 for _ in e.walk()))
    for node in candidates:
        annotator = Annotator(catalog, node)
        sub = Query.of(node).order_by(*annotator.schema_of(node).names)
        try:
            bad = execution_mismatches(catalog, sub)
        except Exception as exc:  # a crash is as good as a mismatch
            return f"{sub.pretty()}\n(shrunk fragment raises: {exc!r})"
        if bad:
            return f"{sub.pretty()}\n(shrunk fragment mismatches: {bad})"
    return query.pretty() + "\n(no smaller failing fragment found)"


def run_seed(seed: int) -> None:
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    query = random_query(rng, catalog)
    try:
        mismatches = execution_mismatches(catalog, query)
    except Exception:
        print(f"\nfuzz seed {seed} crashed on:\n{query.pretty()}")
        raise
    if mismatches:
        fragment = shrink_failure(catalog, query)
        pytest.fail(
            f"fuzz seed {seed}: configs {mismatches} diverge from the "
            f"serial reference.\nquery:\n{query.pretty()}\n"
            f"minimal failing fragment:\n{fragment}")


@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_plan_parity_fuzz(chunk):
    per_chunk = (NUM_PLANS + CHUNKS - 1) // CHUNKS
    start = BASE_SEED + chunk * per_chunk
    for seed in range(start, start + per_chunk):
        run_seed(seed)


# -- join-enumerator result parity -------------------------------------------------------
REORDERING_ENUMERATORS = ("simpli-squared", "greedy-m2m")


def random_join_catalog(rng: random.Random) -> Catalog:
    """4–6 small int tables for multi-leaf inner-join regions: unlike
    :func:`random_catalog`, wide enough that join-order rewriting
    (needs >= 3 leaves in one region) fires on most seeds."""
    catalog = Catalog(SystemParameters(
        sort_memory_blocks=rng.choice([4, 16, 10_000])))
    for t in range(rng.randint(4, 6)):
        names = [f"t{t}_c{i}" for i in range(rng.randint(2, 4))]
        schema = Schema.of(*[(n, "int", 8) for n in names])
        domain = rng.choice([6, 8, 10])
        rows = [tuple(rng.randrange(domain) for _ in names)
                for _ in range(rng.randint(10, 25))]
        clustering = (SortOrder([names[0]]) if rng.random() < 0.5
                      else SortOrder(()))
        catalog.create_table(f"t{t}", schema, rows=rows,
                             clustering_order=clustering)
    return catalog


def random_join_region_query(rng: random.Random, catalog: Catalog) -> Query:
    """One maximal inner-join region over every table, joined in a
    random connected order with 1–2 predicate pairs per step."""
    tables = [table.name for table in catalog.tables()]
    rng.shuffle(tables)
    q = Query.table(tables[0])
    placed_cols = list(catalog.table(tables[0]).schema.names)
    for name in tables[1:]:
        new_cols = list(catalog.table(name).schema.names)
        pairs = []
        used_l: set[str] = set()
        used_r: set[str] = set()
        for _ in range(rng.randint(1, 2)):
            l, r = rng.choice(placed_cols), rng.choice(new_cols)
            if l not in used_l and r not in used_r:
                pairs.append((l, r))
                used_l.add(l)
                used_r.add(r)
        q = q.join(name, on=pairs)
        placed_cols += new_cols
    q = q.order_by(*placed_cols)
    if rng.random() < 0.3:
        q = q.limit(rng.randint(1, 50))
    return q


@pytest.mark.parametrize("enumerator", REORDERING_ENUMERATORS)
def test_enumerator_parity_on_fuzz_corpus(enumerator):
    """Each reordering enumerator returns exactly the rows the default
    exhaustive enumerator returns, on every corpus query (serial and
    sharded execution)."""
    for seed in range(BASE_SEED, BASE_SEED + NUM_PLANS):
        rng = random.Random(seed)
        catalog = random_catalog(rng)
        query = random_query(rng, catalog)
        reference = QuerySession(catalog).execute(query)
        session = QuerySession(catalog, join_enumerator=enumerator)
        for parallelism in (1, 4):
            rows = session.execute(query, parallelism=parallelism)
            assert rows == reference, (
                f"{enumerator} diverges from exhaustive on fuzz seed "
                f"{seed} at parallelism {parallelism}:\n{query.pretty()}")


@pytest.mark.parametrize("enumerator", REORDERING_ENUMERATORS)
def test_enumerator_parity_on_join_regions(enumerator):
    """Result parity on wide inner-join regions, where the rewrite
    actually fires — and it must fire, or the parity claim is vacuous."""
    from repro.optimizer.pipeline import make_enumerator
    enum = make_enumerator(enumerator)
    rewrites = 0
    for seed in range(BASE_SEED, BASE_SEED + 40):
        rng = random.Random(seed)
        catalog = random_join_catalog(rng)
        query = random_join_region_query(rng, catalog)
        if list(enum.candidate_trees(catalog, query.expr)) != [query.expr]:
            rewrites += 1
        reference = QuerySession(catalog).execute(query)
        session = QuerySession(catalog, join_enumerator=enumerator)
        for parallelism in (1, 4):
            rows = session.execute(query, parallelism=parallelism)
            assert rows == reference, (
                f"{enumerator} diverges from exhaustive on join-region "
                f"seed {seed} at parallelism {parallelism}:\n"
                f"{query.pretty()}")
    assert rewrites >= 10, (
        f"{enumerator} only rewrote {rewrites}/40 join-region queries — "
        f"the parity run is not exercising the reordering path")


def test_process_backend_columnar_parity():
    """Prepared plans now carry unpicklable kernel bundles; the process
    backend must strip them (``strip_plan``), let workers recompile
    through their own kernel caches, and still return bit-identical rows
    to the in-process columnar engine."""
    from repro.service import QueryServer

    for seed in range(BASE_SEED + 100, BASE_SEED + 106):
        rng = random.Random(seed)
        catalog = random_catalog(rng)
        query = random_query(rng, catalog)
        reference = QuerySession(catalog).execute(query)
        with QueryServer(catalog, backend="process", parallelism=4,
                         max_inflight=2, pool_workers=2) as server:
            assert server.execute(query).rows == reference, f"seed {seed}"


def test_fuzz_exercises_new_machinery():
    """The suite only means something if the generated population
    actually reaches the sharded machinery: across the first 60 seeds,
    sharded executions must plan merge exchanges, range partition scans
    and outer joins somewhere."""
    ops_seen: set[str] = set()
    for seed in range(BASE_SEED, BASE_SEED + 60):
        rng = random.Random(seed)
        catalog = random_catalog(rng)
        query = random_query(rng, catalog)
        session = QuerySession(catalog)
        plan = session.prepare(query, parallelism=4).plan
        ops_seen |= {node.op for node in plan.walk()}
        for node in plan.walk():
            if node.op == "MergeJoin" and node.arg("join_type") != "inner":
                ops_seen.add("OuterMergeJoin")
    assert "MergeExchange" in ops_seen, ops_seen
    assert {"MergeJoin", "HashJoin", "SortAggregate"} <= ops_seen, ops_seen
