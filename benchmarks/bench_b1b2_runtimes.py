"""Figures 12–13 — actual running times of the competing plans.

The paper forced each system's plan and PYRO-O's plan and timed them
(PostgreSQL: Q3 85s→25s-ish, Q4 60s→35s-ish; SYS1: smaller but
consistent gains).  We execute the same plan shapes on our engine over
materialised scaled data and compare wall time + simulated cost; all
plans must return identical results.
"""

import pytest

from repro.bench import (
    format_table,
    postgres_default_q3,
    pyro_o_q3,
    pyro_o_q4,
    run_plan,
    speedup,
    sys1_default_q3,
    sys1_merge_q3,
    sys_default_q4,
)


class TestQuery3Runtimes:
    @pytest.fixture(scope="class")
    def executions(self, tpch_exec_catalog):
        plans = {
            "Default Plan (Postgres)": postgres_default_q3(tpch_exec_catalog),
            "Default Plan (SYS1 hash)": sys1_default_q3(tpch_exec_catalog),
            "Default MJ Plan (SYS1)": sys1_merge_q3(tpch_exec_catalog),
            "PYRO-O Plan": pyro_o_q3(tpch_exec_catalog),
        }
        return {name: run_plan(p, tpch_exec_catalog, name)
                for name, p in plans.items()}

    def test_fig12_13_query3(self, benchmark, executions, tpch_exec_catalog,
                             results_sink):
        benchmark.pedantic(
            lambda: run_plan(pyro_o_q3(tpch_exec_catalog), tpch_exec_catalog),
            rounds=3, iterations=1)
        pyro = executions["PYRO-O Plan"]
        postgres = executions["Default Plan (Postgres)"]
        sys1_merge = executions["Default MJ Plan (SYS1)"]

        gain_pg = speedup(postgres, pyro)
        gain_s1 = speedup(sys1_merge, pyro)
        # Paper Fig 12: PYRO-O plan ~3x faster than Postgres default;
        # Fig 13: clearly faster than SYS1's merge plan too.
        assert gain_pg >= 1.5, gain_pg
        assert gain_s1 >= 1.3, gain_s1

        results_sink(format_table(
            ["plan", "rows", "cost units", "blocks r+w", "wall s"],
            [[r.label, r.rows, r.cost_units, r.total_blocks, r.wall_seconds]
             for r in executions.values()],
            title=(f"Figures 12-13 — Query 3 running time: PYRO-O "
                   f"{gain_pg:.1f}x vs Postgres default, {gain_s1:.1f}x vs "
                   f"SYS1 merge plan")))
        benchmark.extra_info["speedup_vs_postgres"] = round(gain_pg, 2)

    def test_all_plans_agree(self, executions, tpch_exec_catalog, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        from repro.bench.baselines import (
            postgres_default_q3 as pg, pyro_o_q3 as po)
        a = sorted(pg(tpch_exec_catalog).execute(tpch_exec_catalog))
        b = sorted(po(tpch_exec_catalog).execute(tpch_exec_catalog))
        assert a == b
        assert executions["PYRO-O Plan"].rows == \
            executions["Default Plan (Postgres)"].rows


class TestQuery4Runtimes:
    def test_fig12_13_query4(self, benchmark, r_tables_exec_catalog,
                             results_sink):
        cat = r_tables_exec_catalog
        default = run_plan(sys_default_q4(cat), cat,
                           "Default Plan (no shared prefix)")
        pyro = benchmark.pedantic(
            lambda: run_plan(pyro_o_q4(cat), cat, "PYRO-O Plan (shared (c4,c5))"),
            rounds=3, iterations=1)

        assert default.rows == pyro.rows > 0
        gain = speedup(default, pyro)
        assert gain >= 1.2, gain
        assert pyro.comparisons < default.comparisons

        results_sink(format_table(
            ["plan", "rows", "cost units", "comparisons", "wall s"],
            [[r.label, r.rows, r.cost_units, r.comparisons, r.wall_seconds]
             for r in (default, pyro)],
            title=(f"Figures 12-13 — Query 4 running time: shared-prefix "
                   f"plan {gain:.2f}x better")))
        benchmark.extra_info["speedup"] = round(gain, 2)

    def test_query4_results_identical(self, r_tables_exec_catalog, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        cat = r_tables_exec_catalog
        a = sys_default_q4(cat).execute(cat)
        b = pyro_o_q4(cat).execute(cat)
        assert sorted(map(repr, a)) == sorted(map(repr, b))
