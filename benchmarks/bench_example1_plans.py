"""Figures 1–2 — Example 1: naive vs order-aware plan for the
three-way catalog consolidation join (2M + 2M + 2K rows, 7-column
ORDER BY).

The paper's estimated costs: naive 530,345 vs optimal 290,410 (≈1.8×).
We regenerate both shapes on our cost model at the same table sizes and
check the ratio's neighbourhood, plus that the optimizer's PYRO-O output
exploits catalog clusterings with partial sorts.
"""

import pytest

from repro.bench import format_table
from repro.optimizer import Optimizer
from repro.workloads import consolidation_stats_catalog, example1_query


@pytest.fixture(scope="module")
def catalog():
    return consolidation_stats_catalog()


def test_fig1_fig2_costs(benchmark, catalog, results_sink):
    query = example1_query()
    kwargs = dict(enable_hash_join=False, enable_hash_aggregate=False)
    naive = Optimizer(catalog, strategy="pyro", refine=False,
                      **kwargs).optimize(query).total_cost
    optimal = benchmark.pedantic(
        lambda: Optimizer(catalog, strategy="pyro-o",
                          **kwargs).optimize(query).total_cost,
        rounds=3, iterations=1)

    ratio = naive / optimal
    # Paper: 530,345 / 290,410 = 1.83×.  Accept a broad band around it.
    assert ratio >= 1.3, f"naive/optimal only {ratio:.2f}"

    results_sink(format_table(
        ["plan", "estimated cost (I/O units)"],
        [["naive (PYRO arbitrary orders, Fig 1)", naive],
         ["order-aware (PYRO-O, Fig 2)", optimal],
         ["paper's Fig 1 plan", 530_345],
         ["paper's Fig 2 plan", 290_410]],
        title=(f"Figures 1-2 — Example 1 plan costs; measured ratio "
               f"{ratio:.2f}x (paper: 1.83x)")))
    benchmark.extra_info["ratio"] = round(ratio, 2)


def test_fig2_plan_uses_partial_sorts(catalog, benchmark, results_sink):
    plan = benchmark.pedantic(
        lambda: Optimizer(catalog, strategy="pyro-o", enable_hash_join=False,
                          enable_hash_aggregate=False).optimize(example1_query()),
        rounds=1, iterations=1)
    ops = [p.op for p in plan.walk()]
    assert "PartialSort" in ops, "the clustering prefix must be exploited"
    assert "MergeJoin" in ops
    results_sink("Figure 2 — optimizer-chosen Example 1 plan:\n"
                 + plan.explain())


def test_interesting_order_counts_match_paper(catalog, benchmark):
    """§5.2.1's worked example: afm(ct1 ⋈ ct2) and the interesting orders
    tried at each join stay tiny (2 and ≤4, not 4! = 24)."""
    from repro.core.favorable import FavorableOrders
    from repro.logical import Annotator
    query = example1_query()
    expr = query.expr.child  # strip OrderBy
    ann = Annotator(catalog, expr)
    fav = FavorableOrders(catalog, ann)
    lower_join = expr.children[0]  # catalog1 ⋈ catalog2
    afm = benchmark.pedantic(lambda: fav.afm(lower_join),
                             rounds=3, iterations=1)
    assert 1 <= len(afm) <= 6
    # afm(ct1) = {(year)}, afm(ct2) = {(make)} — the paper's example.
    assert [o.as_tuple for o in fav.afm(lower_join.left)] == [("c1_year",)]
    assert [o.as_tuple for o in fav.afm(lower_join.right)] == [("c2_make",)]
