"""Experiment B1 / Figures 10–11 — Query 3 plan shapes and estimated costs.

Reconstructs the four plans of the figures (PostgreSQL default, PYRO-O,
SYS1 default hash plan, SYS1 forced merge plan) at the paper's full
TPC-H scale (stats-only) and checks the cost ordering the paper reports:
PYRO-O's partial-sort plan beats every alternative; the full sort of 6M
lineitem index entries is the dominant cost everywhere else.
"""

import pytest

from repro.bench import (
    format_table,
    postgres_default_q3,
    pyro_o_q3,
    sys1_default_q3,
    sys1_merge_q3,
)
from repro.optimizer import Optimizer


@pytest.fixture(scope="module")
def plans(tpch_paper_stats):
    return {
        "PostgreSQL default (Fig 10a)": postgres_default_q3(tpch_paper_stats),
        "PYRO-O (Fig 10b)": pyro_o_q3(tpch_paper_stats),
        "SYS1 default hash (Fig 11a)": sys1_default_q3(tpch_paper_stats),
        "SYS1 forced merge (Fig 11b)": sys1_merge_q3(tpch_paper_stats),
    }


def test_fig10_11_plan_costs(benchmark, plans, tpch_paper_stats, query3,
                             results_sink):
    optimizer = Optimizer(tpch_paper_stats, strategy="pyro-o",
                          enable_hash_join=False, enable_hash_aggregate=False)
    optimized = benchmark.pedantic(lambda: optimizer.optimize(query3),
                                   rounds=3, iterations=1)

    costs = {name: p.total_cost for name, p in plans.items()}
    costs["PYRO-O optimizer output"] = optimized.total_cost

    # The optimizer's plan must match the hand-built Fig 10(b) shape.
    assert optimized.total_cost <= costs["PYRO-O (Fig 10b)"] * 1.02
    # PYRO-O beats both sort-based competitors decisively.
    assert costs["PYRO-O (Fig 10b)"] < costs["PostgreSQL default (Fig 10a)"] / 2
    assert costs["PYRO-O (Fig 10b)"] < costs["SYS1 forced merge (Fig 11b)"] / 2

    rows = sorted(costs.items(), key=lambda kv: kv[1])
    results_sink(format_table(
        ["plan", "estimated cost (I/O units)"],
        [[k, v] for k, v in rows],
        title="Figures 10-11 — Experiment B1: Query 3 plan costs at TPC-H SF1"))


def test_fig10b_plan_shape(tpch_paper_stats, query3, benchmark, results_sink):
    """The optimizer independently discovers the Figure 10(b) shape."""
    optimizer = Optimizer(tpch_paper_stats, strategy="pyro-o",
                          enable_hash_join=False, enable_hash_aggregate=False)
    plan = benchmark.pedantic(lambda: optimizer.optimize(query3),
                              rounds=1, iterations=1)
    ops = [p.op for p in plan.walk()]
    assert ops.count("CoveringIndexScan") == 2
    assert ops.count("PartialSort") >= 2
    assert "MergeJoin" in ops and "SortAggregate" in ops
    join = plan.find_all("MergeJoin")[0]
    assert join.order.as_tuple[0] in ("ps_suppkey", "l_suppkey")
    results_sink("Figure 10(b) — optimizer-chosen Query 3 plan:\n"
                 + plan.explain())


def test_partial_sort_is_the_decisive_factor(tpch_paper_stats, query3,
                                             benchmark):
    """Disabling partial sort enforcers (PYRO-O−) forfeits the gain —
    the mechanism behind the Fig 10(a)/(b) gap."""
    kwargs = dict(enable_hash_join=False, enable_hash_aggregate=False)
    with_ps = benchmark.pedantic(
        lambda: Optimizer(tpch_paper_stats, strategy="pyro-o",
                          **kwargs).optimize(query3).total_cost,
        rounds=1, iterations=1)
    without = Optimizer(tpch_paper_stats, strategy="pyro-o-",
                        **kwargs).optimize(query3).total_cost
    assert with_ps < without / 2
