"""Serving-layer benchmark: plan-cache hit rate / optimize-time speedup,
and the goals-examined reduction from cost-bounded (branch-and-bound)
search.

Two modes:

* ``pytest benchmarks/bench_plan_cache.py`` — full run with the shared
  results sink (appends tables to ``results/benchmarks.txt``);
* ``python benchmarks/bench_plan_cache.py [--smoke]`` — standalone
  script (used by CI's fast smoke job), no pytest required.
"""

from __future__ import annotations

import sys
import time

from repro.bench import format_table
from repro.core.interesting import make_strategy
from repro.core.sort_order import EMPTY_ORDER
from repro.expr import col
from repro.expr.aggregates import agg_sum
from repro.logical import Query
from repro.logical.algebra import OrderBy
from repro.optimizer import OptimizerConfig
from repro.optimizer.volcano import OptimizationRun
from repro.service import QuerySession
from repro.storage import SystemParameters
from repro.workloads import (
    add_query3_indexes,
    query4,
    query5,
    query6,
    r_tables_stats_catalog,
    tpch_stats_catalog,
    trading_stats_catalog,
)


def _query3():
    return (Query.table("partsupp")
            .join("lineitem", on=[("ps_suppkey", "l_suppkey"),
                                  ("ps_partkey", "l_partkey")])
            .where(col("l_linestatus").eq("O"))
            .group_by(["ps_availqty", "ps_partkey", "ps_suppkey"],
                      agg_sum(col("l_quantity"), "sum_qty"))
            .having(col("sum_qty").gt(col("ps_availqty")))
            .select("ps_suppkey", "ps_partkey", "ps_availqty", "sum_qty")
            .order_by("ps_partkey"))


def bench_cases():
    cat3 = tpch_stats_catalog()
    add_query3_indexes(cat3)
    return [
        ("Q3", cat3, _query3()),
        ("Q4", r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250)), query4()),
        ("Q5", trading_stats_catalog(), query5()),
        ("Q6", trading_stats_catalog(), query6()),
    ]


# -- plan-cache serving ------------------------------------------------------------------
def run_cache_benchmark(repeats: int = 25):
    """Serve each bench query *repeats* times through a QuerySession.

    Returns per-query rows: cold prepare ms, warm (cached) prepare ms,
    speedup, and the session-wide hit rate.
    """
    rows = []
    for name, cat, query in bench_cases():
        session = QuerySession(cat)
        start = time.perf_counter()
        cold = session.prepare(query)
        cold_ms = (time.perf_counter() - start) * 1_000.0

        start = time.perf_counter()
        for _ in range(repeats):
            warm = session.prepare(query)
            assert warm.from_cache
            assert warm.total_cost == cold.total_cost
        warm_ms = (time.perf_counter() - start) * 1_000.0 / repeats

        stats = session.cache.stats
        rows.append([name, round(cold_ms, 3), round(warm_ms, 4),
                     round(cold_ms / warm_ms, 1) if warm_ms else float("inf"),
                     f"{stats.hit_rate:.3f}"])
    return rows


# -- cost-bounded search -----------------------------------------------------------------
def _goals(cat, query, strategy: str, prune: bool):
    expr = query.expr
    required = EMPTY_ORDER
    if isinstance(expr, OrderBy):
        required, expr = expr.order, expr.child
    strat, partial = make_strategy(strategy)
    config = OptimizerConfig(strategy=strategy, partial_sort_enforcers=partial,
                             cost_bound_pruning=prune)
    run = OptimizationRun(cat, expr, strat, config)
    plan = run.optimize_goal(expr, required)
    return plan.total_cost, run.goals_examined


def run_pruning_benchmark(strategies=("pyro-o", "pyro-e")):
    """goals_examined with branch-and-bound on vs off, per query/strategy.

    Asserts the chosen plan cost is bit-identical either way.
    """
    rows = []
    any_reduction = False
    for strategy in strategies:
        for name, cat, query in bench_cases():
            cost_on, goals_on = _goals(cat, query, strategy, True)
            cost_off, goals_off = _goals(cat, query, strategy, False)
            assert cost_on == cost_off, (strategy, name, cost_on, cost_off)
            assert goals_on <= goals_off, (strategy, name)
            if goals_on < goals_off:
                any_reduction = True
            pct = 100.0 * (goals_off - goals_on) / goals_off if goals_off else 0
            rows.append([strategy, name, goals_off, goals_on,
                         f"-{pct:.1f}%"])
    assert any_reduction, "cost-bounded search reduced no bench query"
    return rows


CACHE_HEADERS = ["query", "cold prepare ms", "cached prepare ms",
                 "speedup", "hit rate"]
PRUNE_HEADERS = ["strategy", "query", "goals (exact)", "goals (bounded)",
                 "reduction"]


# -- pytest entry points -----------------------------------------------------------------
def test_plan_cache_serving(benchmark, results_sink):
    rows = benchmark.pedantic(run_cache_benchmark, rounds=1, iterations=1)
    for row in rows:
        assert row[3] > 1.0, row  # cached prepare must beat cold prepare
        assert float(row[4]) > 0.9, row  # ≥ repeats/(repeats+1) hit rate
    results_sink(format_table(
        CACHE_HEADERS, rows,
        title="Serving layer — plan-cache prepare latency and hit rate"))
    benchmark.extra_info["plan_cache"] = rows


def test_cost_bounded_search(benchmark, results_sink):
    rows = benchmark.pedantic(run_pruning_benchmark, rounds=1, iterations=1)
    results_sink(format_table(
        PRUNE_HEADERS, rows,
        title=("Cost-bounded search — subgoals examined, branch-and-bound "
               "off vs on (plan costs identical)")))
    benchmark.extra_info["cost_bounded"] = rows


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    repeats = 3 if smoke else 25
    strategies = ("pyro-o",) if smoke else ("pyro-o", "pyro-e")
    print(format_table(CACHE_HEADERS, run_cache_benchmark(repeats),
                       title="Plan-cache serving"))
    print()
    print(format_table(PRUNE_HEADERS, run_pruning_benchmark(strategies),
                       title="Cost-bounded search"))
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
