"""Figure 16 — optimization time vs number of join attributes (§6.3).

A two-relation join on k attributes, k = 2..10.  PYRO-E enumerates k!
interesting orders and blows up; PYRO-P generates k; PYRO-O generates
only as many as there are useful favorable orders (here ≤ 3), staying
essentially flat — the paper's log-scale separation.
"""

import pytest

from repro.bench import format_table, measure
from repro.core.sort_order import SortOrder
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.storage import Catalog, Schema, TableStats

MAX_ATTRS = 10
EXHAUSTIVE_MAX = 6


def _catalog_and_query(k: int):
    cat = Catalog()
    left_cols = [(f"a{i}", "int", 8) for i in range(k)]
    right_cols = [(f"b{i}", "int", 8) for i in range(k)]
    cat.create_table("l", Schema.of(*left_cols),
                     stats=TableStats(1_000_000, {f"a{i}": 100 for i in range(k)}),
                     clustering_order=SortOrder(["a0", "a1"][:min(2, k)]))
    cat.create_table("r", Schema.of(*right_cols),
                     stats=TableStats(1_000_000, {f"b{i}": 100 for i in range(k)}))
    q = Query.table("l").join("r", on=[(f"a{i}", f"b{i}") for i in range(k)])
    return cat, q


def _time_optimization(strategy: str, k: int) -> float:
    cat, q = _catalog_and_query(k)
    # The figure reproduces the paper's *unpruned* Volcano search effort,
    # so the serving-oriented branch-and-bound pruning is switched off.
    opt = Optimizer(cat, strategy=strategy, enable_hash_join=False,
                    refine=False, cost_bound_pruning=False)
    seconds, _ = measure(lambda: opt.optimize(q))
    return seconds * 1000.0  # ms


@pytest.fixture(scope="module")
def timings():
    table: dict[int, dict[str, float]] = {}
    for k in range(2, MAX_ATTRS + 1):
        row = {
            "pyro-p": _time_optimization("pyro-p", k),
            "pyro-o": _time_optimization("pyro-o", k),
        }
        if k <= EXHAUSTIVE_MAX:
            row["pyro-e"] = _time_optimization("pyro-e", k)
        table[k] = row
    return table


def test_fig16_scalability(benchmark, timings, results_sink):
    benchmark.pedantic(lambda: _time_optimization("pyro-o", 8),
                       rounds=3, iterations=1)

    rows = []
    for k, row in timings.items():
        rows.append([k, round(row["pyro-p"], 2), round(row["pyro-o"], 2),
                     round(row.get("pyro-e", float("nan")), 2)])
    results_sink(format_table(
        ["#attributes", "PYRO-P ms", "PYRO-O ms", "PYRO-E ms"],
        rows,
        title="Figure 16 — optimization time vs number of join attributes"))

    # PYRO-E's factorial blow-up: time at k=6 dwarfs k=3.
    assert timings[EXHAUSTIVE_MAX]["pyro-e"] > timings[3]["pyro-e"] * 20
    # PYRO-O stays near-flat: growing k by 5 costs < 15×.
    assert timings[MAX_ATTRS]["pyro-o"] < max(timings[4]["pyro-o"], 1.0) * 15
    # At 6 attributes PYRO-E is already far slower than PYRO-O.
    assert timings[EXHAUSTIVE_MAX]["pyro-e"] > \
        timings[EXHAUSTIVE_MAX]["pyro-o"] * 10


def test_fig16_goal_counts(benchmark, results_sink):
    """The underlying cause: subgoals examined per strategy."""
    from repro.core.interesting import make_strategy
    from repro.optimizer.volcano import OptimizationRun
    from repro.optimizer import OptimizerConfig
    from repro.core.sort_order import EMPTY_ORDER

    def goals(strategy: str, k: int) -> int:
        cat, q = _catalog_and_query(k)
        strat, partial = make_strategy(strategy)
        config = OptimizerConfig(strategy=strategy,
                                 partial_sort_enforcers=partial,
                                 enable_hash_join=False,
                                 cost_bound_pruning=False)
        run = OptimizationRun(cat, q.expr, strat, config)
        run.optimize_goal(q.expr, EMPTY_ORDER)
        return run.goals_examined

    counts = benchmark.pedantic(
        lambda: {s: goals(s, 5) for s in ("pyro", "pyro-p", "pyro-o", "pyro-e")},
        rounds=1, iterations=1)
    assert counts["pyro-e"] > counts["pyro-p"] > counts["pyro"]
    assert counts["pyro-o"] <= counts["pyro-p"]
    results_sink(format_table(
        ["strategy", "optimization subgoals (k=5)"],
        [[s, n] for s, n in counts.items()],
        title="Figure 16 (cause) — subgoals examined at 5 join attributes"))
