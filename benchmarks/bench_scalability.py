"""Scalability benchmarks: optimizer (Fig. 16) and execution engine.

Part 1 — Figure 16, optimization time vs number of join attributes
(§6.3).  A two-relation join on k attributes, k = 2..10.  PYRO-E
enumerates k! interesting orders and blows up; PYRO-P generates k;
PYRO-O generates only as many as there are useful favorable orders
(here ≤ 3), staying essentially flat — the paper's log-scale separation.

Part 2 — execution-side scale-out: the batch-vectorized engine vs
row-at-a-time (``batch_size=1``) on the large synthetic workload, plus
sharded-scan execution through the BatchedExecutor.  Simulated costs
are asserted identical; only wall-clock changes.

Part 3 — shard-aware order enforcement: one post-union full sort above
the exchange vs per-shard sorts under an order-preserving MergeExchange,
across parallelism 1/2/4.  Sized so the post-union sort spills while the
individual shards fit in sort memory — the regime the enforcer pushdown
targets — and gated on *simulated cost units* (deterministic) by
``check_regression.py``.

Part 4 — shard-aware enforcement under a join+aggregate: the
sort-order-consuming ``r ⋈ dim ON c2=d2 GROUP BY c2 ORDER BY c2`` plan
at parallelism 4, per-shard enforcers composed below the merge join vs
the post-union spilling sort (``shard_aware_enforcers=False``).  Also
gated on simulated cost units.

Two modes:

* ``pytest benchmarks/bench_scalability.py`` — full run with the shared
  results sink;
* ``python benchmarks/bench_scalability.py [--smoke]`` — standalone
  script (used by CI's regression gate), no pytest required.
"""

import sys
import time

import pytest

from repro.bench import format_table, measure
from repro.core.sort_order import SortOrder
from repro.engine import (
    BatchedExecutor,
    Compute,
    ExecutionContext,
    Filter,
    Project,
    Sort,
    TableScan,
)
from repro.expr import And, col
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.service import QuerySession
from repro.storage import Catalog, Schema, SystemParameters, TableStats
from repro.workloads import segmented_catalog

MAX_ATTRS = 10
EXHAUSTIVE_MAX = 6


def _catalog_and_query(k: int):
    cat = Catalog()
    left_cols = [(f"a{i}", "int", 8) for i in range(k)]
    right_cols = [(f"b{i}", "int", 8) for i in range(k)]
    cat.create_table("l", Schema.of(*left_cols),
                     stats=TableStats(1_000_000, {f"a{i}": 100 for i in range(k)}),
                     clustering_order=SortOrder(["a0", "a1"][:min(2, k)]))
    cat.create_table("r", Schema.of(*right_cols),
                     stats=TableStats(1_000_000, {f"b{i}": 100 for i in range(k)}))
    q = Query.table("l").join("r", on=[(f"a{i}", f"b{i}") for i in range(k)])
    return cat, q


def _time_optimization(strategy: str, k: int) -> float:
    cat, q = _catalog_and_query(k)
    # The figure reproduces the paper's *unpruned* Volcano search effort,
    # so the serving-oriented branch-and-bound pruning is switched off.
    opt = Optimizer(cat, strategy=strategy, enable_hash_join=False,
                    refine=False, cost_bound_pruning=False)
    seconds, _ = measure(lambda: opt.optimize(q))
    return seconds * 1000.0  # ms


@pytest.fixture(scope="module")
def timings():
    table: dict[int, dict[str, float]] = {}
    for k in range(2, MAX_ATTRS + 1):
        row = {
            "pyro-p": _time_optimization("pyro-p", k),
            "pyro-o": _time_optimization("pyro-o", k),
        }
        if k <= EXHAUSTIVE_MAX:
            row["pyro-e"] = _time_optimization("pyro-e", k)
        table[k] = row
    return table


def test_fig16_scalability(benchmark, timings, results_sink):
    benchmark.pedantic(lambda: _time_optimization("pyro-o", 8),
                       rounds=3, iterations=1)

    rows = []
    for k, row in timings.items():
        rows.append([k, round(row["pyro-p"], 2), round(row["pyro-o"], 2),
                     round(row.get("pyro-e", float("nan")), 2)])
    results_sink(format_table(
        ["#attributes", "PYRO-P ms", "PYRO-O ms", "PYRO-E ms"],
        rows,
        title="Figure 16 — optimization time vs number of join attributes"))

    # PYRO-E's factorial blow-up: time at k=6 dwarfs k=3.
    assert timings[EXHAUSTIVE_MAX]["pyro-e"] > timings[3]["pyro-e"] * 20
    # PYRO-O stays near-flat: growing k by 5 costs < 15×.
    assert timings[MAX_ATTRS]["pyro-o"] < max(timings[4]["pyro-o"], 1.0) * 15
    # At 6 attributes PYRO-E is already far slower than PYRO-O.
    assert timings[EXHAUSTIVE_MAX]["pyro-e"] > \
        timings[EXHAUSTIVE_MAX]["pyro-o"] * 10


# -- execution engine: batch vs row, sharded scans ---------------------------------------
def _exec_pipeline(catalog, sort: bool = False):
    """Scan → filter → project (→ partial sort) over the synthetic table."""
    op = Project(Filter(TableScan(catalog.table("r")),
                        col("c2").lt(800_000)), ["c1", "c2"])
    if sort:
        op = Sort(op, SortOrder(["c1", "c2"]))  # MRS partial sort on c1
    return op


def _kernel_pipeline(catalog, sort: bool = False):
    """Expression-heavy variant: compound filter + computed columns —
    the shape the whole-column kernels accelerate.  ``sort`` is ignored
    (same signature as ``_exec_pipeline`` for ``_timed_run``)."""
    scan = TableScan(catalog.table("r"))
    filt = Filter(scan, And(col("c2").lt(800_000), col("c1").ge(10)))
    comp = Compute(filt, [("v", col("c2") * 3 + col("c1")),
                          ("w", col("c2") - col("c1"))])
    return Project(comp, ["c1", "v", "w"])


def _timed_run(catalog, batch_size: int, parallelism: int = 1,
               sort: bool = False, columnar: bool = True,
               pipeline=_exec_pipeline) -> tuple[float, int, dict]:
    op = pipeline(catalog, sort=sort)
    ctx = ExecutionContext(catalog, batch_size=batch_size, columnar=columnar)
    executor = BatchedExecutor(parallelism=parallelism)
    start = time.perf_counter()
    rows = executor.run(op, ctx)
    seconds = time.perf_counter() - start
    counters = {"blocks_read": ctx.io.blocks_read,
                "comparisons": ctx.comparisons.value}
    return seconds, len(rows), counters


def run_batch_speedup(num_rows: int = 200_000, repeats: int = 3) -> dict:
    """Wall-clock of the batched path vs row-at-a-time (batch_size=1),
    and of the columnar kernel engine vs the row-tuple batched engine
    (``columnar=False`` — the same batches, per-row compiled closures)
    on the expression-heavy kernel pipeline.

    Asserts identical result cardinality and identical simulated I/O —
    batching and evaluation layout are execution-granularity choices,
    not semantics changes.
    """
    catalog = segmented_catalog(num_rows, 100)
    row_s, row_n, row_counters = min(
        (_timed_run(catalog, batch_size=1) for _ in range(repeats)),
        key=lambda r: r[0])
    batch_s, batch_n, batch_counters = min(
        (_timed_run(catalog, batch_size=1024) for _ in range(repeats)),
        key=lambda r: r[0])
    shard_s, shard_n, _ = min(
        (_timed_run(catalog, batch_size=1024, parallelism=4)
         for _ in range(repeats)),
        key=lambda r: r[0])
    # The columnar gate runs on the kernel pipeline: compound predicate
    # plus computed columns, where expression evaluation dominates.
    kern_row_s, kern_row_n, kern_row_counters = min(
        (_timed_run(catalog, batch_size=1024, columnar=False,
                    pipeline=_kernel_pipeline) for _ in range(repeats)),
        key=lambda r: r[0])
    kern_col_s, kern_col_n, kern_col_counters = min(
        (_timed_run(catalog, batch_size=1024, pipeline=_kernel_pipeline)
         for _ in range(repeats)),
        key=lambda r: r[0])
    assert row_n == batch_n == shard_n
    assert row_counters == batch_counters
    assert kern_row_n == kern_col_n
    assert kern_row_counters == kern_col_counters
    return {
        "num_rows": num_rows,
        "result_rows": batch_n,
        "row_ms": row_s * 1000.0,
        "batch_ms": batch_s * 1000.0,
        "sharded_ms": shard_s * 1000.0,
        "kernel_rowengine_ms": kern_row_s * 1000.0,
        "kernel_columnar_ms": kern_col_s * 1000.0,
        "speedup": row_s / batch_s if batch_s else float("inf"),
        "columnar_speedup": (kern_row_s / kern_col_s if kern_col_s
                             else float("inf")),
        "blocks_read": batch_counters["blocks_read"],
    }


EXEC_HEADERS = ["input rows", "result rows", "row-at-a-time ms",
                "batched ms", "sharded(4) ms", "speedup",
                "kernel pipe row-engine ms", "kernel pipe columnar ms",
                "columnar speedup"]


def _exec_rows(result: dict) -> list:
    return [[result["num_rows"], result["result_rows"],
             round(result["row_ms"], 1),
             round(result["batch_ms"], 1),
             round(result["sharded_ms"], 1), round(result["speedup"], 2),
             round(result["kernel_rowengine_ms"], 1),
             round(result["kernel_columnar_ms"], 1),
             round(result["columnar_speedup"], 2)]]


def test_batch_beats_row_at_a_time(benchmark, results_sink):
    result = benchmark.pedantic(run_batch_speedup, rounds=1, iterations=1)
    results_sink(format_table(
        EXEC_HEADERS, _exec_rows(result),
        title="Execution scale-out — batch-vectorized vs row-at-a-time "
              "(large synthetic workload)"))
    benchmark.extra_info["batch_speedup"] = result
    # The acceptance bars: ≥ 2× wall-clock win for the batched path over
    # row-at-a-time, and ≥ 2× for the columnar kernels over the
    # row-tuple batched engine on the same batches.
    assert result["speedup"] >= 2.0, result
    assert result["columnar_speedup"] >= 2.0, result


def test_sorted_pipeline_parity_and_speedup(results_sink):
    """With a partial sort on top (MRS segments), batches still win and
    tallies stay identical."""
    catalog = segmented_catalog(60_000, 100)
    row_s, row_n, row_counters = _timed_run(catalog, 1, sort=True)
    batch_s, batch_n, batch_counters = _timed_run(catalog, 1024, sort=True)
    assert row_n == batch_n
    assert row_counters == batch_counters
    assert batch_s < row_s
    results_sink(format_table(
        ["variant", "ms", "comparisons"],
        [["row-at-a-time + MRS", round(row_s * 1000, 1),
          row_counters["comparisons"]],
         ["batched + MRS", round(batch_s * 1000, 1),
          batch_counters["comparisons"]]],
        title="Execution scale-out — filtered MRS pipeline, row vs batch"))


def test_fig16_goal_counts(benchmark, results_sink):
    """The underlying cause: subgoals examined per strategy."""
    from repro.core.interesting import make_strategy
    from repro.optimizer.volcano import OptimizationRun
    from repro.optimizer import OptimizerConfig
    from repro.core.sort_order import EMPTY_ORDER

    def goals(strategy: str, k: int) -> int:
        cat, q = _catalog_and_query(k)
        strat, partial = make_strategy(strategy)
        config = OptimizerConfig(strategy=strategy,
                                 partial_sort_enforcers=partial,
                                 enable_hash_join=False,
                                 cost_bound_pruning=False)
        run = OptimizationRun(cat, q.expr, strat, config)
        run.optimize_goal(q.expr, EMPTY_ORDER)
        return run.goals_examined

    counts = benchmark.pedantic(
        lambda: {s: goals(s, 5) for s in ("pyro", "pyro-p", "pyro-o", "pyro-e")},
        rounds=1, iterations=1)
    assert counts["pyro-e"] > counts["pyro-p"] > counts["pyro"]
    assert counts["pyro-o"] <= counts["pyro-p"]
    results_sink(format_table(
        ["strategy", "optimization subgoals (k=5)"],
        [[s, n] for s, n in counts.items()],
        title="Figure 16 (cause) — subgoals examined at 5 join attributes"))


# -- shard-aware order enforcement -------------------------------------------------------
def run_shard_enforcer_benchmark(num_rows: int = 30_000,
                                 parallelisms: tuple = (1, 2, 4)) -> dict:
    """Post-union full sort vs per-shard sort + MergeExchange.

    The catalog is sized so the full ORDER BY c2 sort spills (B > M)
    while half and quarter shards fit in sort memory — per-shard
    enforcement then skips the run I/O entirely and the merge costs only
    CPU.  Simulated cost units are deterministic; wall-clock is reported
    but not gated.
    """
    # 200-byte rows: B ≈ num_rows/20 blocks.  Memory of B/2 blocks puts
    # parallelism 2 and 4 in the in-memory regime and 1 in the spill one.
    memory_blocks = max(4, num_rows // 40)
    catalog = segmented_catalog(
        num_rows, 100, params=SystemParameters(sort_memory_blocks=memory_blocks))
    query = Query.table("r").order_by("c2")
    sessions = {
        "merge": QuerySession(catalog),
        "post_union": QuerySession(catalog, shard_aware_enforcers=False),
    }
    results: dict = {"num_rows": num_rows}
    reference = None
    for parallelism in parallelisms:
        for mode, session in sessions.items():
            ctx = ExecutionContext(catalog)
            start = time.perf_counter()
            rows = session.execute(query, parallelism=parallelism, ctx=ctx)
            seconds = time.perf_counter() - start
            if reference is None:
                reference = rows
            assert rows == reference, (mode, parallelism)  # bit-identical
            results[(mode, parallelism)] = {
                "ms": seconds * 1000.0,
                "cost_units": ctx.cost_units(),
                "runs_created": ctx.sort_metrics.runs_created,
            }
    top = max(p for p in parallelisms if p > 1)
    results["post_union_cost_units"] = results[("post_union", top)]["cost_units"]
    results["shard_merge_cost_units"] = results[("merge", top)]["cost_units"]
    results["shard_merge_advantage"] = (
        results["post_union_cost_units"] / results["shard_merge_cost_units"])
    return results


SHARD_HEADERS = ["parallelism", "post-union cost", "merge cost",
                 "post-union ms", "merge ms", "spilled runs (post/merge)"]


def _shard_rows(result: dict, parallelisms=(1, 2, 4)) -> list:
    rows = []
    for p in parallelisms:
        post, merge = result[("post_union", p)], result[("merge", p)]
        rows.append([p, round(post["cost_units"], 1),
                     round(merge["cost_units"], 1),
                     round(post["ms"], 1), round(merge["ms"], 1),
                     f"{post['runs_created']}/{merge['runs_created']}"])
    return rows


def test_shard_enforcers_beat_post_union(benchmark, results_sink):
    result = benchmark.pedantic(run_shard_enforcer_benchmark,
                                rounds=1, iterations=1)
    results_sink(format_table(
        SHARD_HEADERS, _shard_rows(result),
        title="Shard-aware enforcers — post-union sort vs per-shard sort "
              "+ merge exchange (large synthetic workload, ORDER BY c2)"))
    benchmark.extra_info["shard_enforcers"] = {
        k: v for k, v in result.items() if isinstance(k, str)}
    # At parallelism 1 both modes are the same plan.
    assert result[("merge", 1)]["cost_units"] == \
        result[("post_union", 1)]["cost_units"]
    # Sharded per-shard enforcement strictly beats the post-union sort.
    for parallelism in (2, 4):
        assert result[("merge", parallelism)]["cost_units"] < \
            result[("post_union", parallelism)]["cost_units"], parallelism
        assert result[("merge", parallelism)]["runs_created"] == 0
    assert result["shard_merge_advantage"] > 1.5


# -- shard-aware join + aggregate --------------------------------------------------------
def _join_agg_catalog(num_rows: int, memory_blocks: int, c2_domain: int,
                      dim_rows: int, seed: int = 3):
    """Large synthetic ``r`` (clustered on c1, c2 in a bounded domain)
    plus a ``dim`` table keyed on that domain — joining on c2 needs a
    sort of r that spills post-union but fits per shard."""
    import random

    from repro.storage import Schema

    catalog = segmented_catalog(
        num_rows, 100, params=SystemParameters(sort_memory_blocks=memory_blocks))
    rng = random.Random(seed)
    table = catalog.table("r")
    table._rows[:] = [(i // 100, rng.randrange(c2_domain), "p")
                      for i in range(num_rows)]
    table._sort_rows_by(SortOrder(["c1"]))
    table.update_stats()
    catalog.create_table(
        "dim", Schema.of(("d2", "int", 8), ("weight", "int", 8)),
        rows=[(v, rng.randrange(10)) for v in range(dim_rows)],
        primary_key=["d2"])
    return catalog


def run_sharded_join_benchmark(num_rows: int = 20_000,
                               parallelism: int = 4) -> dict:
    """Join+aggregate with shard-aware enforcement vs post-union sort.

    ``SELECT c2, SUM(weight) FROM r JOIN dim ON c2 = d2 GROUP BY c2
    ORDER BY c2`` — the merge join consumes the enforced order and the
    aggregate consumes the join's order, so the single enforcer below
    the join decides the whole plan's I/O profile.  Simulated cost units
    are deterministic; wall-clock is reported but not gated.
    """
    from repro.expr import col
    from repro.expr.aggregates import agg_sum

    catalog = _join_agg_catalog(num_rows, memory_blocks=num_rows // 40,
                                c2_domain=max(100, num_rows // 10),
                                dim_rows=max(100, num_rows // 10))
    query = (Query.table("r")
             .join("dim", on=[("c2", "d2")])
             .group_by(["c2"], agg_sum(col("weight"), "w"))
             .order_by("c2"))
    sessions = {
        "merge": QuerySession(catalog),
        "post_union": QuerySession(catalog, shard_aware_enforcers=False),
    }
    results: dict = {"num_rows": num_rows}
    reference = None
    for mode, session in sessions.items():
        ctx = ExecutionContext(catalog)
        start = time.perf_counter()
        rows = session.execute(query, parallelism=parallelism, ctx=ctx)
        seconds = time.perf_counter() - start
        if reference is None:
            reference = rows
        assert rows == reference, mode  # bit-identical across placements
        prepared = session.prepare(query, parallelism=parallelism)
        results[mode] = {
            "ms": seconds * 1000.0,
            "cost_units": ctx.cost_units(),
            "estimated_cost": prepared.total_cost,
            "runs_created": ctx.sort_metrics.runs_created,
            "merge_exchanges": len(prepared.plan.find_all("MergeExchange")),
        }
    results["sharded_join_cost_units"] = results["merge"]["cost_units"]
    results["post_union_join_cost_units"] = results["post_union"]["cost_units"]
    results["sharded_join_advantage"] = (
        results["post_union"]["cost_units"] / results["merge"]["cost_units"])
    return results


JOIN_HEADERS = ["placement", "cost units", "estimated cost", "ms",
                "spilled runs", "merge exchanges"]


def _join_rows(result: dict) -> list:
    return [[mode, round(result[mode]["cost_units"], 1),
             round(result[mode]["estimated_cost"], 1),
             round(result[mode]["ms"], 1), result[mode]["runs_created"],
             result[mode]["merge_exchanges"]]
            for mode in ("merge", "post_union")]


def test_sharded_join_agg_beats_post_union(benchmark, results_sink):
    result = benchmark.pedantic(run_sharded_join_benchmark,
                                rounds=1, iterations=1)
    results_sink(format_table(
        JOIN_HEADERS, _join_rows(result),
        title="Shard-aware join+aggregate — per-shard enforcement below "
              "the merge join vs post-union sort (parallelism 4)"))
    benchmark.extra_info["sharded_join"] = {
        k: v for k, v in result.items() if not isinstance(v, dict)}
    assert result["merge"]["merge_exchanges"] >= 1
    assert result["post_union"]["merge_exchanges"] == 0
    # Per-shard enforcement spills nothing; the best shard-oblivious plan
    # pays big spill I/O instead (a Grace hash build or a run-spilling
    # post-union sort, whichever the cost model prefers).
    assert result["merge"]["runs_created"] == 0
    assert result["merge"]["estimated_cost"] < \
        result["post_union"]["estimated_cost"]
    assert result["sharded_join_advantage"] > 1.5


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    num_rows = 30_000 if smoke else 200_000
    result = run_batch_speedup(num_rows, repeats=2 if smoke else 3)
    print(format_table(EXEC_HEADERS, _exec_rows(result),
                       title="Execution scale-out — batched vs row-at-a-time"))
    floor = 1.5 if smoke else 2.0  # smoke input is small; keep slack
    if result["speedup"] < floor:
        print(f"FAIL: batched speedup {result['speedup']:.2f}x < {floor}x")
        return 1
    if result["columnar_speedup"] < floor:
        print(f"FAIL: columnar speedup {result['columnar_speedup']:.2f}x "
              f"< {floor}x over the row-tuple batched engine")
        return 1
    shard = run_shard_enforcer_benchmark(10_000 if smoke else 30_000)
    print(format_table(SHARD_HEADERS, _shard_rows(shard),
                       title="Shard-aware enforcers — post-union sort vs "
                             "per-shard sort + merge exchange"))
    if shard["shard_merge_advantage"] <= 1.0:
        print(f"FAIL: per-shard enforcement not cheaper "
              f"(advantage {shard['shard_merge_advantage']:.2f}x)")
        return 1
    join = run_sharded_join_benchmark(10_000 if smoke else 20_000)
    print(format_table(JOIN_HEADERS, _join_rows(join),
                       title="Shard-aware join+aggregate — per-shard "
                             "enforcement vs post-union sort"))
    if join["sharded_join_advantage"] <= 1.0:
        print(f"FAIL: sharded join+aggregate not cheaper "
              f"(advantage {join['sharded_join_advantage']:.2f}x)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
