"""Experiment A3 / Figure 9 — effect of partial-sort segment size.

Tables R0..R7 sweep the rows-per-c1-value from 1 to the full table; the
query is ORDER BY (c1, c2) over input clustered on c1.  The paper's
shape: MRS ≪ SRS while a segment fits in sort memory; a sharp SRS-like
rise once segments outgrow memory; convergence when one segment is the
whole input.
"""

import pytest

from repro.bench import format_table, run_plan
from repro.core.sort_order import SortOrder
from repro.engine import Sort, TableScan
from repro.storage import SystemParameters
from repro.workloads import segmented_catalog

NUM_ROWS = 40_000
ROW_BYTES = 200
#: 16 blocks × 4 KB = 64 KB of sort memory → ~327 rows fit.
PARAMS = SystemParameters(block_size=4096, sort_memory_blocks=16)
MEMORY_ROWS = PARAMS.sort_memory_bytes // ROW_BYTES

#: Segment sizes in rows, sweeping across the memory boundary (~327).
SEGMENT_SIZES = [1, 10, 100, 300, 1_000, 10_000, NUM_ROWS]


def _measure(rows_per_segment):
    catalog = segmented_catalog(NUM_ROWS, rows_per_segment, params=PARAMS)
    scan = TableScan(catalog.table("r"))
    target = SortOrder(["c1", "c2"])
    srs = run_plan(Sort(scan, target, algorithm="srs"), catalog, "SRS")
    mrs = run_plan(Sort(scan, target, algorithm="mrs",
                        known_prefix=SortOrder(["c1"])), catalog, "MRS")
    return srs, mrs


@pytest.fixture(scope="module")
def sweep():
    return {size: _measure(size) for size in SEGMENT_SIZES}


def test_fig9_segment_size_sweep(benchmark, sweep, results_sink):
    benchmark.pedantic(lambda: _measure(100), rounds=1, iterations=1)

    rows = []
    for size in SEGMENT_SIZES:
        srs, mrs = sweep[size]
        rows.append([size, size * ROW_BYTES, round(srs.cost_units, 1),
                     round(mrs.cost_units, 1),
                     round(srs.cost_units / max(mrs.cost_units, 1e-9), 2)])
    results_sink(format_table(
        ["rows/segment", "segment bytes", "SRS cost", "MRS cost",
         "SRS/MRS"],
        rows,
        title=(f"Figure 9 — Experiment A3: segment-size sweep "
               f"({NUM_ROWS} rows x {ROW_BYTES} B, memory {MEMORY_ROWS} rows)")))

    # Shape assertions (the paper's three regimes).
    for size in SEGMENT_SIZES:
        srs, mrs = sweep[size]
        assert mrs.cost_units <= srs.cost_units * 1.10, size

    small = [s for s in SEGMENT_SIZES if s <= MEMORY_ROWS]
    for size in small:
        srs, mrs = sweep[size]
        assert mrs.blocks_written == 0, f"MRS spilled at segment={size}"
        assert srs.cost_units / mrs.cost_units > 2.0, size

    # Convergence at the right edge: one segment = whole input.
    srs_end, mrs_end = sweep[NUM_ROWS]
    assert srs_end.cost_units / mrs_end.cost_units < 1.6


def test_fig9_mrs_cliff_when_segment_exceeds_memory(sweep, benchmark):
    """MRS cost rises sharply once segments stop fitting (the knee of the
    MRS curve in Fig. 9)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fits = sweep[300][1]        # 300 rows ≈ just fits
    exceeds = sweep[1_000][1]   # 1000 rows ≈ 3× memory
    assert fits.blocks_written == 0
    assert exceeds.blocks_written > 0
    assert exceeds.cost_units > fits.cost_units * 2
