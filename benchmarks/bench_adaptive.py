"""Adaptive-statistics benchmark: what feedback-driven re-optimization buys.

Builds a table whose *declared* statistics are 80x stale — created with
``num_rows`` rows but registered with a ``TableStats`` claiming a tiny
fraction of them — and serves a sort-heavy query through a
:class:`~repro.service.QuerySession` with ``feedback=FeedbackConfig()``:

1. the first ``prepare`` trusts the stale catalog and picks a plan sized
   for ~50 rows (no sharded enforcement, in-memory sort);
2. the first ``execute`` meters the scan, sees actual rows drift past
   the threshold, verifies the drift against the materialised table and
   calls ``Catalog.refresh_stats`` — bumping the stats version and
   invalidating the cached plan;
3. the next ``prepare`` re-optimizes against measured statistics and
   converges on the right plan for the data that is actually there.

Both plans execute the same query and must return identical rows; the
headline metric is ``adaptive_replan_advantage`` — the stale plan's
simulated execution cost over the converged plan's.  Cost units are
deterministic (simulated I/O, no wall clock), and the regression gate
(``benchmarks/check_regression.py``) holds the advantage above the
documented 1.5x acceptance bar.

Two modes:

* ``pytest benchmarks/bench_adaptive.py`` — smoke-sized, with the
  shared results sink;
* ``python benchmarks/bench_adaptive.py [--smoke]`` — standalone script
  (used by CI's regression gate), no pytest required.
"""

import random
import sys

from repro.bench import format_table
from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext
from repro.logical import Query
from repro.service import FeedbackConfig, QuerySession
from repro.storage import Catalog, Schema, SystemParameters, TableStats


def stale_catalog(num_rows: int, claimed: int, seed: int = 1) -> Catalog:
    """A materialised table whose declared statistics undercount it by
    ``num_rows / claimed`` (80x at the defaults) — the regime where a
    cached plan sized from the catalog is badly wrong at runtime."""
    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(
        sort_memory_blocks=max(40, num_rows // 100)))
    schema = Schema.of(("a", "int", 8), ("b", "int", 64), ("c", "int", 8))
    rows = [tuple(rng.randrange(50) for _ in range(3))
            for _ in range(num_rows)]
    catalog.create_table("t", schema, rows=rows,
                         clustering_order=SortOrder(["a"]),
                         stats=TableStats(claimed,
                                          {"a": 25, "b": 25, "c": 25}))
    return catalog


def run_adaptive_benchmark(num_rows: int = 4_000, claimed: int = 50,
                           parallelism: int = 4) -> dict:
    """Stale-plan vs converged-plan execution cost on one feedback
    session.  Rows are asserted identical; costs are simulated units,
    so the advantage is deterministic for a given configuration."""
    catalog = stale_catalog(num_rows, claimed)
    session = QuerySession(catalog, feedback=FeedbackConfig())
    query = Query.table("t").order_by("b", "a", "c")

    stale = session.prepare(query, parallelism=parallelism)
    stale_ctx = ExecutionContext(catalog)
    stale_rows = stale.execute(ctx=stale_ctx)

    converged = session.prepare(query, parallelism=parallelism)
    converged_ctx = ExecutionContext(catalog)
    converged_rows = converged.execute(ctx=converged_ctx)

    assert converged_rows == stale_rows, \
        "re-optimized plan changed the result rows"
    stats = session.stats()
    assert stats["feedback_refreshes"] >= 1, \
        "drift never triggered a statistics refresh"
    assert stats["optimizations"] >= 2, \
        "the refreshed catalog did not force a re-optimization"

    stale_cost = stale_ctx.cost_units()
    converged_cost = converged_ctx.cost_units()
    return {
        "num_rows": num_rows,
        "claimed_rows": claimed,
        "staleness": num_rows / claimed,
        "parallelism": parallelism,
        "stale_cost_units": stale_cost,
        "converged_cost_units": converged_cost,
        "adaptive_replan_advantage": stale_cost / converged_cost,
        "drift_events": stats["drift_events"],
        "feedback_refreshes": stats["feedback_refreshes"],
        "cache_invalidations": stats["cache_invalidations"],
        "optimizations": stats["optimizations"],
    }


HEADERS = ["plan", "cost units", "drift events", "refreshes",
           "invalidations", "optimizations"]


def _rows(result: dict) -> list:
    return [
        ["stale", round(result["stale_cost_units"], 1),
         result["drift_events"], result["feedback_refreshes"],
         result["cache_invalidations"], result["optimizations"]],
        ["converged", round(result["converged_cost_units"], 1),
         "-", "-", "-", "-"],
    ]


def test_adaptive_replan_advantage(benchmark, results_sink):
    result = benchmark.pedantic(lambda: run_adaptive_benchmark(),
                                rounds=1, iterations=1)
    results_sink(format_table(
        HEADERS, _rows(result),
        title=f"Feedback-driven re-optimization — "
              f"{result['staleness']:.0f}x-stale declared statistics "
              f"(parallelism {result['parallelism']})"))
    benchmark.extra_info["adaptive"] = {
        "adaptive_replan_advantage": result["adaptive_replan_advantage"]}
    # The acceptance bar: re-preparing after the feedback refresh must
    # land on a plan at least 1.5x cheaper than the stale cached one.
    assert result["adaptive_replan_advantage"] >= 1.5, \
        result["adaptive_replan_advantage"]


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run_adaptive_benchmark(num_rows=4_000 if smoke else 12_000)
    print(format_table(
        HEADERS, _rows(result),
        title=f"Feedback-driven re-optimization — "
              f"{result['staleness']:.0f}x-stale declared statistics "
              f"(parallelism {result['parallelism']})"))
    print(f"adaptive replan advantage: "
          f"{result['adaptive_replan_advantage']:.2f}x")
    if result["adaptive_replan_advantage"] < 1.5:
        print(f"FAIL: converged plan only "
              f"{result['adaptive_replan_advantage']:.2f}x cheaper than "
              "the stale plan (bar: 1.5x)")
        return 1
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
