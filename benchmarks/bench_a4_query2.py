"""Experiment A4 / Query 2 — MRS inside a full query pipeline.

``SELECT ps_suppkey, ps_partkey, ps_availqty, count(l_partkey) FROM
partsupp, lineitem WHERE … GROUP BY … ORDER BY ps_suppkey, ps_partkey``
with covering indexes on (suppkey) both sides.  The paper measured 63 s
(SRS) vs 25 s (MRS) on PostgreSQL — same plan, different sort kernel.
"""

import pytest

from repro.bench import format_table, run_plan, speedup
from repro.core.sort_order import SortOrder
from repro.engine import (
    CoveringIndexScan,
    MergeJoin,
    Sort,
    SortAggregate,
)
from repro.expr import JoinPredicate, col
from repro.expr.aggregates import count


def _query2_plan(catalog, algorithm):
    ps_ix = next(ix for ix in catalog.indexes_of("partsupp")
                 if ix.name == "ps_suppkey_q2")
    li_ix = next(ix for ix in catalog.indexes_of("lineitem")
                 if ix.name == "li_suppkey_q2")
    ps_order = SortOrder(["ps_suppkey", "ps_partkey"])
    li_order = SortOrder(["l_suppkey", "l_partkey"])
    known_ps = SortOrder(["ps_suppkey"]) if algorithm == "mrs" else SortOrder(())
    known_li = SortOrder(["l_suppkey"]) if algorithm == "mrs" else SortOrder(())
    ps = Sort(CoveringIndexScan(ps_ix), ps_order, algorithm=algorithm,
              known_prefix=known_ps)
    li = Sort(CoveringIndexScan(li_ix), li_order, algorithm=algorithm,
              known_prefix=known_li)
    join = MergeJoin(ps, li, JoinPredicate([("ps_suppkey", "l_suppkey"),
                                            ("ps_partkey", "l_partkey")]))
    return SortAggregate(join, ps_order, [count(col("l_partkey"), "n_items")],
                         group_columns=["ps_suppkey", "ps_partkey",
                                        "ps_availqty"])


def test_query2_mrs_vs_srs(benchmark, tpch_exec_catalog, results_sink):
    srs = run_plan(_query2_plan(tpch_exec_catalog, "srs"),
                   tpch_exec_catalog, "Query 2 with SRS")
    mrs = benchmark.pedantic(
        lambda: run_plan(_query2_plan(tpch_exec_catalog, "mrs"),
                         tpch_exec_catalog, "Query 2 with MRS"),
        rounds=3, iterations=1)

    assert srs.rows == mrs.rows > 0
    gain = speedup(srs, mrs)
    # Paper: 63 s / 25 s = 2.5×.  Require at least 1.8× here.
    assert gain >= 1.8, f"only {gain:.2f}x"
    assert mrs.blocks_written == 0

    results_sink(format_table(
        ["variant", "groups", "cost units", "blocks r+w", "comparisons"],
        [[r.label, r.rows, r.cost_units, r.total_blocks, r.comparisons]
         for r in (srs, mrs)],
        title=(f"Experiment A4 — Query 2 (count of lineitems per "
               f"supplier,part): MRS {gain:.1f}x better "
               f"(paper: 63s -> 25s = 2.5x)")))
    benchmark.extra_info["speedup"] = round(gain, 2)


def test_query2_results_identical(tpch_exec_catalog, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a = _query2_plan(tpch_exec_catalog, "srs").run()
    b = _query2_plan(tpch_exec_catalog, "mrs").run()
    assert sorted(a) == sorted(b)
