"""Serving benchmark: QueryServer throughput and tail latency per backend.

Drives one :class:`~repro.service.QueryServer` with many concurrent
asyncio clients over a mixed prepared-query workload (a sort-heavy
report whose parallelism-4 plan carries a MergeExchange, a parameterized
aggregate, a filtered projection) and reports, per execution backend:

* **throughput** (queries/second over the timed window),
* **p50/p95 latency** from the server's own telemetry,
* steady-state **admission rejections** (must be 0 — the queue is sized
  for the client count),
* the shared-cache **hit rate** (deterministic: a sequential warm-up
  pass populates the cache, so the timed run is all hits).

The headline number is the process-over-serial throughput ratio at
parallelism 4: the process pool runs per-shard subplans (and whole
queries) on multiple cores, while the serial backend is GIL-bound.  The
ratio is only meaningful on a multi-core host — on one core the pool
pays IPC for nothing — so the regression gate skips it there.

Two modes:

* ``pytest benchmarks/bench_serving.py`` — smoke-sized, with the shared
  results sink;
* ``python benchmarks/bench_serving.py [--smoke]`` — standalone script
  (used by CI's regression gate), no pytest required.
"""

import asyncio
import os
import random
import sys
import time

import pytest

from repro.bench import format_table
from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.service import (
    ProcessPoolBackend,
    QueryRejected,
    QueryServer,
    QuerySession,
    RetriesExhausted,
    RetryingClient,
    RetryPolicy,
)
from repro.storage import Catalog, Schema, SystemParameters


def serving_catalog(num_rows: int, seed: int = 11) -> Catalog:
    """Rows sized so the report sort spills at parallelism 1 and fits
    per shard — the regime the sharded enforcers (and therefore the
    process backend) target."""
    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(sort_memory_blocks=max(20, num_rows // 100)))
    schema = Schema.of(("sym", "int", 8), ("ts", "int", 8),
                       ("qty", "int", 8), ("tag", "str", 64))
    rows = [(rng.randrange(64), rng.randrange(100_000),
             rng.randrange(1, 500), f"t{rng.randrange(997)}")
            for _ in range(num_rows)]
    catalog.create_table("trades", schema, rows=rows,
                         clustering_order=SortOrder(["sym"]))
    return catalog


def serving_workload():
    report = Query.table("trades").order_by("ts", "sym", "qty", "tag")
    volume = (Query.table("trades")
              .where(col("qty").ge(param("min_qty")))
              .group_by(["sym"], count_star("n"), agg_sum(col("qty"), "vol"))
              .order_by("sym"))
    recent = (Query.table("trades").where(col("ts").ge(90_000))
              .select("ts", "sym", "qty").order_by("ts", "sym", "qty"))
    return [(report, {}), (volume, {"min_qty": 100}),
            (volume, {"min_qty": 250}), (recent, {})]


def _drive(server: QueryServer, clients: int, rounds: int,
           references: list[list[tuple]]) -> dict:
    """Sequential warm-up (fills cache + pool), then a timed fan-out of
    *clients* async clients × *rounds* queries each.  Every result —
    warm-up included — is checked against *references* (the serial
    in-process rows), so a backend that diverged would fail here."""
    workload = serving_workload()
    for (query, binds), reference in zip(workload, references):
        assert server.execute(query, **binds).rows == reference, \
            f"{server.backend.name} warm-up diverged from serial reference"

    mismatches = [0]

    async def client(i: int) -> None:
        for r in range(rounds):
            pick = (i + r) % len(workload)
            query, binds = workload[pick]
            result = await server.submit(query, **binds)
            if result.rows != references[pick]:
                mismatches[0] += 1

    async def fan_out() -> None:
        await asyncio.gather(*[client(i) for i in range(clients)])

    start = time.perf_counter()
    asyncio.run(fan_out())
    elapsed = time.perf_counter() - start

    stats = server.stats()
    total = clients * rounds
    assert mismatches[0] == 0, "served rows diverged from the references"
    return {
        "queries": total,
        "seconds": elapsed,
        "throughput_qps": total / elapsed if elapsed else float("inf"),
        "p50_ms": stats["latency_p50_ms"],
        "p95_ms": stats["latency_p95_ms"],
        "rejections": stats["rejected_queue_full"],
        "timeouts": stats["timeouts"],
        "cache_hit_rate": stats["cache_hit_rate"],
        "worker_utilization": stats["worker_utilization"],
    }


def run_serving_benchmark(num_rows: int = 8_000, clients: int = 8,
                          rounds: int = 4, parallelism: int = 4,
                          workers: int | None = None) -> dict:
    """Throughput + tail latency for the serial vs process backends on
    one identical workload; every backend's rows are checked against the
    serial references inside :func:`_drive`."""
    workers = workers or min(4, os.cpu_count() or 1)
    results: dict = {"num_rows": num_rows, "clients": clients,
                     "rounds": rounds, "cores": os.cpu_count() or 1,
                     "pool_workers": workers}
    catalog = serving_catalog(num_rows)
    reference_session = QuerySession(catalog)
    references = [reference_session.execute(query, **binds)
                  for query, binds in serving_workload()]
    for backend in ("serial", "process"):
        with QueryServer(catalog, backend=backend, parallelism=parallelism,
                         max_inflight=workers, queue_limit=clients * rounds,
                         pool_workers=workers) as server:
            results[backend] = _drive(server, clients, rounds, references)
    results["serving_speedup"] = (
        results["process"]["throughput_qps"]
        / results["serial"]["throughput_qps"])
    results["serving_rejections"] = (results["serial"]["rejections"]
                                     + results["process"]["rejections"])
    results["serving_cache_hit_rate"] = min(
        results["serial"]["cache_hit_rate"],
        results["process"]["cache_hit_rate"])
    return results


# -- sustained overload: raw vs cooperative clients --------------------------------------
def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_overload_benchmark(num_rows: int = 4_000, clients: int = 8,
                           rounds: int = 3, max_inflight: int = 2,
                           queue_limit: int = 2) -> dict:
    """Offered load far beyond capacity (*clients* concurrent clients
    against ``max_inflight + queue_limit`` admission slots), twice:

    * **raw** clients take :class:`~repro.service.QueryRejected` on the
      chin — rejections are the backpressure protocol working;
    * **cooperative** clients (:class:`~repro.service.RetryingClient`)
      honour the ``retry_after`` hints with jittered backoff, so the
      same offered load lands with ~zero client-visible failures while
      server-side shed counts stay nonzero.

    *Goodput* is the fraction of the cohort's requests that ultimately
    returned rows (checked against the serial references)."""
    catalog = serving_catalog(num_rows)
    session = QuerySession(catalog)
    workload = serving_workload()
    references = [session.execute(query, **binds)
                  for query, binds in workload]
    result: dict = {"clients": clients, "rounds": rounds,
                    "max_inflight": max_inflight,
                    "queue_limit": queue_limit}

    for mode in ("raw", "cooperative"):
        with QueryServer(catalog, backend="serial", parallelism=4,
                         max_inflight=max_inflight,
                         queue_limit=queue_limit) as server:
            for (query, binds), reference in zip(workload, references):
                assert server.execute(query, **binds).rows == reference
            retrier = RetryingClient(server, RetryPolicy(
                max_attempts=12, base_delay=0.005, max_delay=0.2))
            succeeded = [0]
            failed = [0]
            mismatches = [0]

            async def client(i: int) -> None:
                for r in range(rounds):
                    pick = (i + r) % len(workload)
                    query, binds = workload[pick]
                    try:
                        if mode == "cooperative":
                            result_ = await retrier.submit(query, **binds)
                        else:
                            result_ = await server.submit(query, **binds)
                    except (QueryRejected, RetriesExhausted):
                        failed[0] += 1
                        continue
                    succeeded[0] += 1
                    if result_.rows != references[pick]:
                        mismatches[0] += 1

            async def fan_out() -> None:
                await asyncio.gather(*[client(i) for i in range(clients)])

            start = time.perf_counter()
            asyncio.run(fan_out())
            elapsed = time.perf_counter() - start
            assert mismatches[0] == 0, "overload run served wrong rows"
            stats = server.stats()
            total = clients * rounds
            result[mode] = {
                "requests": total,
                "succeeded": succeeded[0],
                "client_failures": failed[0],
                "goodput": succeeded[0] / total,
                "server_rejections": (stats["rejected_queue_full"]
                                      + stats["rejected_quota"]),
                "retries": retrier.stats()["retries"],
                "seconds": elapsed,
            }

    result["overload_goodput"] = result["cooperative"]["goodput"]
    result["overload_client_failures"] = float(
        result["cooperative"]["client_failures"])
    result["overload_raw_shed"] = (
        1.0 if result["raw"]["server_rejections"] > 0 else 0.0)
    return result


# -- streaming vs gathered shard transfer ------------------------------------------------
def run_streaming_benchmark(num_rows: int = 12_000, repeats: int = 7,
                            parallelism: int = 4,
                            workers: int | None = None,
                            chunk_rows: int = 512) -> dict:
    """Tail latency of the sort-heavy report on the process pool with
    chunked streaming transfer vs whole-result gathering.

    Streaming lets the serving-side merge consume the fastest shard
    while the slowest is still sorting, instead of waiting for every
    worker's complete pickled row list; the improvement shows at p95,
    where the straggler shard dominates the gathered path."""
    workers = workers or min(4, os.cpu_count() or 1)
    catalog = serving_catalog(num_rows)
    session = QuerySession(catalog)
    report = serving_workload()[0][0]
    reference = session.execute(report)
    plan = session.prepare(report, parallelism=parallelism).plan
    result: dict = {"num_rows": num_rows, "repeats": repeats,
                    "pool_workers": workers, "chunk_rows": chunk_rows}
    for label, streaming in (("gathered", False), ("streaming", True)):
        backend = ProcessPoolBackend(catalog, workers=workers,
                                     streaming=streaming,
                                     chunk_rows=chunk_rows)
        try:
            assert backend.run_plan(plan, catalog,
                                    parallelism=parallelism) == reference
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                rows = backend.run_plan(plan, catalog,
                                        parallelism=parallelism)
                samples.append(time.perf_counter() - start)
                assert rows == reference
            result[label] = {
                "p50_ms": _percentile(samples, 0.50) * 1e3,
                "p95_ms": _percentile(samples, 0.95) * 1e3,
                "mean_ms": sum(samples) / len(samples) * 1e3,
            }
        finally:
            backend.close()
    result["streaming_p95_improvement"] = (
        result["gathered"]["p95_ms"] / result["streaming"]["p95_ms"])
    return result


HEADERS = ["backend", "queries", "qps", "p50 ms", "p95 ms", "rejections",
           "cache hit rate", "utilization"]

OVERLOAD_HEADERS = ["clients", "requests", "succeeded", "client failures",
                    "goodput", "server rejections", "retries"]

STREAMING_HEADERS = ["transfer", "p50 ms", "p95 ms", "mean ms"]


def _overload_rows(result: dict) -> list:
    return [[mode, result[mode]["requests"], result[mode]["succeeded"],
             result[mode]["client_failures"],
             round(result[mode]["goodput"], 3),
             result[mode]["server_rejections"], result[mode]["retries"]]
            for mode in ("raw", "cooperative")]


def _streaming_rows(result: dict) -> list:
    return [[label, round(result[label]["p50_ms"], 1),
             round(result[label]["p95_ms"], 1),
             round(result[label]["mean_ms"], 1)]
            for label in ("gathered", "streaming")]


def _rows(result: dict) -> list:
    return [[backend, result[backend]["queries"],
             round(result[backend]["throughput_qps"], 1),
             round(result[backend]["p50_ms"], 1),
             round(result[backend]["p95_ms"], 1),
             result[backend]["rejections"],
             round(result[backend]["cache_hit_rate"], 3),
             round(result[backend]["worker_utilization"], 2)]
            for backend in ("serial", "process")]


def test_serving_throughput_and_admission(benchmark, results_sink):
    result = benchmark.pedantic(
        lambda: run_serving_benchmark(num_rows=4_000, clients=6, rounds=3,
                                      workers=2),
        rounds=1, iterations=1)
    results_sink(format_table(
        HEADERS, _rows(result),
        title=f"Serving throughput — serial vs process backend "
              f"(parallelism 4, {result['cores']} cores)"))
    benchmark.extra_info["serving"] = {
        k: v for k, v in result.items() if not isinstance(v, dict)}
    # Steady state: the queue is sized for the offered load.
    assert result["serving_rejections"] == 0
    assert result["serial"]["timeouts"] == 0
    assert result["process"]["timeouts"] == 0
    # Warm-up fills the shared cache; the timed run is all hits (the
    # only misses are the warm-up pass's three cold plans).
    assert result["serving_cache_hit_rate"] >= 0.8
    # The acceptance bar needs real cores; on one core the pool only
    # pays IPC, so the ratio is informational there.
    if result["cores"] >= 2:
        assert result["serving_speedup"] > 1.5, result["serving_speedup"]


def test_overload_cooperative_goodput(benchmark, results_sink):
    result = benchmark.pedantic(
        lambda: run_overload_benchmark(num_rows=3_000, clients=6, rounds=3),
        rounds=1, iterations=1)
    results_sink(format_table(
        OVERLOAD_HEADERS, _overload_rows(result),
        title=f"Sustained overload — raw vs cooperative clients "
              f"({result['clients']} clients, "
              f"{result['max_inflight']}+{result['queue_limit']} slots)"))
    benchmark.extra_info["overload"] = {
        k: v for k, v in result.items() if not isinstance(v, dict)}
    # Backpressure works: the raw cohort is shed, the cooperative cohort
    # converts the same rejections into retries and loses (almost)
    # nothing client-side.
    assert result["raw"]["server_rejections"] > 0
    assert result["overload_goodput"] >= 0.9
    assert result["overload_client_failures"] == 0


def test_streaming_tail_latency(benchmark, results_sink):
    result = benchmark.pedantic(
        lambda: run_streaming_benchmark(num_rows=8_000, repeats=5),
        rounds=1, iterations=1)
    results_sink(format_table(
        STREAMING_HEADERS, _streaming_rows(result),
        title=f"Shard transfer — gathered vs streaming "
              f"({result['pool_workers']} workers, "
              f"{result['chunk_rows']}-row chunks)"))
    benchmark.extra_info["streaming"] = {
        "streaming_p95_improvement": result["streaming_p95_improvement"]}
    # Rows are asserted identical inside the run; the latency ratio is
    # informational at smoke size (wall-clock, shared runners) — the
    # regression gate bounds it against a conservative baseline.
    assert result["streaming_p95_improvement"] > 0.0


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run_serving_benchmark(
        num_rows=6_000 if smoke else 20_000,
        clients=8 if smoke else 16,
        rounds=3 if smoke else 6)
    print(format_table(
        HEADERS, _rows(result),
        title=f"Serving throughput — serial vs process backend "
              f"(parallelism 4, {result['cores']} cores, "
              f"{result['pool_workers']} workers)"))
    print(f"process/serial speedup: {result['serving_speedup']:.2f}x")
    if result["serving_rejections"] != 0:
        print(f"FAIL: {result['serving_rejections']} admission rejections "
              "at steady state")
        return 1
    if result["cores"] >= 2 and result["serving_speedup"] < 1.5:
        print(f"FAIL: process backend speedup "
              f"{result['serving_speedup']:.2f}x < 1.5x on "
              f"{result['cores']} cores")
        return 1
    if result["cores"] < 2:
        print("(single-core host: the speedup bar is not applied)")

    overload = run_overload_benchmark(
        num_rows=3_000 if smoke else 8_000,
        clients=6 if smoke else 12,
        rounds=3 if smoke else 5)
    print()
    print(format_table(
        OVERLOAD_HEADERS, _overload_rows(overload),
        title=f"Sustained overload — raw vs cooperative clients "
              f"({overload['clients']} clients, "
              f"{overload['max_inflight']}+{overload['queue_limit']} slots)"))
    if overload["raw"]["server_rejections"] == 0:
        print("FAIL: overload never triggered admission rejections")
        return 1
    if overload["overload_goodput"] < 0.9:
        print(f"FAIL: cooperative goodput "
              f"{overload['overload_goodput']:.2f} < 0.9 under overload")
        return 1

    streaming = run_streaming_benchmark(
        num_rows=8_000 if smoke else 20_000,
        repeats=5 if smoke else 9)
    print()
    print(format_table(
        STREAMING_HEADERS, _streaming_rows(streaming),
        title=f"Shard transfer — gathered vs streaming "
              f"({streaming['pool_workers']} workers, "
              f"{streaming['chunk_rows']}-row chunks)"))
    print(f"streaming p95 improvement: "
          f"{streaming['streaming_p95_improvement']:.2f}x")

    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
