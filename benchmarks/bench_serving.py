"""Serving benchmark: QueryServer throughput and tail latency per backend.

Drives one :class:`~repro.service.QueryServer` with many concurrent
asyncio clients over a mixed prepared-query workload (a sort-heavy
report whose parallelism-4 plan carries a MergeExchange, a parameterized
aggregate, a filtered projection) and reports, per execution backend:

* **throughput** (queries/second over the timed window),
* **p50/p95 latency** from the server's own telemetry,
* steady-state **admission rejections** (must be 0 — the queue is sized
  for the client count),
* the shared-cache **hit rate** (deterministic: a sequential warm-up
  pass populates the cache, so the timed run is all hits).

The headline number is the process-over-serial throughput ratio at
parallelism 4: the process pool runs per-shard subplans (and whole
queries) on multiple cores, while the serial backend is GIL-bound.  The
ratio is only meaningful on a multi-core host — on one core the pool
pays IPC for nothing — so the regression gate skips it there.

Two modes:

* ``pytest benchmarks/bench_serving.py`` — smoke-sized, with the shared
  results sink;
* ``python benchmarks/bench_serving.py [--smoke]`` — standalone script
  (used by CI's regression gate), no pytest required.
"""

import asyncio
import os
import random
import sys
import time

import pytest

from repro.bench import format_table
from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.service import QueryServer, QuerySession
from repro.storage import Catalog, Schema, SystemParameters


def serving_catalog(num_rows: int, seed: int = 11) -> Catalog:
    """Rows sized so the report sort spills at parallelism 1 and fits
    per shard — the regime the sharded enforcers (and therefore the
    process backend) target."""
    rng = random.Random(seed)
    catalog = Catalog(SystemParameters(sort_memory_blocks=max(20, num_rows // 100)))
    schema = Schema.of(("sym", "int", 8), ("ts", "int", 8),
                       ("qty", "int", 8), ("tag", "str", 64))
    rows = [(rng.randrange(64), rng.randrange(100_000),
             rng.randrange(1, 500), f"t{rng.randrange(997)}")
            for _ in range(num_rows)]
    catalog.create_table("trades", schema, rows=rows,
                         clustering_order=SortOrder(["sym"]))
    return catalog


def serving_workload():
    report = Query.table("trades").order_by("ts", "sym", "qty", "tag")
    volume = (Query.table("trades")
              .where(col("qty").ge(param("min_qty")))
              .group_by(["sym"], count_star("n"), agg_sum(col("qty"), "vol"))
              .order_by("sym"))
    recent = (Query.table("trades").where(col("ts").ge(90_000))
              .select("ts", "sym", "qty").order_by("ts", "sym", "qty"))
    return [(report, {}), (volume, {"min_qty": 100}),
            (volume, {"min_qty": 250}), (recent, {})]


def _drive(server: QueryServer, clients: int, rounds: int,
           references: list[list[tuple]]) -> dict:
    """Sequential warm-up (fills cache + pool), then a timed fan-out of
    *clients* async clients × *rounds* queries each.  Every result —
    warm-up included — is checked against *references* (the serial
    in-process rows), so a backend that diverged would fail here."""
    workload = serving_workload()
    for (query, binds), reference in zip(workload, references):
        assert server.execute(query, **binds).rows == reference, \
            f"{server.backend.name} warm-up diverged from serial reference"

    mismatches = [0]

    async def client(i: int) -> None:
        for r in range(rounds):
            pick = (i + r) % len(workload)
            query, binds = workload[pick]
            result = await server.submit(query, **binds)
            if result.rows != references[pick]:
                mismatches[0] += 1

    async def fan_out() -> None:
        await asyncio.gather(*[client(i) for i in range(clients)])

    start = time.perf_counter()
    asyncio.run(fan_out())
    elapsed = time.perf_counter() - start

    stats = server.stats()
    total = clients * rounds
    assert mismatches[0] == 0, "served rows diverged from the references"
    return {
        "queries": total,
        "seconds": elapsed,
        "throughput_qps": total / elapsed if elapsed else float("inf"),
        "p50_ms": stats["latency_p50_ms"],
        "p95_ms": stats["latency_p95_ms"],
        "rejections": stats["rejected_queue_full"],
        "timeouts": stats["timeouts"],
        "cache_hit_rate": stats["cache_hit_rate"],
        "worker_utilization": stats["worker_utilization"],
    }


def run_serving_benchmark(num_rows: int = 8_000, clients: int = 8,
                          rounds: int = 4, parallelism: int = 4,
                          workers: int | None = None) -> dict:
    """Throughput + tail latency for the serial vs process backends on
    one identical workload; every backend's rows are checked against the
    serial references inside :func:`_drive`."""
    workers = workers or min(4, os.cpu_count() or 1)
    results: dict = {"num_rows": num_rows, "clients": clients,
                     "rounds": rounds, "cores": os.cpu_count() or 1,
                     "pool_workers": workers}
    catalog = serving_catalog(num_rows)
    reference_session = QuerySession(catalog)
    references = [reference_session.execute(query, **binds)
                  for query, binds in serving_workload()]
    for backend in ("serial", "process"):
        with QueryServer(catalog, backend=backend, parallelism=parallelism,
                         max_inflight=workers, queue_limit=clients * rounds,
                         pool_workers=workers) as server:
            results[backend] = _drive(server, clients, rounds, references)
    results["serving_speedup"] = (
        results["process"]["throughput_qps"]
        / results["serial"]["throughput_qps"])
    results["serving_rejections"] = (results["serial"]["rejections"]
                                     + results["process"]["rejections"])
    results["serving_cache_hit_rate"] = min(
        results["serial"]["cache_hit_rate"],
        results["process"]["cache_hit_rate"])
    return results


HEADERS = ["backend", "queries", "qps", "p50 ms", "p95 ms", "rejections",
           "cache hit rate", "utilization"]


def _rows(result: dict) -> list:
    return [[backend, result[backend]["queries"],
             round(result[backend]["throughput_qps"], 1),
             round(result[backend]["p50_ms"], 1),
             round(result[backend]["p95_ms"], 1),
             result[backend]["rejections"],
             round(result[backend]["cache_hit_rate"], 3),
             round(result[backend]["worker_utilization"], 2)]
            for backend in ("serial", "process")]


def test_serving_throughput_and_admission(benchmark, results_sink):
    result = benchmark.pedantic(
        lambda: run_serving_benchmark(num_rows=4_000, clients=6, rounds=3,
                                      workers=2),
        rounds=1, iterations=1)
    results_sink(format_table(
        HEADERS, _rows(result),
        title=f"Serving throughput — serial vs process backend "
              f"(parallelism 4, {result['cores']} cores)"))
    benchmark.extra_info["serving"] = {
        k: v for k, v in result.items() if not isinstance(v, dict)}
    # Steady state: the queue is sized for the offered load.
    assert result["serving_rejections"] == 0
    assert result["serial"]["timeouts"] == 0
    assert result["process"]["timeouts"] == 0
    # Warm-up fills the shared cache; the timed run is all hits (the
    # only misses are the warm-up pass's three cold plans).
    assert result["serving_cache_hit_rate"] >= 0.8
    # The acceptance bar needs real cores; on one core the pool only
    # pays IPC, so the ratio is informational there.
    if result["cores"] >= 2:
        assert result["serving_speedup"] > 1.5, result["serving_speedup"]


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run_serving_benchmark(
        num_rows=6_000 if smoke else 20_000,
        clients=8 if smoke else 16,
        rounds=3 if smoke else 6)
    print(format_table(
        HEADERS, _rows(result),
        title=f"Serving throughput — serial vs process backend "
              f"(parallelism 4, {result['cores']} cores, "
              f"{result['pool_workers']} workers)"))
    print(f"process/serial speedup: {result['serving_speedup']:.2f}x")
    if result["serving_rejections"] != 0:
        print(f"FAIL: {result['serving_rejections']} admission rejections "
              "at steady state")
        return 1
    if result["cores"] >= 2 and result["serving_speedup"] < 1.5:
        print(f"FAIL: process backend speedup "
              f"{result['serving_speedup']:.2f}x < 1.5x on "
              f"{result['cores']} cores")
        return 1
    if result["cores"] < 2:
        print("(single-core host: the speedup bar is not applied)")
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
