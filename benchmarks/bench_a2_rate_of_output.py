"""Experiment A2 / Figure 8 — rate of output: tuples produced vs time.

MRS starts emitting immediately (first segment closes after ~N/k rows);
SRS emits its first tuple only after consuming the entire input.  We
chart cost-units-so-far against tuples produced.
"""

import pytest

from repro.bench import format_table, run_plan
from repro.core.sort_order import SortOrder
from repro.engine import Sort, TableScan
from repro.storage import SystemParameters
from repro.workloads import segmented_catalog

NUM_ROWS = 60_000
DISTINCT_C1 = 6_000  # 10 rows per segment — the paper used 10,000 of 10M


@pytest.fixture(scope="module")
def catalog():
    params = SystemParameters(block_size=4096, sort_memory_blocks=64)
    return segmented_catalog(NUM_ROWS, NUM_ROWS // DISTINCT_C1, params=params)


def _sort_plan(catalog, algorithm):
    scan = TableScan(catalog.table("r"))
    prefix = SortOrder(["c1"]) if algorithm == "mrs" else SortOrder(())
    return Sort(scan, SortOrder(["c1", "c2"]), algorithm=algorithm,
                known_prefix=prefix)


def test_fig8_rate_of_output(benchmark, catalog, results_sink):
    sample = NUM_ROWS // 10

    srs = run_plan(_sort_plan(catalog, "srs"), catalog, "SRS",
                   sample_every=sample)
    mrs = benchmark.pedantic(
        lambda: run_plan(_sort_plan(catalog, "mrs"), catalog, "MRS",
                         sample_every=sample),
        rounds=3, iterations=1)

    assert srs.rows == mrs.rows == NUM_ROWS

    # First 10% of output: MRS must have paid only a sliver of its total
    # cost; SRS has already paid nearly everything (full input consumed).
    srs_first = srs.output_timeline[0][1] / srs.cost_units
    mrs_first = mrs.output_timeline[0][1] / max(mrs.cost_units, 1e-9)
    assert srs_first > 0.5, f"SRS produced early unexpectedly ({srs_first:.2f})"
    assert mrs_first < 0.35, f"MRS not pipelined ({mrs_first:.2f})"

    rows = []
    for (n_s, c_s), (n_m, c_m) in zip(srs.output_timeline, mrs.output_timeline):
        rows.append([n_s, round(c_s, 1), round(c_m, 1)])
    results_sink(format_table(
        ["tuples produced", "SRS cost so far", "MRS cost so far"],
        rows,
        title=(f"Figure 8 — Experiment A2: rate of output "
               f"({NUM_ROWS} rows, {DISTINCT_C1} distinct c1); "
               f"cost at first decile: SRS {100*srs_first:.0f}% vs "
               f"MRS {100*mrs_first:.0f}% of total")))
    benchmark.extra_info["srs_first_decile_fraction"] = round(srs_first, 3)
    benchmark.extra_info["mrs_first_decile_fraction"] = round(mrs_first, 3)


def test_fig8_first_tuple_latency(catalog, benchmark):
    """Time-to-first-tuple: MRS ≪ SRS."""
    import itertools
    from repro.engine import ExecutionContext

    def first_tuple_cost(algorithm):
        ctx = ExecutionContext(catalog)
        op = _sort_plan(catalog, algorithm)
        next(iter(op.execute(ctx)))
        return ctx.cost_units()

    mrs_cost = benchmark.pedantic(lambda: first_tuple_cost("mrs"),
                                  rounds=3, iterations=1)
    srs_cost = first_tuple_cost("srs")
    assert mrs_cost < srs_cost / 5
