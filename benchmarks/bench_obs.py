"""Observability overhead benchmark: tracing on vs off vs absent.

Drives the serving workload (from :mod:`bench_serving`) through three
identically configured :class:`~repro.service.QueryServer` instances on
the serial backend:

* **baseline** — no observability at all (``obs=None``), the code path
  every pre-observability caller gets;
* **obs_disabled** — observability configured but per-query tracing
  off (``ObservabilityConfig(trace_queries=False)``): the exposition
  endpoints and slow-query log are live, queries run untraced;
* **obs_enabled** — full tracing with per-operator timing
  (``obs=True``): every query builds a span tree and meters wall time
  per operator.

The two headline ratios are throughputs against the baseline:

* ``obs_enabled_throughput_ratio`` — full tracing must keep ≥ 0.90x of
  the untraced throughput;
* ``obs_disabled_throughput_ratio`` — the disabled path must be free:
  ≤ 2% overhead (ratio ≥ 0.98), because disabled tracing is a single
  ContextVar read per ambient-span probe.

Runs are interleaved (baseline, disabled, enabled, repeat) and the
best-of-N throughput per mode is ratioed, so a background-load blip
penalises every mode equally instead of whichever mode it landed on.

Two modes:

* ``pytest benchmarks/bench_obs.py`` — smoke-sized, with the shared
  results sink;
* ``python benchmarks/bench_obs.py [--smoke]`` — standalone script
  (used by CI's regression gate), no pytest required.
"""

import sys

from bench_serving import _drive, serving_catalog, serving_workload

from repro.bench import format_table
from repro.service import ObservabilityConfig, QueryServer, QuerySession

MODES = ("baseline", "obs_disabled", "obs_enabled")


def _obs_for(mode: str):
    if mode == "baseline":
        return None
    if mode == "obs_disabled":
        return ObservabilityConfig(trace_queries=False)
    return ObservabilityConfig()


def run_obs_benchmark(num_rows: int = 4_000, clients: int = 6,
                      rounds: int = 3, repeats: int = 3,
                      parallelism: int = 4) -> dict:
    """Best-of-*repeats* serving throughput per observability mode, with
    every served row list checked against the serial references inside
    :func:`bench_serving._drive`."""
    catalog = serving_catalog(num_rows)
    reference_session = QuerySession(catalog)
    references = [reference_session.execute(query, **binds)
                  for query, binds in serving_workload()]
    result: dict = {"num_rows": num_rows, "clients": clients,
                    "rounds": rounds, "repeats": repeats}
    best: dict = {mode: None for mode in MODES}
    for _ in range(repeats):
        for mode in MODES:
            with QueryServer(catalog, backend="serial",
                             parallelism=parallelism,
                             max_inflight=4, queue_limit=clients * rounds,
                             obs=_obs_for(mode)) as server:
                run = _drive(server, clients, rounds, references)
                if mode == "obs_enabled":
                    stats = server.stats()
                    # Every timed query (and the warm-up pass) traced.
                    assert stats["traces_started"] >= clients * rounds, stats
            prev = best[mode]
            if prev is None or run["throughput_qps"] > prev["throughput_qps"]:
                best[mode] = run
    result.update(best)
    base_qps = result["baseline"]["throughput_qps"]
    result["obs_enabled_throughput_ratio"] = (
        result["obs_enabled"]["throughput_qps"] / base_qps)
    result["obs_disabled_throughput_ratio"] = (
        result["obs_disabled"]["throughput_qps"] / base_qps)
    return result


HEADERS = ["mode", "queries", "qps", "p50 ms", "p95 ms", "vs baseline"]


def _rows(result: dict) -> list:
    base_qps = result["baseline"]["throughput_qps"]
    return [[mode, result[mode]["queries"],
             round(result[mode]["throughput_qps"], 1),
             round(result[mode]["p50_ms"], 1),
             round(result[mode]["p95_ms"], 1),
             f"{result[mode]['throughput_qps'] / base_qps:.3f}x"]
            for mode in MODES]


def test_observability_overhead(benchmark, results_sink):
    result = benchmark.pedantic(
        lambda: run_obs_benchmark(num_rows=3_000, clients=4, rounds=3,
                                  repeats=2),
        rounds=1, iterations=1)
    results_sink(format_table(
        HEADERS, _rows(result),
        title=f"Observability overhead — serial backend "
              f"({result['clients']} clients × {result['rounds']} rounds, "
              f"best of {result['repeats']})"))
    benchmark.extra_info["obs"] = {
        k: v for k, v in result.items() if not isinstance(v, dict)}
    # Rows are asserted identical inside _drive; the ratios are
    # informational at smoke size (wall clock, shared runners) — the
    # regression gate bounds them against conservative baselines.
    assert result["obs_enabled_throughput_ratio"] > 0.0
    assert result["obs_disabled_throughput_ratio"] > 0.0


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    result = run_obs_benchmark(
        num_rows=4_000 if smoke else 8_000,
        clients=6 if smoke else 8,
        rounds=3 if smoke else 5,
        repeats=3 if smoke else 5)
    print(format_table(
        HEADERS, _rows(result),
        title=f"Observability overhead — serial backend "
              f"({result['clients']} clients × {result['rounds']} rounds, "
              f"best of {result['repeats']})"))
    enabled = result["obs_enabled_throughput_ratio"]
    disabled = result["obs_disabled_throughput_ratio"]
    print(f"tracing enabled : {enabled:.3f}x baseline throughput")
    print(f"tracing disabled: {disabled:.3f}x baseline throughput")
    failed = False
    if enabled < 0.90:
        print(f"FAIL: tracing-enabled throughput ratio {enabled:.3f} "
              "< 0.90")
        failed = True
    if disabled < 0.98:
        print(f"FAIL: tracing-disabled throughput ratio {disabled:.3f} "
              "< 0.98 (disabled path must be free)")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
