"""Expression-kernel microbenchmark: per-row compiled closures vs
whole-column batch kernels.

Times the two compiled forms of the same expressions
(:meth:`Expression.compile` vs :meth:`Expression.compile_batch`) over
identical batched data, per expression shape: simple comparison,
compound conjunction, arithmetic, and a nested mix.  Fresh ``RowBatch``
objects are built for every timed pass so the kernel side pays its real
column-extraction cost each time — cached transposes from a previous
pass must not flatter it.

The headline metric is ``kernel_speedup``: the geometric mean of the
per-shape batch/row ratios, gated ≥ 2x by ``check_regression.py``.

Two modes, like the other benches:

* ``pytest benchmarks/bench_kernels.py`` — full run with the shared
  results sink;
* ``python benchmarks/bench_kernels.py [--smoke]`` — standalone script
  (CI's fast smoke job), no pytest required.
"""

from __future__ import annotations

import math
import random
import sys
import time

from repro.bench import format_table
from repro.engine import RowBatch
from repro.expr import And, col
from repro.storage import Schema

SCHEMA = Schema.of(("a", "int", 8), ("b", "int", 8), ("c", "int", 8))

#: (name, expression) — the shapes operators actually compile: filter
#: predicates, compute outputs, and a compound of both.
SHAPES = [
    ("compare col<const", col("a").lt(700_000)),
    ("conjunction", And(col("a").lt(700_000), col("b").ge(100))),
    ("arithmetic col*const+col", col("a") * 3 + col("b")),
    ("nested mix", (col("a") - col("b")) * 2 + col("c")),
]

#: The regression bar: kernels must beat the row closures by this much
#: (geometric mean across shapes) on the full-size run.
KERNEL_SPEEDUP_BAR = 2.0


def _rows(num_rows: int, seed: int = 11) -> list[tuple]:
    rng = random.Random(seed)
    return [(rng.randrange(1_000_000), rng.randrange(1_000),
             rng.randrange(50)) for _ in range(num_rows)]


def _chunks(rows: list[tuple], batch_size: int) -> list[list[tuple]]:
    return [rows[i:i + batch_size] for i in range(0, len(rows), batch_size)]


def _time_row(expr, chunks, repeats: int) -> float:
    fn = expr.compile(SCHEMA)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for chunk in chunks:
            [fn(row) for row in chunk]
        best = min(best, time.perf_counter() - start)
    return best


def _time_kernel(expr, chunks, repeats: int) -> float:
    kernel = expr.compile_batch(SCHEMA)
    best = float("inf")
    for _ in range(repeats):
        # Fresh batches every pass: memoized column views from the last
        # pass would make the kernel look cheaper than it is.
        batches = [RowBatch(chunk) for chunk in chunks]
        start = time.perf_counter()
        for batch in batches:
            kernel(batch)
        best = min(best, time.perf_counter() - start)
    return best


def run_kernel_benchmark(num_rows: int = 200_000, batch_size: int = 1024,
                         repeats: int = 3) -> dict:
    """Per-shape row/kernel timings plus the geomean ``kernel_speedup``.

    Also cross-checks output parity per shape — a kernel that drifted
    from the row semantics must fail the benchmark, not just a test.
    """
    rows = _rows(num_rows)
    chunks = _chunks(rows, batch_size)
    shapes = []
    log_sum = 0.0
    for name, expr in SHAPES:
        fn = expr.compile(SCHEMA)
        kernel = expr.compile_batch(SCHEMA)
        for chunk in chunks[:2]:
            assert list(kernel(RowBatch(chunk))) == [fn(r) for r in chunk], name
        row_s = _time_row(expr, chunks, repeats)
        kern_s = _time_kernel(expr, chunks, repeats)
        ratio = row_s / kern_s if kern_s else float("inf")
        log_sum += math.log(ratio)
        shapes.append({"name": name, "row_ms": row_s * 1000.0,
                       "kernel_ms": kern_s * 1000.0, "speedup": ratio})
    geomean = math.exp(log_sum / len(SHAPES))
    return {"num_rows": num_rows, "batch_size": batch_size,
            "shapes": shapes, "kernel_speedup": geomean}


KERNEL_HEADERS = ["expression shape", "row-closure ms", "kernel ms", "speedup"]


def _kernel_rows(result: dict) -> list:
    return [[s["name"], round(s["row_ms"], 2), round(s["kernel_ms"], 2),
             round(s["speedup"], 2)] for s in result["shapes"]]


# -- pytest entry point ------------------------------------------------------------------
def test_kernels_beat_row_closures(benchmark, results_sink):
    result = benchmark.pedantic(run_kernel_benchmark, rounds=1, iterations=1)
    results_sink(format_table(
        KERNEL_HEADERS, _kernel_rows(result),
        title=(f"Expression kernels — whole-column vs per-row closures "
               f"({result['num_rows']:,} rows, batches of "
               f"{result['batch_size']}); geomean speedup "
               f"{result['kernel_speedup']:.2f}x")))
    benchmark.extra_info["kernel_speedup"] = result["kernel_speedup"]
    assert result["kernel_speedup"] >= KERNEL_SPEEDUP_BAR, result


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    num_rows = 30_000 if smoke else 200_000
    result = run_kernel_benchmark(num_rows, repeats=2 if smoke else 3)
    print(format_table(
        KERNEL_HEADERS, _kernel_rows(result),
        title=f"Expression kernels — row closures vs batch kernels "
              f"({num_rows:,} rows)"))
    floor = 1.5 if smoke else KERNEL_SPEEDUP_BAR
    if result["kernel_speedup"] < floor:
        print(f"FAIL: kernel speedup {result['kernel_speedup']:.2f}x "
              f"< {floor}x (geomean across shapes)")
        return 1
    print(f"\nkernel speedup (geomean): {result['kernel_speedup']:.2f}x")
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
