"""Ablation study (ours, E13) — isolating each design choice.

DESIGN.md calls out four mechanisms; each is toggled independently on
the paper's workloads:

1. partial-sort enforcers (PYRO-O vs PYRO-O−);
2. favorable-order candidate generation (PYRO-O vs PYRO);
3. phase-2 refinement (on/off, Query 4);
4. FD-based order reduction (group/order-by shrinking, Query 3).
"""

import pytest

from repro.bench import format_table
from repro.optimizer import Optimizer
from repro.storage import SystemParameters
from repro.workloads import query4, r_tables_stats_catalog

SORT_ONLY = dict(enable_hash_join=False, enable_hash_aggregate=False)


def test_ablation_matrix(benchmark, tpch_paper_stats, query3, results_sink):
    q4_cat = r_tables_stats_catalog(
        params=SystemParameters(sort_memory_blocks=250))
    q4 = query4()

    def cost(cat, q, strategy, refine):
        return Optimizer(cat, strategy=strategy,
                         **SORT_ONLY).optimize(q, refine=refine).total_cost

    full = benchmark.pedantic(
        lambda: cost(tpch_paper_stats, query3, "pyro-o", True),
        rounds=3, iterations=1)

    rows = [
        ["Q3 full system (PYRO-O)", full],
        ["Q3 − partial sort (PYRO-O−)",
         cost(tpch_paper_stats, query3, "pyro-o-", True)],
        ["Q3 − favorable orders (PYRO)",
         cost(tpch_paper_stats, query3, "pyro", False)],
        ["Q4 full system (PYRO-O)", cost(q4_cat, q4, "pyro-o", True)],
        ["Q4 − refinement", cost(q4_cat, q4, "pyro-o", False)],
        ["Q4 − favorable orders − refinement", cost(q4_cat, q4, "pyro", False)],
    ]
    results_sink(format_table(
        ["configuration", "estimated cost"], rows,
        title="Ablation — contribution of each mechanism"))

    by_label = {label: value for label, value in rows}
    assert by_label["Q3 full system (PYRO-O)"] < \
        by_label["Q3 − partial sort (PYRO-O−)"]
    assert by_label["Q3 full system (PYRO-O)"] <= \
        by_label["Q3 − favorable orders (PYRO)"]
    assert by_label["Q4 full system (PYRO-O)"] <= \
        by_label["Q4 − refinement"]


def test_ablation_fd_reduction(benchmark, tpch_paper_stats, query3,
                               results_sink):
    """FD-based reduction lets the group-by sort on (suppkey, partkey)
    instead of all three group columns; the plan must not sort on
    ps_availqty anywhere."""
    plan = benchmark.pedantic(
        lambda: Optimizer(tpch_paper_stats, strategy="pyro-o",
                          **SORT_ONLY).optimize(query3),
        rounds=1, iterations=1)
    agg = plan.find_all("SortAggregate")
    assert agg, "sort-based aggregate expected"
    assert len(agg[0].order) == 2
    assert "ps_availqty" not in agg[0].order.attrs()
    results_sink("FD ablation — Query 3 group order reduced to "
                 f"{agg[0].order} (group columns: "
                 f"{list(agg[0].arg('group_columns'))})")


def test_ablation_hash_operators_change_nothing_for_pyro_o(
        benchmark, tpch_paper_stats, query3, results_sink):
    """With hash operators enabled, PYRO-O's sort-based Q3 plan still
    wins on the cost model — the paper's Fig 10(b) plan is genuinely
    cheaper, not an artefact of disabling hash."""
    with_hash = benchmark.pedantic(
        lambda: Optimizer(tpch_paper_stats, strategy="pyro-o").optimize(query3),
        rounds=1, iterations=1)
    sort_only = Optimizer(tpch_paper_stats, strategy="pyro-o",
                          **SORT_ONLY).optimize(query3)
    assert with_hash.total_cost <= sort_only.total_cost * 1.001
    ops = {p.op for p in with_hash.walk()}
    results_sink(format_table(
        ["configuration", "cost", "operators"],
        [["hash enabled", with_hash.total_cost, ", ".join(sorted(ops))],
         ["sort only", sort_only.total_cost, "-"]],
        title="Ablation — hash operators available vs sort-only (Q3)"))
