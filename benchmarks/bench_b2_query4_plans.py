"""Experiment B2 / Figure 14 — Query 4 plan shapes.

Two joins sharing {c4, c5}.  SYS1/PostgreSQL chose orders with no common
prefix (Fig 14a); PYRO-O's phase-2 refinement aligns both joins on
(c4, c5) (Fig 14b); SYS2's union-of-left-outer-joins workaround pays for
uncoordinated orders at the union.

A semantic correction relative to the paper's presentation: a FULL OUTER
merge join pads the *left* key columns of unmatched right rows with
NULLs mid-stream, so it guarantees no output order (PostgreSQL likewise
discards pathkeys for full merge joins) — prefix coordination cannot
carry an order across Query 4's FOJs, and both hand-built FOJ shapes
price identically.  The Fig-14 coordination effect is therefore measured
on the order-propagating INNER variant of the same join chain, while the
FOJ variant pins that no sort is silently skipped.
"""

import pytest

from repro.bench import format_table, pyro_o_q4, sys2_union_q4, sys_default_q4
from repro.core.refinement import merge_join_permutation
from repro.core.sort_order import longest_common_prefix
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.storage import SystemParameters
from repro.workloads import query4, r_tables_stats_catalog


@pytest.fixture(scope="module")
def stats_cat():
    # 1 MB sort memory: full sorts of the 100K-row tables go external.
    return r_tables_stats_catalog(
        params=SystemParameters(sort_memory_blocks=250))


def inner_query4():
    """Query 4's join chain with INNER joins (order propagates)."""
    return (Query.table("r1")
            .join("r2", on=[("r1_c5", "r2_c5"), ("r1_c4", "r2_c4"),
                            ("r1_c3", "r2_c3")])
            .join("r3", on=[("r1_c1", "r3_c1"), ("r1_c4", "r3_c4"),
                            ("r1_c5", "r3_c5")]))


def test_fig14_plan_costs(benchmark, stats_cat, results_sink):
    default = sys_default_q4(stats_cat, join_type="inner")
    shared = pyro_o_q4(stats_cat, join_type="inner")
    optimized = benchmark.pedantic(
        lambda: Optimizer(stats_cat,
                          enable_hash_join=False).optimize(inner_query4()),
        rounds=3, iterations=1)

    assert shared.total_cost < default.total_cost
    assert optimized.total_cost <= shared.total_cost * 1.02
    # The FOJ variants price identically: no order crosses a full outer
    # merge join, so the prefix choice cannot save the interposed sort.
    assert pyro_o_q4(stats_cat).total_cost == \
        pytest.approx(sys_default_q4(stats_cat).total_cost)

    results_sink(format_table(
        ["plan", "estimated cost"],
        [["SYS1/Postgres shape (Fig 14a, no common prefix)", default.total_cost],
         ["PYRO-O shape (Fig 14b, shared (c4,c5))", shared.total_cost],
         ["PYRO-O optimizer output (phase 1+2)", optimized.total_cost]],
        title="Figure 14 — Experiment B2: Query 4 join-chain plan costs "
              "(inner variant, 100K rows/table)"))


def test_fig14_optimizer_recovers_shared_prefix(stats_cat, benchmark,
                                                results_sink):
    plan = benchmark.pedantic(
        lambda: Optimizer(stats_cat,
                          enable_hash_join=False).optimize(inner_query4()),
        rounds=1, iterations=1)
    joins = plan.find_all("MergeJoin")
    assert len(joins) == 2
    shared = longest_common_prefix(joins[0].order, joins[1].order)
    names = {a.split("_")[-1] for a in shared}
    assert names == {"c4", "c5"}
    results_sink("Figure 14(b) — optimizer-chosen join-chain plan:\n"
                 + plan.explain())


def test_q4_full_outer_joins_pay_their_sorts(stats_cat, benchmark,
                                             results_sink):
    """The paper's actual Query 4 (FULL OUTER): both merge joins carry ε
    order, the permutations stay recoverable for refinement, and an
    explicit sort sits between the joins instead of a silently-violated
    order guarantee."""
    plan = benchmark.pedantic(
        lambda: Optimizer(stats_cat, enable_hash_join=False).optimize(query4()),
        rounds=1, iterations=1)
    joins = plan.find_all("MergeJoin")
    assert len(joins) == 2
    assert all(not j.order for j in joins)
    assert all(len(merge_join_permutation(j)) == 3 for j in joins)
    assert joins[0].children[0].op == "Sort"
    results_sink("Query 4 (full outer) — optimizer-chosen plan:\n"
                 + plan.explain())


def test_sys2_union_workaround_expensive(stats_cat, benchmark, results_sink):
    """SYS2's union of two LOJs with mismatched orders costs more than a
    single coordinated full outer join of the same inputs."""
    union_plan = benchmark.pedantic(lambda: sys2_union_q4(stats_cat),
                                    rounds=1, iterations=1)
    from repro.bench.baselines import PlanBuilder
    b = PlanBuilder(stats_cat)
    direct = b.merge_join(
        b.table_scan("r1"), b.table_scan("r2"),
        [("r1_c4", "r2_c4"), ("r1_c5", "r2_c5"), ("r1_c3", "r2_c3")],
        join_type="full")
    assert direct.total_cost < union_plan.total_cost
    results_sink(format_table(
        ["plan", "estimated cost"],
        [["SYS2 union of 2 LOJs (uncoordinated orders)", union_plan.total_cost],
         ["Single merge full outer join", direct.total_cost]],
        title="Figure 14 — SYS2's union workaround vs a coordinated FOJ"))
