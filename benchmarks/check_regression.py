"""Benchmark-regression gate for CI.

Runs the smoke configurations of ``bench_plan_cache``,
``bench_join_ordering``, ``bench_scalability``, ``bench_kernels``,
``bench_serving``, ``bench_adaptive`` and ``bench_obs``, collects a
small set of optimizer/serving/execution/observability
metrics, and compares them against the checked-in
``BENCH_baseline.json``.  Any metric regressing by more than the
baseline's tolerance (default 20%) fails the build.

Deterministic metrics (cache hit rates, branch-and-bound goal counts,
simulated blocks read) are gated tightly by construction; the
wall-clock metrics (batched-vs-row, columnar-vs-row-engine and
kernel-vs-closure speedups) are gated against *conservative* baselines
so shared-runner noise does not flap the build.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py          # gate
    PYTHONPATH=src python benchmarks/check_regression.py --update # rebaseline
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"
sys.path.insert(0, str(BENCH_DIR))

from bench_adaptive import run_adaptive_benchmark  # noqa: E402
from bench_obs import run_obs_benchmark  # noqa: E402
from bench_join_ordering import (  # noqa: E402
    run_plan_quality_benchmark,
    run_search_cost_benchmark,
)
from bench_plan_cache import run_cache_benchmark, run_pruning_benchmark  # noqa: E402
from bench_scalability import (  # noqa: E402
    run_batch_speedup,
    run_shard_enforcer_benchmark,
    run_sharded_join_benchmark,
)
from bench_kernels import run_kernel_benchmark  # noqa: E402
from bench_serving import (  # noqa: E402
    run_overload_benchmark,
    run_serving_benchmark,
    run_streaming_benchmark,
)

#: Gated wall-clock ratios that only mean something on a multi-core
#: host; on one core they are collected but exempted from the gate.
MULTICORE_ONLY = ("serving_speedup", "streaming_p95_improvement")


def collect_metrics() -> tuple[dict[str, float], set[str]]:
    """One smoke pass over the benchmarks → (metric dict, skipped names).

    *skipped* lists baselined metrics this host cannot meaningfully
    measure (single-core hosts cannot show a multi-core speedup)."""
    metrics: dict[str, float] = {}
    skipped: set[str] = set()

    cache_rows = run_cache_benchmark(repeats=3)
    for name, _cold, _warm, _speedup, hit_rate in cache_rows:
        metrics[f"cache_hit_rate_{name}"] = float(hit_rate)

    pruning_rows = run_pruning_benchmark(strategies=("pyro-o",))
    for _strategy, name, _exact, bounded, _pct in pruning_rows:
        metrics[f"goals_bounded_{name}"] = float(bounded)

    # Join ordering: the default exhaustive enumerator must keep
    # producing the pre-pipeline plan costs on the Fig. 16 queries
    # (deterministic cost units, gated tightly), and simpli-squared
    # must keep its >= 5x search-effort advantage on the many-join
    # workload (the 5x bar itself is asserted inside the bench).
    _, exhaustive_costs = run_plan_quality_benchmark()
    for name, cost in exhaustive_costs.items():
        metrics[f"join_plan_cost_{name}"] = round(float(cost), 1)
    _, search = run_search_cost_benchmark()
    metrics["join_order_search_ratio"] = search["join_order_search_ratio"]

    exec_result = run_batch_speedup(num_rows=30_000, repeats=2)
    metrics["batch_speedup"] = round(exec_result["speedup"], 3)
    metrics["columnar_speedup"] = round(exec_result["columnar_speedup"], 3)
    metrics["scan_blocks_read"] = float(exec_result["blocks_read"])

    # Expression kernels: whole-column evaluation vs per-row closures.
    kern = run_kernel_benchmark(num_rows=30_000, repeats=2)
    metrics["kernel_speedup"] = round(kern["kernel_speedup"], 3)

    # Shard-aware enforcement: simulated cost units are deterministic, so
    # both absolute costs and the post-union/merge advantage gate tightly.
    shard = run_shard_enforcer_benchmark(num_rows=10_000, parallelisms=(1, 4))
    metrics["shard_merge_cost_units"] = round(shard["shard_merge_cost_units"], 3)
    metrics["post_union_sort_cost_units"] = round(
        shard["post_union_cost_units"], 3)
    metrics["shard_merge_advantage"] = round(shard["shard_merge_advantage"], 3)

    # Sharded join+aggregate: the enforcer composed below a merge join.
    join = run_sharded_join_benchmark(num_rows=10_000)
    metrics["sharded_join_cost_units"] = round(
        join["sharded_join_cost_units"], 3)
    metrics["post_union_join_cost_units"] = round(
        join["post_union_join_cost_units"], 3)
    metrics["sharded_join_advantage"] = round(
        join["sharded_join_advantage"], 3)

    # Serving tier: admission must not reject at steady state and the
    # warmed shared cache must serve the timed run; the process-backend
    # throughput ratio is gated only where cores exist to win with.
    serving = run_serving_benchmark(num_rows=6_000, clients=8, rounds=3)
    metrics["serving_rejections"] = float(serving["serving_rejections"])
    metrics["serving_cache_hit_rate"] = round(
        serving["serving_cache_hit_rate"], 3)
    if serving["cores"] >= 2:
        metrics["serving_speedup"] = round(serving["serving_speedup"], 3)
    else:
        skipped.add("serving_speedup")
        print(f"  (single-core host: serving_speedup "
              f"{serving['serving_speedup']:.2f}x collected but not gated)")

    # Cooperative backpressure: under sustained overload the raw cohort
    # must be shed (rejections are the protocol working) while the
    # retrying cohort keeps goodput — deterministic by construction, so
    # both gate tightly.
    overload = run_overload_benchmark(num_rows=3_000, clients=6, rounds=3)
    metrics["overload_goodput"] = round(overload["overload_goodput"], 3)
    metrics["overload_client_failures"] = float(
        overload["overload_client_failures"])
    metrics["overload_raw_shed"] = overload["overload_raw_shed"]

    # Feedback-driven re-optimization: simulated cost units are
    # deterministic, so the stale-over-converged plan-cost advantage
    # gates reliably; its baseline is pinned so the floor lands on the
    # documented 1.5x acceptance bar.
    adaptive = run_adaptive_benchmark(num_rows=4_000)
    metrics["adaptive_replan_advantage"] = round(
        adaptive["adaptive_replan_advantage"], 3)

    # Observability overhead: tracing must not tax the serving path —
    # the fully-traced server keeps >= 0.90x of the untraced throughput
    # and the configured-but-disabled path stays within 2% (both floors
    # come from pinned baselines).  Same-host throughput ratios on the
    # serial backend, so they gate on single-core hosts too.
    obs = run_obs_benchmark(num_rows=4_000, clients=6, rounds=3, repeats=3)
    metrics["obs_enabled_throughput_ratio"] = round(
        obs["obs_enabled_throughput_ratio"], 3)
    metrics["obs_disabled_throughput_ratio"] = round(
        obs["obs_disabled_throughput_ratio"], 3)

    # Streaming shard transfer: tail latency must not regress against
    # whole-result gathering; the overlap win needs real cores to show.
    streamed = run_streaming_benchmark(num_rows=8_000, repeats=5)
    if serving["cores"] >= 2:
        metrics["streaming_p95_improvement"] = round(
            streamed["streaming_p95_improvement"], 3)
    else:
        skipped.add("streaming_p95_improvement")
        print(f"  (single-core host: streaming_p95_improvement "
              f"{streamed['streaming_p95_improvement']:.2f}x collected "
              "but not gated)")
    return metrics, skipped


def compare(metrics: dict[str, float], baseline: dict,
            skipped: set[str] = frozenset()) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    tolerance = float(baseline.get("tolerance", 0.20))
    failures: list[str] = []
    for name, spec in baseline["metrics"].items():
        base = float(spec["value"])
        higher_is_better = bool(spec["higher_is_better"])
        current = metrics.get(name)
        if current is None:
            if name in skipped:
                print(f"  {name:28s} skipped (not measurable on this host)")
                continue
            failures.append(f"{name}: metric missing from current run")
            continue
        if higher_is_better:
            floor = base * (1.0 - tolerance)
            ok = current >= floor
            bound_text = f">= {floor:.3f}"
        else:
            ceiling = base * (1.0 + tolerance)
            ok = current <= ceiling
            bound_text = f"<= {ceiling:.3f}"
        status = "ok" if ok else "REGRESSION"
        print(f"  {name:28s} baseline={base:10.3f} current={current:10.3f} "
              f"({bound_text})  {status}")
        if not ok:
            failures.append(
                f"{name}: {current:.3f} vs baseline {base:.3f} "
                f"(allowed {bound_text})")
    for name in sorted(set(metrics) - set(baseline["metrics"])):
        print(f"  {name:28s} current={metrics[name]:10.3f}  (unbaselined)")
    return failures


def write_baseline(metrics: dict[str, float]) -> None:
    """Re-baseline: deterministic metrics exact, wall-clock conservative."""
    specs = {}
    # Wall-clock ratios are the noisy metrics: pin their baselines so the
    # gate floor (value * (1 - tolerance)) lands on the documented 1.5x
    # acceptance bar whatever the re-baselining host measured.  The
    # serving ratio is pinned even when the host could not measure it
    # (single core), so multi-core CI always gates it.
    pinned = {"adaptive_replan_advantage": round(1.5 / (1.0 - 0.20), 2),
              "batch_speedup": round(1.5 / (1.0 - 0.20), 2),
              "serving_speedup": round(1.5 / (1.0 - 0.20), 2),
              "columnar_speedup": round(1.5 / (1.0 - 0.20), 2),
              "kernel_speedup": round(1.5 / (1.0 - 0.20), 2),
              # Floor 0.85: streaming transfer may not cost more than
              # 15% at p95 vs gathering (the overlap win itself is
              # wall-clock noisy on shared runners).
              "streaming_p95_improvement": round(0.85 / (1.0 - 0.20), 2),
              # Observability overhead floors: 1.125 * 0.80 = 0.90
              # (tracing keeps >= 90% of untraced throughput) and
              # 1.225 * 0.80 = 0.98 (the disabled path is <= 2% tax).
              # Literals, not round(0.90 / 0.80, 2): banker's rounding
              # turns 1.125 into 1.12 and silently loosens the floor.
              "obs_enabled_throughput_ratio": 1.125,
              "obs_disabled_throughput_ratio": 1.225}
    for name, value in {**pinned, **metrics}.items():
        higher_is_better = name.startswith(
            ("adaptive_replan_advantage",
             "cache_hit_rate", "batch_speedup", "columnar_speedup",
             "kernel_speedup", "serving_speedup",
             "serving_cache_hit_rate", "shard_merge_advantage",
             "sharded_join_advantage", "join_order_search_ratio",
             "overload_goodput", "overload_raw_shed",
             "streaming_p95_improvement",
             "obs_enabled_throughput_ratio",
             "obs_disabled_throughput_ratio"))
        if name in pinned:
            value = pinned[name]
        specs[name] = {"value": value, "higher_is_better": higher_is_better}
    BASELINE_PATH.write_text(json.dumps(
        {"tolerance": 0.20, "metrics": specs}, indent=2, sort_keys=True) + "\n")
    print(f"baseline written to {BASELINE_PATH}")


def main(argv: list[str]) -> int:
    print("collecting benchmark metrics (smoke configuration)...")
    metrics, skipped = collect_metrics()
    if "--update" in argv:
        write_baseline(metrics)
        return 0
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    print(f"comparing against {BASELINE_PATH.name} "
          f"(tolerance {baseline.get('tolerance', 0.2):.0%}):")
    failures = compare(metrics, baseline, skipped)
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
