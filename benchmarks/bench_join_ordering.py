"""Join-ordering benchmark: plan quality × search cost per enumerator.

Runs the three :class:`~repro.optimizer.pipeline.JoinOrderEnumerator`
implementations over the paper's Fig. 16 queries and the synthetic
many-join workload (:func:`repro.workloads.many_join_catalog` /
:func:`~repro.workloads.many_join_query`), reporting two axes:

* **plan quality** — the chosen plan's estimated cost under the default
  PYRO-O order strategy;
* **search cost** — optimizer goals examined and stage-2 enumerator
  wall time, measured under the exhaustive PYRO-E order strategy, where
  a multi-attribute join goal costs its full permutation fan-out.  The
  paper's PYRO-O already caps that fan-out with favorable orders, so
  PYRO-E is where committing to one join order up front pays: on the
  many-join workload the as-written five-attribute bridge join explodes
  into 120 interesting orders while the Simpli-Squared left-deep
  rewrite never sorts on more than two attributes.  The regression gate
  holds the exhaustive/simpli-squared goal ratio at ≥ 5x.

Two modes, like the other benches:

* ``pytest benchmarks/bench_join_ordering.py`` — full run with the
  shared results sink;
* ``python benchmarks/bench_join_ordering.py [--smoke]`` — standalone
  script (CI's fast smoke job), no pytest required.
"""

from __future__ import annotations

import sys

from repro.bench import format_table
from repro.optimizer import Optimizer
from repro.workloads import many_join_catalog, many_join_query

ENUMERATOR_NAMES = ("exhaustive", "simpli-squared", "greedy-m2m")

#: The regression bar: simpli-squared must search at least this many
#: times fewer goals than exhaustive on the many-join workload.
SEARCH_RATIO_BAR = 5.0


def _bench_cases(include_fig16: bool = True):
    cases = []
    if include_fig16:
        from bench_plan_cache import bench_cases
        cases.extend(bench_cases())
    cases.append(("many_join", many_join_catalog(), many_join_query()))
    return cases


# -- plan quality ------------------------------------------------------------------------
def run_plan_quality_benchmark(include_fig16: bool = True):
    """Chosen-plan cost per (query, enumerator) under default PYRO-O.

    Returns (table rows, exhaustive cost per query).  The exhaustive
    costs are the bit-identical pre-pipeline plans — ``check_regression``
    gates them against ``BENCH_baseline.json``.
    """
    rows = []
    exhaustive_costs: dict[str, float] = {}
    for name, catalog, query in _bench_cases(include_fig16):
        costs = {}
        for enum in ENUMERATOR_NAMES:
            optimizer = Optimizer(catalog, join_enumerator=enum)
            costs[enum] = optimizer.optimize(query).total_cost
        exhaustive_costs[name] = costs["exhaustive"]
        rows.append([name] + [round(costs[e], 1) for e in ENUMERATOR_NAMES]
                    + [f"{costs['exhaustive'] / costs['simpli-squared']:.3f}",
                       f"{costs['exhaustive'] / costs['greedy-m2m']:.3f}"])
    return rows, exhaustive_costs


# -- search cost -------------------------------------------------------------------------
def run_search_cost_benchmark():
    """Goals examined + enumerator time per enumerator on the many-join
    workload under PYRO-E (exhaustive interesting orders).

    Returns (table rows, metrics dict); asserts the ≥ 5x search-effort
    bar and that the reordering enumerators never produce a *worse*
    plan on this workload.
    """
    catalog, query = many_join_catalog(), many_join_query()
    rows = []
    goals: dict[str, int] = {}
    costs: dict[str, float] = {}
    for enum in ENUMERATOR_NAMES:
        optimizer = Optimizer(catalog, strategy="pyro-e",
                              join_enumerator=enum)
        plan = optimizer.optimize(query)
        telemetry = optimizer.last_telemetry
        goals[enum] = int(telemetry["goals_examined"])
        costs[enum] = plan.total_cost
        rows.append([enum, goals[enum],
                     int(telemetry["goals_pruned"]),
                     int(telemetry["join_order_candidates"]),
                     round(telemetry["enumerator_seconds"] * 1e3, 3),
                     round(plan.total_cost, 1)])
    ratio = goals["exhaustive"] / max(1, goals["simpli-squared"])
    assert ratio >= SEARCH_RATIO_BAR, (
        f"simpli-squared searched only {ratio:.2f}x fewer goals than "
        f"exhaustive on the many-join workload (bar: {SEARCH_RATIO_BAR}x)")
    for enum in ("simpli-squared", "greedy-m2m"):
        assert costs[enum] <= costs["exhaustive"] * 1.001, (
            f"{enum} chose a worse plan than as-written on many_join: "
            f"{costs[enum]} vs {costs['exhaustive']}")
    metrics = {
        "join_order_search_ratio": round(ratio, 3),
        "join_order_goals_exhaustive": float(goals["exhaustive"]),
        "join_order_goals_simpli": float(goals["simpli-squared"]),
    }
    return rows, metrics


QUALITY_HEADERS = (["query"] + [f"cost ({e})" for e in ENUMERATOR_NAMES]
                   + ["exh/simpli", "exh/greedy"])
SEARCH_HEADERS = ["enumerator", "goals examined", "goals pruned",
                  "candidates", "enumerator ms", "plan cost"]


# -- pytest entry points -----------------------------------------------------------------
def test_join_order_plan_quality(benchmark, results_sink):
    rows, exhaustive_costs = benchmark.pedantic(
        run_plan_quality_benchmark, rounds=1, iterations=1)
    assert set(exhaustive_costs) == {"Q3", "Q4", "Q5", "Q6", "many_join"}
    results_sink(format_table(
        QUALITY_HEADERS, rows,
        title=("Join ordering — plan cost per enumerator "
               "(PYRO-O, Fig. 16 queries + many-join workload)")))
    benchmark.extra_info["join_order_quality"] = rows


def test_join_order_search_cost(benchmark, results_sink):
    rows, metrics = benchmark.pedantic(
        run_search_cost_benchmark, rounds=1, iterations=1)
    assert metrics["join_order_search_ratio"] >= SEARCH_RATIO_BAR
    results_sink(format_table(
        SEARCH_HEADERS, rows,
        title=("Join ordering — search cost per enumerator "
               "(PYRO-E, many-join workload)")))
    benchmark.extra_info["join_order_search"] = metrics


# -- standalone / CI smoke ---------------------------------------------------------------
def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    quality_rows, _ = run_plan_quality_benchmark(include_fig16=not smoke)
    print(format_table(QUALITY_HEADERS, quality_rows,
                       title="Join ordering — plan quality (PYRO-O)"))
    print()
    search_rows, metrics = run_search_cost_benchmark()
    print(format_table(SEARCH_HEADERS, search_rows,
                       title="Join ordering — search cost (PYRO-E, many-join)"))
    print(f"\nsearch ratio exhaustive/simpli-squared: "
          f"{metrics['join_order_search_ratio']:.2f}x (bar {SEARCH_RATIO_BAR}x)")
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
