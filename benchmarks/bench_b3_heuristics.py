"""Experiment B3 / Figure 15 — normalized plan cost of the heuristics.

PYRO (arbitrary), PYRO-O− (no partial sort), PYRO-P (PostgreSQL
heuristic), PYRO-O and PYRO-E (exhaustive) on Queries 3–6, normalized to
PYRO-E = 100 (the paper's y-axis).  Expected shape:

* PYRO-E = PYRO-O = 100 everywhere (the paper found PYRO-O optimal);
* Q3/Q4: few join attributes → PYRO-P near-optimal (paper's remark);
* Q5/Q6: PYRO-P suffers from arbitrary secondary orders;
* PYRO and PYRO-O− clearly worst.
"""

import pytest

from repro.bench import format_table, normalize
from repro.optimizer import Optimizer
from repro.storage import SystemParameters
from repro.workloads import (
    query4,
    query5,
    query6,
    r_tables_stats_catalog,
    trading_stats_catalog,
)

STRATEGIES = ["pyro", "pyro-o-", "pyro-p", "pyro-o", "pyro-e"]


def _queries(tpch_paper_stats, query3):
    trading = trading_stats_catalog()
    return {
        "Q3": (tpch_paper_stats, query3),
        "Q4": (r_tables_stats_catalog(
            params=SystemParameters(sort_memory_blocks=250)), query4()),
        "Q5": (trading, query5()),
        "Q6": (trading, query6()),
    }


@pytest.fixture(scope="module")
def all_costs(tpch_paper_stats, query3):
    table = {}
    for qname, (cat, query) in _queries(tpch_paper_stats, query3).items():
        costs = {}
        for strategy in STRATEGIES:
            opt = Optimizer(cat, strategy=strategy, enable_hash_join=False,
                            enable_hash_aggregate=False)
            # Phase-2 refinement is part of the paper's contribution: it
            # runs in PYRO-O/PYRO-O−, not in the baseline strategies.
            refine = strategy in ("pyro-o", "pyro-o-")
            costs[strategy] = opt.optimize(query, refine=refine).total_cost
        table[qname] = costs
    return table


def test_fig15_normalized_costs(benchmark, all_costs, tpch_paper_stats,
                                query3, results_sink):
    benchmark.pedantic(
        lambda: Optimizer(tpch_paper_stats, strategy="pyro-o",
                          enable_hash_join=False,
                          enable_hash_aggregate=False).optimize(query3),
        rounds=3, iterations=1)

    rows = []
    for qname, costs in all_costs.items():
        norm = normalize(costs, "pyro-e")
        rows.append([qname] + [round(norm[s], 1) for s in STRATEGIES])

        # PYRO-E is the reference optimum; nothing may beat it.
        for s in STRATEGIES:
            assert costs["pyro-e"] <= costs[s] * (1 + 1e-9), (qname, s)
        # The paper found PYRO-O optimal on all four queries.
        assert norm["pyro-o"] <= 101.0, (qname, norm["pyro-o"])
        if qname == "Q4":
            # Q4 is the double FULL OUTER join: since a full outer merge
            # join guarantees no output order (NULL-padded left keys),
            # no order crosses the joins and the permutation choice is
            # cost-neutral — every strategy lands on the same plan cost.
            assert norm["pyro"] == pytest.approx(100.0, rel=1e-6)
        else:
            # PYRO (arbitrary) is the clear loser.
            assert norm["pyro"] >= 150.0, (qname, norm["pyro"])

    # Q3/Q4: few attributes → the Postgres heuristic is close to optimal.
    q3n = normalize(all_costs["Q3"], "pyro-e")
    assert q3n["pyro-p"] <= 110.0
    # Q5/Q6: arbitrary secondary orders hurt PYRO-P (paper's point).
    q6n = normalize(all_costs["Q6"], "pyro-e")
    assert q6n["pyro-p"] >= 150.0

    results_sink(format_table(
        ["query"] + STRATEGIES, rows,
        title=("Figure 15 — Experiment B3: normalized estimated plan cost "
               "(PYRO-E = 100)")))
    benchmark.extra_info["fig15"] = {q: {s: round(v, 1) for s, v in
                                         normalize(c, 'pyro-e').items()}
                                     for q, c in all_costs.items()}


def test_fig15_partial_sort_matters(all_costs, benchmark):
    """PYRO-O vs PYRO-O−: partial sort enforcers are the larger share of
    the benefit on Q3 (the covering indexes supply prefixes)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    q3 = all_costs["Q3"]
    assert q3["pyro-o-"] >= q3["pyro-o"] * 1.5
