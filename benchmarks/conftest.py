"""Shared benchmark fixtures: cached catalogs and a results sink.

Every benchmark prints a paper-style table *and* appends it to
``results/benchmarks.txt``, so the regenerated figures survive pytest's
output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_sink():
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "benchmarks.txt"
    handle = path.open("a")

    def write(text: str) -> None:
        print("\n" + text)
        handle.write(text + "\n\n")
        handle.flush()

    yield write
    handle.close()


@pytest.fixture(scope="session")
def tpch_exec_catalog():
    """Materialised TPC-H-like catalog for execution experiments.

    Scale 1/200 of the paper's SF1 (30K lineitem rows) keeps wall time
    in seconds while preserving the lineitem:partsupp ratio.
    """
    from repro.storage import SystemParameters
    from repro.workloads import (
        add_query1_indexes,
        add_query2_indexes,
        add_query3_indexes,
        tpch_catalog,
    )
    # 64 KB of sort memory: external effects appear at this scale.
    params = SystemParameters(block_size=4096, sort_memory_blocks=16)
    cat = tpch_catalog(scale=0.005, seed=7, params=params)
    add_query1_indexes(cat)
    add_query2_indexes(cat)
    add_query3_indexes(cat)
    return cat


@pytest.fixture(scope="session")
def tpch_paper_stats():
    """Stats-only TPC-H at the paper's full scale (optimizer experiments)."""
    from repro.workloads import add_query3_indexes, tpch_stats_catalog
    cat = tpch_stats_catalog()
    add_query3_indexes(cat)
    return cat


@pytest.fixture(scope="session")
def r_tables_exec_catalog():
    """Materialised R1..R3 for Query 4 execution (scaled from 100K rows)."""
    from repro.storage import SystemParameters
    from repro.workloads import identical_r_tables
    params = SystemParameters(block_size=4096, sort_memory_blocks=16)
    return identical_r_tables(num_rows=20_000, params=params)


@pytest.fixture(scope="session")
def query3():
    from repro.expr import col
    from repro.expr.aggregates import agg_sum
    from repro.logical import Query
    return (Query.table("partsupp")
            .join("lineitem", on=[("ps_suppkey", "l_suppkey"),
                                  ("ps_partkey", "l_partkey")])
            .where(col("l_linestatus").eq("O"))
            .group_by(["ps_availqty", "ps_partkey", "ps_suppkey"],
                      agg_sum(col("l_quantity"), "sum_qty"))
            .having(col("sum_qty").gt(col("ps_availqty")))
            .select("ps_suppkey", "ps_partkey", "ps_availqty", "sum_qty")
            .order_by("ps_partkey"))
