"""§6.3 — plan-refinement overhead and PathOrder performance.

The paper: "The plan-refinement algorithm was tested with trees up to 31
nodes (joins) and 10 attributes per node … less than 6 ms even for the
tree with 31 nodes."  We time the same instance sizes.
"""

import random

import pytest

from repro.bench import format_table, measure
from repro.core.path_order import path_order
from repro.core.tree_approx import OrderTreeNode, approximate_tree_orders

ATTRS = [f"x{i}" for i in range(10)]


def build_balanced_tree(n_nodes: int, attrs_per_node: int = 10,
                        seed: int = 17) -> OrderTreeNode:
    rng = random.Random(seed)
    nodes = [OrderTreeNode(0, frozenset(rng.sample(ATTRS, attrs_per_node)))]
    for i in range(1, n_nodes):
        node = OrderTreeNode(i, frozenset(rng.sample(ATTRS, attrs_per_node)))
        nodes[(i - 1) // 2].children.append(node)
        nodes.append(node)
    return nodes[0]


def test_refinement_31_nodes_under_budget(benchmark, results_sink):
    """31 joins × 10 attributes: the paper reports < 6 ms; we allow a
    generous interpreted-Python budget of 50 ms."""
    tree = build_balanced_tree(31, 10)
    result = benchmark(lambda: approximate_tree_orders(tree))
    seconds, _ = measure(lambda: approximate_tree_orders(tree))
    assert seconds < 0.050, f"{seconds*1000:.1f} ms"

    rows = []
    for n in (7, 15, 31, 63):
        t = build_balanced_tree(n, 10)
        secs, res = measure(lambda: approximate_tree_orders(t))
        rows.append([n, round(secs * 1000, 3), res.benefit])
    results_sink(format_table(
        ["tree nodes", "2-approx time ms", "achieved benefit"],
        rows,
        title="§6.3 — plan-refinement (2-approximation) overhead "
              "(paper: <6 ms at 31 nodes)"))


def test_path_order_dp_scales(benchmark, results_sink):
    """PathOrder on a 31-node path with 10-attribute sets (the shape a
    left-deep 31-join plan produces)."""
    rng = random.Random(3)
    sets = [frozenset(rng.sample(ATTRS, 10)) for _ in range(31)]
    result = benchmark(lambda: path_order(sets))
    assert result.benefit >= 0
    rows = []
    for n in (7, 15, 31):
        s = [frozenset(rng.sample(ATTRS, 10)) for _ in range(n)]
        secs, res = measure(lambda: path_order(s))
        rows.append([n, round(secs * 1000, 3), res.benefit])
    results_sink(format_table(
        ["path nodes", "PathOrder DP ms", "benefit"],
        rows, title="PathOrder DP timing"))


def test_fig3_worked_example(benchmark, results_sink):
    """Figure 3's tree: the 2-approximation achieves ≥ OPT/2 = 4 of the
    paper's hand-computed optimum 8."""
    from repro.core.tree_approx import build_tree
    tree = build_tree((
        {"a", "b", "c", "d", "e"},
        ({"a", "b", "c", "k"}, {"c", "e", "i", "j"}, {"c", "k", "l", "m"}),
        ({"c", "d"}, {"c", "d", "h", "n"}, {"f", "g", "p", "q"}),
    ))
    res = benchmark(lambda: approximate_tree_orders(tree))
    assert res.benefit >= 4
    results_sink(format_table(
        ["instance", "paper optimum", "2-approx benefit", "bound"],
        [["Figure 3 tree", 8, res.benefit, "≥ 4 (OPT/2)"]],
        title="Figure 3 — order-selection benefit on the worked example"))
