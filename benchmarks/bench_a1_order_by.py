"""Experiment A1 / Figure 7 — ORDER BY lineitem (l_suppkey, l_partkey).

A covering index supplies the (l_suppkey) prefix.  The systems in the
paper ignored it (their sort took as long as sorting on the reversed
column list); MRS exploits it and runs 3–4× faster.  We reproduce the
comparison as: the same plan with the sort enforcer forced to SRS
("Default Sort") vs MRS ("Exploiting Partial Sort").
"""

import pytest

from repro.bench import format_table, run_plan, speedup
from repro.core.sort_order import SortOrder
from repro.engine import CoveringIndexScan, Sort


def _plans(catalog):
    index = next(ix for ix in catalog.indexes_of("lineitem")
                 if ix.name == "li_suppkey_cov")
    target = SortOrder(["l_suppkey", "l_partkey"])
    default = Sort(CoveringIndexScan(index), target, algorithm="srs")
    partial = Sort(CoveringIndexScan(index), target, algorithm="mrs",
                   known_prefix=SortOrder(["l_suppkey"]))
    return default, partial


def test_fig7_partial_sort_speedup(benchmark, tpch_exec_catalog, results_sink):
    default, partial = _plans(tpch_exec_catalog)

    srs = run_plan(default, tpch_exec_catalog, "Default Sort (SRS)")
    mrs = benchmark.pedantic(
        lambda: run_plan(partial, tpch_exec_catalog, "Partial Sort (MRS)"),
        rounds=3, iterations=1)

    assert srs.rows == mrs.rows > 0
    # Paper: MRS 3–4× faster; require at least 2× on the combined metric.
    gain = speedup(srs, mrs)
    assert gain >= 2.0, f"MRS only {gain:.2f}x better"
    assert mrs.blocks_written == 0          # no run I/O at all
    assert srs.blocks_written > 0           # SRS spilled runs
    assert mrs.comparisons < srs.comparisons

    results_sink(format_table(
        ["variant", "rows", "cost units", "blocks r+w", "comparisons",
         "wall s"],
        [[r.label, r.rows, r.cost_units, r.total_blocks, r.comparisons,
          r.wall_seconds] for r in (srs, mrs)],
        title=(f"Figure 7 — Experiment A1: ORDER BY lineitem"
               f"(l_suppkey, l_partkey); MRS speedup {gain:.1f}x "
               f"(paper: 3-4x)")))
    benchmark.extra_info["speedup_cost_units"] = round(gain, 2)


def test_fig7_column_order_insensitivity_of_srs(tpch_exec_catalog, benchmark,
                                                results_sink):
    """Paper's control: on the evaluated systems, sorting on (suppkey,
    partkey) took the same time as (partkey, suppkey) — i.e. SRS gains
    nothing from the index prefix."""
    index = next(ix for ix in tpch_exec_catalog.indexes_of("lineitem")
                 if ix.name == "li_suppkey_cov")
    forward = Sort(CoveringIndexScan(index),
                   SortOrder(["l_suppkey", "l_partkey"]), algorithm="srs")
    reversed_ = Sort(CoveringIndexScan(index),
                     SortOrder(["l_partkey", "l_suppkey"]), algorithm="srs")
    a = benchmark.pedantic(lambda: run_plan(forward, tpch_exec_catalog,
                                            "SRS (s,p)"), rounds=3, iterations=1)
    b = run_plan(reversed_, tpch_exec_catalog, "SRS (p,s)")
    ratio = a.cost_units / b.cost_units
    assert 0.5 <= ratio <= 2.0, "SRS should not benefit from the prefix"
    results_sink(format_table(
        ["variant", "cost units", "blocks r+w"],
        [[r.label, r.cost_units, r.total_blocks] for r in (a, b)],
        title="Experiment A1 control: SRS indifferent to column order"))
