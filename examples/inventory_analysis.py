"""The paper's Query 3: parts running out of stock (Experiment B1).

Demonstrates the cost-based choice of interesting orders: the covering
indexes favour (suppkey, partkey); the clustering index favours
(partkey, suppkey); the ORDER BY favours partkey-first.  The optimizer
must weigh all three — and lands on the paper's Figure 10(b) plan.

Run:  python examples/inventory_analysis.py
"""

from repro.bench import format_table, postgres_default_q3, pyro_o_q3, run_plan
from repro.expr import col
from repro.expr.aggregates import agg_sum
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.storage import SystemParameters
from repro.workloads import add_query3_indexes, tpch_catalog, tpch_stats_catalog


def query3() -> Query:
    return (Query.table("partsupp")
            .join("lineitem", on=[("ps_suppkey", "l_suppkey"),
                                  ("ps_partkey", "l_partkey")])
            .where(col("l_linestatus").eq("O"))
            .group_by(["ps_availqty", "ps_partkey", "ps_suppkey"],
                      agg_sum(col("l_quantity"), "sum_qty"))
            .having(col("sum_qty").gt(col("ps_availqty")))
            .select("ps_suppkey", "ps_partkey", "ps_availqty", "sum_qty")
            .order_by("ps_partkey"))


def main() -> None:
    # Optimizer study at TPC-H scale factor 1 (stats only).
    stats = tpch_stats_catalog()
    add_query3_indexes(stats)
    plan = Optimizer(stats, strategy="pyro-o", enable_hash_join=False,
                     enable_hash_aggregate=False).optimize(query3())
    print("Query 3 plan chosen at TPC-H SF1 (paper Figure 10b):")
    print(plan.explain())

    # Execute both the PostgreSQL-default shape and the PYRO-O shape on
    # materialised data and compare.  Sort memory is scaled down with the
    # data (64 KB) so the full sort of the lineitem index goes external,
    # as it does at the paper's scale.
    params = SystemParameters(block_size=4096, sort_memory_blocks=16)
    exec_cat = tpch_catalog(scale=0.005, seed=7, params=params)
    add_query3_indexes(exec_cat)
    default = run_plan(postgres_default_q3(exec_cat), exec_cat,
                       "PostgreSQL default (full sorts + hash agg)")
    ours = run_plan(pyro_o_q3(exec_cat), exec_cat,
                    "PYRO-O (partial sorts + group agg)")
    print()
    print(format_table(
        ["plan", "rows", "cost units", "blocks", "comparisons", "wall s"],
        [[r.label, r.rows, r.cost_units, r.total_blocks, r.comparisons,
          r.wall_seconds] for r in (default, ours)],
        title="Query 3 executed at 1/200 scale"))
    print(f"\nSpeedup (cost units): "
          f"{default.cost_units / ours.cost_units:.2f}x "
          f"(paper Fig. 12: ~3x on PostgreSQL)")


if __name__ == "__main__":
    main()
