"""Queries 5 and 6: the financial-trading workload of Experiment B3.

Query 5 — executed value per order — is a five-attribute self-join where
the PostgreSQL-style heuristic has 5 candidate orders but picks the
secondary attributes arbitrarily; the clustering index on
(userid, basketid, parentorderid) rewards a three-deep prefix match
only PYRO-O finds.

Run:  python examples/trading_analytics.py
"""

from repro.bench import format_table, normalize
from repro.engine import ExecutionContext
from repro.optimizer import Optimizer
from repro.workloads import query5, query6, trading_catalog, trading_stats_catalog

STRATEGIES = ["pyro", "pyro-o-", "pyro-p", "pyro-o", "pyro-e"]


def main() -> None:
    stats = trading_stats_catalog()
    print("Normalized estimated plan costs (PYRO-E = 100), paper Figure 15:\n")
    rows = []
    for name, q in (("Q5 executed value", query5()),
                    ("Q6 basket analytics", query6())):
        costs = {}
        for s in STRATEGIES:
            refine = s in ("pyro-o", "pyro-o-")
            opt = Optimizer(stats, strategy=s, enable_hash_join=False,
                            enable_hash_aggregate=False)
            costs[s] = opt.optimize(q, refine=refine).total_cost
        norm = normalize(costs, "pyro-e")
        rows.append([name] + [round(norm[s], 1) for s in STRATEGIES])
    print(format_table(["query"] + STRATEGIES, rows))

    print("\nPYRO-O's Query 5 plan (10M-row TRAN, stats-only):")
    plan = Optimizer(stats, strategy="pyro-o", enable_hash_join=False,
                     enable_hash_aggregate=False).optimize(query5())
    print(plan.explain())

    # Execute Query 5 end-to-end on a materialised scaled catalog.
    exec_cat = trading_catalog(scale=0.01)
    plan = Optimizer(exec_cat, strategy="pyro-o").optimize(query5())
    ctx = ExecutionContext(exec_cat)
    rows = plan.execute(exec_cat, ctx)
    print(f"\nExecuted Query 5 at 1/100 scale: {len(rows)} orders, "
          f"{ctx.io.total_blocks} block I/Os.")
    print("Sample:", rows[:2])


if __name__ == "__main__":
    main()
