"""Serving-layer quickstart: prepared queries and the plan cache.

A production system does not re-optimize a query it has seen before.
This example builds a small catalog, opens a :class:`QuerySession`,
prepares a *parameterized* query once, executes it for several bindings
(one optimization, many executions), and then shows the cache being
invalidated when table statistics are refreshed.

Run:  python examples/serving_quickstart.py
"""

import random

from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.service import QuerySession
from repro.storage import Catalog, Schema


def build_catalog() -> Catalog:
    catalog = Catalog()
    orders = Schema.of(
        ("o_id", "int", 8), ("o_customer", "int", 8),
        ("o_region", "str", 12), ("o_total", "num", 8))
    items = Schema.of(
        ("i_order", "int", 8), ("i_product", "int", 8),
        ("i_qty", "int", 8), ("i_price", "num", 8))

    rng = random.Random(2026)
    order_rows = [(i, rng.randrange(200), f"region{rng.randrange(8)}",
                   round(rng.uniform(10, 900), 2)) for i in range(5_000)]
    item_rows = [(rng.randrange(5_000), rng.randrange(300),
                  rng.randrange(1, 9), round(rng.uniform(1, 80), 2))
                 for _ in range(20_000)]

    catalog.create_table("orders", orders, rows=order_rows,
                         clustering_order=SortOrder(["o_id"]),
                         primary_key=["o_id"])
    catalog.create_table("items", items, rows=item_rows,
                         clustering_order=SortOrder(["i_order"]))
    catalog.create_index("items_order_cov", "items", SortOrder(["i_order"]),
                         included=["i_product", "i_qty", "i_price"])
    return catalog


def main() -> None:
    catalog = build_catalog()
    session = QuerySession(catalog, strategy="pyro-o")

    # Revenue per order for ONE region — the region is a parameter, so a
    # single cached plan serves every region.
    template = (Query.table("orders")
                .where(col("o_region").eq(param("region")))
                .join("items", on=[("o_id", "i_order")])
                .compute(line_value=col("i_qty") * col("i_price"))
                .group_by(["o_id", "o_region"],
                          count_star("n_lines"),
                          agg_sum(col("line_value"), "order_value"))
                .order_by("o_id"))

    prepared = session.prepare(template)
    print("Prepared plan (optimized once):")
    print(prepared.explain())

    for region in ("region0", "region3", "region7"):
        rows = prepared.execute(region=region)
        print(f"  {region}: {len(rows)} orders")

    # The same template prepared again is served from the cache — no
    # optimizer call, observable on the counters.
    again = session.prepare(template)
    print(f"\nSecond prepare from_cache={again.from_cache}")
    print(f"optimizations={session.metrics.optimizations}, "
          f"cache hits={session.cache.stats.hits}, "
          f"hit rate={session.cache.stats.hit_rate:.2f}, "
          f"optimize seconds={session.metrics.optimize_seconds:.4f}")

    # Execution knobs: the engine is batch-vectorized, and full table
    # scans can be fanned out into contiguous shards.  Answers are
    # identical; only execution granularity changes.
    serial = prepared.execute(region="region3")
    sharded = prepared.execute(region="region3", parallelism=4,
                               batch_size=2048)
    print(f"\nSharded execution matches serial: {serial == sharded} "
          f"(parallelism=4, batch_size=2048)")

    # Statistics refresh → version bump → the cached plan is stale and
    # the next prepare re-optimizes against the new statistics.  The
    # cache keys plans on the versions of the tables they *reference*,
    # so only plans reading "items" are invalidated.
    catalog.refresh_stats("items")
    refreshed = session.prepare(template)
    print(f"\nAfter stats refresh: from_cache={refreshed.from_cache}, "
          f"invalidations={session.cache.stats.invalidations}, "
          f"optimizations={session.metrics.optimizations}")

    print("\nSession stats():")
    for key, value in session.stats().items():
        print(f"  {key} = {value}")


if __name__ == "__main__":
    main()
