"""Query-server quickstart: concurrent clients, admission control, and
the process-pool backend.

The :class:`QuerySession` quickstart shows one caller preparing and
executing queries; this one shows the tier above it — a
:class:`QueryServer` absorbing traffic from many concurrent clients:

* asyncio clients ``await server.submit(...)``; plain threads call
  ``server.execute(...)`` — both funnel into one admission-controlled
  dispatch pool;
* every dispatch thread's session shares **one** cross-session plan
  cache, so a query optimized for any client is served from cache to
  all of them;
* the **process-pool backend** ships the per-shard subplans the
  optimizer placed under a MergeExchange to worker processes — the one
  execution mode where the sharded enforcers use multiple cores — and
  streams each shard's rows back batch-at-a-time, so the serving-side
  merge starts before the slowest shard finishes;
* when the server sheds load it answers with a ``retry_after`` hint,
  and :class:`RetryingClient` honours it — jittered backoff instead of
  a resubmit storm.

Run:  python examples/server_quickstart.py
"""

import asyncio
import random
import threading

from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.service import QueryServer, RetryingClient, RetryPolicy
from repro.storage import Catalog, Schema, SystemParameters


def build_catalog() -> Catalog:
    rng = random.Random(2026)
    catalog = Catalog(SystemParameters(sort_memory_blocks=60))
    trades = Schema.of(
        ("symbol", "int", 8), ("ts", "int", 8),
        ("qty", "int", 8), ("note", "str", 64))
    rows = [(rng.randrange(64), rng.randrange(10_000),
             rng.randrange(1, 500), f"n{rng.randrange(1000)}")
            for _ in range(6_000)]
    catalog.create_table("trades", trades, rows=rows,
                         clustering_order=SortOrder(["symbol"]))
    return catalog


def main() -> None:
    catalog = build_catalog()

    # ORDER BY off the clustering order: at parallelism 4 the optimizer
    # places per-shard sorts under a MergeExchange, and the process
    # backend runs each shard in its own worker process.
    report = Query.table("trades").order_by("ts", "symbol", "qty", "note")
    by_symbol = (Query.table("trades")
                 .where(col("qty").ge(param("min_qty")))
                 .group_by(["symbol"], count_star("trades"),
                           agg_sum(col("qty"), "volume"))
                 .order_by("symbol"))

    with QueryServer(catalog, backend="process", parallelism=4,
                     max_inflight=4, queue_limit=64,
                     pool_workers=2) as server:
        print("Serving with:", server.backend.describe())

        async def async_client(i: int) -> int:
            result = await server.submit(by_symbol, min_qty=50 + i % 3)
            return len(result.rows)

        async def fan_out() -> list[int]:
            return await asyncio.gather(*[async_client(i) for i in range(8)])

        sizes = asyncio.run(fan_out())
        print(f"8 async clients served; result sizes {sorted(set(sizes))}")

        # Threads use the sync facade against the same server.
        def thread_client() -> None:
            result = server.execute(report)
            assert result.rows == sorted(
                result.rows, key=lambda r: (r[1], r[0], r[2], r[3]))

        threads = [threading.Thread(target=thread_client) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        print("3 thread clients served the full sorted report")

        # A cooperative client: same queries, but admission rejections
        # and timeouts are retried with jittered backoff honouring the
        # server's retry_after hints, under a shared rate limit.
        client = RetryingClient(
            server,
            RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.5,
                        rate_limit=200.0, burst=4),
            tenant="quickstart")

        async def cooperative(i: int) -> int:
            result = await client.submit(by_symbol, min_qty=50 + i % 3)
            return len(result.rows)

        async def cooperative_fan_out() -> list[int]:
            return await asyncio.gather(
                *[cooperative(i) for i in range(12)])

        asyncio.run(cooperative_fan_out())
        print(f"RetryingClient round trip: {client.stats()}")

        print("\nServer stats():")
        stats = server.stats()
        for key in ("submitted", "completed", "rejected_queue_full",
                    "rejected_quota", "rejected_circuit", "timeouts",
                    "circuit_state", "streamed_queries", "streamed_chunks",
                    "subplan_cache_hits", "cache_hits", "cache_misses",
                    "sessions", "shard_merge_plans", "latency_p50_ms",
                    "latency_p95_ms", "worker_utilization"):
            value = stats[key]
            shown = f"{value:.3f}" if isinstance(value, float) else value
            print(f"  {key} = {shown}")
        print("  tenants =", sorted(stats["tenants"]))


if __name__ == "__main__":
    main()
