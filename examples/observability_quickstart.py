"""Observability quickstart: trace a query end to end, read its
EXPLAIN ANALYZE, and scrape the server's metrics.

Runs a small trading workload through a :class:`QueryServer` with
``obs=True`` and shows the three observability surfaces:

* the **span tree** one traced query produces — admission, queue wait,
  the optimizer pipeline's four stages (on the cache miss), bind, and
  execution fanned out over per-shard worker processes whose spans are
  recorded *in the workers* and re-attached to the parent trace;
* **EXPLAIN ANALYZE** — the cost model's per-node row estimates lined
  up against metered actual rows, inclusive per-operator wall time and
  batch counts;
* the **exposition layer** — the same ``stats()`` dict as a Prometheus
  scrape body and a versioned JSON snapshot, plus the slow-query log.

Run:  python examples/observability_quickstart.py
"""

import random

from repro.core.sort_order import SortOrder
from repro.expr import col, param
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.service import ObservabilityConfig, QueryServer
from repro.storage import Catalog, Schema, SystemParameters


def build_catalog() -> Catalog:
    rng = random.Random(2026)
    catalog = Catalog(SystemParameters(sort_memory_blocks=60))
    trades = Schema.of(
        ("symbol", "int", 8), ("ts", "int", 8),
        ("qty", "int", 8), ("note", "str", 64))
    rows = [(rng.randrange(64), rng.randrange(10_000),
             rng.randrange(1, 500), f"n{rng.randrange(1000)}")
            for _ in range(6_000)]
    catalog.create_table("trades", trades, rows=rows,
                         clustering_order=SortOrder(["symbol"]))
    return catalog


def main() -> None:
    catalog = build_catalog()

    # The sort-heavy report: at parallelism 4 the optimizer shards the
    # sort under a MergeExchange, so the trace shows four worker spans
    # and the analyze output marks the shared shard meters.
    report = Query.table("trades").order_by("ts", "symbol", "qty", "note")
    volume = (Query.table("trades")
              .where(col("qty").ge(param("min_qty")))
              .group_by(["symbol"], count_star("n"),
                        agg_sum(col("qty"), "vol"))
              .order_by("symbol"))

    # slow_query_seconds=0 logs every query — handy for a demo; the
    # default 100ms threshold is the production posture.
    obs = ObservabilityConfig(slow_query_seconds=0.0)
    with QueryServer(catalog, backend="process", parallelism=4,
                     max_inflight=4, pool_workers=2, obs=obs) as server:
        cold = server.execute(report)                 # cache miss: plan traced
        warm = server.execute(report)                 # cache hit
        filtered = server.execute(volume, min_qty=250)

        print("=" * 72)
        print(f"cold run: {len(cold.rows)} rows in "
              f"{cold.latency_seconds * 1e3:.1f}ms "
              f"(trace {cold.trace.trace_id})")
        print("=" * 72)
        print(cold.trace.render())

        print("=" * 72)
        print("warm run span tree (cache hit: no optimizer stage spans)")
        print("=" * 72)
        print(warm.trace.render())

        print("=" * 72)
        print("EXPLAIN ANALYZE — parameterized aggregate, min_qty=250")
        print("=" * 72)
        print(filtered.explain_analyze().render())

        print("=" * 72)
        print("Prometheus scrape (excerpt)")
        print("=" * 72)
        for line in server.metrics_text().splitlines():
            if any(key in line for key in (
                    "repro_completed", "repro_latency_seconds_bucket",
                    "repro_latency_seconds_count", "repro_traces_started",
                    "repro_tenant_latency")):
                print(line)

        print("=" * 72)
        print("slow-query log (threshold 0s, so everything lands)")
        print("=" * 72)
        for entry in server.slow_queries():
            print(f"  {entry['latency_seconds'] * 1e3:7.1f}ms "
                  f"backend={entry['backend']} trace={entry['trace_id']} "
                  f"fingerprint={entry['fingerprint'][:12]}...")

        snapshot_bytes = len(server.snapshot())
        print(f"\nJSON snapshot: {snapshot_bytes} bytes, schema_version 1")


if __name__ == "__main__":
    main()
