"""Top-K with early output: the pipelining benefit of MRS (§3.1).

"Producing tuples early has immense benefits for Top-K queries and
situations where the user retrieves only some result tuples."  With the
input clustered on the first ORDER BY column, MRS + LIMIT answers a
top-k query after sorting *one segment*; SRS must consume everything.

Run:  python examples/topk_streaming.py
"""

from repro.bench import format_table
from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext, Limit, Sort, TableScan
from repro.storage import SystemParameters
from repro.workloads import segmented_catalog

NUM_ROWS = 50_000
ROWS_PER_SEGMENT = 50
K = 100


def run(algorithm: str):
    params = SystemParameters(block_size=4096, sort_memory_blocks=64)
    catalog = segmented_catalog(NUM_ROWS, ROWS_PER_SEGMENT, params=params)
    scan = TableScan(catalog.table("r"))
    prefix = SortOrder(["c1"]) if algorithm == "mrs" else SortOrder(())
    sort = Sort(scan, SortOrder(["c1", "c2"]), algorithm=algorithm,
                known_prefix=prefix)
    plan = Limit(sort, K)
    ctx = ExecutionContext(catalog)
    rows = list(plan.execute(ctx))
    return rows, ctx


def main() -> None:
    srs_rows, srs_ctx = run("srs")
    mrs_rows, mrs_ctx = run("mrs")
    assert [r[:2] for r in srs_rows] == [r[:2] for r in mrs_rows]

    print(format_table(
        ["variant", "cost units", "comparisons", "blocks r+w"],
        [["SRS + LIMIT (full sort first)", round(srs_ctx.cost_units(), 2),
          srs_ctx.comparisons.value, srs_ctx.io.total_blocks],
         ["MRS + LIMIT (stops after 2 segments)",
          round(mrs_ctx.cost_units(), 2), mrs_ctx.comparisons.value,
          mrs_ctx.io.total_blocks]],
        title=f"Top-{K} of ORDER BY (c1, c2) over {NUM_ROWS} rows "
              f"clustered on c1"))
    gain = srs_ctx.cost_units() / max(mrs_ctx.cost_units(), 1e-9)
    print(f"\nMRS answers the Top-{K} query {gain:,.0f}x cheaper — it sorts "
          f"only ⌈{K}/{ROWS_PER_SEGMENT}⌉ segments and never touches the "
          f"rest of the input.")


if __name__ == "__main__":
    main()
