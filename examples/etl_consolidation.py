"""Example 1 from the paper: consolidating listings from two catalog
sources (the motivating ETL scenario of Section 3).

Shows the estimated-cost gap between a naive plan and the order-aware
plan at the paper's full 2M-row scale (stats-only), then executes the
optimized plan on a scaled-down materialised catalog.

Run:  python examples/etl_consolidation.py
"""

from repro.engine import ExecutionContext
from repro.optimizer import Optimizer
from repro.workloads import (
    consolidation_catalog,
    consolidation_stats_catalog,
    example1_query,
)


def main() -> None:
    query = example1_query()
    print("Example 1 (paper §3): four-attribute catalog join + rating join,")
    print("ORDER BY seven columns.\n")

    # --- optimizer study at the paper's scale (no data materialised) ----
    stats_cat = consolidation_stats_catalog()
    sort_only = dict(enable_hash_join=False, enable_hash_aggregate=False)
    naive = Optimizer(stats_cat, strategy="pyro", refine=False,
                      **sort_only).optimize(query)
    aware = Optimizer(stats_cat, strategy="pyro-o", **sort_only).optimize(query)
    print(f"Estimated cost, naive orders      : {naive.total_cost:12,.0f}")
    print(f"Estimated cost, favorable orders  : {aware.total_cost:12,.0f}")
    print(f"Improvement: {naive.total_cost / aware.total_cost:.2f}x "
          f"(paper's Figures 1-2: 530,345 -> 290,410 = 1.83x)\n")
    print("Order-aware plan at 2M rows:")
    print(aware.explain())

    # --- execution on scaled data ---------------------------------------
    exec_cat = consolidation_catalog(scale=0.005)
    plan = Optimizer(exec_cat, strategy="pyro-o").optimize(query)
    ctx = ExecutionContext(exec_cat)
    rows = plan.execute(exec_cat, ctx)
    print(f"\nExecuted at 1/200 scale: {len(rows)} result rows, "
          f"{ctx.io.total_blocks} block I/Os, "
          f"{ctx.comparisons.value:,} comparisons.")
    for row in rows[:3]:
        print("  ", row)


if __name__ == "__main__":
    main()
