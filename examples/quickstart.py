"""Quickstart: build a catalog, write a query, optimize, execute.

Run:  python examples/quickstart.py
"""

from repro.core.sort_order import SortOrder
from repro.engine import ExecutionContext
from repro.expr import col
from repro.expr.aggregates import agg_sum, count_star
from repro.logical import Query
from repro.optimizer import Optimizer
from repro.storage import Catalog, Schema


def build_catalog() -> Catalog:
    """A tiny order-management schema, clustered + covered for sorting."""
    catalog = Catalog()
    orders = Schema.of(
        ("o_id", "int", 8), ("o_customer", "int", 8),
        ("o_region", "str", 12), ("o_total", "num", 8))
    items = Schema.of(
        ("i_order", "int", 8), ("i_product", "int", 8),
        ("i_qty", "int", 8), ("i_price", "num", 8))

    import random
    rng = random.Random(2024)
    order_rows = [(i, rng.randrange(200), f"region{rng.randrange(8)}",
                   round(rng.uniform(10, 900), 2)) for i in range(5_000)]
    item_rows = [(rng.randrange(5_000), rng.randrange(300),
                  rng.randrange(1, 9), round(rng.uniform(1, 80), 2))
                 for _ in range(20_000)]

    catalog.create_table("orders", orders, rows=order_rows,
                         clustering_order=SortOrder(["o_id"]),
                         primary_key=["o_id"])
    catalog.create_table("items", items, rows=item_rows,
                         clustering_order=SortOrder(["i_order"]))
    # A covering secondary index: delivers (i_order) order without
    # touching the data pages — the paper's favorite trick.
    catalog.create_index("items_order_cov", "items", SortOrder(["i_order"]),
                         included=["i_product", "i_qty", "i_price"])
    return catalog


def main() -> None:
    catalog = build_catalog()

    # SELECT o_id, o_region, count(*), sum(i_qty * i_price)
    # FROM orders JOIN items ON o_id = i_order
    # GROUP BY o_id, o_region ORDER BY o_id, order_value
    query = (Query.table("orders")
             .join("items", on=[("o_id", "i_order")])
             .compute(line_value=col("i_qty") * col("i_price"))
             .group_by(["o_id", "o_region"],
                       count_star("n_lines"),
                       agg_sum(col("line_value"), "order_value"))
             .order_by("o_id", "order_value"))

    optimizer = Optimizer(catalog, strategy="pyro-o")
    plan = optimizer.optimize(query)

    print("Logical query:")
    print(query.pretty())
    print("\nChosen physical plan (estimated costs in I/O units):")
    print(plan.explain())

    ctx = ExecutionContext(catalog)
    rows = plan.execute(catalog, ctx)
    print(f"\nExecuted: {len(rows)} groups, "
          f"{ctx.io.blocks_read + ctx.io.blocks_written} simulated block I/Os, "
          f"{ctx.comparisons.value} key comparisons.")
    print("First three rows:", rows[:3])

    # The point of the paper: the final ORDER BY (o_id, order_value) is
    # enforced by a *partial* sort (the aggregate already delivers o_id
    # order); an optimizer without partial-sort enforcers re-sorts from
    # scratch.
    naive = Optimizer(catalog, strategy="pyro-o-",
                      refine=False).optimize(query)
    print(f"\nEstimated cost — with partial sort enforcers: "
          f"{plan.total_cost:,.2f} vs without: {naive.total_cost:,.2f}")


if __name__ == "__main__":
    main()
