"""Legacy shim: lets `pip install -e .` / `setup.py develop` work on
environments whose setuptools predates PEP 660 editable installs."""
from setuptools import setup

setup()
