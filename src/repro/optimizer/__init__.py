"""Volcano-style cost-based optimizer with order-aware enforcers,
staged as a pipeline (see :mod:`repro.optimizer.pipeline`)."""

from .cost import CostModel
from .pipeline import (
    ENUMERATORS,
    ExhaustiveEnumerator,
    GreedyManyToManyEnumerator,
    JoinOrderEnumerator,
    OptimizationPipeline,
    SimpliSquaredEnumerator,
    make_enumerator,
)
from .plans import PhysicalPlan, make_plan
from .volcano import Optimizer, OptimizerConfig

__all__ = [
    "CostModel",
    "ENUMERATORS",
    "ExhaustiveEnumerator",
    "GreedyManyToManyEnumerator",
    "JoinOrderEnumerator",
    "OptimizationPipeline",
    "Optimizer",
    "OptimizerConfig",
    "PhysicalPlan",
    "SimpliSquaredEnumerator",
    "make_enumerator",
    "make_plan",
]
