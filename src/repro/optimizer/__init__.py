"""Volcano-style cost-based optimizer with order-aware enforcers."""

from .cost import CostModel
from .plans import PhysicalPlan, make_plan
from .volcano import Optimizer, OptimizerConfig

__all__ = [
    "CostModel",
    "Optimizer",
    "OptimizerConfig",
    "PhysicalPlan",
    "make_plan",
]
