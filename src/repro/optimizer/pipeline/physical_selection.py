"""Stage 3 — physical operator selection.

The cost-based Volcano search that turns one logical tree into the
cheapest physical plan guaranteeing a required sort order: native
candidate generation per logical operator, the paper's (partial) sort
enforcers, shard-aware enforcer/join/aggregate/distinct placement, and
the cost-bounded branch-and-bound memo with Columbia's re-search
discipline.

This is the pre-refactor ``OptimizationRun`` search, moved verbatim so
the default pipeline stays bit-identical: one :class:`PhysicalSelection`
instance searches one candidate join tree (stage 2 may produce several;
the pipeline driver in :mod:`repro.optimizer.volcano` runs one search
per candidate and keeps the cheapest plan).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ...core.favorable import FavorableOrders
from ...core.interesting import OrderContext, OrderStrategy
from ...core.sort_order import (
    AttributeEquivalence,
    EMPTY_ORDER,
    SortOrder,
    longest_common_prefix,
)
from ...engine.aggregates import combinable
from ...engine.exchange import ORDER_PRESERVING_UNARY_OPS
from ...engine.scans import range_shardable, shardable
from ...expr.expressions import JoinPredicate
from ...logical.algebra import (
    Annotator,
    BaseRelation,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Limit,
    LogicalExpr,
    OrderBy,
    Project,
    Select,
    Union,
)
from ...logical.fds import FDSet, query_fds
from ...storage.catalog import Catalog
from ...storage.schema import Schema
from ...storage.statistics import StatsView
from ..cost import CostModel, prefer_sharded
from ..plans import PhysicalPlan, make_plan
from .pre_check import OptimizerConfig

#: Plan ops transparent to sharding — the engine's order-preserving
#: per-row unaries, by name (single source of truth: engine/exchange.py).
SHARD_TRANSPARENT_OPS = ORDER_PRESERVING_UNARY_OPS
_SHARDABLE_SCAN_OPS = ("TableScan", "ClusteringIndexScan")


def enforcement_chain_scan(plan: PhysicalPlan) -> Optional[PhysicalPlan]:
    """The scan under a chain of per-row, order-preserving unaries, or
    ``None`` when *plan* is not such a chain.  Sharded execution of a
    chain over one shardable scan provably partitions the unsharded
    stream — the shape every below-the-exchange placement builds on."""
    node = plan
    while node.op in SHARD_TRANSPARENT_OPS and len(node.children) == 1:
        node = node.children[0]
    return node if node.op in _SHARDABLE_SCAN_OPS else None


def shardable_enforcement_input(plan: PhysicalPlan, catalog: Catalog,
                                parallelism: int) -> bool:
    """Whether *plan* is a shape whose order enforcement can be pushed
    below a shard fan-out — a unary chain over a scan that is either
    contiguously shardable at *parallelism* or range-partitioned.  Shared
    by the search (:meth:`OptimizationRun.enforce`) and the serving
    layer's decision counters, so "a sharded alternative existed" means
    the same thing in both places.
    """
    if parallelism < 2:
        return False
    scan = enforcement_chain_scan(plan)
    if scan is None:
        return False
    table = catalog.table(scan.arg("table"))
    return shardable(table, parallelism) or range_shardable(table)


class _Bound:
    """Mutable upper bound shared between a goal and its candidate
    generator; shrinks as better complete plans are found."""

    __slots__ = ("value",)

    def __init__(self, value: float = math.inf) -> None:
        self.value = value


class PhysicalSelection:
    """State for optimizing a single query (memo, annotations, afm)."""

    def __init__(self, catalog: Catalog, root: LogicalExpr,
                 strategy: OrderStrategy, config: OptimizerConfig) -> None:
        self.catalog = catalog
        self.root = root
        self.config = config
        self.strategy = strategy
        #: Shard fan-out enforcers may exploit (1 = sharding-oblivious).
        self.parallelism = (max(1, config.parallelism)
                            if config.shard_aware_enforcers else 1)
        self.annotator = Annotator(catalog, root)
        #: Whole-query equivalence classes — used for *candidate
        #: generation* (interesting orders) and cost pricing.  Goal
        #: satisfaction must NOT use these: like FDs, an equivalence
        #: established by one union branch's join is invalid in a
        #: name-colliding sibling, so memo keys and enforcement use
        #: :meth:`eq_of` — the classes of the goal's own subtree.
        self.eq = self.annotator.eq
        #: Whole-query FDs — used for *candidate generation* (interesting
        #: orders).  Goal reduction must NOT use these: an FD harvested in
        #: one union branch (``t0_c1 = 28`` makes t0_c1 constant *there*)
        #: is invalid in a sibling branch that shares the column names,
        #: and reducing a sibling's sort goal with it silently drops a
        #: sort column (caught by the plan-parity fuzz suite).  Subgoals
        #: therefore reduce with :meth:`fds_of` — the FDs of their own
        #: subtree only.
        self.fds = query_fds(catalog, root)
        self._fds_cache: dict[LogicalExpr, FDSet] = {root: self.fds}
        self._eq_cache: dict[LogicalExpr, AttributeEquivalence] = {
            root: self.eq}
        self.favorable = FavorableOrders(catalog, self.annotator)
        self.cost_model = CostModel(catalog.params, self.eq)
        self.order_ctx = OrderContext(self.favorable, self.fds, self.eq)
        self._memo: dict[tuple[LogicalExpr, tuple[str, ...]], PhysicalPlan] = {}
        #: Failure memo (Columbia's re-search discipline): goal → largest
        #: budget known infeasible.  ``_failed[key] = L`` is the *exact*
        #: statement "no plan of this goal costs < L": a bounded search
        #: only ever discards candidates costing ≥ its budget, so a
        #: fruitless search at budget L proves it.  Requests at limits
        #: ≤ L are answered ``None`` instantly; a larger budget triggers
        #: a genuine re-search.
        self._failed: dict[tuple[LogicalExpr, tuple[str, ...]], float] = {}
        #: *Distinct* subgoals optimized — the optimization-effort metric
        #: of Fig. 16.  A re-search of a failure-memoised goal at a larger
        #: budget counts in :attr:`goals_researched`, not here.
        self.goals_examined = 0
        #: Subgoals skipped because their cost budget was already exhausted
        #: (budget ≤ 0 or failure-memo hit; see :meth:`optimize_goal`).
        self.goals_pruned = 0
        #: Subgoals answered from the failure memo without a search.
        self.failure_memo_hits = 0
        #: Subgoals answered from the (success) memo without a search.
        self.memo_hits = 0
        #: Bounded searches that came up empty (failure memo entries made).
        self.goals_failed = 0
        #: Re-searches of previously failed goals at larger budgets.
        self.goals_researched = 0

    # -- goal optimization -------------------------------------------------------------
    def optimize_goal(self, expr: LogicalExpr, required: SortOrder,
                      limit: float = math.inf) -> Optional[PhysicalPlan]:
        """Cheapest plan for *expr* guaranteeing *required*.

        *limit* is the branch-and-bound budget handed down by the parent
        goal.  Three ways to skip the search entirely:

        * a memo hit (exact optimum from an earlier search);
        * a budget that is already ≤ 0 — no plan can make the enclosing
          candidate competitive (all costs are non-negative);
        * a failure-memo hit: an earlier *bounded* search at budget
          ``L ≥ limit`` found nothing, proving no plan costs < limit.

        Otherwise the goal is searched with the budget as the initial
        branch-and-bound upper bound.  A search that finds a plan found
        the *exact* optimum (only candidates costing ≥ the shrinking
        bound are ever discarded) and memoises it; a bounded search that
        finds nothing records the exact infeasibility fact
        ``no plan < limit`` in the failure memo and returns ``None`` —
        a later request with a larger budget re-searches (Columbia's
        re-search discipline).  Either way pruning never changes chosen
        plans, only the number of goals examined.
        """
        required = self.fds_of(expr).reduce_order(required)
        # Canonicalize the goal order with *this subtree's* equivalences
        # only: the whole-query classes may equate attributes via a
        # sibling branch's join, and collapsing two genuinely different
        # goals into one memo slot would serve one branch's plan (and
        # its order guarantee) for the other's requirement.
        eq = self.eq_of(expr)
        key = (expr, tuple(eq.canonical(a) for a in required))
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if limit <= 0.0:
            self.goals_pruned += 1
            return None
        failed_at = self._failed.get(key)
        if failed_at is not None and limit <= failed_at:
            self.goals_pruned += 1
            self.failure_memo_hits += 1
            return None
        if failed_at is not None:
            self.goals_researched += 1
        else:
            self.goals_examined += 1

        bound = _Bound(limit if self.config.cost_bound_pruning else math.inf)
        best: Optional[PhysicalPlan] = None
        for candidate in self._native_candidates(expr, required, bound):
            plan = self.enforce(candidate, required, limit=bound.value,
                                fds=self.fds_of(expr), eq=eq)
            if plan is None:
                continue
            if best is None or plan.total_cost < best.total_cost:
                best = plan
                if self.config.cost_bound_pruning:
                    bound.value = best.total_cost
        if best is None:
            if math.isinf(limit):
                raise RuntimeError(
                    f"no plan for {expr.label()} with required order {required}")
            # Exact failure fact: every candidate was discarded against a
            # bound that never dropped below *limit*, so no plan of this
            # goal costs < limit.
            self._failed[key] = max(failed_at or 0.0, limit)
            self.goals_failed += 1
            return None
        self._memo[key] = best
        self._failed.pop(key, None)  # success supersedes any failure marker
        return best

    def fds_of(self, expr: LogicalExpr) -> FDSet:
        """FDs valid on *expr*'s own subtree (memoised per node).

        Only these may reduce a sort goal or a group-column set for
        *expr* — the run-global :attr:`fds` include facts from sibling
        subtrees that need not hold here.
        """
        fds = self._fds_cache.get(expr)
        if fds is None:
            fds = query_fds(self.catalog, expr)
            self._fds_cache[expr] = fds
        return fds

    def eq_of(self, expr: LogicalExpr) -> AttributeEquivalence:
        """Attribute equivalences valid on *expr*'s own subtree (memoised
        per node) — the per-branch soundness check sorted dedup orders
        need; see :meth:`_complete_set_order`."""
        eq = self._eq_cache.get(expr)
        if eq is None:
            eq = Annotator(self.catalog, expr).eq
            self._eq_cache[expr] = eq
        return eq

    # -- enforcers ------------------------------------------------------------------------
    def enforce(self, plan: PhysicalPlan, required: SortOrder,
                limit: float = math.inf,
                fds: Optional[FDSet] = None,
                eq: Optional[AttributeEquivalence] = None
                ) -> Optional[PhysicalPlan]:
        """Add a (partial) sort enforcer if *plan* misses the requirement.

        *fds* and *eq* are the facts valid on the goal's own subtree
        (:meth:`fds_of` / :meth:`eq_of`); both default to the whole-query
        sets for external callers planning single-subtree chains.  The
        subtree scoping matters for requirement *satisfaction*: a
        sibling union branch's join equivalence must neither skip a
        needed sort nor donate a partial-sort prefix the stream does not
        actually have.

        With ``parallelism > 1`` and a shardable input, two enforcer
        placements compete on cost: the classic post-union sort above the
        (future) exchange, and per-shard SRS/MRS enforcers gathered by an
        order-preserving :class:`MergeExchange` — "partitioned +
        per-shard-ordered" is a physical property the merge converts into
        the required global order.  Ties resolve to the simpler
        post-union plan (:func:`~repro.optimizer.cost.prefer_sharded`).

        Returns ``None`` when no enforcer applies — or when the enforced
        plan's total cost reaches *limit*, i.e. it provably cannot beat
        the best alternative already known to the caller.
        """
        if plan.total_cost >= limit:
            return None
        if eq is None:
            eq = self.eq
        target = (fds if fds is not None else self.fds).reduce_order(required)
        if not target or plan.order.satisfies(target, eq):
            return plan
        translated = self._translate_order(target, plan.schema, eq)
        if translated is None:
            return None
        partial_ok = self.config.partial_sort_enforcers
        prefix = longest_common_prefix(translated, plan.order, eq)
        cost = self.cost_model.coe(plan.stats, plan.order, translated,
                                   partial_enabled=partial_ok)
        if self.parallelism > 1:
            # Decide on the (cheap) cost estimates first; the k-shard plan
            # tree is only materialised when a placement actually wins.
            sharded = self._sharded_enforcement(plan, translated, prefix,
                                                partial_ok, cost)
            if sharded is not None:
                return sharded if sharded.total_cost < limit else None
        if plan.total_cost + cost >= limit:
            return None
        if prefix and partial_ok:
            return make_plan("PartialSort", plan.schema, translated, plan.stats,
                             cost, [plan], prefix=prefix, algorithm="mrs")
        return make_plan("Sort", plan.schema, translated, plan.stats, cost,
                         [plan], prefix=EMPTY_ORDER, algorithm="srs")

    # -- per-shard statistics ----------------------------------------------------------
    def _chain_table(self, plan: PhysicalPlan):
        """``(scan node, catalog table)`` under *plan*'s unary chain, or
        ``(None, None)``."""
        scan = enforcement_chain_scan(plan)
        if scan is None:
            return None, None
        return scan, self.catalog.table(scan.arg("table"))

    def _chain_views(self, plan: PhysicalPlan, table,
                     per_table) -> list[StatsView]:
        """Measured per-shard table statistics carried to the chain output
        *plan*: the chain's cumulative selectivity is applied to each
        shard's real row count, and per-shard distinct counts come from
        the measured boundaries — the numbers that drive per-shard
        partial-sort segment counts and spill predictions."""
        total = max(1.0, float(table.stats.num_rows))
        selectivity = min(1.0, plan.stats.N / total)
        subset = set(plan.schema.names) <= set(table.schema.names)
        views = []
        for shard_stats in per_table:
            view = StatsView.of_table(table.schema, shard_stats, self.eq)
            view = view.scaled(selectivity)
            if subset:
                view = view.projected(list(plan.schema.names))
            views.append(view)
        return views

    def _per_shard_views(self, plan: PhysicalPlan,
                         shard_count: int) -> Optional[list[StatsView]]:
        """Real per-shard statistics for a contiguous fan-out of *plan*,
        or ``None`` (stats-only table → uniform ``scaled(1/k)``)."""
        scan, table = self._chain_table(plan)
        if table is None:
            return None
        per_table = table.shard_stats(shard_count)
        if per_table is None:
            return None
        return self._chain_views(plan, table, per_table)

    def _per_partition_views(self, plan: PhysicalPlan) -> Optional[list[StatsView]]:
        """Real per-partition statistics for a range fan-out of *plan*."""
        scan, table = self._chain_table(plan)
        if table is None:
            return None
        per_table = table.partition_stats()
        if per_table is None:
            return None
        return self._chain_views(plan, table, per_table)

    def _uniform_views(self, plan: PhysicalPlan, k: int) -> list[StatsView]:
        return [plan.stats.scaled(1.0 / k) for _ in range(k)]

    # -- shard-aware enforcement ------------------------------------------------------
    def _shard_clone(self, node: PhysicalPlan, shard_count: int,
                     shard_index: int, share: Optional[float] = None,
                     range_table=None) -> PhysicalPlan:
        """One shard's copy of a shardable subtree: the scan leaf becomes
        a ``ShardedScan`` (or ``RangePartitionScan``) and every node
        carries its *share* of the rows and cost, so the k shards together
        cost exactly what the unsharded subtree did — except the scan leaf
        of a *non-contiguous* range partition, which reads the whole table
        and keeps the full scan cost (the real price of range-sharding a
        layout that doesn't match the spec)."""
        if share is None:
            share = 1.0 / shard_count
        stats = node.stats.scaled(share)
        if node.op in _SHARDABLE_SCAN_OPS:
            if range_table is not None:
                leaf_cost = (node.self_cost * share
                             if range_table.partition_contiguous
                             else node.self_cost)
                return make_plan("RangePartitionScan", node.schema, node.order,
                                 stats, leaf_cost, table=node.arg("table"),
                                 partition_index=shard_index,
                                 partition_count=shard_count)
            return make_plan("ShardedScan", node.schema, node.order, stats,
                             node.self_cost * share,
                             table=node.arg("table"),
                             shard_count=shard_count, shard_index=shard_index)
        child = self._shard_clone(node.children[0], shard_count, shard_index,
                                  share, range_table)
        return PhysicalPlan(node.op, node.schema, node.order, stats,
                            node.self_cost * share, (child,), node.args)

    def _sharded_enforcement(self, plan: PhysicalPlan, translated: SortOrder,
                             prefix: SortOrder, partial_ok: bool,
                             post_union_cost: float) -> Optional[PhysicalPlan]:
        """The cheapest below-the-exchange enforcer placement for *plan*
        — contiguous equal shards or declared range partitions, each
        priced with measured per-shard statistics where available — or
        ``None`` when the classic post-union sort wins (ties resolve to
        post-union via :func:`prefer_sharded`)."""
        scan, table = self._chain_table(plan)
        if table is None:
            return None
        post_total = plan.total_cost + post_union_cost
        best_est: Optional[float] = None
        best_build = None
        k = self.parallelism
        if shardable(table, k):
            views = self._per_shard_views(plan, k)
            est = plan.total_cost + self.cost_model.sharded_coe(
                plan.stats, plan.order, translated, k,
                partial_enabled=partial_ok, shard_stats=views)
            best_est = est
            best_build = lambda v=views: self._shard_enforced(
                plan, translated, prefix, partial_ok, k, v)
        if range_shardable(table):
            p = table.partitioning.num_partitions
            views = self._per_partition_views(plan)
            disjoint = translated.as_tuple[0] == table.partitioning.column
            # Non-contiguous partitions each re-read the whole table.
            extra = 0.0 if table.partition_contiguous else (p - 1) * scan.self_cost
            est = plan.total_cost + extra + self.cost_model.sharded_coe(
                plan.stats, plan.order, translated, p,
                partial_enabled=partial_ok, shard_stats=views,
                disjoint_merge=disjoint)
            if best_est is None or est < best_est:
                best_est = est
                best_build = lambda v=views, dj=disjoint, n=p: self._shard_enforced(
                    plan, translated, prefix, partial_ok, n, v,
                    range_table=table, disjoint=dj)
        if best_est is None or not prefer_sharded(best_est, post_total):
            return None
        return best_build()

    def _shard_enforced(self, plan: PhysicalPlan, translated: SortOrder,
                        prefix: SortOrder, partial_ok: bool, k: int,
                        views: Optional[list[StatsView]],
                        range_table=None, disjoint: bool = False) -> PhysicalPlan:
        """Materialise the per-shard-sort-plus-merge alternative for
        *plan* (caller has already established shardability and that the
        :meth:`~repro.optimizer.cost.CostModel.sharded_coe` estimate
        wins)."""
        if views is None:
            views = self._uniform_views(plan, k)
        total_rows = sum(v.N for v in views) or 1.0
        shards = []
        for i, view in enumerate(views):
            shard = self._shard_clone(plan, k, i, view.N / total_rows,
                                      range_table)
            enforcer_cost = self.cost_model.coe(view, plan.order, translated,
                                                partial_enabled=partial_ok)
            # Carry the *measured* per-shard statistics on the enforcer
            # node (schema permitting) so downstream per-shard operators
            # (joins, aggregates) are priced with real distinct counts.
            sort_stats = (view if list(view.schema.names)
                          == list(shard.schema.names) else shard.stats)
            if prefix and partial_ok:
                shards.append(make_plan(
                    "PartialSort", shard.schema, translated, sort_stats,
                    enforcer_cost, [shard], prefix=prefix, algorithm="mrs"))
            else:
                shards.append(make_plan(
                    "Sort", shard.schema, translated, sort_stats,
                    enforcer_cost, [shard], prefix=EMPTY_ORDER,
                    algorithm="srs"))
        merge_cost = self.cost_model.merge_exchange(plan.stats.N, k,
                                                    disjoint=disjoint)
        return make_plan("MergeExchange", plan.schema, translated, plan.stats,
                         merge_cost, shards, disjoint=disjoint)

    def _translate_order(self, order: SortOrder, schema: Schema,
                         eq: Optional[AttributeEquivalence] = None
                         ) -> Optional[SortOrder]:
        """Express *order* in *schema*'s column names via equivalences
        (*eq* defaults to the whole-query classes; enforcement passes the
        goal subtree's own)."""
        if eq is None:
            eq = self.eq
        out: list[str] = []
        for attr in order:
            if attr in schema:
                out.append(attr)
                continue
            mate = next((c for c in schema.names if eq.same(c, attr)), None)
            if mate is None:
                return None
            if mate not in out:
                out.append(mate)
        return SortOrder(out)

    def ensure_schema(self, plan: PhysicalPlan, expr: LogicalExpr) -> PhysicalPlan:
        """Project the final plan to the logical output schema when a
        covering-index scan or join swap changed column order."""
        target = self.annotator.schema_of(expr)
        if plan.schema.names == target.names:
            return plan
        if not plan.schema.has_all(target.names):
            return plan  # narrower logical projection not expressible
        cost = self.cost_model.project(plan.stats)
        schema = plan.schema.project(list(target.names))
        order = plan.order.restrict_prefix_to(target.names, self.eq)
        return make_plan("Project", schema, order, plan.stats.projected(list(target.names)),
                         cost, [plan], columns=tuple(target.names))

    # -- candidate generation ----------------------------------------------------------------
    def _native_candidates(self, expr: LogicalExpr, required: SortOrder,
                           bound: _Bound) -> Iterable[PhysicalPlan]:
        if isinstance(expr, BaseRelation):
            yield from self._scan_candidates(expr)
        elif isinstance(expr, Select):
            yield from self._select_candidates(expr, required, bound)
        elif isinstance(expr, Project):
            yield from self._project_candidates(expr, required, bound)
        elif isinstance(expr, Compute):
            yield from self._compute_candidates(expr, required, bound)
        elif isinstance(expr, Join):
            yield from self._join_candidates(expr, required, bound)
        elif isinstance(expr, GroupBy):
            yield from self._group_candidates(expr, required, bound)
        elif isinstance(expr, Distinct):
            yield from self._distinct_candidates(expr, required, bound)
        elif isinstance(expr, Union):
            yield from self._union_candidates(expr, required, bound)
        elif isinstance(expr, OrderBy):
            plan = self.optimize_goal(expr.child, expr.order, bound.value)
            if plan is not None:
                yield plan
        elif isinstance(expr, Limit):
            yield from self._limit_candidates(expr, required, bound)
        else:
            raise TypeError(f"cannot plan {type(expr).__name__}")

    def _scan_candidates(self, expr: BaseRelation) -> Iterable[PhysicalPlan]:
        table = self.catalog.table(expr.table_name)
        keys = [table.primary_key] if table.primary_key else []
        stats = StatsView.of_table(table.schema, table.stats, self.eq, keys)
        yield make_plan("TableScan", table.schema, table.clustering_order,
                        stats, self.cost_model.table_scan(stats),
                        table=table.name)
        used = self.annotator.used_attrs(expr.table_name)
        for index in self.catalog.indexes_of(expr.table_name):
            if not index.covers(used):
                continue
            leaf_schema = index.leaf_schema
            leaf_stats = stats.projected(list(leaf_schema.names))
            cost = self.cost_model.index_scan(stats.N, index.entry_bytes())
            yield make_plan("CoveringIndexScan", leaf_schema, index.key,
                            leaf_stats, cost, table=table.name, index=index.name)

    def _child_requirements(self, required: SortOrder,
                            pushable: bool) -> list[SortOrder]:
        """Child orders worth requesting for order-preserving unaries:
        the requirement itself (sort below, smaller input) and ε (sort
        above, fewer rows) — the enforcer framework arbitrates by cost."""
        reqs = [EMPTY_ORDER]
        if pushable and required:
            reqs.append(required)
        return reqs

    def _select_candidates(self, expr: Select, required: SortOrder,
                           bound: _Bound) -> Iterable[PhysicalPlan]:
        child_schema_cols = set(self.annotator.schema_of(expr.child).names)
        pushable = all(any(self.eq.same(a, c) for c in child_schema_cols)
                       for a in required)
        for child_req in self._child_requirements(required, pushable):
            child = self.optimize_goal(expr.child, child_req, bound.value)
            if child is None or not child.schema.has_all(expr.predicate.columns()):
                continue
            stats = child.stats.scaled(expr.predicate.selectivity(child.stats))
            yield make_plan("Filter", child.schema, child.order, stats,
                            self.cost_model.filter(child.stats), [child],
                            predicate=expr.predicate)

    def _project_candidates(self, expr: Project, required: SortOrder,
                            bound: _Bound) -> Iterable[PhysicalPlan]:
        pushable = set(required) <= set(expr.columns)
        for child_req in self._child_requirements(required, pushable):
            child = self.optimize_goal(expr.child, child_req, bound.value)
            if child is None or not child.schema.has_all(expr.columns):
                continue
            schema = child.schema.project(list(expr.columns))
            order = child.order.restrict_prefix_to(expr.columns, self.eq)
            yield make_plan("Project", schema, order,
                            child.stats.projected(list(expr.columns)),
                            self.cost_model.project(child.stats), [child],
                            columns=tuple(expr.columns))

    def _compute_candidates(self, expr: Compute, required: SortOrder,
                            bound: _Bound) -> Iterable[PhysicalPlan]:
        child_cols = set(self.annotator.schema_of(expr.child).names)
        pushable = all(any(self.eq.same(a, c) for c in child_cols)
                       for a in required)
        for child_req in self._child_requirements(required, pushable):
            child = self.optimize_goal(expr.child, child_req, bound.value)
            if child is None:
                continue
            schema = Schema(list(child.schema)
                            + [spec for spec in self.annotator.schema_of(expr)
                               if spec.name not in child.schema])
            stats = StatsView(schema, child.stats.N,
                              {c: child.stats.distinct_of(c)
                               for c in child.schema.names}, self.eq)
            yield make_plan("Compute", schema, child.order, stats,
                            self.cost_model.project(child.stats), [child],
                            outputs=tuple(expr.outputs))

    # -- joins -------------------------------------------------------------------------------
    def _join_candidates(self, expr: Join, required: SortOrder,
                         bound: _Bound) -> Iterable[PhysicalPlan]:
        pairs = list(expr.predicate.pairs)
        right_for_left = dict(pairs)
        orders = self.strategy.join_orders(self.order_ctx, expr, required)
        for perm in orders:
            left_req = perm
            right_perm = SortOrder(
                tuple(right_for_left.get(a, self._right_partner(a, pairs))
                      for a in perm))
            left_plan = self.optimize_goal(expr.left, left_req, bound.value)
            if left_plan is None:
                continue
            right_plan = self.optimize_goal(expr.right, right_perm,
                                            bound.value - left_plan.total_cost)
            if right_plan is None:
                continue
            reordered = JoinPredicate(
                [(a, right_for_left.get(a, self._right_partner(a, pairs)))
                 for a in perm])
            stats = self._join_stats(expr, left_plan, right_plan)
            schema = left_plan.schema.concat(right_plan.schema)
            cost = self.cost_model.merge_join(left_plan.stats, right_plan.stats,
                                              stats.N)
            # FULL OUTER pads left key columns of right-unmatched rows
            # with NULLs mid-stream, so its output guarantees no order
            # (mirrors engine/joins.py — the two must agree or enforcers
            # get skipped above plans that cannot honour them).
            out_order = EMPTY_ORDER if expr.join_type == "full" else perm
            yield make_plan("MergeJoin", schema, out_order, stats, cost,
                            [left_plan, right_plan], predicate=reordered,
                            join_type=expr.join_type, logical=expr)
            yield from self._sharded_join_alternatives(
                expr, perm, reordered, left_plan, right_plan, stats, schema,
                cost)
        if self.config.enable_hash_join:
            left_plan = self.optimize_goal(expr.left, EMPTY_ORDER, bound.value)
            right_plan = (self.optimize_goal(expr.right, EMPTY_ORDER,
                                             bound.value - left_plan.total_cost)
                          if left_plan is not None else None)
            if left_plan is not None and right_plan is not None:
                stats = self._join_stats(expr, left_plan, right_plan)
                schema = left_plan.schema.concat(right_plan.schema)
                cost = self.cost_model.hash_join(left_plan.stats,
                                                 right_plan.stats, stats.N)
                yield make_plan("HashJoin", schema, EMPTY_ORDER, stats, cost,
                                [left_plan, right_plan],
                                predicate=expr.predicate,
                                join_type=expr.join_type)
                if self.parallelism > 1:
                    copart = self._copartitioned_hash_join(
                        expr, left_plan, right_plan, stats, schema, cost)
                    if copart is not None:
                        yield copart
        if self.config.enable_nested_loops and expr.join_type == "inner":
            left_plan = self.optimize_goal(expr.left, EMPTY_ORDER, bound.value)
            right_plan = (self.optimize_goal(expr.right, EMPTY_ORDER,
                                             bound.value - left_plan.total_cost)
                          if left_plan is not None else None)
            if left_plan is not None and right_plan is not None:
                stats = self._join_stats(expr, left_plan, right_plan)
                schema = left_plan.schema.concat(right_plan.schema)
                cost = self.cost_model.nested_loops_join(left_plan.stats,
                                                         right_plan.stats,
                                                         stats.N)
                yield make_plan("NestedLoopsJoin", schema, left_plan.order,
                                stats, cost, [left_plan, right_plan],
                                predicate=expr.predicate)

    @staticmethod
    def _right_partner(attr: str, pairs: list[tuple[str, str]]) -> str:
        for l, r in pairs:
            if l == attr or r == attr:
                return r
        raise KeyError(attr)

    def _join_stats(self, expr: Join, left: PhysicalPlan,
                    right: PhysicalPlan) -> StatsView:
        joined = left.stats.join(right.stats, list(expr.predicate.pairs), self.eq)
        if expr.join_type == "left":
            return joined.with_rows(max(joined.N, left.stats.N))
        if expr.join_type == "full":
            return joined.with_rows(max(joined.N, left.stats.N, right.stats.N))
        return joined

    # -- sharded joins -----------------------------------------------------------------
    def _sharded_join_alternatives(self, expr: Join, perm: SortOrder,
                                   reordered: JoinPredicate,
                                   left_plan: PhysicalPlan,
                                   right_plan: PhysicalPlan, stats: StatsView,
                                   schema: Schema,
                                   join_cost: float) -> Iterable[PhysicalPlan]:
        if self.parallelism < 2:
            return
        broadcast = self._broadcast_join_alternative(
            expr, perm, reordered, left_plan, right_plan, stats, schema,
            join_cost)
        if broadcast is not None:
            yield broadcast

    def _sorted_shards_of(self, plan: PhysicalPlan, shard_count: int):
        """Per-shard sorted pipelines delivering *plan*'s order, plus
        their stat views and base subtree cost — the shards a per-shard
        join or aggregate builds on.

        Two shapes qualify: a plan whose enforcer was already placed per
        shard (``MergeExchange`` — reuse its children, dropping the
        pre-operator merge), and a ``Sort``/``PartialSort`` over a
        shardable chain (shard the chain and replicate the enforcer).
        Returns ``None`` for everything else.
        """
        if plan.op == "MergeExchange":
            shards = list(plan.children)
            views = [s.stats for s in shards]
            return shards, views, bool(plan.arg("disjoint", False))
        if plan.op not in ("Sort", "PartialSort"):
            return None
        inner = plan.children[0]
        scan, table = self._chain_table(inner)
        if table is None or not shardable(table, shard_count):
            return None
        chain_views = (self._per_shard_views(inner, shard_count)
                       or self._uniform_views(inner, shard_count))
        total_rows = sum(v.N for v in chain_views) or 1.0
        shards = []
        for i, view in enumerate(chain_views):
            clone = self._shard_clone(inner, shard_count, i,
                                      view.N / total_rows)
            enforcer_cost = self.cost_model.coe(
                view, inner.order, plan.order,
                partial_enabled=plan.op == "PartialSort")
            sort_stats = (view if list(view.schema.names)
                          == list(clone.schema.names) else clone.stats)
            shards.append(make_plan(
                plan.op, clone.schema, plan.order, sort_stats, enforcer_cost,
                [clone], prefix=plan.arg("prefix", EMPTY_ORDER),
                algorithm=plan.arg("algorithm", "srs")))
        views = [s.stats for s in shards]
        return shards, views, False

    def _broadcast_join_alternative(self, expr: Join, perm: SortOrder,
                                    reordered: JoinPredicate,
                                    left_plan: PhysicalPlan,
                                    right_plan: PhysicalPlan,
                                    stats: StatsView, schema: Schema,
                                    join_cost: float) -> Optional[PhysicalPlan]:
        """Shard the sorted left input and broadcast the right: per-shard
        merge joins gathered by an order-preserving merge.

        Valid for inner and LEFT OUTER joins — the shards partition the
        left rows, so every join output (and every left-padded row) is
        produced exactly once; a FULL OUTER join would duplicate
        right-unmatched rows per shard.  The right subtree appears once
        per shard in the plan, so its replication cost is charged
        naturally by ``total_cost`` — the alternative only wins when the
        per-shard sort savings on a big left side beat re-reading a small
        broadcast side k−1 extra times.
        """
        if expr.join_type == "full":
            return None
        sharded = self._sorted_shards_of(left_plan, self.parallelism)
        if sharded is None:
            return None
        shards, views, disjoint = sharded
        # The join merge stays heap-free only when the shards were range
        # partitions disjoint on the join permutation's leading attribute.
        disjoint = (disjoint and bool(perm)
                    and left_plan.order.as_tuple[:1] == perm.as_tuple[:1])
        regular_total = (left_plan.total_cost + right_plan.total_cost
                         + join_cost)
        return self._build_sharded_join(expr, perm, reordered, shards, views,
                                        [right_plan] * len(shards), stats,
                                        schema, regular_total,
                                        merge_disjoint=disjoint)

    def _build_sharded_join(self, expr: Join, perm: SortOrder,
                            reordered: JoinPredicate,
                            shards: list[PhysicalPlan],
                            views: list[StatsView],
                            rights: list[PhysicalPlan], stats: StatsView,
                            schema: Schema, regular_total: float,
                            merge_disjoint: bool
                            ) -> Optional[PhysicalPlan]:
        """Assemble (and cost-gate) the per-shard merge-join plan: one
        merge join per shard against its right input, gathered by an
        order-preserving merge.  Returns ``None`` when the assembled
        total does not beat *regular_total* — ties resolve to the simpler
        unsharded join."""
        k = len(shards)
        out_rows = stats.N
        total_left = sum(v.N for v in views) or 1.0
        weights = [v.N / total_left for v in views]
        join_costs = [
            self.cost_model.merge_join(v, r.stats, out_rows * w)
            for v, r, w in zip(views, rights, weights)]
        gather_cost = self.cost_model.merge_exchange(out_rows, k,
                                                     disjoint=merge_disjoint)
        # The gate compares exactly what the materialised plan will cost
        # (per-node numbers below); CostModel.sharded_join states the
        # same formula in one closed form, pinned equal by test_cost.
        est = (sum(s.total_cost for s in shards)
               + sum(r.total_cost for r in rights)
               + sum(join_costs) + gather_cost)
        if not prefer_sharded(est, regular_total):
            return None
        joins = [
            make_plan("MergeJoin", schema, perm, stats.scaled(w),
                      jc, [shard, right], predicate=reordered,
                      join_type=expr.join_type, logical=expr)
            for shard, right, w, jc in zip(shards, rights, weights, join_costs)]
        return make_plan("MergeExchange", schema, perm, stats, gather_cost,
                         joins, disjoint=merge_disjoint)

    def _copartitioned_hash_join(self, expr: Join, left_plan: PhysicalPlan,
                                 right_plan: PhysicalPlan, stats: StatsView,
                                 schema: Schema,
                                 join_cost: float) -> Optional[PhysicalPlan]:
        """Co-partitioned hash join for range-partitioned inputs: both
        tables are partitioned on a join-equality pair with identical
        bounds, so partition *i* of the left can only match partition *i*
        of the right — the classic partitioned hash join.  Valid for
        every join type (unlike the broadcast, nothing is replicated),
        and the win is the Grace term: per-partition builds that fit in
        sort memory skip the partition-spill I/O a monolithic build pays.
        The gather is a plain exchange union (hash output is unordered
        anyway), costing nothing.
        """
        lscan, ltable = self._chain_table(left_plan)
        rscan, rtable = self._chain_table(right_plan)
        if ltable is None or rtable is None:
            return None
        if not (range_shardable(ltable) and range_shardable(rtable)):
            return None
        lp, rp = ltable.partitioning, rtable.partitioning
        if lp.bounds != rp.bounds:
            return None
        if (lp.column, rp.column) not in expr.predicate.pairs:
            return None
        lviews = self._per_partition_views(left_plan)
        rviews = self._per_partition_views(right_plan)
        if lviews is None or rviews is None:
            return None
        p = lp.num_partitions
        total_l = sum(v.N for v in lviews) or 1.0
        total_r = sum(v.N for v in rviews) or 1.0
        # Join output apportioned by the per-partition row-count product.
        raw = [lv.N * rv.N for lv, rv in zip(lviews, rviews)]
        total_w = sum(raw) or 1.0
        weights = [w / total_w for w in raw]
        lclones = [self._shard_clone(left_plan, p, i, v.N / total_l,
                                     range_table=ltable)
                   for i, v in enumerate(lviews)]
        rclones = [self._shard_clone(right_plan, p, i, v.N / total_r,
                                     range_table=rtable)
                   for i, v in enumerate(rviews)]
        join_costs = [
            self.cost_model.hash_join(lv, rv, stats.N * w)
            for lv, rv, w in zip(lviews, rviews, weights)]
        est = (sum(c.total_cost for c in lclones)
               + sum(c.total_cost for c in rclones) + sum(join_costs))
        regular_total = (left_plan.total_cost + right_plan.total_cost
                         + join_cost)
        if not prefer_sharded(est, regular_total):
            return None
        joins = [
            make_plan("HashJoin", schema, EMPTY_ORDER, stats.scaled(w), jc,
                      [lc, rc], predicate=expr.predicate,
                      join_type=expr.join_type)
            for lc, rc, w, jc in zip(lclones, rclones, weights, join_costs)]
        return make_plan("ExchangeUnion", schema, EMPTY_ORDER, stats, 0.0,
                         joins)

    # -- aggregation --------------------------------------------------------------------------
    def _group_candidates(self, expr: GroupBy, required: SortOrder,
                          bound: _Bound) -> Iterable[PhysicalPlan]:
        group_cols = list(expr.group_columns)
        # Reduce with this subtree's FDs only: a sibling branch's constant
        # filter must not shrink the sort key a streaming aggregate groups
        # on (wrong merges of distinct groups otherwise).
        reduced = list(self.fds_of(expr).reduce_group_columns(group_cols))
        for perm in self.strategy.group_orders(self.order_ctx, expr, reduced,
                                               required):
            child = self.optimize_goal(expr.child, perm, bound.value)
            if child is None:
                continue
            schema = self._agg_schema(expr, child.schema)
            if schema is None:
                continue
            stats = child.stats.grouped(group_cols, schema)
            agg_cost = self.cost_model.sort_aggregate(child.stats)
            yield make_plan("SortAggregate", schema, perm, stats,
                            agg_cost, [child],
                            group_columns=tuple(group_cols),
                            aggregates=tuple(expr.aggregates), logical=expr)
            sharded = self._sharded_agg_alternative(expr, perm, child, schema,
                                                    stats, group_cols, agg_cost)
            if sharded is not None:
                yield sharded
        if self.config.enable_hash_aggregate:
            child = self.optimize_goal(expr.child, EMPTY_ORDER, bound.value)
            if child is None:
                return
            schema = self._agg_schema(expr, child.schema)
            if schema is not None:
                stats = child.stats.grouped(group_cols, schema)
                yield make_plan("HashAggregate", schema, EMPTY_ORDER, stats,
                                self.cost_model.hash_aggregate(child.stats, stats),
                                [child], group_columns=tuple(group_cols),
                                aggregates=tuple(expr.aggregates))

    def _sharded_agg_alternative(self, expr: GroupBy, perm: SortOrder,
                                 child: PhysicalPlan, schema: Schema,
                                 stats: StatsView, group_cols: list[str],
                                 agg_cost: float) -> Optional[PhysicalPlan]:
        """Per-shard sort aggregation under a merge with a final combine:
        each shard aggregates its slice (sorted per shard, so the whole
        enforcement win composes), the merge gathers one *partial* row
        per per-shard group, and a :class:`SortedGroupCombine` folds the
        groups that straddled shard boundaries.  Only aggregates with an
        exact combiner qualify (``avg`` would need a sum+count split), so
        recombined results are bit-identical to the unsharded plan.
        """
        if self.parallelism < 2 or not combinable(expr.aggregates):
            return None
        sharded = self._sorted_shards_of(child, self.parallelism)
        if sharded is None:
            return None
        shards, views, disjoint = sharded
        k = len(shards)
        partial_rows = sum(v.distinct_of_set(group_cols) for v in views)
        merge_cost = self.cost_model.merge_exchange(partial_rows, k,
                                                    disjoint=disjoint)
        combine_cost = self.cost_model.combine_groups(partial_rows)
        # Per-node numbers below; CostModel.sharded_agg is the same
        # formula in closed form, pinned equal by test_cost.
        est = (sum(s.total_cost for s in shards)
               + sum(self.cost_model.sort_aggregate(v) for v in views)
               + merge_cost + combine_cost)
        if not prefer_sharded(est, child.total_cost + agg_cost):
            return None
        aggs = []
        for shard, view in zip(shards, views):
            aggs.append(make_plan(
                "SortAggregate", schema, perm, view.grouped(group_cols, schema),
                self.cost_model.sort_aggregate(view), [shard],
                group_columns=tuple(group_cols),
                aggregates=tuple(expr.aggregates), logical=expr))
        merged = make_plan("MergeExchange", schema, perm,
                           stats.with_rows(partial_rows), merge_cost, aggs,
                           disjoint=disjoint)
        return make_plan("SortedCombine", schema, perm, stats, combine_cost,
                         [merged], group_columns=tuple(group_cols),
                         aggregates=tuple(expr.aggregates))

    def _agg_schema(self, expr: GroupBy, child_schema: Schema) -> Optional[Schema]:
        from ...expr.aggregates import aggregate_output_schema
        needed = set(expr.group_columns)
        for spec in expr.aggregates:
            needed |= spec.columns()
        if not child_schema.has_all(needed):
            return None
        return aggregate_output_schema(list(expr.group_columns), child_schema,
                                       list(expr.aggregates))

    # -- set operations --------------------------------------------------------------------------
    @staticmethod
    def _complete_set_order(perm: SortOrder, columns: list[str],
                            equivalences: list) -> Optional[SortOrder]:
        """Extend a (possibly equivalence-collapsed) permutation to cover
        every output column, as sorted dedup operators require.

        Interesting-order strategies canonicalize attributes, so a perm
        over a union/distinct of joined inputs may omit columns equated
        by a join (``t2_c1 ≡ t1_c1``).  Appending such a column keeps the
        stream genuinely sorted **only if the equality holds inside the
        subtree producing the rows** — each entry of *equivalences* is a
        ``(rename, eq)`` pair for one child subtree (identity rename for
        a single child), and every missing column must be equivalent to
        some perm member under all of them.  Returns ``None`` when a
        missing column cannot be soundly appended (the hash-based
        candidates still cover the goal)."""
        missing = [c for c in columns if c not in perm.attrs()]
        if not missing:
            return perm
        for c in missing:
            ok = all(any(eq.same(rename.get(c, c), rename.get(a, a))
                         for a in perm)
                     for rename, eq in equivalences)
            if not ok:
                return None
        return SortOrder(list(perm) + missing)

    def _distinct_candidates(self, expr: Distinct, required: SortOrder,
                             bound: _Bound) -> Iterable[PhysicalPlan]:
        schema = self.annotator.schema_of(expr)
        columns = list(schema.names)
        child_eq = self.eq_of(expr.child)
        for perm in self.strategy.set_orders(self.order_ctx, expr, columns,
                                             required):
            full_order = self._complete_set_order(perm, columns,
                                                  [({}, child_eq)])
            if full_order is None:
                continue
            child = self.optimize_goal(expr.child, perm, bound.value)
            if child is None:
                continue
            stats = child.stats.with_rows(
                child.stats.distinct_of_set(columns))
            yield make_plan("Dedup", child.schema, full_order, stats,
                            self.cost_model.dedup(child.stats), [child])
            sharded = self._sharded_distinct_alternative(child, full_order,
                                                         columns, stats)
            if sharded is not None:
                yield sharded
        child = self.optimize_goal(expr.child, EMPTY_ORDER, bound.value)
        if child is None:
            return
        stats = child.stats.with_rows(child.stats.distinct_of_set(columns))
        yield make_plan("HashDedup", child.schema, EMPTY_ORDER, stats,
                        self.cost_model.hash_dedup(child.stats, stats), [child])

    def _sharded_distinct_alternative(self, child: PhysicalPlan,
                                      full_order: SortOrder,
                                      columns: list[str],
                                      out_stats: StatsView
                                      ) -> Optional[PhysicalPlan]:
        """Per-shard DISTINCT under a merge with a merge-level final
        dedup: each shard deduplicates its (sorted) slice, the
        order-preserving merge gathers one row per per-shard distinct
        value, and a final streaming :class:`Dedup` above the merge
        drops duplicates that straddled shard boundaries — adjacent
        after the merge, so the result is bit-identical to the
        unsharded Dedup.  Wins when in-shard duplicates shrink the merge
        input (the DISTINCT analogue of the per-shard aggregation) or
        when the per-shard enforcers below already avoided a spill.
        """
        if self.parallelism < 2:
            return None
        sharded = self._sorted_shards_of(child, self.parallelism)
        if sharded is None:
            return None
        shards, views, disjoint = sharded
        k = len(shards)
        dedup_costs = [self.cost_model.dedup(v) for v in views]
        partial_rows = sum(v.distinct_of_set(columns) for v in views)
        merge_cost = self.cost_model.merge_exchange(partial_rows, k,
                                                    disjoint=disjoint)
        final_cost = self.cost_model.cpu(partial_rows)
        # Per-node numbers below; CostModel.sharded_dedup is the same
        # formula in closed form, pinned equal by test_cost.
        est = (sum(s.total_cost for s in shards) + sum(dedup_costs)
               + merge_cost + final_cost)
        regular = child.total_cost + self.cost_model.dedup(child.stats)
        if not prefer_sharded(est, regular):
            return None
        dedups = [
            make_plan("Dedup", shard.schema, full_order,
                      view.with_rows(view.distinct_of_set(columns)), cost,
                      [shard])
            for shard, view, cost in zip(shards, views, dedup_costs)]
        merged = make_plan("MergeExchange", child.schema, full_order,
                           out_stats.with_rows(partial_rows), merge_cost,
                           dedups, disjoint=disjoint)
        return make_plan("Dedup", child.schema, full_order, out_stats,
                         final_cost, [merged])

    def _union_candidates(self, expr: Union, required: SortOrder,
                          bound: _Bound) -> Iterable[PhysicalPlan]:
        left_schema = self.annotator.schema_of(expr.left)
        right_schema = self.annotator.schema_of(expr.right)
        rename = dict(zip(left_schema.names, right_schema.names))
        columns = list(left_schema.names)
        left_eq = self.eq_of(expr.left)
        right_eq = self.eq_of(expr.right)
        for perm in self.strategy.set_orders(self.order_ctx, expr, columns,
                                             required):
            full_order = self._complete_set_order(
                perm, columns, [({}, left_eq), (rename, right_eq)])
            if full_order is None:
                continue
            left = self.optimize_goal(expr.left, perm, bound.value)
            if left is None:
                continue
            right = self.optimize_goal(expr.right, perm.translate(rename),
                                       bound.value - left.total_cost)
            if right is None:
                continue
            stats = left.stats.union(right.stats, self.eq)
            yield make_plan("MergeUnion", left.schema, full_order, stats,
                            self.cost_model.merge_union(left.stats, right.stats),
                            [left, right])
        left = self.optimize_goal(expr.left, EMPTY_ORDER, bound.value)
        if left is None:
            return
        right = self.optimize_goal(expr.right, EMPTY_ORDER,
                                   bound.value - left.total_cost)
        if right is None:
            return
        all_stats = left.stats.union(right.stats, self.eq)
        union_all = make_plan("UnionAll", left.schema, EMPTY_ORDER, all_stats,
                              0.0, [left, right])
        dedup_stats = all_stats.with_rows(all_stats.distinct_of_set(columns))
        yield make_plan("HashDedup", left.schema, EMPTY_ORDER, dedup_stats,
                        self.cost_model.hash_dedup(all_stats, dedup_stats),
                        [union_all])

    def _limit_candidates(self, expr: Limit, required: SortOrder,
                          bound: _Bound) -> Iterable[PhysicalPlan]:
        child = self.optimize_goal(expr.child, required, bound.value)
        if child is None:
            return
        stats = child.stats.with_rows(min(child.stats.N, expr.k))
        yield make_plan("Limit", child.schema, child.order, stats, 0.0,
                        [child], k=expr.k)
