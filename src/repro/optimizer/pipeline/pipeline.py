"""The staged optimization pipeline (PostBOUND-style composition).

:class:`OptimizationPipeline` is the validated, resolved form of an
:class:`~.pre_check.OptimizerConfig`: the config copy plus the live
order strategy and join-order enumerator that stage 1
(:func:`~.pre_check.run_pre_check`) produced from it.  The
:class:`~repro.optimizer.volcano.Optimizer` facade builds one pipeline
at construction and reuses it for *every* entry point — ``optimize``,
phase-2 refinement (``optimize_with_forced_orders``) and ``cost_of``
all see the same enumerator — and the serving layer salts plan-cache
fingerprints with :attr:`OptimizationPipeline.cache_salt` so plans from
different enumerators never collide in a shared cache.

The four stages, in order:

1. **pre_check** — validate knobs, resolve strategy + enumerator
   (once per :class:`Optimizer`);
2. **join_enumeration** — logical tree → join-order candidate trees;
3. **physical_selection** — cost-based Volcano search per candidate
   tree (one :class:`~.physical_selection.PhysicalSelection` each);
4. **parameterization** — bind-readiness of the chosen plan for the
   plan cache.

Stages 2–4 are driven per query by
:class:`~repro.optimizer.volcano.OptimizationRun`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .join_enumeration import JoinOrderEnumerator
from .pre_check import OptimizerConfig, run_pre_check

__all__ = ["OptimizationPipeline"]


class OptimizationPipeline:
    """A validated config with its resolved stage objects."""

    __slots__ = ("config", "strategy", "enumerator")

    def __init__(self, config: OptimizerConfig, strategy,
                 enumerator: JoinOrderEnumerator) -> None:
        self.config = config
        self.strategy = strategy
        self.enumerator = enumerator

    @classmethod
    def from_config(cls, config: OptimizerConfig) -> "OptimizationPipeline":
        """Run stage 1 (pre-check) and assemble the pipeline."""
        config, strategy, enumerator = run_pre_check(config)
        return cls(config, strategy, enumerator)

    def with_parallelism(self, parallelism: Optional[int]
                         ) -> "OptimizationPipeline":
        """This pipeline at another shard fan-out — same resolved
        strategy and enumerator objects (no re-validation), so every
        caller path shares one set of stage objects."""
        if parallelism is None or parallelism == self.config.parallelism:
            return self
        return OptimizationPipeline(
            replace(self.config, parallelism=max(1, parallelism)),
            self.strategy, self.enumerator)

    @property
    def cache_salt(self) -> str:
        """Fingerprint salt for the plan cache; ``""`` for the default
        exhaustive enumerator (pre-pipeline fingerprints stay valid)."""
        return self.enumerator.cache_salt
