"""Stage 1 — pre-check: parameter and feature validation.

Validates an :class:`OptimizerConfig` once, up front, and resolves its
string-valued knobs into the live stage objects the rest of the
pipeline runs with: the interesting-order strategy
(:func:`repro.core.interesting.make_strategy`) and the join-order
enumerator (:func:`.join_enumeration.make_enumerator`).  Invalid
configurations fail here — before any search state is built — with
:class:`PreCheckError`, so every downstream stage can assume a sane,
fully-resolved configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union as TUnion

from ...core.interesting import OrderStrategy, make_strategy
from .join_enumeration import JoinOrderEnumerator, make_enumerator

__all__ = ["OptimizerConfig", "PreCheckError", "run_pre_check"]


@dataclass
class OptimizerConfig:
    """Feature switches; defaults correspond to PYRO-O."""

    strategy: str = "pyro-o"
    partial_sort_enforcers: bool = True
    refine: bool = True
    enable_hash_join: bool = True
    enable_nested_loops: bool = False
    enable_hash_aggregate: bool = True
    use_favorable_orders_everywhere: bool = True
    #: Branch-and-bound pruning: skip subgoals/enforcers that provably
    #: cannot beat the best plan found so far for the current goal.  The
    #: chosen plan is identical either way; only search effort changes.
    cost_bound_pruning: bool = True
    #: Shard fan-out the plan will execute with (``QuerySession`` passes
    #: the execution-time ``parallelism`` knob through).  At 1 the search
    #: is oblivious to sharding; above 1 enforcers may be placed below a
    #: :class:`MergeExchange`, shard by shard, when that is cheaper.
    parallelism: int = 1
    #: Master switch for the per-shard enforcer placement — off forces
    #: the pre-shard-aware behaviour (one post-union sort above the
    #: exchange) even at ``parallelism > 1``; used as the baseline in
    #: benchmarks and regression tests.
    shard_aware_enforcers: bool = True
    #: Stage-2 join-order enumerator: a registry name
    #: (``"exhaustive"`` | ``"simpli-squared"`` | ``"greedy-m2m"``) or a
    #: ready :class:`~.join_enumeration.JoinOrderEnumerator` instance
    #: for custom strategies.  ``"exhaustive"`` is the pre-pipeline
    #: behaviour (bit-identical plans, unsalted cache fingerprints).
    join_enumerator: TUnion[str, JoinOrderEnumerator] = "exhaustive"


class PreCheckError(ValueError):
    """An :class:`OptimizerConfig` failed stage-1 validation."""


def run_pre_check(config: OptimizerConfig
                  ) -> tuple[OptimizerConfig, OrderStrategy,
                             JoinOrderEnumerator]:
    """Validate *config* and resolve its pluggable pieces.

    Returns a private copy of the config (normalized: registry-driven
    feature flags applied, never the caller's object) together with the
    resolved order strategy and join-order enumerator.
    """
    config = replace(config)  # never mutate the caller's config
    if not isinstance(config.parallelism, int) or config.parallelism < 1:
        raise PreCheckError(
            f"parallelism must be a positive int, got {config.parallelism!r}")
    try:
        strategy, partial = make_strategy(config.strategy)
    except ValueError as exc:
        raise PreCheckError(str(exc)) from None
    if not partial:
        # Honour the registry flag: any partial-disabled variant in
        # STRATEGY_VARIANTS (not just "pyro-o-") loses its enforcers.
        config.partial_sort_enforcers = False
    try:
        enumerator = make_enumerator(config.join_enumerator)
    except ValueError as exc:
        raise PreCheckError(str(exc)) from None
    return config, strategy, enumerator
