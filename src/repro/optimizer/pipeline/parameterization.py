"""Stage 4 — plan parameterization (bind-readiness for the plan cache).

A physical plan leaving the pipeline may still contain
:class:`~repro.expr.expressions.Param` placeholders; this stage computes
the set of parameter names the plan needs (:func:`plan_params`) so the
serving layer can validate bindings on every execute, and provides the
pure substitution (:func:`bind_plan` / :func:`bind_expression`) that
turns a cached plan plus bindings into a runnable plan without
re-entering the optimizer.  The cost model's selectivity estimates never
depend on literal values, so plans are bind-independent by construction
and binding is a plain tree rewrite.

Moved verbatim from ``repro.service.session`` (which re-exports these
names for compatibility) so that everything a cached plan needs before
it can serve — search, enumeration, bind-readiness — lives in the
pipeline package.
"""

from __future__ import annotations

from typing import Any

from ...expr.aggregates import AggSpec
from ...expr.expressions import (
    And,
    BinOp,
    Comparison,
    Const,
    Expression,
    Or,
    Param,
)
from ..plans import PhysicalPlan

__all__ = ["bind_expression", "expression_params", "plan_params",
           "bind_plan", "parameterize"]


def bind_expression(expr: Expression, binds: dict[str, Any]) -> Expression:
    """Substitute :class:`Param` nodes with :class:`Const` bindings.

    Returns the *same* object when nothing changed, so unparameterized
    plans are never rebuilt.
    """
    if isinstance(expr, Param):
        if expr.name not in binds:
            raise KeyError(f"missing binding for query parameter :{expr.name}")
        return Const(binds[expr.name])
    if isinstance(expr, Comparison):
        left = bind_expression(expr.left, binds)
        right = bind_expression(expr.right, binds)
        if left is expr.left and right is expr.right:
            return expr
        return Comparison(expr.op, left, right)
    if isinstance(expr, BinOp):
        left = bind_expression(expr.left, binds)
        right = bind_expression(expr.right, binds)
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(expr.op, left, right)
    if isinstance(expr, And):
        parts = tuple(bind_expression(p, binds) for p in expr.parts)
        if all(n is o for n, o in zip(parts, expr.parts)):
            return expr
        return And(*parts)
    if isinstance(expr, Or):
        parts = tuple(bind_expression(p, binds) for p in expr.parts)
        if all(n is o for n, o in zip(parts, expr.parts)):
            return expr
        return Or(*parts)
    return expr


def expression_params(expr: Expression) -> frozenset[str]:
    """All parameter names referenced by an expression."""
    if isinstance(expr, Param):
        return frozenset({expr.name})
    if isinstance(expr, (Comparison, BinOp)):
        return expression_params(expr.left) | expression_params(expr.right)
    if isinstance(expr, (And, Or)):
        out: frozenset[str] = frozenset()
        for p in expr.parts:
            out |= expression_params(p)
        return out
    return frozenset()


def plan_params(plan: PhysicalPlan) -> frozenset[str]:
    """All parameter names referenced anywhere in a physical plan."""
    names: frozenset[str] = frozenset()
    for node in plan.walk():
        for key, value in node.args:
            if isinstance(value, Expression):
                names |= expression_params(value)
            elif key == "outputs":
                for _, e in value:
                    names |= expression_params(e)
            elif key == "aggregates":
                for spec in value:
                    names |= expression_params(spec.arg)
    return names


#: Stage entry point: the pipeline driver calls this on the chosen plan;
#: today bind-readiness *is* the parameter-name set.
parameterize = plan_params


def bind_plan(plan: PhysicalPlan, binds: dict[str, Any]) -> PhysicalPlan:
    """Rebuild a physical plan with parameters bound to constants."""
    children = tuple(bind_plan(c, binds) for c in plan.children)
    changed = any(n is not o for n, o in zip(children, plan.children))
    new_args: list[tuple[str, Any]] = []
    for key, value in plan.args:
        new_value = value
        if isinstance(value, Expression):
            new_value = bind_expression(value, binds)
        elif key == "outputs":
            outs = tuple((n, bind_expression(e, binds)) for n, e in value)
            if any(e is not o for (_, e), (_, o) in zip(outs, value)):
                new_value = outs
        elif key == "aggregates":
            aggs = tuple(
                AggSpec(s.func, bind_expression(s.arg, binds), s.output_name,
                        s.output_size)
                if expression_params(s.arg) else s
                for s in value)
            if any(a is not o for a, o in zip(aggs, value)):
                new_value = aggs
        if new_value is not value:
            changed = True
        new_args.append((key, new_value))
    if not changed:
        return plan
    return PhysicalPlan(plan.op, plan.schema, plan.order, plan.stats,
                        plan.self_cost, children, tuple(new_args))
