"""The staged optimizer pipeline: pre-check → join enumeration →
physical selection → parameterization, composed by
:class:`OptimizationPipeline` (see :mod:`.pipeline` for the overview
and ``docs/optimizer.md`` for the guide)."""

from .join_enumeration import (
    ENUMERATORS,
    ExhaustiveEnumerator,
    GreedyManyToManyEnumerator,
    JoinOrderEnumerator,
    SimpliSquaredEnumerator,
    make_enumerator,
)
from .parameterization import (
    bind_expression,
    bind_plan,
    expression_params,
    parameterize,
    plan_params,
)
from .physical_selection import (
    PhysicalSelection,
    enforcement_chain_scan,
    shardable_enforcement_input,
)
from .pipeline import OptimizationPipeline
from .pre_check import OptimizerConfig, PreCheckError, run_pre_check

__all__ = [
    "ENUMERATORS",
    "ExhaustiveEnumerator",
    "GreedyManyToManyEnumerator",
    "JoinOrderEnumerator",
    "OptimizationPipeline",
    "OptimizerConfig",
    "PhysicalSelection",
    "PreCheckError",
    "SimpliSquaredEnumerator",
    "bind_expression",
    "bind_plan",
    "enforcement_chain_scan",
    "expression_params",
    "make_enumerator",
    "parameterize",
    "plan_params",
    "run_pre_check",
    "shardable_enforcement_input",
]
