"""Stage 2 — join-order enumeration.

A :class:`JoinOrderEnumerator` maps one logical tree to the list of
join-order *candidate trees* the physical-selection stage should search.
The default :class:`ExhaustiveEnumerator` returns the tree unchanged —
the paper's search already explores every merge-join permutation and
sharding alternative *within* the given join shape, so the default
pipeline is bit-identical to the pre-pipeline optimizer.  The two
alternative enumerators commit to a single rewritten left-deep order
up front, trading plan optimality for a drastically smaller search:

* :class:`SimpliSquaredEnumerator` — Simpli-Squared ordering: base
  relations by size only, no selectivity estimates at all;
* :class:`GreedyManyToManyEnumerator` — expansion-aware greedy ordering
  that penalizes many-to-many intermediate blowup using the catalog's
  measured distinct counts and per-shard row skew
  (:meth:`repro.storage.table.Table.shard_stats`).

Only **maximal inner-join regions** are reordered — outer joins are
order-sensitive and act as region boundaries.  Because column order is
semantically significant downstream (``Union`` renames positionally,
and the root schema must not change), every reordered region is wrapped
in a :class:`~repro.logical.algebra.Project` restoring the region's
original output column order.  Any ambiguity — duplicate column names,
join attributes resolvable to more than one leaf, a disconnected join
graph, or predicate pairs that cannot be re-oriented into a valid
left-deep conjunction — makes the rewrite bail out and keep the
original region: a candidate tree is always exactly equivalent to the
input or it is not produced.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Union as TUnion

from ...logical.algebra import Annotator, BaseRelation, Join, LogicalExpr, Project
from ...expr.expressions import JoinPredicate
from ...storage.catalog import Catalog

__all__ = [
    "JoinOrderEnumerator",
    "ExhaustiveEnumerator",
    "SimpliSquaredEnumerator",
    "GreedyManyToManyEnumerator",
    "ENUMERATORS",
    "make_enumerator",
]

#: Shard fan-out probed for skew in the greedy enumerator; matches the
#: serving layer's most common ``parallelism`` setting.
_SKEW_PROBE_SHARDS = 4

#: Per-attribute duplication factor above which a join side counts as
#: "many" for the many-to-many penalty (1.0 = key-like).
_M2M_FANOUT = 1.05


class JoinOrderEnumerator:
    """Interface of stage 2: logical tree → join-order candidate trees.

    Subclasses override :meth:`candidate_trees`; every returned tree
    must be result-equivalent to the input (same rows, same output
    columns in the same order).  Returning ``[expr]`` means "search the
    query as written".
    """

    #: Registry key; also the default cache salt.
    name: str = "base"

    @property
    def cache_salt(self) -> str:
        """Plan-cache fingerprint salt.  Two enumerators with different
        salts never share a :class:`~repro.service.plan_cache.PlanCache`
        entry.  The default exhaustive enumerator salts with ``""`` so
        pre-pipeline fingerprints stay valid."""
        return self.name

    def candidate_trees(self, catalog: Catalog,
                        expr: LogicalExpr) -> list[LogicalExpr]:
        raise NotImplementedError


class ExhaustiveEnumerator(JoinOrderEnumerator):
    """Search the query exactly as written (the default, bit-identical
    to the pre-pipeline optimizer: join-order exploration stays inside
    the physical search's per-join interesting-order permutations)."""

    name = "exhaustive"

    @property
    def cache_salt(self) -> str:
        return ""  # the unsalted baseline

    def candidate_trees(self, catalog: Catalog,
                        expr: LogicalExpr) -> list[LogicalExpr]:
        return [expr]


# -- join-region analysis ---------------------------------------------------------------
def _flatten_region(expr: LogicalExpr
                    ) -> tuple[list[LogicalExpr],
                               list[tuple[tuple[str, str], ...]]]:
    """Leaves and per-edge predicate pair groups of the maximal
    inner-join region rooted at *expr* (pre-order leaf order = the
    region's output column order)."""
    if isinstance(expr, Join) and expr.join_type == "inner":
        l_leaves, l_edges = _flatten_region(expr.left)
        r_leaves, r_edges = _flatten_region(expr.right)
        return l_leaves + r_leaves, l_edges + r_edges + [expr.predicate.pairs]
    return [expr], []


class _JoinRegion:
    """A validated maximal inner-join region: leaves, their schemas and
    the join-graph edges, indexed by leaf position."""

    def __init__(self, leaves: list[LogicalExpr],
                 schemas: list[tuple[str, ...]],
                 edges: list[tuple[int, int, tuple[str, str]]]) -> None:
        self.leaves = leaves
        self.schemas = schemas
        #: ``(left_leaf, right_leaf, (left_col, right_col))`` — one entry
        #: per original predicate pair, indices into :attr:`leaves`.
        self.edges = edges
        self.adjacency: dict[int, set[int]] = {i: set() for i in range(len(leaves))}
        for a, b, _ in edges:
            self.adjacency[a].add(b)
            self.adjacency[b].add(a)


def _analyze_region(catalog: Catalog, leaves: list[LogicalExpr],
                    edge_groups: list[tuple[tuple[str, str], ...]]
                    ) -> Optional[_JoinRegion]:
    """Resolve every predicate pair to a (leaf, leaf) edge, or ``None``
    when the region cannot be safely reordered."""
    if len(leaves) < 3:
        return None  # no ordering freedom worth committing to
    schemas = [tuple(Annotator(catalog, leaf).schema_of(leaf).names)
               for leaf in leaves]
    owner: dict[str, int] = {}
    for i, names in enumerate(schemas):
        for name in names:
            if name in owner:
                return None  # duplicate column name → ambiguous
            owner[name] = i
    edges: list[tuple[int, int, tuple[str, str]]] = []
    for pairs in edge_groups:
        for l, r in pairs:
            li, ri = owner.get(l), owner.get(r)
            if li is None or ri is None or li == ri:
                return None
            edges.append((li, ri, (l, r)))
    return _JoinRegion(leaves, schemas, edges)


def _build_left_deep(region: _JoinRegion,
                     order: list[int]) -> Optional[LogicalExpr]:
    """Left-deep join over ``region.leaves`` in *order*, re-orienting
    each predicate pair so its left column comes from the accumulated
    left side.  ``None`` when the order is not connected or the merged
    per-join pair sets collide (duplicate columns on a side)."""
    placed = {order[0]}
    current = region.leaves[order[0]]
    used = [False] * len(region.edges)
    for idx in order[1:]:
        pairs: list[tuple[str, str]] = []
        for e, (a, b, (l, r)) in enumerate(region.edges):
            if used[e]:
                continue
            if a in placed and b == idx:
                pairs.append((l, r))
            elif b in placed and a == idx:
                pairs.append((r, l))
            else:
                continue
            used[e] = True
        if not pairs:
            return None  # disconnected at this step
        if (len({l for l, _ in pairs}) != len(pairs)
                or len({r for _, r in pairs}) != len(pairs)):
            return None  # merged edges collide on a join side
        current = Join(current, region.leaves[idx], JoinPredicate(pairs),
                       "inner")
        placed.add(idx)
    if not all(used):
        return None  # an edge's endpoints were never bridged
    return current


def _rebuild_as_written(expr: LogicalExpr,
                        leaves: "list[LogicalExpr]") -> LogicalExpr:
    """The region with its (possibly rewritten) leaves substituted back
    into the original join shape; consumes *leaves* in pre-order."""
    def rec(node: LogicalExpr) -> LogicalExpr:
        if isinstance(node, Join) and node.join_type == "inner":
            left = rec(node.left)
            right = rec(node.right)
            if left is node.left and right is node.right:
                return node
            return replace(node, left=left, right=right)
        return leaves.pop(0)
    return rec(expr)


class _ReorderingEnumerator(JoinOrderEnumerator):
    """Shared driver for enumerators that commit to one rewritten order
    per inner-join region (template method: :meth:`_order_leaves`)."""

    def candidate_trees(self, catalog: Catalog,
                        expr: LogicalExpr) -> list[LogicalExpr]:
        return [self._rewrite(catalog, expr)]

    def _rewrite(self, catalog: Catalog, node: LogicalExpr) -> LogicalExpr:
        if isinstance(node, Join) and node.join_type == "inner":
            return self._rewrite_region(catalog, node)
        if not node.children:
            return node
        if len(node.children) == 2:
            left = self._rewrite(catalog, node.left)     # type: ignore[attr-defined]
            right = self._rewrite(catalog, node.right)   # type: ignore[attr-defined]
            if left is node.left and right is node.right:  # type: ignore[attr-defined]
                return node
            return replace(node, left=left, right=right)
        child = self._rewrite(catalog, node.child)       # type: ignore[attr-defined]
        return node if child is node.child else replace(node, child=child)  # type: ignore[attr-defined]

    def _rewrite_region(self, catalog: Catalog, expr: LogicalExpr) -> LogicalExpr:
        leaves, edge_groups = _flatten_region(expr)
        new_leaves = [self._rewrite(catalog, leaf) for leaf in leaves]
        region = _analyze_region(catalog, new_leaves, edge_groups)
        if region is None:
            return _rebuild_as_written(expr, list(new_leaves))
        order = self._order_leaves(catalog, region)
        if order is None or order == list(range(len(new_leaves))):
            return _rebuild_as_written(expr, list(new_leaves))
        built = _build_left_deep(region, order)
        if built is None:
            return _rebuild_as_written(expr, list(new_leaves))
        # Restore the region's original output column order — column
        # positions are semantically significant downstream (positional
        # Union renames, the root schema contract).
        original_columns = tuple(n for names in region.schemas for n in names)
        return Project(built, original_columns)

    def _order_leaves(self, catalog: Catalog,
                      region: _JoinRegion) -> Optional[list[int]]:
        raise NotImplementedError

    # -- shared greedy frontier ----------------------------------------------------
    def _grow(self, region: _JoinRegion, start: int,
              pick: Callable[[set[int], list[int]], int]) -> Optional[list[int]]:
        """Connected order from *start*, choosing among frontier leaves
        with *pick(placed_set, frontier)*; ``None`` if disconnected."""
        order = [start]
        placed = {start}
        while len(order) < len(region.leaves):
            frontier = sorted({j for i in placed for j in region.adjacency[i]}
                              - placed)
            if not frontier:
                return None
            nxt = pick(placed, frontier)
            order.append(nxt)
            placed.add(nxt)
        return order


def _leaf_base_size(catalog: Catalog, leaf: LogicalExpr) -> float:
    """Product of base-table row counts under *leaf* — deliberately no
    selectivity: Simpli-Squared's premise is that sizes alone order
    joins about as well as fragile cardinality estimates."""
    size = 1.0
    for node in leaf.walk():
        if isinstance(node, BaseRelation):
            size *= max(1.0, float(catalog.table(node.table_name).stats.num_rows))
    return size


class SimpliSquaredEnumerator(_ReorderingEnumerator):
    """Simpli-Squared: order base relations by size only.

    Smallest relation first, then always the smallest relation connected
    to what has been joined so far.  No selectivity or distinct-count
    estimates are consulted — the point of Simpli-Squared is that join
    ordering without a cardinality model is nearly as good and far
    cheaper to search (one committed order instead of a permutation
    space).
    """

    name = "simpli-squared"

    def _order_leaves(self, catalog: Catalog,
                      region: _JoinRegion) -> Optional[list[int]]:
        sizes = [_leaf_base_size(catalog, leaf) for leaf in region.leaves]
        start = min(range(len(sizes)), key=lambda i: (sizes[i], i))
        return self._grow(region, start,
                          lambda placed, frontier:
                          min(frontier, key=lambda j: (sizes[j], j)))


def _leaf_attr_stats(catalog: Catalog, leaf: LogicalExpr
                     ) -> dict[str, tuple[float, float, float]]:
    """Per-column ``(rows, distinct, shard_skew)`` from the base tables
    under *leaf*.  ``shard_skew ≥ 1`` is the max-shard/mean-shard row
    ratio at the probe fan-out — measured storage skew that amplifies
    the cost of expanding joins under sharded execution.

    Columns the *declared* statistics are silent about default to
    key-like (``distinct = num_rows``, i.e. fanout 1) — which hides
    exactly the duplicate-heavy columns the m2m penalty exists for.  On
    materialised tables the measured per-shard statistics carry
    mergeable :class:`~repro.storage.statistics.DistinctSketch` per
    column; their union estimates the table-wide distinct count
    overlap-aware, so the scorer sees the real duplication instead of
    the uniform assumption.
    """
    out: dict[str, tuple[float, float, float]] = {}
    for node in leaf.walk():
        if not isinstance(node, BaseRelation):
            continue
        table = catalog.table(node.table_name)
        rows = max(1.0, float(table.stats.num_rows))
        shards = table.shard_stats(_SKEW_PROBE_SHARDS)
        skew = 1.0
        if shards:
            total = sum(s.num_rows for s in shards)
            if total > 0:
                skew = max(s.num_rows for s in shards) * len(shards) / total
        for column in table.schema.names:
            distinct = float(table.stats.distinct_of(column))
            if column not in table.stats.distinct and shards:
                sketches = [s.sketches.get(column) for s in shards]
                if all(sketch is not None for sketch in sketches):
                    merged = sketches[0]
                    for sketch in sketches[1:]:
                        merged = merged.union(sketch)
                    distinct = max(1.0, min(rows, merged.estimate()))
            out[column] = (rows, distinct, skew)
    return out


class GreedyManyToManyEnumerator(_ReorderingEnumerator):
    """Expansion-aware greedy ordering penalizing many-to-many joins.

    Follows "Optimizing Queries with Many-to-Many Joins": joins where
    *both* sides carry duplicate join values multiply intermediate
    cardinality, so the greedy frontier choice scores each candidate by
    the estimated growth it inflicts — per-value match count from the
    catalog's distinct statistics, times a blowup penalty when both
    sides' duplication factors exceed :data:`_M2M_FANOUT`, times the
    candidate's measured per-shard row skew (skewed storage makes an
    expanding join even worse once sharded).  Smallest estimated
    intermediate result wins at every step.
    """

    name = "greedy-m2m"

    def _order_leaves(self, catalog: Catalog,
                      region: _JoinRegion) -> Optional[list[int]]:
        sizes = [_leaf_base_size(catalog, leaf) for leaf in region.leaves]
        stats = [_leaf_attr_stats(catalog, leaf) for leaf in region.leaves]

        def attr(j: int, column: str) -> tuple[float, float, float]:
            # Unknown (computed) columns: key-like, no skew — neutral.
            return stats[j].get(column, (sizes[j], sizes[j], 1.0))

        def growth_and_penalty(placed: set[int], j: int) -> tuple[float, float]:
            selective = 1.0
            fan_old = []
            fan_new = []
            skew = 1.0
            for a, b, (l, r) in region.edges:
                if a in placed and b == j:
                    old_col, new_col = l, r
                elif b in placed and a == j:
                    old_col, new_col = r, l
                else:
                    continue
                o_rows, o_distinct, _ = attr(
                    a if a in placed else b, old_col)
                n_rows, n_distinct, n_skew = attr(j, new_col)
                selective = min(sizes[j], selective * max(1.0, n_distinct))
                fan_old.append(o_rows / max(1.0, o_distinct))
                fan_new.append(n_rows / max(1.0, n_distinct))
                skew = max(skew, n_skew)
            matches = sizes[j] / max(1.0, selective)
            penalty = 1.0
            if (fan_old and min(fan_old) > _M2M_FANOUT
                    and min(fan_new) > _M2M_FANOUT):
                penalty = min(fan_old) * min(fan_new) * skew
            return matches, penalty

        running = [0.0]

        def pick(placed: set[int], frontier: list[int]) -> int:
            def score(j: int) -> tuple[float, int]:
                matches, penalty = growth_and_penalty(placed, j)
                return (running[0] * matches * penalty, j)
            best = min(frontier, key=score)
            matches, _ = growth_and_penalty(placed, best)
            running[0] = max(1.0, running[0] * matches)
            return best

        start = min(range(len(sizes)), key=lambda i: (sizes[i], i))
        running[0] = max(1.0, sizes[start])
        return self._grow(region, start, pick)


#: Registry: config string → enumerator class (mirrors
#: ``core.interesting.STRATEGY_VARIANTS`` for order strategies).
ENUMERATORS: dict[str, type[JoinOrderEnumerator]] = {
    ExhaustiveEnumerator.name: ExhaustiveEnumerator,
    SimpliSquaredEnumerator.name: SimpliSquaredEnumerator,
    GreedyManyToManyEnumerator.name: GreedyManyToManyEnumerator,
}


def make_enumerator(spec: TUnion[str, JoinOrderEnumerator]
                    ) -> JoinOrderEnumerator:
    """Resolve a config value — registry name or ready instance — to a
    :class:`JoinOrderEnumerator` (the pre-check stage's entry point for
    plugging custom enumerators)."""
    if isinstance(spec, JoinOrderEnumerator):
        return spec
    try:
        cls = ENUMERATORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown join enumerator {spec!r}; "
            f"known: {sorted(ENUMERATORS)}") from None
    return cls()
