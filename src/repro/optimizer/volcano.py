"""The Volcano-style cost-based optimizer ("PYRO", Section 5.2).

Request-driven search: ``optimize_goal(expr, required_order)`` returns
the cheapest physical plan for a logical expression that *guarantees*
the required sort order, memoised on ``(expr, canonical(order))``.
Every native candidate (scans, joins per interesting order, aggregates,
…) is passed through :meth:`OptimizationRun.enforce`, which appends

* nothing, when the candidate's guaranteed order already satisfies the
  (FD-reduced) requirement;
* a **partial sort enforcer** when a non-empty prefix is shared (the
  paper's extension — standard Volcano only knows full enforcers);
* a full sort enforcer otherwise.

The interesting orders tried at merge joins / sort aggregates / merge
unions come from a pluggable :class:`~repro.core.interesting.OrderStrategy`
(PYRO, PYRO-P, PYRO-O, PYRO-O−, PYRO-E), so all of Experiment B3 runs on
one search engine.  Phase-2 refinement (Section 5.2.2) lives in
:mod:`repro.core.refinement` and re-enters this optimizer with a
:class:`~repro.core.interesting.ForcedOrderStrategy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..core.favorable import FavorableOrders
from ..core.interesting import (
    ForcedOrderStrategy,
    OrderContext,
    OrderStrategy,
    make_strategy,
)
from ..core.sort_order import (
    AttributeEquivalence,
    EMPTY_ORDER,
    SortOrder,
    longest_common_prefix,
)
from ..engine.exchange import ORDER_PRESERVING_UNARY_OPS
from ..engine.scans import shardable
from ..expr.expressions import JoinPredicate
from ..logical.algebra import (
    Annotator,
    BaseRelation,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Limit,
    LogicalExpr,
    OrderBy,
    Project,
    Select,
    Union,
)
from ..logical.builder import Query
from ..logical.fds import FDSet, query_fds
from ..storage.catalog import Catalog
from ..storage.schema import Schema
from ..storage.statistics import StatsView
from .cost import CostModel, prefer_sharded
from .plans import PhysicalPlan, make_plan


@dataclass
class OptimizerConfig:
    """Feature switches; defaults correspond to PYRO-O."""

    strategy: str = "pyro-o"
    partial_sort_enforcers: bool = True
    refine: bool = True
    enable_hash_join: bool = True
    enable_nested_loops: bool = False
    enable_hash_aggregate: bool = True
    use_favorable_orders_everywhere: bool = True
    #: Branch-and-bound pruning: skip subgoals/enforcers that provably
    #: cannot beat the best plan found so far for the current goal.  The
    #: chosen plan is identical either way; only search effort changes.
    cost_bound_pruning: bool = True
    #: Shard fan-out the plan will execute with (``QuerySession`` passes
    #: the execution-time ``parallelism`` knob through).  At 1 the search
    #: is oblivious to sharding; above 1 enforcers may be placed below a
    #: :class:`MergeExchange`, shard by shard, when that is cheaper.
    parallelism: int = 1
    #: Master switch for the per-shard enforcer placement — off forces
    #: the pre-shard-aware behaviour (one post-union sort above the
    #: exchange) even at ``parallelism > 1``; used as the baseline in
    #: benchmarks and regression tests.
    shard_aware_enforcers: bool = True


def split_required_order(query, required_order: Optional[SortOrder] = None
                         ) -> tuple[LogicalExpr, SortOrder]:
    """Normalize an optimizer input: unwrap :class:`Query`, and turn a
    root :class:`OrderBy` into the required output order.  Shared by
    :meth:`Optimizer.optimize` and the serving layer's plan-cache keying
    (:mod:`repro.service.session`) so the two can never diverge."""
    expr = query.expr if isinstance(query, Query) else query
    required = required_order or EMPTY_ORDER
    if isinstance(expr, OrderBy) and not required:
        required = expr.order
        expr = expr.child
    return expr, required


class Optimizer:
    """Public facade: one instance per catalog, reusable across queries."""

    def __init__(self, catalog: Catalog, strategy: str = "pyro-o",
                 config: Optional[OptimizerConfig] = None, **overrides) -> None:
        if config is None:
            config = OptimizerConfig(strategy=strategy)
        else:
            config = replace(config)  # never mutate the caller's config
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown optimizer option {key!r}")
            setattr(config, key, value)
        strategy_obj, partial = make_strategy(config.strategy)
        if not partial:
            # Honour the registry flag: any partial-disabled variant in
            # STRATEGY_VARIANTS (not just "pyro-o-") loses its enforcers.
            config.partial_sort_enforcers = False
        self.catalog = catalog
        self.config = config
        self._strategy = strategy_obj

    def optimize(self, query, required_order: Optional[SortOrder] = None,
                 refine: Optional[bool] = None,
                 parallelism: Optional[int] = None) -> PhysicalPlan:
        """Optimize a :class:`Query` (or raw logical tree) to a physical plan.

        A root :class:`OrderBy` turns into the required output order.
        Phase-2 refinement is applied according to the config unless
        overridden by *refine*.  *parallelism* overrides the config's
        shard fan-out for this call (the serving layer passes the
        execution-time knob through).
        """
        expr, required = split_required_order(query, required_order)
        config = self._config_for(parallelism)
        run = OptimizationRun(self.catalog, expr, self._strategy, config)
        plan = run.optimize_goal(expr, required)
        plan = run.ensure_schema(plan, expr)
        do_refine = self.config.refine if refine is None else refine
        if do_refine:
            from ..core.refinement import refine_plan
            plan = refine_plan(self, expr, required, plan,
                               parallelism=config.parallelism)
        return plan

    def optimize_with_forced_orders(self, expr: LogicalExpr, required: SortOrder,
                                    forced: dict[LogicalExpr, SortOrder],
                                    parallelism: Optional[int] = None) -> PhysicalPlan:
        """Re-plan with explicit permutations at given nodes (phase 2)."""
        strategy = ForcedOrderStrategy(self._strategy, forced)
        run = OptimizationRun(self.catalog, expr, strategy,
                              self._config_for(parallelism))
        plan = run.optimize_goal(expr, required or EMPTY_ORDER)
        return run.ensure_schema(plan, expr)

    def _config_for(self, parallelism: Optional[int]) -> OptimizerConfig:
        if parallelism is None or parallelism == self.config.parallelism:
            return self.config
        return replace(self.config, parallelism=max(1, parallelism))

    def cost_of(self, query, required_order: Optional[SortOrder] = None,
                parallelism: Optional[int] = None) -> float:
        return self.optimize(query, required_order,
                             parallelism=parallelism).total_cost


#: Plan ops transparent to sharding — the engine's order-preserving
#: per-row unaries, by name (single source of truth: engine/exchange.py).
SHARD_TRANSPARENT_OPS = ORDER_PRESERVING_UNARY_OPS
_SHARDABLE_SCAN_OPS = ("TableScan", "ClusteringIndexScan")


def shardable_enforcement_input(plan: PhysicalPlan, catalog: Catalog,
                                parallelism: int) -> bool:
    """Whether *plan* is a shape whose order enforcement can be pushed
    below a shard fan-out: a chain of per-row, order-preserving unaries
    over one shardable scan — sharded execution of such a subtree
    provably partitions the unsharded stream.  Shared by the search
    (:meth:`OptimizationRun.enforce`) and the serving layer's decision
    counters, so "a sharded alternative existed" means the same thing in
    both places.
    """
    if parallelism < 2:
        return False
    node = plan
    while node.op in SHARD_TRANSPARENT_OPS and len(node.children) == 1:
        node = node.children[0]
    if node.op not in _SHARDABLE_SCAN_OPS:
        return False
    return shardable(catalog.table(node.arg("table")), parallelism)


class _Bound:
    """Mutable upper bound shared between a goal and its candidate
    generator; shrinks as better complete plans are found."""

    __slots__ = ("value",)

    def __init__(self, value: float = math.inf) -> None:
        self.value = value


class OptimizationRun:
    """State for optimizing a single query (memo, annotations, afm)."""

    def __init__(self, catalog: Catalog, root: LogicalExpr,
                 strategy: OrderStrategy, config: OptimizerConfig) -> None:
        self.catalog = catalog
        self.root = root
        self.config = config
        self.strategy = strategy
        #: Shard fan-out enforcers may exploit (1 = sharding-oblivious).
        self.parallelism = (max(1, config.parallelism)
                            if config.shard_aware_enforcers else 1)
        self.annotator = Annotator(catalog, root)
        self.eq = self.annotator.eq
        self.fds = query_fds(catalog, root)
        self.favorable = FavorableOrders(catalog, self.annotator)
        self.cost_model = CostModel(catalog.params, self.eq)
        self.order_ctx = OrderContext(self.favorable, self.fds, self.eq)
        self._memo: dict[tuple[LogicalExpr, tuple[str, ...]], PhysicalPlan] = {}
        #: Failure memo (Columbia's re-search discipline): goal → largest
        #: budget known infeasible.  ``_failed[key] = L`` is the *exact*
        #: statement "no plan of this goal costs < L": a bounded search
        #: only ever discards candidates costing ≥ its budget, so a
        #: fruitless search at budget L proves it.  Requests at limits
        #: ≤ L are answered ``None`` instantly; a larger budget triggers
        #: a genuine re-search.
        self._failed: dict[tuple[LogicalExpr, tuple[str, ...]], float] = {}
        #: *Distinct* subgoals optimized — the optimization-effort metric
        #: of Fig. 16.  A re-search of a failure-memoised goal at a larger
        #: budget counts in :attr:`goals_researched`, not here.
        self.goals_examined = 0
        #: Subgoals skipped because their cost budget was already exhausted
        #: (budget ≤ 0 or failure-memo hit; see :meth:`optimize_goal`).
        self.goals_pruned = 0
        #: Subgoals answered from the failure memo without a search.
        self.failure_memo_hits = 0
        #: Bounded searches that came up empty (failure memo entries made).
        self.goals_failed = 0
        #: Re-searches of previously failed goals at larger budgets.
        self.goals_researched = 0

    # -- goal optimization -------------------------------------------------------------
    def optimize_goal(self, expr: LogicalExpr, required: SortOrder,
                      limit: float = math.inf) -> Optional[PhysicalPlan]:
        """Cheapest plan for *expr* guaranteeing *required*.

        *limit* is the branch-and-bound budget handed down by the parent
        goal.  Three ways to skip the search entirely:

        * a memo hit (exact optimum from an earlier search);
        * a budget that is already ≤ 0 — no plan can make the enclosing
          candidate competitive (all costs are non-negative);
        * a failure-memo hit: an earlier *bounded* search at budget
          ``L ≥ limit`` found nothing, proving no plan costs < limit.

        Otherwise the goal is searched with the budget as the initial
        branch-and-bound upper bound.  A search that finds a plan found
        the *exact* optimum (only candidates costing ≥ the shrinking
        bound are ever discarded) and memoises it; a bounded search that
        finds nothing records the exact infeasibility fact
        ``no plan < limit`` in the failure memo and returns ``None`` —
        a later request with a larger budget re-searches (Columbia's
        re-search discipline).  Either way pruning never changes chosen
        plans, only the number of goals examined.
        """
        required = self.fds.reduce_order(required)
        key = (expr, tuple(self.eq.canonical(a) for a in required))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if limit <= 0.0:
            self.goals_pruned += 1
            return None
        failed_at = self._failed.get(key)
        if failed_at is not None and limit <= failed_at:
            self.goals_pruned += 1
            self.failure_memo_hits += 1
            return None
        if failed_at is not None:
            self.goals_researched += 1
        else:
            self.goals_examined += 1

        bound = _Bound(limit if self.config.cost_bound_pruning else math.inf)
        best: Optional[PhysicalPlan] = None
        for candidate in self._native_candidates(expr, required, bound):
            plan = self.enforce(candidate, required, limit=bound.value)
            if plan is None:
                continue
            if best is None or plan.total_cost < best.total_cost:
                best = plan
                if self.config.cost_bound_pruning:
                    bound.value = best.total_cost
        if best is None:
            if math.isinf(limit):
                raise RuntimeError(
                    f"no plan for {expr.label()} with required order {required}")
            # Exact failure fact: every candidate was discarded against a
            # bound that never dropped below *limit*, so no plan of this
            # goal costs < limit.
            self._failed[key] = max(failed_at or 0.0, limit)
            self.goals_failed += 1
            return None
        self._memo[key] = best
        self._failed.pop(key, None)  # success supersedes any failure marker
        return best

    # -- enforcers ------------------------------------------------------------------------
    def enforce(self, plan: PhysicalPlan, required: SortOrder,
                limit: float = math.inf) -> Optional[PhysicalPlan]:
        """Add a (partial) sort enforcer if *plan* misses the requirement.

        With ``parallelism > 1`` and a shardable input, two enforcer
        placements compete on cost: the classic post-union sort above the
        (future) exchange, and per-shard SRS/MRS enforcers gathered by an
        order-preserving :class:`MergeExchange` — "partitioned +
        per-shard-ordered" is a physical property the merge converts into
        the required global order.  Ties resolve to the simpler
        post-union plan (:func:`~repro.optimizer.cost.prefer_sharded`).

        Returns ``None`` when no enforcer applies — or when the enforced
        plan's total cost reaches *limit*, i.e. it provably cannot beat
        the best alternative already known to the caller.
        """
        if plan.total_cost >= limit:
            return None
        target = self.fds.reduce_order(required)
        if not target or plan.order.satisfies(target, self.eq):
            return plan
        translated = self._translate_order(target, plan.schema)
        if translated is None:
            return None
        partial_ok = self.config.partial_sort_enforcers
        prefix = longest_common_prefix(translated, plan.order, self.eq)
        cost = self.cost_model.coe(plan.stats, plan.order, translated,
                                   partial_enabled=partial_ok)
        if shardable_enforcement_input(plan, self.catalog, self.parallelism):
            # Decide on the (cheap) cost estimate first; the k-shard plan
            # tree is only materialised when it actually wins.
            sharded_cost = self.cost_model.sharded_coe(
                plan.stats, plan.order, translated, self.parallelism,
                partial_enabled=partial_ok)
            if prefer_sharded(plan.total_cost + sharded_cost,
                              plan.total_cost + cost):
                sharded = self._shard_enforced(plan, translated, prefix,
                                               partial_ok)
                return sharded if sharded.total_cost < limit else None
        if plan.total_cost + cost >= limit:
            return None
        if prefix and partial_ok:
            return make_plan("PartialSort", plan.schema, translated, plan.stats,
                             cost, [plan], prefix=prefix, algorithm="mrs")
        return make_plan("Sort", plan.schema, translated, plan.stats, cost,
                         [plan], prefix=EMPTY_ORDER, algorithm="srs")

    # -- shard-aware enforcement ------------------------------------------------------
    def _shard_clone(self, node: PhysicalPlan, shard_count: int,
                     shard_index: int) -> PhysicalPlan:
        """One shard's copy of a shardable subtree: the scan leaf becomes
        a ``ShardedScan`` and every node carries ``1/k`` of the rows and
        cost, so the k shards together cost exactly what the unsharded
        subtree did — the plan comparison isolates the enforcers."""
        stats = node.stats.scaled(1.0 / shard_count)
        if node.op in _SHARDABLE_SCAN_OPS:
            return make_plan("ShardedScan", node.schema, node.order, stats,
                             node.self_cost / shard_count,
                             table=node.arg("table"),
                             shard_count=shard_count, shard_index=shard_index)
        child = self._shard_clone(node.children[0], shard_count, shard_index)
        return PhysicalPlan(node.op, node.schema, node.order, stats,
                            node.self_cost / shard_count, (child,), node.args)

    def _shard_enforced(self, plan: PhysicalPlan, translated: SortOrder,
                        prefix: SortOrder,
                        partial_ok: bool) -> PhysicalPlan:
        """Materialise the per-shard-sort-plus-merge alternative for
        *plan* (caller has already established shardability and that the
        :meth:`~repro.optimizer.cost.CostModel.sharded_coe` estimate
        wins)."""
        k = self.parallelism
        shard_stats = plan.stats.scaled(1.0 / k)
        enforcer_cost = self.cost_model.coe(shard_stats, plan.order, translated,
                                            partial_enabled=partial_ok)
        shards = []
        for i in range(k):
            shard = self._shard_clone(plan, k, i)
            if prefix and partial_ok:
                shards.append(make_plan(
                    "PartialSort", shard.schema, translated, shard.stats,
                    enforcer_cost, [shard], prefix=prefix, algorithm="mrs"))
            else:
                shards.append(make_plan(
                    "Sort", shard.schema, translated, shard.stats,
                    enforcer_cost, [shard], prefix=EMPTY_ORDER,
                    algorithm="srs"))
        merge_cost = self.cost_model.merge_exchange(plan.stats.N, k)
        return make_plan("MergeExchange", plan.schema, translated, plan.stats,
                         merge_cost, shards)

    def _translate_order(self, order: SortOrder,
                         schema: Schema) -> Optional[SortOrder]:
        """Express *order* in *schema*'s column names via equivalences."""
        out: list[str] = []
        for attr in order:
            if attr in schema:
                out.append(attr)
                continue
            mate = next((c for c in schema.names if self.eq.same(c, attr)), None)
            if mate is None:
                return None
            if mate not in out:
                out.append(mate)
        return SortOrder(out)

    def ensure_schema(self, plan: PhysicalPlan, expr: LogicalExpr) -> PhysicalPlan:
        """Project the final plan to the logical output schema when a
        covering-index scan or join swap changed column order."""
        target = self.annotator.schema_of(expr)
        if plan.schema.names == target.names:
            return plan
        if not plan.schema.has_all(target.names):
            return plan  # narrower logical projection not expressible
        cost = self.cost_model.project(plan.stats)
        schema = plan.schema.project(list(target.names))
        order = plan.order.restrict_prefix_to(target.names, self.eq)
        return make_plan("Project", schema, order, plan.stats.projected(list(target.names)),
                         cost, [plan], columns=tuple(target.names))

    # -- candidate generation ----------------------------------------------------------------
    def _native_candidates(self, expr: LogicalExpr, required: SortOrder,
                           bound: _Bound) -> Iterable[PhysicalPlan]:
        if isinstance(expr, BaseRelation):
            yield from self._scan_candidates(expr)
        elif isinstance(expr, Select):
            yield from self._select_candidates(expr, required, bound)
        elif isinstance(expr, Project):
            yield from self._project_candidates(expr, required, bound)
        elif isinstance(expr, Compute):
            yield from self._compute_candidates(expr, required, bound)
        elif isinstance(expr, Join):
            yield from self._join_candidates(expr, required, bound)
        elif isinstance(expr, GroupBy):
            yield from self._group_candidates(expr, required, bound)
        elif isinstance(expr, Distinct):
            yield from self._distinct_candidates(expr, required, bound)
        elif isinstance(expr, Union):
            yield from self._union_candidates(expr, required, bound)
        elif isinstance(expr, OrderBy):
            plan = self.optimize_goal(expr.child, expr.order, bound.value)
            if plan is not None:
                yield plan
        elif isinstance(expr, Limit):
            yield from self._limit_candidates(expr, required, bound)
        else:
            raise TypeError(f"cannot plan {type(expr).__name__}")

    def _scan_candidates(self, expr: BaseRelation) -> Iterable[PhysicalPlan]:
        table = self.catalog.table(expr.table_name)
        keys = [table.primary_key] if table.primary_key else []
        stats = StatsView.of_table(table.schema, table.stats, self.eq, keys)
        yield make_plan("TableScan", table.schema, table.clustering_order,
                        stats, self.cost_model.table_scan(stats),
                        table=table.name)
        used = self.annotator.used_attrs(expr.table_name)
        for index in self.catalog.indexes_of(expr.table_name):
            if not index.covers(used):
                continue
            leaf_schema = index.leaf_schema
            leaf_stats = stats.projected(list(leaf_schema.names))
            cost = self.cost_model.index_scan(stats.N, index.entry_bytes())
            yield make_plan("CoveringIndexScan", leaf_schema, index.key,
                            leaf_stats, cost, table=table.name, index=index.name)

    def _child_requirements(self, required: SortOrder,
                            pushable: bool) -> list[SortOrder]:
        """Child orders worth requesting for order-preserving unaries:
        the requirement itself (sort below, smaller input) and ε (sort
        above, fewer rows) — the enforcer framework arbitrates by cost."""
        reqs = [EMPTY_ORDER]
        if pushable and required:
            reqs.append(required)
        return reqs

    def _select_candidates(self, expr: Select, required: SortOrder,
                           bound: _Bound) -> Iterable[PhysicalPlan]:
        child_schema_cols = set(self.annotator.schema_of(expr.child).names)
        pushable = all(any(self.eq.same(a, c) for c in child_schema_cols)
                       for a in required)
        for child_req in self._child_requirements(required, pushable):
            child = self.optimize_goal(expr.child, child_req, bound.value)
            if child is None or not child.schema.has_all(expr.predicate.columns()):
                continue
            stats = child.stats.scaled(expr.predicate.selectivity(child.stats))
            yield make_plan("Filter", child.schema, child.order, stats,
                            self.cost_model.filter(child.stats), [child],
                            predicate=expr.predicate)

    def _project_candidates(self, expr: Project, required: SortOrder,
                            bound: _Bound) -> Iterable[PhysicalPlan]:
        pushable = set(required) <= set(expr.columns)
        for child_req in self._child_requirements(required, pushable):
            child = self.optimize_goal(expr.child, child_req, bound.value)
            if child is None or not child.schema.has_all(expr.columns):
                continue
            schema = child.schema.project(list(expr.columns))
            order = child.order.restrict_prefix_to(expr.columns, self.eq)
            yield make_plan("Project", schema, order,
                            child.stats.projected(list(expr.columns)),
                            self.cost_model.project(child.stats), [child],
                            columns=tuple(expr.columns))

    def _compute_candidates(self, expr: Compute, required: SortOrder,
                            bound: _Bound) -> Iterable[PhysicalPlan]:
        child_cols = set(self.annotator.schema_of(expr.child).names)
        pushable = all(any(self.eq.same(a, c) for c in child_cols)
                       for a in required)
        for child_req in self._child_requirements(required, pushable):
            child = self.optimize_goal(expr.child, child_req, bound.value)
            if child is None:
                continue
            schema = Schema(list(child.schema)
                            + [spec for spec in self.annotator.schema_of(expr)
                               if spec.name not in child.schema])
            stats = StatsView(schema, child.stats.N,
                              {c: child.stats.distinct_of(c)
                               for c in child.schema.names}, self.eq)
            yield make_plan("Compute", schema, child.order, stats,
                            self.cost_model.project(child.stats), [child],
                            outputs=tuple(expr.outputs))

    # -- joins -------------------------------------------------------------------------------
    def _join_candidates(self, expr: Join, required: SortOrder,
                         bound: _Bound) -> Iterable[PhysicalPlan]:
        pairs = list(expr.predicate.pairs)
        right_for_left = dict(pairs)
        orders = self.strategy.join_orders(self.order_ctx, expr, required)
        for perm in orders:
            left_req = perm
            right_perm = SortOrder(
                tuple(right_for_left.get(a, self._right_partner(a, pairs))
                      for a in perm))
            left_plan = self.optimize_goal(expr.left, left_req, bound.value)
            if left_plan is None:
                continue
            right_plan = self.optimize_goal(expr.right, right_perm,
                                            bound.value - left_plan.total_cost)
            if right_plan is None:
                continue
            reordered = JoinPredicate(
                [(a, right_for_left.get(a, self._right_partner(a, pairs)))
                 for a in perm])
            stats = self._join_stats(expr, left_plan, right_plan)
            schema = left_plan.schema.concat(right_plan.schema)
            cost = self.cost_model.merge_join(left_plan.stats, right_plan.stats,
                                              stats.N)
            yield make_plan("MergeJoin", schema, perm, stats, cost,
                            [left_plan, right_plan], predicate=reordered,
                            join_type=expr.join_type, logical=expr)
        if self.config.enable_hash_join:
            left_plan = self.optimize_goal(expr.left, EMPTY_ORDER, bound.value)
            right_plan = (self.optimize_goal(expr.right, EMPTY_ORDER,
                                             bound.value - left_plan.total_cost)
                          if left_plan is not None else None)
            if left_plan is not None and right_plan is not None:
                stats = self._join_stats(expr, left_plan, right_plan)
                schema = left_plan.schema.concat(right_plan.schema)
                cost = self.cost_model.hash_join(left_plan.stats,
                                                 right_plan.stats, stats.N)
                yield make_plan("HashJoin", schema, EMPTY_ORDER, stats, cost,
                                [left_plan, right_plan],
                                predicate=expr.predicate,
                                join_type=expr.join_type)
        if self.config.enable_nested_loops and expr.join_type == "inner":
            left_plan = self.optimize_goal(expr.left, EMPTY_ORDER, bound.value)
            right_plan = (self.optimize_goal(expr.right, EMPTY_ORDER,
                                             bound.value - left_plan.total_cost)
                          if left_plan is not None else None)
            if left_plan is not None and right_plan is not None:
                stats = self._join_stats(expr, left_plan, right_plan)
                schema = left_plan.schema.concat(right_plan.schema)
                cost = self.cost_model.nested_loops_join(left_plan.stats,
                                                         right_plan.stats,
                                                         stats.N)
                yield make_plan("NestedLoopsJoin", schema, left_plan.order,
                                stats, cost, [left_plan, right_plan],
                                predicate=expr.predicate)

    @staticmethod
    def _right_partner(attr: str, pairs: list[tuple[str, str]]) -> str:
        for l, r in pairs:
            if l == attr or r == attr:
                return r
        raise KeyError(attr)

    def _join_stats(self, expr: Join, left: PhysicalPlan,
                    right: PhysicalPlan) -> StatsView:
        joined = left.stats.join(right.stats, list(expr.predicate.pairs), self.eq)
        if expr.join_type == "left":
            return joined.with_rows(max(joined.N, left.stats.N))
        if expr.join_type == "full":
            return joined.with_rows(max(joined.N, left.stats.N, right.stats.N))
        return joined

    # -- aggregation --------------------------------------------------------------------------
    def _group_candidates(self, expr: GroupBy, required: SortOrder,
                          bound: _Bound) -> Iterable[PhysicalPlan]:
        group_cols = list(expr.group_columns)
        reduced = list(self.fds.reduce_group_columns(group_cols))
        for perm in self.strategy.group_orders(self.order_ctx, expr, reduced,
                                               required):
            child = self.optimize_goal(expr.child, perm, bound.value)
            if child is None:
                continue
            schema = self._agg_schema(expr, child.schema)
            if schema is None:
                continue
            stats = child.stats.grouped(group_cols, schema)
            yield make_plan("SortAggregate", schema, perm, stats,
                            self.cost_model.sort_aggregate(child.stats), [child],
                            group_columns=tuple(group_cols),
                            aggregates=tuple(expr.aggregates), logical=expr)
        if self.config.enable_hash_aggregate:
            child = self.optimize_goal(expr.child, EMPTY_ORDER, bound.value)
            if child is None:
                return
            schema = self._agg_schema(expr, child.schema)
            if schema is not None:
                stats = child.stats.grouped(group_cols, schema)
                yield make_plan("HashAggregate", schema, EMPTY_ORDER, stats,
                                self.cost_model.hash_aggregate(child.stats, stats),
                                [child], group_columns=tuple(group_cols),
                                aggregates=tuple(expr.aggregates))

    def _agg_schema(self, expr: GroupBy, child_schema: Schema) -> Optional[Schema]:
        from ..expr.aggregates import aggregate_output_schema
        needed = set(expr.group_columns)
        for spec in expr.aggregates:
            needed |= spec.columns()
        if not child_schema.has_all(needed):
            return None
        return aggregate_output_schema(list(expr.group_columns), child_schema,
                                       list(expr.aggregates))

    # -- set operations --------------------------------------------------------------------------
    def _distinct_candidates(self, expr: Distinct, required: SortOrder,
                             bound: _Bound) -> Iterable[PhysicalPlan]:
        schema = self.annotator.schema_of(expr)
        columns = list(schema.names)
        for perm in self.strategy.set_orders(self.order_ctx, expr, columns,
                                             required):
            child = self.optimize_goal(expr.child, perm, bound.value)
            if child is None:
                continue
            stats = child.stats.with_rows(
                child.stats.distinct_of_set(columns))
            yield make_plan("Dedup", child.schema, perm, stats,
                            self.cost_model.dedup(child.stats), [child])
        child = self.optimize_goal(expr.child, EMPTY_ORDER, bound.value)
        if child is None:
            return
        stats = child.stats.with_rows(child.stats.distinct_of_set(columns))
        yield make_plan("HashDedup", child.schema, EMPTY_ORDER, stats,
                        self.cost_model.hash_dedup(child.stats, stats), [child])

    def _union_candidates(self, expr: Union, required: SortOrder,
                          bound: _Bound) -> Iterable[PhysicalPlan]:
        left_schema = self.annotator.schema_of(expr.left)
        right_schema = self.annotator.schema_of(expr.right)
        rename = dict(zip(left_schema.names, right_schema.names))
        columns = list(left_schema.names)
        for perm in self.strategy.set_orders(self.order_ctx, expr, columns,
                                             required):
            left = self.optimize_goal(expr.left, perm, bound.value)
            if left is None:
                continue
            right = self.optimize_goal(expr.right, perm.translate(rename),
                                       bound.value - left.total_cost)
            if right is None:
                continue
            stats = left.stats.union(right.stats, self.eq)
            yield make_plan("MergeUnion", left.schema, perm, stats,
                            self.cost_model.merge_union(left.stats, right.stats),
                            [left, right])
        left = self.optimize_goal(expr.left, EMPTY_ORDER, bound.value)
        if left is None:
            return
        right = self.optimize_goal(expr.right, EMPTY_ORDER,
                                   bound.value - left.total_cost)
        if right is None:
            return
        all_stats = left.stats.union(right.stats, self.eq)
        union_all = make_plan("UnionAll", left.schema, EMPTY_ORDER, all_stats,
                              0.0, [left, right])
        dedup_stats = all_stats.with_rows(all_stats.distinct_of_set(columns))
        yield make_plan("HashDedup", left.schema, EMPTY_ORDER, dedup_stats,
                        self.cost_model.hash_dedup(all_stats, dedup_stats),
                        [union_all])

    def _limit_candidates(self, expr: Limit, required: SortOrder,
                          bound: _Bound) -> Iterable[PhysicalPlan]:
        child = self.optimize_goal(expr.child, required, bound.value)
        if child is None:
            return
        stats = child.stats.with_rows(min(child.stats.N, expr.k))
        yield make_plan("Limit", child.schema, child.order, stats, 0.0,
                        [child], k=expr.k)
