"""The Volcano-style cost-based optimizer ("PYRO", Section 5.2).

Request-driven search: ``optimize_goal(expr, required_order)`` returns
the cheapest physical plan for a logical expression that *guarantees*
the required sort order, memoised on ``(expr, canonical(order))``.
Every native candidate (scans, joins per interesting order, aggregates,
…) is passed through :meth:`OptimizationRun.enforce`, which appends

* nothing, when the candidate's guaranteed order already satisfies the
  (FD-reduced) requirement;
* a **partial sort enforcer** when a non-empty prefix is shared (the
  paper's extension — standard Volcano only knows full enforcers);
* a full sort enforcer otherwise.

The interesting orders tried at merge joins / sort aggregates / merge
unions come from a pluggable :class:`~repro.core.interesting.OrderStrategy`
(PYRO, PYRO-P, PYRO-O, PYRO-O−, PYRO-E), so all of Experiment B3 runs on
one search engine.  Phase-2 refinement (Section 5.2.2) lives in
:mod:`repro.core.refinement` and re-enters this optimizer with a
:class:`~repro.core.interesting.ForcedOrderStrategy`.

Since the staged-pipeline refactor this module is the *driver*: the
search itself lives in :mod:`repro.optimizer.pipeline` as four explicit
stages (pre-check → join enumeration → physical selection →
parameterization) composed by an
:class:`~repro.optimizer.pipeline.OptimizationPipeline`.  The
:class:`Optimizer` facade builds one pipeline from its
:class:`~repro.optimizer.pipeline.OptimizerConfig` and every entry
point — ``optimize``, phase-2 refinement, ``cost_of`` — reuses it;
:class:`OptimizationRun` drives stages 2–4 for a single query, running
one :class:`~repro.optimizer.pipeline.PhysicalSelection` search per
join-order candidate tree and keeping the cheapest plan.  See
``docs/optimizer.md``.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional

from ..core.interesting import ForcedOrderStrategy, OrderStrategy
from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..logical.algebra import LogicalExpr, OrderBy, referenced_tables
from ..logical.builder import Query
from ..obs.trace import child_span
from ..storage.catalog import Catalog
from .plans import PhysicalPlan
from .pipeline import (
    ExhaustiveEnumerator,
    OptimizationPipeline,
    OptimizerConfig,
    PhysicalSelection,
    parameterize,
)
# Re-exported for compatibility: these lived here before the pipeline
# refactor and the serving layer imports them from this module.
from .pipeline.physical_selection import (  # noqa: F401
    SHARD_TRANSPARENT_OPS,
    _SHARDABLE_SCAN_OPS,
    enforcement_chain_scan,
    shardable_enforcement_input,
)

#: Search-effort counters aggregated across every per-candidate search
#: of a run — the per-stage telemetry surfaced by ``QuerySession.stats``.
_SEARCH_COUNTERS = ("goals_examined", "goals_pruned", "goals_failed",
                    "goals_researched", "memo_hits", "failure_memo_hits")


def split_required_order(query, required_order: Optional[SortOrder] = None
                         ) -> tuple[LogicalExpr, SortOrder]:
    """Normalize an optimizer input: unwrap :class:`Query`, and turn a
    root :class:`OrderBy` into the required output order.  Shared by
    :meth:`Optimizer.optimize` and the serving layer's plan-cache keying
    (:mod:`repro.service.session`) so the two can never diverge."""
    expr = query.expr if isinstance(query, Query) else query
    required = required_order or EMPTY_ORDER
    if isinstance(expr, OrderBy) and not required:
        required = expr.order
        expr = expr.child
    return expr, required


class Optimizer:
    """Public facade: one instance per catalog, reusable across queries."""

    def __init__(self, catalog: Catalog, strategy: str = "pyro-o",
                 config: Optional[OptimizerConfig] = None, **overrides) -> None:
        if config is None:
            config = OptimizerConfig(strategy=strategy)
        else:
            config = replace(config)  # never mutate the caller's config
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown optimizer option {key!r}")
            setattr(config, key, value)
        self.catalog = catalog
        #: Stage 1 runs here, once: every later entry point — optimize,
        #: refinement, cost_of — reuses this pipeline (same resolved
        #: strategy *and* enumerator), never a rebuilt default.
        self.pipeline = OptimizationPipeline.from_config(config)
        self.config = self.pipeline.config
        self._strategy = self.pipeline.strategy
        #: Per-stage telemetry of the most recent :meth:`optimize` call
        #: (refinement re-searches included); see ``docs/optimizer.md``.
        self.last_telemetry: dict[str, float] = {}

    def optimize(self, query, required_order: Optional[SortOrder] = None,
                 refine: Optional[bool] = None,
                 parallelism: Optional[int] = None) -> PhysicalPlan:
        """Optimize a :class:`Query` (or raw logical tree) to a physical plan.

        A root :class:`OrderBy` turns into the required output order.
        Phase-2 refinement is applied according to the config unless
        overridden by *refine*.  *parallelism* overrides the config's
        shard fan-out for this call (the serving layer passes the
        execution-time knob through).
        """
        expr, required = split_required_order(query, required_order)
        # Stage spans are ambient no-ops unless a query trace is active
        # (the serving layer activates one around plan preparation).
        with child_span("pre_check", strategy=self.config.strategy):
            pipeline = self._pipeline_for(parallelism)
            run = OptimizationRun(self.catalog, expr, pipeline.strategy,
                                  pipeline.config, pipeline=pipeline)
        plan = run.optimize(required)
        self.last_telemetry = run.telemetry()
        do_refine = self.config.refine if refine is None else refine
        if do_refine:
            from ..core.refinement import refine_plan
            # Refine the tree the run actually chose — under a
            # reordering enumerator the as-written tree may not match
            # the plan's join shape.
            plan = refine_plan(self, run.chosen_tree, required, plan,
                               parallelism=pipeline.config.parallelism)
        return plan

    def optimize_with_forced_orders(self, expr: LogicalExpr, required: SortOrder,
                                    forced: dict[LogicalExpr, SortOrder],
                                    parallelism: Optional[int] = None) -> PhysicalPlan:
        """Re-plan with explicit permutations at given nodes (phase 2).

        Join enumeration is *not* re-run: phase 2 pins orders onto nodes
        of an already-chosen tree, so the tree is searched as given.
        """
        pipeline = self._pipeline_for(parallelism)
        strategy = ForcedOrderStrategy(pipeline.strategy, forced)
        run = OptimizationRun(self.catalog, expr, strategy, pipeline.config)
        plan = run.optimize_goal(expr, required or EMPTY_ORDER)
        plan = run.ensure_schema(plan, expr)
        self._merge_telemetry(run.telemetry())
        return plan

    def _pipeline_for(self, parallelism: Optional[int]) -> OptimizationPipeline:
        """The constructed pipeline at the requested shard fan-out —
        never a rebuilt default (same strategy/enumerator objects)."""
        return self.pipeline.with_parallelism(parallelism)

    def _config_for(self, parallelism: Optional[int]) -> OptimizerConfig:
        return self._pipeline_for(parallelism).config

    def cost_of(self, query, required_order: Optional[SortOrder] = None,
                parallelism: Optional[int] = None) -> float:
        return self.optimize(query, required_order,
                             parallelism=parallelism).total_cost

    def _merge_telemetry(self, telemetry: dict[str, float]) -> None:
        """Fold a refinement re-search's counters into the last
        :meth:`optimize` telemetry (refinement is part of the same
        logical optimization from the caller's point of view)."""
        if not self.last_telemetry:
            self.last_telemetry = telemetry
            return
        for key, value in telemetry.items():
            if isinstance(value, (int, float)):
                self.last_telemetry[key] = (
                    self.last_telemetry.get(key, 0) + value)


class OptimizationRun(PhysicalSelection):
    """Drives pipeline stages 2–4 for one query.

    Subclasses :class:`~repro.optimizer.pipeline.PhysicalSelection`, so
    the pre-pipeline API — ``optimize_goal``, ``enforce``, the memo and
    the search counters — keeps working on the run itself; that search
    state covers the as-written tree.  :meth:`optimize` additionally
    runs join enumeration (stage 2), searches every candidate tree (a
    fresh :class:`PhysicalSelection` per rewritten tree), keeps the
    cheapest plan, and computes its bind-readiness (stage 4).
    """

    def __init__(self, catalog: Catalog, root: LogicalExpr,
                 strategy: OrderStrategy, config: OptimizerConfig,
                 pipeline: Optional[OptimizationPipeline] = None) -> None:
        super().__init__(catalog, root, strategy, config)
        if pipeline is None:
            # Direct construction (tests, benchmarks, forced-order
            # re-planning): search the tree as written.
            pipeline = OptimizationPipeline(config, strategy,
                                            ExhaustiveEnumerator())
        self.pipeline = pipeline
        #: Stage-2 wall time of the last :meth:`optimize`.
        self.enumerator_seconds = 0.0
        #: Candidate trees actually searched by the last :meth:`optimize`.
        self.join_order_candidates = 0
        #: The candidate tree whose plan won (the as-written tree until
        #: :meth:`optimize` decides otherwise) — phase-2 refinement must
        #: refine this tree, not the original.
        self.chosen_tree: LogicalExpr = root
        #: Stage-4 output: parameter names the chosen plan needs bound.
        self.param_names: frozenset[str] = frozenset()
        self._searches: list[PhysicalSelection] = [self]

    def optimize(self, required: SortOrder) -> PhysicalPlan:
        """Stages 2–4: enumerate join orders, search each candidate,
        return the cheapest plan (bit-identical to the pre-pipeline
        optimizer under the default exhaustive enumerator)."""
        with child_span("join_enumeration",
                        enumerator=type(self.pipeline.enumerator).__name__
                        ) as enum_span:
            start = time.perf_counter()
            trees = list(self.pipeline.enumerator.candidate_trees(
                self.catalog, self.root)) or [self.root]
            self.enumerator_seconds = time.perf_counter() - start
            enum_span.tag(candidates=len(trees))
        root_tables = referenced_tables(self.root)
        root_schema = self.annotator.schema_of(self.root).names
        best: Optional[PhysicalPlan] = None
        best_tree = self.root
        seen: set[LogicalExpr] = set()
        self.join_order_candidates = 0
        with child_span("physical_selection") as select_span:
            for tree in trees:
                if tree in seen:
                    continue
                seen.add(tree)
                if tree == self.root:
                    search: PhysicalSelection = self
                    tree = self.root
                else:
                    # An enumerator's candidate must be exactly equivalent:
                    # same tables, same output columns in the same order.
                    # Anything else (a misbehaving custom enumerator) is
                    # skipped rather than trusted.
                    try:
                        if referenced_tables(tree) != root_tables:
                            continue
                        search = PhysicalSelection(self.catalog, tree,
                                                   self.strategy, self.config)
                        if search.annotator.schema_of(tree).names != root_schema:
                            continue
                    except Exception:
                        continue
                    self._searches.append(search)
                self.join_order_candidates += 1
                plan = search.optimize_goal(tree, required)
                plan = search.ensure_schema(plan, tree)
                if best is None or plan.total_cost < best.total_cost:
                    best = plan
                    best_tree = tree
            if best is None:
                # Every candidate was rejected: fall back to the query as
                # written (always a valid candidate).
                self.join_order_candidates = 1
                best = self.optimize_goal(self.root, required)
                best = self.ensure_schema(best, self.root)
                best_tree = self.root
            select_span.tag(candidates=self.join_order_candidates,
                            cost=best.total_cost)
        self.chosen_tree = best_tree
        with child_span("parameterization"):
            self.param_names = parameterize(best)
        return best

    def telemetry(self) -> dict[str, float]:
        """Per-stage search telemetry, aggregated over every candidate
        search of this run (keys documented in ``docs/optimizer.md``)."""
        out: dict[str, float] = {
            "enumerator_seconds": self.enumerator_seconds,
            "join_order_candidates": self.join_order_candidates,
        }
        for counter in _SEARCH_COUNTERS:
            out[counter] = sum(getattr(s, counter) for s in self._searches)
        return out
