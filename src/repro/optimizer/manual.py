"""Hand-built physical plans.

The paper compares against the plans PostgreSQL, SYS1 and SYS2 produced
(Figures 1, 2, 10, 11, 14).  :class:`PlanBuilder` lets the benchmark
suite encode those exact plan shapes operator-by-operator on our engine,
with consistent statistics and costs — isolating the effect the paper
measures (the choice of sort orders) from engine differences.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.sort_order import (
    AttributeEquivalence,
    EMPTY_ORDER,
    SortOrder,
    longest_common_prefix,
)
from ..expr.aggregates import AggSpec, aggregate_output_schema
from ..expr.expressions import Expression, JoinPredicate, Predicate
from ..storage.catalog import Catalog
from ..storage.schema import Column, Schema
from ..storage.statistics import StatsView
from .cost import CostModel
from .plans import PhysicalPlan, make_plan


class PlanBuilder:
    """Fluent constructor for explicit physical plans.

    Every method returns a :class:`PhysicalPlan` with statistics derived
    the same way the optimizer derives them, so hand-built baselines and
    optimizer output are cost-comparable.
    """

    def __init__(self, catalog: Catalog,
                 eq: Optional[AttributeEquivalence] = None) -> None:
        self.catalog = catalog
        self.eq = eq or AttributeEquivalence()
        self.cost = CostModel(catalog.params, self.eq)

    def equate(self, *pairs: tuple[str, str]) -> "PlanBuilder":
        """Register join equalities so order matching works across sides."""
        for a, b in pairs:
            self.eq.add_equivalence(a, b)
        return self

    # -- scans --------------------------------------------------------------------
    def table_scan(self, table_name: str) -> PhysicalPlan:
        table = self.catalog.table(table_name)
        keys = [table.primary_key] if table.primary_key else []
        stats = StatsView.of_table(table.schema, table.stats, self.eq, keys)
        return make_plan("TableScan", table.schema, table.clustering_order,
                         stats, self.cost.table_scan(stats), table=table_name)

    def clustering_scan(self, table_name: str) -> PhysicalPlan:
        plan = self.table_scan(table_name)
        return make_plan("ClusteringIndexScan", plan.schema, plan.order,
                         plan.stats, plan.self_cost, table=table_name)

    def covering_scan(self, table_name: str, index_name: str) -> PhysicalPlan:
        index = next(ix for ix in self.catalog.indexes_of(table_name)
                     if ix.name == index_name)
        table = index.table
        keys = [table.primary_key] if table.primary_key else []
        stats = StatsView.of_table(table.schema, table.stats, self.eq, keys)
        leaf_stats = stats.projected(list(index.leaf_schema.names))
        return make_plan("CoveringIndexScan", index.leaf_schema, index.key,
                         leaf_stats,
                         self.cost.index_scan(stats.N, index.entry_bytes()),
                         table=table_name, index=index_name)

    # -- row operators ---------------------------------------------------------------
    def filter(self, child: PhysicalPlan, predicate: Predicate) -> PhysicalPlan:
        stats = child.stats.scaled(predicate.selectivity(child.stats))
        return make_plan("Filter", child.schema, child.order, stats,
                         self.cost.filter(child.stats), [child],
                         predicate=predicate)

    def project(self, child: PhysicalPlan, columns: Sequence[str]) -> PhysicalPlan:
        schema = child.schema.project(list(columns))
        order = child.order.restrict_prefix_to(columns, self.eq)
        return make_plan("Project", schema, order,
                         child.stats.projected(list(columns)),
                         self.cost.project(child.stats), [child],
                         columns=tuple(columns))

    def compute(self, child: PhysicalPlan,
                outputs: Sequence[tuple[str, Expression]]) -> PhysicalPlan:
        schema = Schema(list(child.schema)
                        + [Column(n, "num", 8) for n, _ in outputs])
        stats = StatsView(schema, child.stats.N,
                          {c: child.stats.distinct_of(c)
                           for c in child.schema.names}, self.eq)
        return make_plan("Compute", schema, child.order, stats,
                         self.cost.project(child.stats), [child],
                         outputs=tuple(outputs))

    # -- sorting -----------------------------------------------------------------------
    def sort(self, child: PhysicalPlan, order: SortOrder,
             full: bool = False) -> PhysicalPlan:
        """Sort enforcer; a partial sort when the child's order shares a
        prefix (unless *full* forces the SRS behaviour of Experiment A1)."""
        if child.order.satisfies(order, self.eq):
            return child
        prefix = (EMPTY_ORDER if full
                  else longest_common_prefix(order, child.order, self.eq))
        cost = self.cost.coe(child.stats, child.order, order,
                             partial_enabled=not full)
        if prefix:
            return make_plan("PartialSort", child.schema, order, child.stats,
                             cost, [child], prefix=prefix, algorithm="mrs")
        return make_plan("Sort", child.schema, order, child.stats, cost,
                         [child], prefix=EMPTY_ORDER, algorithm="srs")

    # -- joins --------------------------------------------------------------------------
    def merge_join(self, left: PhysicalPlan, right: PhysicalPlan,
                   pairs: Sequence[tuple[str, str]],
                   join_type: str = "inner",
                   sort_inputs: bool = True) -> PhysicalPlan:
        """Merge join on the given pair permutation; by default inserts
        whatever sorts the inputs still need."""
        self.equate(*pairs)
        perm = SortOrder([l for l, _ in pairs])
        right_perm = SortOrder([r for _, r in pairs])
        if sort_inputs:
            left = self.sort(left, perm)
            right = self.sort(right, right_perm)
        predicate = JoinPredicate(pairs)
        stats = left.stats.join(right.stats, list(pairs), self.eq)
        if join_type == "left":
            stats = stats.with_rows(max(stats.N, left.stats.N))
        elif join_type == "full":
            stats = stats.with_rows(max(stats.N, left.stats.N, right.stats.N))
        schema = left.schema.concat(right.schema)
        # FULL OUTER pads left key columns of right-unmatched rows with
        # NULLs mid-stream — no output order (mirrors engine/joins.py and
        # the volcano candidates; sorts above must not be skipped).
        out_order = EMPTY_ORDER if join_type == "full" else perm
        return make_plan("MergeJoin", schema, out_order, stats,
                         self.cost.merge_join(left.stats, right.stats, stats.N),
                         [left, right], predicate=predicate,
                         join_type=join_type)

    def hash_join(self, left: PhysicalPlan, right: PhysicalPlan,
                  pairs: Sequence[tuple[str, str]],
                  join_type: str = "inner") -> PhysicalPlan:
        self.equate(*pairs)
        predicate = JoinPredicate(pairs)
        stats = left.stats.join(right.stats, list(pairs), self.eq)
        if join_type == "left":
            stats = stats.with_rows(max(stats.N, left.stats.N))
        elif join_type == "full":
            stats = stats.with_rows(max(stats.N, left.stats.N, right.stats.N))
        schema = left.schema.concat(right.schema)
        return make_plan("HashJoin", schema, EMPTY_ORDER, stats,
                         self.cost.hash_join(left.stats, right.stats, stats.N),
                         [left, right], predicate=predicate,
                         join_type=join_type)

    # -- aggregation -----------------------------------------------------------------------
    def sort_aggregate(self, child: PhysicalPlan, group_order: SortOrder,
                       aggregates: Sequence[AggSpec],
                       group_columns: Optional[Sequence[str]] = None) -> PhysicalPlan:
        group_columns = list(group_columns or group_order)
        schema = aggregate_output_schema(group_columns, child.schema,
                                         list(aggregates))
        stats = child.stats.grouped(group_columns, schema)
        return make_plan("SortAggregate", schema, group_order, stats,
                         self.cost.sort_aggregate(child.stats), [child],
                         group_columns=tuple(group_columns),
                         aggregates=tuple(aggregates))

    def hash_aggregate(self, child: PhysicalPlan,
                       group_columns: Sequence[str],
                       aggregates: Sequence[AggSpec]) -> PhysicalPlan:
        group_columns = list(group_columns)
        schema = aggregate_output_schema(group_columns, child.schema,
                                         list(aggregates))
        stats = child.stats.grouped(group_columns, schema)
        return make_plan("HashAggregate", schema, EMPTY_ORDER, stats,
                         self.cost.hash_aggregate(child.stats, stats), [child],
                         group_columns=tuple(group_columns),
                         aggregates=tuple(aggregates))

    # -- sets ----------------------------------------------------------------------------------
    def merge_union(self, left: PhysicalPlan, right: PhysicalPlan,
                    order: SortOrder) -> PhysicalPlan:
        left = self.sort(left, order)
        right = self.sort(right, order.translate(
            dict(zip(left.schema.names, right.schema.names))))
        stats = StatsView(left.schema, left.stats.N + right.stats.N,
                          {c: left.stats.distinct_of(c)
                           for c in left.schema.names}, self.eq)
        return make_plan("MergeUnion", left.schema, order, stats,
                         self.cost.merge_union(left.stats, right.stats),
                         [left, right])

    def union_all(self, left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan:
        stats = StatsView(left.schema, left.stats.N + right.stats.N,
                          {c: left.stats.distinct_of(c)
                           for c in left.schema.names}, self.eq)
        return make_plan("UnionAll", left.schema, EMPTY_ORDER, stats, 0.0,
                         [left, right])

    def limit(self, child: PhysicalPlan, k: int) -> PhysicalPlan:
        stats = child.stats.with_rows(min(child.stats.N, k))
        return make_plan("Limit", child.schema, child.order, stats, 0.0,
                         [child], k=k)
