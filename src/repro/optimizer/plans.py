"""Physical plans.

A :class:`PhysicalPlan` is an immutable costed plan node; trees of them
are what the optimizer searches over and what phase-2 refinement
rewrites.  Unlike the engine's operators, physical plans carry
statistics and estimated costs, so stats-only catalogs (the paper-scale
optimizer experiments) can be planned without any data.  For
materialised catalogs, :meth:`PhysicalPlan.to_operator` lowers a plan to
an executable engine operator tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..engine import operators_from_plan  # circular-safe: see engine/lowering.py
from ..storage.schema import Schema
from ..storage.statistics import StatsView


@dataclass(frozen=True)
class PhysicalPlan:
    """One physical operator with children, statistics and cost.

    ``args`` holds operator-specific payload (table name, predicate,
    target order, …) keyed by convention per ``op``; see
    :mod:`repro.engine.lowering` for the authoritative list.
    """

    op: str
    schema: Schema
    order: SortOrder
    stats: StatsView
    self_cost: float
    children: tuple["PhysicalPlan", ...] = ()
    args: tuple[tuple[str, Any], ...] = ()

    # -- payload access -----------------------------------------------------------
    def arg(self, name: str, default: Any = None) -> Any:
        for key, value in self.args:
            if key == name:
                return value
        return default

    @property
    def total_cost(self) -> float:
        return self.self_cost + sum(c.total_cost for c in self.children)

    @property
    def rows(self) -> float:
        return self.stats.N

    # -- traversal ------------------------------------------------------------------
    def walk(self) -> Iterator["PhysicalPlan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find_all(self, op: str) -> list["PhysicalPlan"]:
        return [p for p in self.walk() if p.op == op]

    def with_children(self, children: Sequence["PhysicalPlan"]) -> "PhysicalPlan":
        return PhysicalPlan(self.op, self.schema, self.order, self.stats,
                            self.self_cost, tuple(children), self.args)

    # -- presentation ------------------------------------------------------------------
    def describe(self) -> str:
        detail = {
            "TableScan": lambda: self.arg("table"),
            "ShardedScan": lambda: (f"{self.arg('table')} shard "
                                    f"{self.arg('shard_index')}/{self.arg('shard_count')}"),
            "RangePartitionScan": lambda: (
                f"{self.arg('table')} partition "
                f"{self.arg('partition_index')}/{self.arg('partition_count')}"),
            "ExchangeUnion": lambda: f"{len(self.children)} shards",
            "MergeExchange": lambda: (
                f"{len(self.children)} shards on {self.order}"
                + (", disjoint concat" if self.arg("disjoint") else "")),
            "SortedCombine": lambda: f"combine by {self.order}",
            "ClusteringIndexScan": lambda: f"{self.arg('table')} {self.order}",
            "CoveringIndexScan": lambda: f"{self.arg('table')}.{self.arg('index')} {self.order}",
            "Filter": lambda: f"{self.arg('predicate')}",
            "Project": lambda: ", ".join(self.schema.names),
            "Compute": lambda: ", ".join(n for n, _ in self.arg("outputs", ())),
            "Sort": lambda: f"ε --> {self.order}",
            "PartialSort": lambda: f"{self.arg('prefix')} --> {self.order}",
            "MergeJoin": lambda: f"{self.arg('predicate')} on {self.order}",
            "HashJoin": lambda: f"{self.arg('predicate')}",
            "NestedLoopsJoin": lambda: f"{self.arg('predicate')}",
            "SortAggregate": lambda: f"by {self.order}",
            "HashAggregate": lambda: f"by {{{', '.join(self.arg('group_columns', ()))}}}",
            "MergeUnion": lambda: f"on {self.order}",
            "Dedup": lambda: f"on {self.order}",
        }.get(self.op)
        join_type = self.arg("join_type")
        suffix = f" [{join_type} outer]" if join_type in ("left", "full") else ""
        return (detail() if detail else "") + suffix

    def explain(self, indent: int = 0, with_cost: bool = True) -> str:
        pad = "  " * indent
        cost = f"  (cost={self.total_cost:,.0f}, rows={self.rows:,.0f})" if with_cost else ""
        order = f" [order: {self.order}]" if self.order else ""
        line = f"{pad}{self.op} ({self.describe()}){order}{cost}"
        parts = [line]
        parts.extend(c.explain(indent + 1, with_cost) for c in self.children)
        return "\n".join(parts)

    def signature(self) -> str:
        """Order-and-shape signature for plan comparisons in tests."""
        child_sigs = ",".join(c.signature() for c in self.children)
        return f"{self.op}{self.order}({child_sigs})"

    # -- lowering ---------------------------------------------------------------------
    def to_operator(self, catalog) -> "Any":
        """Lower to an executable engine operator tree."""
        return operators_from_plan(self, catalog)

    def execute(self, catalog, ctx=None) -> list[tuple]:
        """Convenience: lower and run, returning all rows."""
        from ..engine.context import ExecutionContext
        ctx = ctx or ExecutionContext(catalog)
        return list(self.to_operator(catalog).execute(ctx))

    def __repr__(self) -> str:
        return f"PhysicalPlan({self.op}, cost={self.total_cost:,.0f})"


def make_plan(op: str, schema: Schema, order: SortOrder, stats: StatsView,
              self_cost: float, children: Sequence[PhysicalPlan] = (),
              **args: Any) -> PhysicalPlan:
    """Constructor shorthand used throughout the optimizer."""
    return PhysicalPlan(op, schema, order, stats, float(self_cost),
                        tuple(children), tuple(args.items()))
