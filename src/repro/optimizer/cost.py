"""The cost model (Section 3.2), in the paper's I/O cost units.

The centrepiece is ``coe(e, o1, o2)`` — the cost of enforcing order *o2*
on a result that already has order *o1*:

* full sort (``o1 ∧ o2 = ε``)::

      coe(e, ε, o)  =  cpu-cost(e, o)                      if B(e) ≤ M
                       B(e)·(2·⌈log_{M-1}(B(e)/M)⌉ + 1)    otherwise

* partial sort::

      coe(e, o1, o2) = D(e, attrs(os)) · coe(e', ε, or)

  with ``os = o2 ∧ o1``, ``or = o2 − os`` and ``e'`` one partial sort
  segment (``N/D`` rows, ``B/D`` blocks, uniform-distribution
  assumption) — i.e. sort each segment independently and multiply by the
  number of segments.

CPU comparisons are translated into I/O units by the
``cpu_comparisons_per_io`` system parameter (the paper's translation
constant is unpublished; see DESIGN.md §6).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..core.sort_order import (
    AttributeEquivalence,
    EMPTY_ORDER,
    SortOrder,
    longest_common_prefix,
)
from ..storage.catalog import SystemParameters
from ..storage.statistics import StatsView, blocks_for

#: Relative margin a per-shard-sort-plus-merge plan must win by before it
#: replaces the post-union sort.  With everything in memory the two CPU
#: costs are mathematically identical (``N·log2(N/k) + N·log2(k) =
#: N·log2(N)``), differing only by floating-point noise (~1e-16 relative);
#: the margin makes such ties resolve deterministically to the simpler
#: post-union plan while leaving every genuine spill-avoidance win intact.
SHARDED_WIN_MARGIN = 1e-9


def prefer_sharded(sharded_cost: float, post_union_cost: float) -> bool:
    """Tie-break rule shared by the optimizer's enforcer placement and
    the engine-level pushdown rewrite."""
    return sharded_cost < post_union_cost * (1.0 - SHARDED_WIN_MARGIN)


class CostModel:
    """Operator cost estimation against :class:`SystemParameters`."""

    def __init__(self, params: SystemParameters,
                 eq: Optional[AttributeEquivalence] = None) -> None:
        self.params = params
        self.eq = eq

    # -- CPU translation ------------------------------------------------------------
    def cpu(self, comparisons: float) -> float:
        return comparisons / self.params.cpu_comparisons_per_io

    def cpu_sort(self, num_rows: float, segments: float = 1.0) -> float:
        """CPU cost of sorting N rows as *segments* independent segments:
        ``N · log2(N/k)`` comparisons (Section 3.1, benefit 3)."""
        if num_rows <= 1:
            return 0.0
        per_segment = max(2.0, num_rows / max(1.0, segments))
        return self.cpu(num_rows * math.log2(per_segment))

    # -- sorting ---------------------------------------------------------------------
    def full_sort(self, num_rows: float, num_blocks: float) -> float:
        """``coe(e, ε, o)`` for one sort unit (whole input or one segment)."""
        M = self.params.sort_memory_blocks
        cpu = self.cpu_sort(num_rows)
        if num_blocks <= M:
            return cpu
        passes = math.ceil(math.log(max(1.0, num_blocks / M), max(2, M - 1)))
        return num_blocks * (2 * passes + 1) + cpu

    def coe(self, stats: StatsView, from_order: SortOrder, to_order: SortOrder,
            partial_enabled: bool = True) -> float:
        """Cost of enforcing *to_order* given guaranteed *from_order*."""
        if not to_order or to_order.is_prefix_of(from_order, self.eq):
            return 0.0
        shared = longest_common_prefix(to_order, from_order, self.eq)
        if not partial_enabled:
            shared = EMPTY_ORDER
        N, B = stats.N, stats.B(self.params.block_size)
        if N <= 0:
            return 0.0
        if not shared:
            return self.full_sort(N, B)
        segments = max(1.0, stats.distinct_of_set(list(shared)))
        seg_rows = N / segments
        seg_blocks = max(1.0, B / segments)
        return segments * self.full_sort(seg_rows, seg_blocks)

    def merge_exchange(self, num_rows: float, shard_count: int,
                       disjoint: bool = False) -> float:
        """CPU cost of a k-way order-preserving merge of shard streams:
        each of the N output rows pays one heap step of ``log2(k)``
        comparisons.  No I/O — the merge consumes the shard streams
        directly.  *disjoint* marks streams from range partitions that
        are mutually disjoint on the leading merge attribute: the gather
        concatenates instead of heap-merging and costs nothing (see
        :meth:`~repro.engine.exchange.MergeExchange.partition_disjoint`).
        """
        if disjoint or shard_count <= 1 or num_rows <= 0:
            return 0.0
        return self.cpu(num_rows * math.log2(shard_count))

    def sharded_coe(self, stats: StatsView, from_order: SortOrder,
                    to_order: SortOrder, shard_count: int,
                    partial_enabled: bool = True,
                    shard_stats: Optional[Sequence[StatsView]] = None,
                    disjoint_merge: bool = False) -> float:
        """``coe`` with the enforcer pushed below a shard fan-out: *k*
        independent enforcers over the shards (each inheriting the
        input's guaranteed order) plus the order-preserving merge that
        gathers them.

        *shard_stats*, when given, holds the **measured** per-shard
        statistics (actual row counts and distinct counts from the
        shard/partition boundaries) and each shard's enforcer is priced
        individually; otherwise the uniform ``scaled(1/k)`` approximation
        applies to every shard.  The distinction matters under skew: a
        uniform model can call every shard in-memory while one real
        partition spills, or miss that skewed segment counts make the
        per-shard partial sorts cheaper than the average suggests.

        The headline win is an I/O phenomenon: the per-shard CPU exactly
        cancels against the merge (``N·log2(N/k) + N·log2(k) =
        N·log2(N)``), but a post-union sort that spills while the
        individual shards fit in sort memory drops the entire run I/O
        term.  With *disjoint_merge* the merge term vanishes too, so
        even all-in-memory skewed partitions win on comparisons
        (``Σ nᵢ·log2(nᵢ) < N·log2(N)``).
        """
        if shard_count <= 1:
            return self.coe(stats, from_order, to_order, partial_enabled)
        if not to_order or to_order.is_prefix_of(from_order, self.eq):
            return 0.0
        if shard_stats is not None:
            per_shard = sum(self.coe(s, from_order, to_order, partial_enabled)
                            for s in shard_stats)
        else:
            uniform = stats.scaled(1.0 / shard_count)
            per_shard = shard_count * self.coe(uniform, from_order, to_order,
                                               partial_enabled)
        return per_shard + self.merge_exchange(stats.N, shard_count,
                                               disjoint=disjoint_merge)

    def sharded_join(self, left_shards: Sequence[StatsView], right: StatsView,
                     out_rows: float, disjoint_merge: bool = False) -> float:
        """Per-shard merge joins gathered by an order-preserving merge:
        shard *i* joins its slice of the left input against the (whole,
        broadcast — or co-partitioned slice of the) right input, and the
        join outputs merge on the join permutation.  Join output rows are
        apportioned to shards by their share of the left rows — measured
        per-shard row counts make this exact for co-partitioned inputs.

        The broadcast cost of replicating the right subtree into every
        shard pipeline is **not** included here: it shows up as the right
        plan appearing k times in the plan tree, so ``total_cost`` already
        charges it — this formula prices only the join + merge work.
        """
        total_left = sum(s.N for s in left_shards) or 1.0
        join_cpu = sum(
            self.merge_join(s, right, out_rows * s.N / total_left)
            for s in left_shards)
        return join_cpu + self.merge_exchange(out_rows, len(left_shards),
                                              disjoint=disjoint_merge)

    def sharded_agg(self, shard_stats: Sequence[StatsView],
                    group_columns: Sequence[str],
                    disjoint_merge: bool = False) -> float:
        """Per-shard sort aggregation under a merge, plus the final
        combine: each shard streams its rows once, the merge gathers one
        *partial* row per per-shard group (real per-shard distinct counts
        — under clustering skew far fewer than ``k·D/k = D``), and the
        combine folds boundary-straddling groups back together.
        """
        partial_rows = sum(s.distinct_of_set(list(group_columns))
                           for s in shard_stats)
        agg_cpu = sum(self.sort_aggregate(s) for s in shard_stats)
        return (agg_cpu
                + self.merge_exchange(partial_rows, len(shard_stats),
                                      disjoint=disjoint_merge)
                + self.combine_groups(partial_rows))

    def combine_groups(self, partial_rows: float) -> float:
        """Final-combine stage of a sharded aggregation: one pass over
        the merged per-shard partial rows."""
        return self.cpu(partial_rows)

    def sharded_dedup(self, shard_stats: Sequence[StatsView],
                      columns: Sequence[str],
                      disjoint_merge: bool = False) -> float:
        """Per-shard DISTINCT under a merge, plus the merge-level final
        dedup: each shard streams its (sorted) rows once, the merge
        gathers one row per per-shard distinct value — duplicates living
        in one shard are already gone, so the merge input shrinks to the
        per-shard distinct counts — and a final streaming dedup above
        the merge drops the duplicates that straddled shard boundaries
        (adjacent after the order-preserving merge).
        """
        partial_rows = sum(s.distinct_of_set(list(columns))
                           for s in shard_stats)
        dedup_cpu = sum(self.dedup(s) for s in shard_stats)
        return (dedup_cpu
                + self.merge_exchange(partial_rows, len(shard_stats),
                                      disjoint=disjoint_merge)
                + self.cpu(partial_rows))

    # -- scans ----------------------------------------------------------------------
    def table_scan(self, stats: StatsView) -> float:
        return float(stats.B(self.params.block_size))

    def index_scan(self, num_rows: float, entry_bytes: int) -> float:
        return float(blocks_for(num_rows, entry_bytes, self.params.block_size))

    # -- joins ----------------------------------------------------------------------
    def merge_join(self, left: StatsView, right: StatsView, out_rows: float) -> float:
        return self.cpu(left.N + right.N + out_rows)

    def hash_join(self, build: StatsView, probe: StatsView, out_rows: float) -> float:
        cpu_units = (build.N + probe.N) / self.params.hash_build_rows_per_io
        cost = cpu_units + self.cpu(out_rows)
        if build.B(self.params.block_size) > self.params.sort_memory_blocks:
            cost += 2.0 * (build.B(self.params.block_size)
                           + probe.B(self.params.block_size))
        return cost

    def nested_loops_join(self, outer: StatsView, inner: StatsView,
                          out_rows: float) -> float:
        """Block NL: one inner re-read per outer memory-load (mirrors the
        executor's charging), plus the quadratic CPU term."""
        cap_rows = max(2, self.params.sort_memory_bytes
                       // max(1, outer.schema.row_bytes))
        loads = math.ceil(outer.N / cap_rows) if outer.N else 0
        io = loads * inner.B(self.params.block_size)
        return io + self.cpu(outer.N * inner.N)

    # -- aggregation / sets ------------------------------------------------------------
    def sort_aggregate(self, in_stats: StatsView) -> float:
        return self.cpu(in_stats.N)

    def hash_aggregate(self, in_stats: StatsView, out_stats: StatsView) -> float:
        cost = in_stats.N / self.params.hash_build_rows_per_io
        out_blocks = out_stats.B(self.params.block_size)
        if out_blocks > self.params.sort_memory_blocks:
            cost += 2.0 * out_blocks
        return cost

    def merge_union(self, left: StatsView, right: StatsView) -> float:
        return self.cpu(left.N + right.N)

    def dedup(self, stats: StatsView) -> float:
        return self.cpu(stats.N)

    def hash_dedup(self, in_stats: StatsView, out_stats: StatsView) -> float:
        return self.hash_aggregate(in_stats, out_stats)

    def filter(self, in_stats: StatsView) -> float:
        return self.cpu(in_stats.N)

    def project(self, in_stats: StatsView) -> float:
        return self.cpu(0.1 * in_stats.N)
