"""Logical algebra, query builder and functional-dependency reasoning."""

from .algebra import (
    Annotator,
    BaseRelation,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Limit,
    LogicalExpr,
    OrderBy,
    Project,
    Select,
    Union,
    referenced_tables,
)
from .builder import Query
from .fds import FDSet, query_fds
from .fingerprint import canonical_text, logical_fingerprint

__all__ = [
    "Annotator",
    "BaseRelation",
    "Compute",
    "Distinct",
    "FDSet",
    "GroupBy",
    "Join",
    "Limit",
    "LogicalExpr",
    "OrderBy",
    "Project",
    "Query",
    "Select",
    "Union",
    "canonical_text",
    "logical_fingerprint",
    "query_fds",
    "referenced_tables",
]
