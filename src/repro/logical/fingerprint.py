"""Stable fingerprints of logical expressions.

A fingerprint is a SHA-256 digest of a *canonical serialization* of a
logical query tree plus its required output order.  Two structurally
identical queries — built in different sessions, from different builder
call chains — always produce the same fingerprint, which is what lets
the serving layer's :class:`~repro.service.plan_cache.PlanCache` key
plans on query shape rather than object identity.

Why not ``hash(expr)``?  Python hashes are salted per process for
strings and say nothing across runs; the memo table inside one
optimization run can use them, a serving cache that outlives queries
cannot.  The canonical text is explicit and type-tagged (``const:int:5``
vs ``col:5`` can never collide), and named parameters serialize as
``param:name`` so every binding of a prepared query shares one entry.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..expr.aggregates import AggSpec
from ..expr.expressions import (
    And,
    BinOp,
    Col,
    Comparison,
    Const,
    Expression,
    JoinPredicate,
    Or,
    Param,
)
from .algebra import (
    BaseRelation,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Limit,
    LogicalExpr,
    OrderBy,
    Project,
    Select,
    Union,
)


def _expr_text(expr: Expression) -> str:
    """Canonical, type-tagged serialization of a scalar expression."""
    if isinstance(expr, Col):
        return f"col:{expr.name}"
    if isinstance(expr, Param):
        return f"param:{expr.name}"
    if isinstance(expr, Const):
        return f"const:{type(expr.value).__name__}:{expr.value!r}"
    if isinstance(expr, BinOp):
        return f"(bin {expr.op} {_expr_text(expr.left)} {_expr_text(expr.right)})"
    if isinstance(expr, Comparison):
        return f"(cmp {expr.op} {_expr_text(expr.left)} {_expr_text(expr.right)})"
    if isinstance(expr, And):
        return "(and " + " ".join(_expr_text(p) for p in expr.parts) + ")"
    if isinstance(expr, Or):
        return "(or " + " ".join(_expr_text(p) for p in expr.parts) + ")"
    raise TypeError(f"cannot fingerprint expression {type(expr).__name__}")


def _agg_text(spec: AggSpec) -> str:
    return f"(agg {spec.func} {_expr_text(spec.arg)} as {spec.output_name})"


def _join_pred_text(pred: JoinPredicate) -> str:
    return "[" + ",".join(f"{l}={r}" for l, r in pred.pairs) + "]"


def _order_text(order: SortOrder) -> str:
    return "(" + ",".join(order.as_tuple) + ")"


def _node_text(expr: LogicalExpr) -> str:
    """Canonical serialization of a logical operator tree."""
    if isinstance(expr, BaseRelation):
        return f"(rel {expr.table_name})"
    if isinstance(expr, Select):
        return f"(select {_expr_text(expr.predicate)} {_node_text(expr.child)})"
    if isinstance(expr, Project):
        return f"(project [{','.join(expr.columns)}] {_node_text(expr.child)})"
    if isinstance(expr, Compute):
        outs = " ".join(f"{name}={_expr_text(e)}" for name, e in expr.outputs)
        return f"(compute {outs} {_node_text(expr.child)})"
    if isinstance(expr, Join):
        return (f"(join:{expr.join_type} {_join_pred_text(expr.predicate)} "
                f"{_node_text(expr.left)} {_node_text(expr.right)})")
    if isinstance(expr, GroupBy):
        aggs = " ".join(_agg_text(a) for a in expr.aggregates)
        return (f"(group [{','.join(expr.group_columns)}] {aggs} "
                f"{_node_text(expr.child)})")
    if isinstance(expr, Distinct):
        return f"(distinct {_node_text(expr.child)})"
    if isinstance(expr, Union):
        return f"(union {_node_text(expr.left)} {_node_text(expr.right)})"
    if isinstance(expr, OrderBy):
        return f"(orderby {_order_text(expr.order)} {_node_text(expr.child)})"
    if isinstance(expr, Limit):
        return f"(limit {expr.k} {_node_text(expr.child)})"
    raise TypeError(f"cannot fingerprint logical node {type(expr).__name__}")


def canonical_text(expr: LogicalExpr,
                   required_order: Optional[SortOrder] = None) -> str:
    """Human-readable canonical form (the fingerprint's preimage)."""
    required = required_order or EMPTY_ORDER
    return f"{_node_text(expr)} order_by={_order_text(required)}"


def logical_fingerprint(expr: LogicalExpr,
                        required_order: Optional[SortOrder] = None) -> str:
    """SHA-256 hex digest identifying *expr* + required output order."""
    text = canonical_text(expr, required_order)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
