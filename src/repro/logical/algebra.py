"""Logical algebra: the optimizer's input language.

Nodes are immutable and hashable (they key the optimizer's memo table).
Supported shapes cover the paper's entire workload: select-project-join
trees with inner/left/full-outer joins, grouping/aggregation, duplicate
elimination, distinct union, computed columns and a root ORDER BY.

Schema/statistics derivation lives in :class:`Annotator`, which walks a
query once and caches per-node :class:`~repro.storage.statistics.StatsView`,
output schemas, attribute equivalence classes (from join equalities) and
the set of attributes each base table must supply (used to decide which
indexes *cover the query*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..core.sort_order import AttributeEquivalence, SortOrder
from ..expr.aggregates import AggSpec, aggregate_output_schema
from ..expr.expressions import Expression, JoinPredicate, Predicate
from ..storage.catalog import Catalog
from ..storage.schema import Column, Schema
from ..storage.statistics import StatsView


class LogicalExpr:
    """Base class for logical operators (immutable, hashable)."""

    children: tuple["LogicalExpr", ...] = ()

    def walk(self) -> Iterator["LogicalExpr"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.label()}"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)

    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class BaseRelation(LogicalExpr):
    """A reference to a catalog table."""

    table_name: str

    def label(self) -> str:
        return f"Relation({self.table_name})"


@dataclass(frozen=True)
class Select(LogicalExpr):
    """σ — filter by a predicate."""

    child: LogicalExpr
    predicate: Predicate

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))

    def label(self) -> str:
        return f"Select({self.predicate})"


@dataclass(frozen=True)
class Project(LogicalExpr):
    """π — keep the named columns, in order."""

    child: LogicalExpr
    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))

    def label(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass(frozen=True)
class Compute(LogicalExpr):
    """Extend rows with computed columns ``(name, expression)``."""

    child: LogicalExpr
    outputs: tuple[tuple[str, Expression], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))

    def label(self) -> str:
        return "Compute(" + ", ".join(f"{n}={e}" for n, e in self.outputs) + ")"


@dataclass(frozen=True)
class Join(LogicalExpr):
    """Equi-join (inner / left / full outer) on conjunctive equalities."""

    left: LogicalExpr
    right: LogicalExpr
    predicate: JoinPredicate
    join_type: str = "inner"

    def __post_init__(self) -> None:
        if self.join_type not in ("inner", "left", "full"):
            raise ValueError(f"bad join type {self.join_type!r}")
        object.__setattr__(self, "children", (self.left, self.right))

    def label(self) -> str:
        kind = "" if self.join_type == "inner" else f" {self.join_type.upper()} OUTER"
        return f"Join{kind}({self.predicate})"


@dataclass(frozen=True)
class GroupBy(LogicalExpr):
    """Grouping + aggregation."""

    child: LogicalExpr
    group_columns: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))

    def label(self) -> str:
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"GroupBy({', '.join(self.group_columns)}; {aggs})"


@dataclass(frozen=True)
class Distinct(LogicalExpr):
    """Duplicate elimination over all columns."""

    child: LogicalExpr

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))


@dataclass(frozen=True)
class Union(LogicalExpr):
    """Set union (duplicate-eliminating) of two compatible inputs."""

    left: LogicalExpr
    right: LogicalExpr

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.left, self.right))


@dataclass(frozen=True)
class OrderBy(LogicalExpr):
    """Root-level ORDER BY: a required physical property, not an operator."""

    child: LogicalExpr
    order: SortOrder

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))

    def label(self) -> str:
        return f"OrderBy{self.order}"


@dataclass(frozen=True)
class Limit(LogicalExpr):
    """Keep the first *k* rows of the (ordered) child."""

    child: LogicalExpr
    k: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", (self.child,))

    def label(self) -> str:
        return f"Limit({self.k})"


def referenced_tables(expr: LogicalExpr) -> frozenset[str]:
    """Names of every base table the expression reads.

    The serving layer keys cached plans on the statistics versions of
    exactly these tables, so a stats refresh on an unrelated table never
    evicts a plan that does not depend on it.
    """
    return frozenset(node.table_name for node in expr.walk()
                     if isinstance(node, BaseRelation))


class Annotator:
    """Derives schemas, statistics, equivalences and per-table used
    attributes for a whole query, with per-node caching."""

    def __init__(self, catalog: Catalog, root: LogicalExpr) -> None:
        self.catalog = catalog
        self.root = root
        self._schema: dict[LogicalExpr, Schema] = {}
        self._stats: dict[LogicalExpr, StatsView] = {}
        self.eq = AttributeEquivalence()
        self._collect_equivalences(root)
        self._used_attrs: dict[str, frozenset[str]] = self._collect_used_attrs(root)

    # -- equivalence classes --------------------------------------------------------
    def _collect_equivalences(self, expr: LogicalExpr) -> None:
        for a, b in self._equivalence_pairs(expr):
            self.eq.add_equivalence(a, b)

    def _equivalence_pairs(self, expr: LogicalExpr) -> list[tuple[str, str]]:
        """Attribute pairs provably equal on every row *expr* produces.

        Only INNER join equalities are true equivalences: an outer join
        pads one side's columns with NULLs on unmatched rows, so
        ``l = r`` does not hold row-by-row and orders must not transfer
        across the pair (mirrors query_fds).

        A :class:`Union` *intersects* its branches: a pair of output
        columns is equivalent only when both branches guarantee it
        (right branch tested under the positional rename) — an equality
        established by one branch's join does not hold on the sibling's
        rows, even when the branches reuse the same column names.
        Branch-internal pairs over columns invisible above the union are
        dropped (conservative, and nothing above can name them).
        """
        if isinstance(expr, Union):
            left_eq = AttributeEquivalence()
            for a, b in self._equivalence_pairs(expr.left):
                left_eq.add_equivalence(a, b)
            right_eq = AttributeEquivalence()
            for a, b in self._equivalence_pairs(expr.right):
                right_eq.add_equivalence(a, b)
            lnames = self.schema_of(expr.left).names
            rename = dict(zip(lnames, self.schema_of(expr.right).names))
            kept: list[tuple[str, str]] = []
            for i, a in enumerate(lnames):
                for b in lnames[i + 1:]:
                    if left_eq.same(a, b) and right_eq.same(rename[a],
                                                            rename[b]):
                        kept.append((a, b))
            return kept
        pairs: list[tuple[str, str]] = []
        if isinstance(expr, Join) and expr.join_type == "inner":
            pairs.extend(expr.predicate.pairs)
        for child in expr.children:
            pairs.extend(self._equivalence_pairs(child))
        return pairs

    # -- used attributes per base table ----------------------------------------------
    def _collect_used_attrs(self, root: LogicalExpr) -> dict[str, frozenset[str]]:
        """Which columns each base table must deliver for this query.

        An index *covers the query* for table R iff it contains every
        column of R referenced anywhere — unless a Project explicitly
        narrows the need.  We approximate conservatively: all columns
        referenced by predicates, join pairs, group keys, aggregates,
        computed outputs, orders — plus all columns of the root schema.
        """
        used: set[str] = set()
        for node in root.walk():
            if isinstance(node, Select):
                used |= node.predicate.columns()
            elif isinstance(node, Join):
                used |= {c for pair in node.predicate.pairs for c in pair}
            elif isinstance(node, GroupBy):
                used |= set(node.group_columns)
                for spec in node.aggregates:
                    used |= spec.columns()
            elif isinstance(node, Compute):
                used |= {c for _, e in node.outputs for c in e.columns()}
            elif isinstance(node, OrderBy):
                used |= set(node.order)
            elif isinstance(node, Project):
                used |= set(node.columns)
        used |= set(self.schema_of(root).names)

        per_table: dict[str, frozenset[str]] = {}
        for node in root.walk():
            if isinstance(node, BaseRelation):
                table = self.catalog.table(node.table_name)
                cols = frozenset(table.schema.names)
                needed = cols & used
                # Never let a table contribute zero columns.
                per_table[node.table_name] = needed or cols
        return per_table

    def used_attrs(self, table_name: str) -> frozenset[str]:
        table = self.catalog.table(table_name)
        return self._used_attrs.get(table_name, frozenset(table.schema.names))

    # -- schema -------------------------------------------------------------------------
    def schema_of(self, expr: LogicalExpr) -> Schema:
        cached = self._schema.get(expr)
        if cached is not None:
            return cached
        schema = self._derive_schema(expr)
        self._schema[expr] = schema
        return schema

    def _derive_schema(self, expr: LogicalExpr) -> Schema:
        if isinstance(expr, BaseRelation):
            return self.catalog.table(expr.table_name).schema
        if isinstance(expr, (Select, Distinct, OrderBy, Limit)):
            return self.schema_of(expr.children[0])
        if isinstance(expr, Project):
            return self.schema_of(expr.child).project(list(expr.columns))
        if isinstance(expr, Compute):
            base = self.schema_of(expr.child)
            extra = [Column(name, "num", 8) for name, _ in expr.outputs]
            return Schema(list(base) + extra)
        if isinstance(expr, Join):
            return self.schema_of(expr.left).concat(self.schema_of(expr.right))
        if isinstance(expr, GroupBy):
            return aggregate_output_schema(list(expr.group_columns),
                                           self.schema_of(expr.child),
                                           list(expr.aggregates))
        if isinstance(expr, Union):
            return self.schema_of(expr.left)
        raise TypeError(f"unknown logical node {type(expr).__name__}")

    # -- statistics ------------------------------------------------------------------------
    def stats_of(self, expr: LogicalExpr) -> StatsView:
        cached = self._stats.get(expr)
        if cached is not None:
            return cached
        stats = self._derive_stats(expr)
        self._stats[expr] = stats
        return stats

    def _derive_stats(self, expr: LogicalExpr) -> StatsView:
        if isinstance(expr, BaseRelation):
            table = self.catalog.table(expr.table_name)
            keys = [table.primary_key] if table.primary_key else []
            return StatsView.of_table(table.schema, table.stats, self.eq, keys)
        if isinstance(expr, Select):
            child = self.stats_of(expr.child)
            return child.scaled(expr.predicate.selectivity(child))
        if isinstance(expr, Project):
            return self.stats_of(expr.child).projected(list(expr.columns))
        if isinstance(expr, Compute):
            child = self.stats_of(expr.child)
            return StatsView(self.schema_of(expr), child.N,
                             {c: child.distinct_of(c) for c in child.schema.names},
                             self.eq)
        if isinstance(expr, Join):
            lstats, rstats = self.stats_of(expr.left), self.stats_of(expr.right)
            joined = lstats.join(rstats, list(expr.predicate.pairs), self.eq)
            if expr.join_type == "left":
                return joined.with_rows(max(joined.N, lstats.N))
            if expr.join_type == "full":
                return joined.with_rows(max(joined.N, lstats.N, rstats.N))
            return joined
        if isinstance(expr, GroupBy):
            return self.stats_of(expr.child).grouped(
                list(expr.group_columns), self.schema_of(expr))
        if isinstance(expr, Distinct):
            child = self.stats_of(expr.child)
            return child.with_rows(child.distinct_of_set(child.schema.names))
        if isinstance(expr, Union):
            lstats, rstats = self.stats_of(expr.left), self.stats_of(expr.right)
            return lstats.union(rstats, self.eq)
        if isinstance(expr, (OrderBy, Limit)):
            child = self.stats_of(expr.children[0])
            if isinstance(expr, Limit):
                return child.with_rows(min(child.N, expr.k))
            return child
        raise TypeError(f"unknown logical node {type(expr).__name__}")
