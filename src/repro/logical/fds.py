"""Functional-dependency reasoning for order reduction.

Complementary to the paper (it cites Simmen et al. [SSM96] for this),
but required to reproduce its Query 3 discussion: PostgreSQL "uses a
hash aggregate where a sort-based aggregate would have been much cheaper
as the required sort order was available from the output of merge-join
(note that the functional dependency {ps_partkey, ps_suppkey} →
{ps_availqty} holds)".

:class:`FDSet` collects dependencies from declared table keys, join
equalities (``a = b`` gives ``a → b`` and ``b → a``) and
constant-binding filters (``col = 5`` gives ``∅ → col``), and offers:

* :meth:`FDSet.closure` — attribute-set closure (textbook algorithm);
* :meth:`FDSet.reduce_order` — drop order attributes functionally
  determined by their predecessors;
* :meth:`FDSet.reduce_group_columns` — minimal sort-key subset of a
  GROUP BY column set.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.sort_order import SortOrder
from ..expr.expressions import And, Col, Comparison, Const, Predicate
from ..storage.schema import FunctionalDependency


class FDSet:
    """A set of functional dependencies with closure computation."""

    def __init__(self, fds: Iterable[FunctionalDependency] = ()) -> None:
        self._fds: list[FunctionalDependency] = list(fds)

    def add(self, fd: FunctionalDependency) -> None:
        self._fds.append(fd)

    def add_key(self, key_columns: Iterable[str], all_columns: Iterable[str]) -> None:
        self._fds.append(FunctionalDependency.key(key_columns, all_columns))

    def add_equivalence(self, a: str, b: str) -> None:
        self._fds.append(FunctionalDependency(frozenset({a}), frozenset({b})))
        self._fds.append(FunctionalDependency(frozenset({b}), frozenset({a})))

    def add_constant(self, column: str) -> None:
        """``col = const`` filters make the column constant: ∅ → col
        (modelled as determinable from any attribute set, via a marker)."""
        self._fds.append(FunctionalDependency(frozenset({_ALWAYS}), frozenset({column})))

    def add_from_predicate(self, predicate: Predicate) -> None:
        for conj in predicate.conjuncts():
            if isinstance(conj, Comparison) and conj.op == "=":
                left, right = conj.left, conj.right
                if isinstance(left, Col) and isinstance(right, Const):
                    self.add_constant(left.name)
                elif isinstance(right, Col) and isinstance(left, Const):
                    self.add_constant(right.name)
                elif isinstance(left, Col) and isinstance(right, Col):
                    self.add_equivalence(left.name, right.name)

    def __len__(self) -> int:
        return len(self._fds)

    def __iter__(self):
        return iter(self._fds)

    # -- reasoning -----------------------------------------------------------------
    def closure(self, attrs: Iterable[str]) -> frozenset[str]:
        """All attributes functionally determined by *attrs*."""
        closed = set(attrs)
        closed.add(_ALWAYS)
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.determinants <= closed and not fd.dependents <= closed:
                    closed |= fd.dependents
                    changed = True
        closed.discard(_ALWAYS)
        return frozenset(closed)

    def determines(self, attrs: Iterable[str], target: str) -> bool:
        return target in self.closure(attrs)

    def reduce_order(self, order: SortOrder) -> SortOrder:
        """Drop attributes determined by their predecessors.

        A stream sorted on the reduced order is necessarily sorted on the
        original (each dropped attribute is constant within any group of
        its predecessors).
        """
        kept: list[str] = []
        for attr in order:
            if not self.determines(kept, attr):
                kept.append(attr)
        return SortOrder(kept)

    def reduce_group_columns(self, columns: Iterable[str]) -> tuple[str, ...]:
        """A minimal subset of *columns* whose closure covers them all.

        Greedy elimination in reverse declaration order — deterministic,
        not guaranteed globally minimum (that problem is itself hard),
        but exact for key-based FDs like Query 3's.
        """
        cols = list(columns)
        keep = list(cols)
        for col in reversed(cols):
            candidate = [c for c in keep if c != col]
            if col in self.closure(candidate):
                keep = candidate
        return tuple(keep)


#: Internal marker treated as a member of every closure seed, letting
#: "constant column" FDs fire unconditionally.
_ALWAYS = "⊤"


def query_fds(catalog, root) -> FDSet:
    """Collect the FDs valid on (sub)results of a query.

    Base-table keys hold on every result that retains those columns;
    join equalities and constant filters are added from the tree.

    A :class:`~repro.logical.algebra.Union` is a fact *intersection*: a
    dependency holds on union output only if it holds in **both**
    branches (with right-branch columns renamed to the left/output
    names) — a key or join equality established in one branch says
    nothing about the sibling's rows, even when the branches reuse the
    same column names.  Each branch FD is kept iff the other branch
    *entails* it (closure test), a sound approximation of the exact
    FD-set intersection.
    """
    from .algebra import Annotator, BaseRelation, Join, Select, Union

    def collect(node) -> FDSet:
        if isinstance(node, Union):
            left_fds = collect(node.left)
            right_fds = collect(node.right)
            lnames = Annotator(catalog, node.left).schema_of(node.left).names
            rnames = Annotator(catalog, node.right).schema_of(node.right).names
            to_right = dict(zip(lnames, rnames))
            to_left = dict(zip(rnames, lnames))
            return _intersect_fds(left_fds, right_fds, to_right, to_left)
        fds = FDSet()
        if isinstance(node, BaseRelation):
            table = catalog.table(node.table_name)
            for fd in table.functional_dependencies():
                fds.add(fd)
        elif isinstance(node, Join):
            if node.join_type == "inner":
                for l, r in node.predicate.pairs:
                    fds.add_equivalence(l, r)
        elif isinstance(node, Select):
            fds.add_from_predicate(node.predicate)
        for child in node.children:
            for fd in collect(child):
                fds.add(fd)
        return fds

    return collect(root)


def _rename_fd(fd: FunctionalDependency,
               mapping: dict[str, str]) -> FunctionalDependency:
    """Translate an FD across a positional schema rename (the ``⊤``
    constant marker and columns outside the schema pass through)."""
    return FunctionalDependency(
        frozenset(mapping.get(a, a) for a in fd.determinants),
        frozenset(mapping.get(a, a) for a in fd.dependents))


def _intersect_fds(left: FDSet, right: FDSet, to_right: dict[str, str],
                   to_left: dict[str, str]) -> FDSet:
    """FDs (in left/output names) entailed by **both** branch FD sets."""
    out = FDSet()
    seen: set[tuple[frozenset, frozenset]] = set()
    for fd in left:
        translated = _rename_fd(fd, to_right)
        if translated.dependents <= right.closure(translated.determinants):
            key = (fd.determinants, fd.dependents)
            if key not in seen:
                seen.add(key)
                out.add(fd)
    for fd in right:
        translated = _rename_fd(fd, to_left)
        if translated.dependents <= left.closure(translated.determinants):
            key = (translated.determinants, translated.dependents)
            if key not in seen:
                seen.add(key)
                out.add(translated)
    return out
