"""Fluent query builder.

Thin sugar over :mod:`repro.logical.algebra`, so examples and tests read
like the paper's SQL.  Example (the paper's Query 3)::

    q = (Query.table("partsupp")
         .join("lineitem", on=[("ps_suppkey", "l_suppkey"),
                               ("ps_partkey", "l_partkey")])
         .where(col("l_linestatus").eq("O"))
         .group_by(["ps_availqty", "ps_partkey", "ps_suppkey"],
                   agg_sum(col("l_quantity"), "sum_qty"))
         .having(col("sum_qty").gt(col("ps_availqty")))
         .order_by("ps_partkey"))
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union as TUnion

from ..core.sort_order import SortOrder
from ..expr.aggregates import AggSpec
from ..expr.expressions import Expression, JoinPredicate, Predicate
from .algebra import (
    BaseRelation,
    Compute,
    Distinct,
    GroupBy,
    Join,
    Limit,
    LogicalExpr,
    OrderBy,
    Project,
    Select,
    Union,
)


class Query:
    """Immutable builder wrapping a :class:`LogicalExpr`."""

    def __init__(self, expr: LogicalExpr) -> None:
        self.expr = expr

    # -- sources ---------------------------------------------------------------
    @staticmethod
    def table(name: str) -> "Query":
        return Query(BaseRelation(name))

    @staticmethod
    def of(expr: LogicalExpr) -> "Query":
        return Query(expr)

    # -- relational operators -----------------------------------------------------
    def where(self, predicate: Predicate) -> "Query":
        return Query(Select(self.expr, predicate))

    def select(self, *columns: str) -> "Query":
        return Query(Project(self.expr, tuple(columns)))

    def compute(self, **outputs: Expression) -> "Query":
        return Query(Compute(self.expr, tuple(outputs.items())))

    def join(self, other: TUnion[str, "Query", LogicalExpr],
             on: Sequence[tuple[str, str]], how: str = "inner") -> "Query":
        right = _to_expr(other)
        return Query(Join(self.expr, right, JoinPredicate(on), how))

    def full_outer_join(self, other, on: Sequence[tuple[str, str]]) -> "Query":
        return self.join(other, on, how="full")

    def left_outer_join(self, other, on: Sequence[tuple[str, str]]) -> "Query":
        return self.join(other, on, how="left")

    def group_by(self, columns: Sequence[str], *aggregates: AggSpec) -> "Query":
        return Query(GroupBy(self.expr, tuple(columns), tuple(aggregates)))

    def having(self, predicate: Predicate) -> "Query":
        """Filter applied after grouping (identical node to WHERE; it
        simply references aggregate output columns)."""
        return Query(Select(self.expr, predicate))

    def distinct(self) -> "Query":
        return Query(Distinct(self.expr))

    def union(self, other: TUnion[str, "Query", LogicalExpr]) -> "Query":
        return Query(Union(self.expr, _to_expr(other)))

    def order_by(self, *columns: str) -> "Query":
        return Query(OrderBy(self.expr, SortOrder(columns)))

    def limit(self, k: int) -> "Query":
        return Query(Limit(self.expr, k))

    # -- introspection ---------------------------------------------------------------
    def pretty(self) -> str:
        return self.expr.pretty()

    def __repr__(self) -> str:
        return f"Query(\n{self.pretty()}\n)"


def _to_expr(source: TUnion[str, Query, LogicalExpr]) -> LogicalExpr:
    if isinstance(source, str):
        return BaseRelation(source)
    if isinstance(source, Query):
        return source.expr
    if isinstance(source, LogicalExpr):
        return source
    raise TypeError(f"cannot treat {source!r} as a query source")
