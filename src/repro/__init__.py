"""repro — reproduction of *Reducing Order Enforcement Cost in Complex
Query Plans* (Guravannavar, Sudarshan, Diwan, Sobhan Babu; ICDE 2007).

The package provides:

* a complete in-memory database substrate with simulated block I/O
  (:mod:`repro.storage`, :mod:`repro.engine`);
* the paper's modified replacement-selection sort exploiting partial
  sort orders (:mod:`repro.engine.sorting`);
* a Volcano-style cost-based optimizer with partial-sort enforcers and
  pluggable interesting-order strategies (:mod:`repro.optimizer`);
* the paper's order-selection algorithms — PathOrder DP, the tree
  2-approximation, favorable orders — in :mod:`repro.core`;
* workload generators and the benchmark harness reproducing every table
  and figure of the paper's evaluation (:mod:`repro.workloads`,
  :mod:`repro.bench`).
"""

from .core.sort_order import (
    EMPTY_ORDER,
    AttributeEquivalence,
    SortOrder,
    longest_common_prefix,
)
from .storage import Catalog, Column, Schema, SystemParameters, Table, TableStats

__version__ = "1.0.0"

__all__ = [
    "AttributeEquivalence",
    "Catalog",
    "Column",
    "EMPTY_ORDER",
    "Schema",
    "SortOrder",
    "SystemParameters",
    "Table",
    "TableStats",
    "longest_common_prefix",
    "__version__",
]
