"""Join operators: merge join (inner/left/full outer), hash join, block
nested-loops join — batch-vectorized.

Merge join is the operator with the factorial space of interesting
orders: its inputs must both be sorted on *the same* permutation of the
join attribute set, and its output inherits that permutation — which is
why the optimizer's choice of permutation matters so much (Section 4).
Its group-by-group merge consumes flattened row streams (groups cross
batch boundaries) and re-batches the joined output.

The hash join models Grace-style partitioning I/O when the build side
exceeds memory, so the optimizer's hash-vs-merge trade-off (Figure 11)
is faithful; it builds from batches and probes a whole batch at a time.
Nested loops preserves the outer input's order, which the afm
computation exploits (Section 5.1.2, case 4).
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..expr.expressions import JoinPredicate, Predicate
from ..storage.schema import Schema
from .batch import BatchBuilder, RowBatch, batches_of, collect_rows, flatten_batches
from .context import ExecutionContext
from .iterators import Operator, assert_sorted_rows, null_safe_wrap, tuple_getter
from .kernels import OperatorKernels, compile_kernels

JOIN_TYPES = ("inner", "left", "full")


def _pad(width: int) -> tuple:
    return (None,) * width


class _GroupReader:
    """Reads a key-sorted stream group by group (one group = equal keys)."""

    _DONE = object()

    def __init__(self, rows: Iterator[tuple], key_positions: Sequence[int]) -> None:
        self._rows = rows
        self._getter = tuple_getter(key_positions)
        self._pending: object = next(rows, self._DONE)

    def _key_of(self, row: tuple) -> tuple:
        return null_safe_wrap(self._getter(row))

    @property
    def exhausted(self) -> bool:
        return self._pending is self._DONE

    def peek_key(self) -> tuple:
        assert not self.exhausted
        return self._key_of(self._pending)  # type: ignore[arg-type]

    def next_group(self) -> tuple[tuple, list[tuple]]:
        """Pop the next group of rows sharing a key."""
        assert not self.exhausted
        key = self.peek_key()
        group = [self._pending]  # type: ignore[list-item]
        self._pending = next(self._rows, self._DONE)
        while not self.exhausted and self._key_of(self._pending) == key:  # type: ignore[arg-type]
            group.append(self._pending)  # type: ignore[arg-type]
            self._pending = next(self._rows, self._DONE)
        return key, group


class MergeJoin(Operator):
    """Sort-merge join over inputs sorted on the chosen key permutation.

    ``predicate.pairs`` must be listed **in the sort-order permutation**
    the optimizer chose — position *i* of the left and right sort keys is
    pair *i*.  Output order is the left-side permutation (the right-side
    names are equivalent modulo the join equalities).
    """

    name = "MergeJoin"

    def __init__(self, left: Operator, right: Operator, predicate: JoinPredicate,
                 join_type: str = "inner") -> None:
        if join_type not in JOIN_TYPES:
            raise ValueError(f"join_type must be one of {JOIN_TYPES}")
        for l, r in predicate.pairs:
            if l not in left.schema:
                raise ValueError(f"merge join: left column {l!r} missing")
            if r not in right.schema:
                raise ValueError(f"merge join: right column {r!r} missing")
        schema = left.schema.concat(right.schema)
        # A FULL OUTER merge join pads *left* key columns of unmatched
        # right rows with NULLs, interleaved wherever the right key falls
        # — under NULLS FIRST ordering the output is not sorted on the
        # left permutation, so no order may be guaranteed.
        order = (EMPTY_ORDER if join_type == "full"
                 else SortOrder(predicate.left_columns))
        super().__init__(schema, order, [left, right])
        self.predicate = predicate
        self.join_type = join_type

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        left, right = self.children
        lpos = left.schema.positions(list(self.predicate.left_columns))
        rpos = right.schema.positions(list(self.predicate.right_columns))
        lrows = flatten_batches(left.execute_batches(ctx))
        rrows = flatten_batches(right.execute_batches(ctx))
        if ctx.check_orders:
            lrows = assert_sorted_rows(lrows, lpos, "MergeJoin left input")
            rrows = assert_sorted_rows(rrows, rpos, "MergeJoin right input")
        return batches_of(self._merge(ctx, lrows, rrows, lpos, rpos),
                          ctx.batch_size)

    def _merge(self, ctx: ExecutionContext, lrows: Iterator[tuple],
               rrows: Iterator[tuple], lpos: Sequence[int],
               rpos: Sequence[int]) -> Iterator[tuple]:
        lreader = _GroupReader(lrows, lpos)
        rreader = _GroupReader(rrows, rpos)
        counter = ctx.comparisons
        lwidth, rwidth = len(self.children[0].schema), len(self.children[1].schema)
        emit_left_outer = self.join_type in ("left", "full")
        emit_right_outer = self.join_type == "full"

        while not lreader.exhausted and not rreader.exhausted:
            lkey, rkey = lreader.peek_key(), rreader.peek_key()
            counter.add()
            if lkey < rkey:
                _, lgroup = lreader.next_group()
                if emit_left_outer:
                    pad = _pad(rwidth)
                    for lrow in lgroup:
                        yield lrow + pad
            elif rkey < lkey:
                _, rgroup = rreader.next_group()
                if emit_right_outer:
                    pad = _pad(lwidth)
                    for rrow in rgroup:
                        yield pad + rrow
            else:
                # SQL semantics: NULL keys never match, even to each other.
                if any(not present for present, _ in lkey):
                    _, lgroup = lreader.next_group()
                    _, rgroup = rreader.next_group()
                    if emit_left_outer:
                        pad = _pad(rwidth)
                        for lrow in lgroup:
                            yield lrow + pad
                    if emit_right_outer:
                        pad = _pad(lwidth)
                        for rrow in rgroup:
                            yield pad + rrow
                    continue
                _, lgroup = lreader.next_group()
                _, rgroup = rreader.next_group()
                for lrow in lgroup:
                    for rrow in rgroup:
                        yield lrow + rrow
        while emit_left_outer and not lreader.exhausted:
            _, lgroup = lreader.next_group()
            pad = _pad(rwidth)
            for lrow in lgroup:
                yield lrow + pad
        while emit_right_outer and not rreader.exhausted:
            _, rgroup = rreader.next_group()
            pad = _pad(lwidth)
            for rrow in rgroup:
                yield pad + rrow

    def details(self) -> str:
        kind = "" if self.join_type == "inner" else f" {self.join_type.upper()} OUTER"
        return f"{self.predicate}{kind} on {self.output_order}"


class HashJoin(Operator):
    """In-memory hash join with simulated Grace partitioning I/O.

    Builds on the left input, probes with the right — one whole batch
    per probe step.  When the build side exceeds sort memory, both
    inputs are charged one extra write+read (partitioning pass), the
    classic Grace cost ``2(B_l + B_r)`` on top of the scans.  Output
    order is unspecified (ε) — hash partitioning destroys order, which
    is what the paper assumes for hash operators.
    """

    name = "HashJoin"

    def __init__(self, left: Operator, right: Operator, predicate: JoinPredicate,
                 join_type: str = "inner") -> None:
        if join_type not in JOIN_TYPES:
            raise ValueError(f"join_type must be one of {JOIN_TYPES}")
        schema = left.schema.concat(right.schema)
        super().__init__(schema, EMPTY_ORDER, [left, right])
        self.predicate = predicate
        self.join_type = join_type

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self.join_type == "left":
            return self._left_outer(ctx)
        return self._build_left(ctx)

    def _charge_grace(self, ctx: ExecutionContext, num_rows: int, row_bytes: int) -> None:
        """One partition write + read for *num_rows* (Grace overflow)."""
        ctx.charge_blocks_for_rows(num_rows, row_bytes, direction="write",
                                   category="partition")
        ctx.charge_blocks_for_rows(num_rows, row_bytes, direction="read",
                                   category="partition")

    def _build_left(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Inner and FULL OUTER: build on left, probe with right."""
        left, right = self.children
        lpos = left.schema.positions(list(self.predicate.left_columns))
        rpos = right.schema.positions(list(self.predicate.right_columns))
        lwidth, rwidth = len(left.schema), len(right.schema)
        full = self.join_type == "full"

        build_rows = collect_rows(left.execute_batches(ctx))
        spills = len(build_rows) * left.schema.row_bytes > ctx.params.sort_memory_bytes
        if spills:
            self._charge_grace(ctx, len(build_rows), left.schema.row_bytes)

        lgetter = tuple_getter(lpos)
        table: dict[tuple, list[tuple]] = {}
        null_build_rows: list[tuple] = []
        for row in build_rows:
            key = lgetter(row)
            if any(v is None for v in key):
                null_build_rows.append(row)  # NULLs never join
            else:
                table.setdefault(key, []).append(row)

        matched_keys: set[tuple] = set()
        probe_count = 0
        out = BatchBuilder(ctx.batch_size)
        for rbatch in right.execute_batches(ctx):
            probe_count += len(rbatch)
            # Whole-batch key extraction (columnar zip or itemgetter map).
            for rrow, key in zip(rbatch.rows, rbatch.key_tuples(rpos)):
                group = None if any(v is None for v in key) else table.get(key)
                if group:
                    if full:
                        matched_keys.add(key)
                    emitted = out.extend(lrow + rrow for lrow in group)
                elif full:
                    emitted = out.append(_pad(lwidth) + rrow)
                else:
                    emitted = None
                if emitted is not None:
                    yield emitted
        if spills:
            self._charge_grace(ctx, probe_count, right.schema.row_bytes)

        if full:
            pad = _pad(rwidth)
            for key, group in table.items():
                if key in matched_keys:
                    continue
                emitted = out.extend(lrow + pad for lrow in group)
                if emitted is not None:
                    yield emitted
            emitted = out.extend(lrow + pad for lrow in null_build_rows)
            if emitted is not None:
                yield emitted
        tail = out.flush()
        if tail is not None:
            yield tail

    def _left_outer(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """LEFT OUTER: build on right, stream left, pad misses."""
        left, right = self.children
        lpos = left.schema.positions(list(self.predicate.left_columns))
        rpos = right.schema.positions(list(self.predicate.right_columns))
        rwidth = len(right.schema)

        build_rows = collect_rows(right.execute_batches(ctx))
        spills = len(build_rows) * right.schema.row_bytes > ctx.params.sort_memory_bytes
        if spills:
            self._charge_grace(ctx, len(build_rows), right.schema.row_bytes)
        rgetter = tuple_getter(rpos)
        rtable: dict[tuple, list[tuple]] = {}
        for rrow in build_rows:
            key = rgetter(rrow)
            if not any(v is None for v in key):
                rtable.setdefault(key, []).append(rrow)

        pad = _pad(rwidth)
        probe_count = 0
        out = BatchBuilder(ctx.batch_size)
        for lbatch in left.execute_batches(ctx):
            probe_count += len(lbatch)
            for lrow, key in zip(lbatch.rows, lbatch.key_tuples(lpos)):
                group = None if any(v is None for v in key) else rtable.get(key)
                if group:
                    emitted = out.extend(lrow + rrow for rrow in group)
                else:
                    emitted = out.append(lrow + pad)
                if emitted is not None:
                    yield emitted
        if spills:
            self._charge_grace(ctx, probe_count, left.schema.row_bytes)
        tail = out.flush()
        if tail is not None:
            yield tail

    def details(self) -> str:
        kind = "" if self.join_type == "inner" else f" {self.join_type.upper()} OUTER"
        return f"{self.predicate}{kind}"


class NestedLoopsJoin(Operator):
    """Block nested-loops join; preserves the outer (left) input's order.

    The inner input is materialised once; the simulated cost charges one
    inner re-read per outer memory-load, the textbook
    ``B_outer + ⌈B_outer / (M-1)⌉ · B_inner`` pattern.
    """

    name = "NestedLoopsJoin"

    def __init__(self, left: Operator, right: Operator,
                 predicate: Optional[JoinPredicate] = None,
                 residual: Optional[Predicate] = None,
                 kernels: Optional[OperatorKernels] = None) -> None:
        schema = left.schema.concat(right.schema)
        super().__init__(schema, left.output_order, [left, right])
        self.predicate = predicate
        self.residual = residual
        if residual is not None:
            row_fns, _ = compile_kernels((residual,), schema, kernels)
            self._residual_fn = row_fns[0] if row_fns else None
        else:
            self._residual_fn = None

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        left, right = self.children
        inner = collect_rows(right.execute_batches(ctx))
        inner_blocks = math.ceil(len(inner) * right.schema.row_bytes
                                 / ctx.params.block_size) if inner else 0
        outer_rows_per_load = ctx.memory_capacity_rows(left.schema.row_bytes)

        pairs = self.predicate.pairs if self.predicate else ()
        lpos = left.schema.positions([l for l, _ in pairs]) if pairs else ()
        rpos = right.schema.positions([r for _, r in pairs]) if pairs else ()
        residual_fn = self._residual_fn
        if self.residual is not None and residual_fn is None:
            residual_fn = self.residual.compile(self.schema)  # unbound → raise
        lgetter = tuple_getter(lpos)
        rgetter = tuple_getter(rpos)
        # Inner keys are extracted once, not once per outer row.
        inner_keyed = [(rrow, rgetter(rrow)) for rrow in inner]

        def stream() -> Iterator[RowBatch]:
            out = BatchBuilder(ctx.batch_size)
            i = 0
            for lbatch in left.execute_batches(ctx):
                for lrow in lbatch.rows:
                    if i % outer_rows_per_load == 0 and inner_blocks:
                        # One full inner re-read per outer memory-load.
                        ctx.io.read(inner_blocks, category="scan")
                    i += 1
                    lkey = lgetter(lrow)
                    lkey_has_null = any(v is None for v in lkey)
                    for rrow, rkey in inner_keyed:
                        if pairs:
                            ctx.comparisons.add()
                            if lkey != rkey or lkey_has_null:
                                continue
                        row = lrow + rrow
                        if residual_fn is not None and not residual_fn(row):
                            continue
                        emitted = out.append(row)
                        if emitted is not None:
                            yield emitted
            tail = out.flush()
            if tail is not None:
                yield tail

        return stream()

    def details(self) -> str:
        return repr(self.predicate) if self.predicate else "cross"
