"""Execution context: simulated block I/O accounting + CPU metering.

The paper evaluates everything in *I/O cost units* ("CPU cost is
appropriately translated into I/O cost units").  Our substrate holds all
data in RAM but charges every block transfer to an
:class:`IOAccountant`, and counts key comparisons, so experiments can
report a deterministic simulated cost alongside wall-clock time.

``ExecutionContext.cost_units()`` is the single number used by the
benchmark harness:  ``blocks_read + blocks_written +
comparisons / cpu_comparisons_per_io``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, TYPE_CHECKING

from ..storage.catalog import Catalog, SystemParameters
from .batch import DEFAULT_BATCH_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.schema import Schema


class ComparisonCounter:
    """A mutable comparison tally shared by sort keys.

    Kept as its own tiny object (not an int attribute) so that the
    :class:`CountedKey` wrapper can bump it without holding a reference
    to the whole context.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class CountedKey:
    """A sort key wrapper whose comparisons are tallied.

    Used by both external-sort variants so the "reduced number of
    comparisons" effect of MRS (Section 3.1, benefit 3) is directly
    measurable.
    """

    __slots__ = ("key", "counter")

    def __init__(self, key: tuple, counter: ComparisonCounter) -> None:
        self.key = key
        self.counter = counter

    def __lt__(self, other: "CountedKey") -> bool:
        self.counter.value += 1
        return self.key < other.key

    def __le__(self, other: "CountedKey") -> bool:
        self.counter.value += 1
        return self.key <= other.key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountedKey):
            return NotImplemented
        self.counter.value += 1
        return self.key == other.key

    def __hash__(self) -> int:  # pragma: no cover - keys are not hashed in sorts
        return hash(self.key)


@dataclass
class IOAccountant:
    """Tally of simulated block transfers, split by purpose."""

    blocks_read: int = 0
    blocks_written: int = 0
    scan_blocks: int = 0
    run_blocks_written: int = 0
    run_blocks_read: int = 0
    partition_blocks: int = 0

    def read(self, blocks: int, *, category: str = "scan") -> None:
        if blocks < 0:
            raise ValueError("negative block count")
        self.blocks_read += blocks
        if category == "scan":
            self.scan_blocks += blocks
        elif category == "run":
            self.run_blocks_read += blocks
        elif category == "partition":
            self.partition_blocks += blocks

    def write(self, blocks: int, *, category: str = "run") -> None:
        if blocks < 0:
            raise ValueError("negative block count")
        self.blocks_written += blocks
        if category == "run":
            self.run_blocks_written += blocks
        elif category == "partition":
            self.partition_blocks += blocks

    @property
    def total_blocks(self) -> int:
        return self.blocks_read + self.blocks_written

    def snapshot(self) -> "IOAccountant":
        return IOAccountant(
            self.blocks_read, self.blocks_written, self.scan_blocks,
            self.run_blocks_written, self.run_blocks_read, self.partition_blocks,
        )


@dataclass
class SortMetrics:
    """Per-execution sort statistics surfaced by Experiments A1–A4."""

    runs_created: int = 0
    segments_sorted: int = 0
    rows_spilled: int = 0
    merge_passes: int = 0
    in_memory_sorts: int = 0


class ExecutionContext:
    """Everything an operator needs at run time."""

    def __init__(self, catalog: Optional[Catalog] = None,
                 params: Optional[SystemParameters] = None,
                 check_orders: bool = False,
                 batch_size: Optional[int] = None,
                 columnar: bool = True,
                 meter_timing: bool = False) -> None:
        self.catalog = catalog
        self.params = params or (catalog.params if catalog else SystemParameters())
        self.io = IOAccountant()
        self.comparisons = ComparisonCounter()
        self.sort_metrics = SortMetrics()
        #: When true, order-requiring operators verify their inputs are
        #: actually sorted (used heavily in tests; off in benchmarks).
        self.check_orders = check_orders
        #: Rows per :class:`~repro.engine.batch.RowBatch` produced by
        #: operators (a hint — selective operators may emit smaller
        #: batches).  ``batch_size=1`` degenerates to row-at-a-time.
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        #: When false, operators skip the whole-column kernel fast paths
        #: and run their compiled row loops (the PR-2 row-tuple batched
        #: engine).  Output rows, tallies and block charges are identical
        #: either way; the flag exists for benchmarks and parity tests.
        self.columnar = columnar
        #: Per-operator estimated-vs-actual row counts, keyed by the
        #: meter tag stamped at lowering time (scan ops carry their table
        #: name in the tag).  Each cell is ``[estimated, actual]``; both
        #: are integers so shard contributions sum commutatively and
        #: worker absorb order cannot perturb the totals.
        self.operator_rows: dict[str, list[int]] = {}
        #: When true, metered operators additionally record inclusive
        #: wall time and batch counts into :attr:`operator_times`
        #: (EXPLAIN ANALYZE).  **Opt-in** — wall clocks are the one
        #: nondeterministic tally, so default executions keep
        #: :meth:`tallies` bit-identical across backends and runs.
        self.meter_timing = meter_timing
        #: Per-operator ``[seconds, batches]`` cells keyed like
        #: :attr:`operator_rows`; always empty unless ``meter_timing``.
        self.operator_times: dict[str, list] = {}

    # -- derived ---------------------------------------------------------------------
    def cost_units(self) -> float:
        """Simulated cost in the paper's I/O units."""
        cpu = self.comparisons.value / self.params.cpu_comparisons_per_io
        return self.io.total_blocks + cpu

    def rows_per_block(self, row_bytes: int) -> int:
        return max(1, self.params.block_size // max(1, row_bytes))

    def memory_capacity_rows(self, row_bytes: int) -> int:
        """How many rows of the given width fit in sort memory."""
        return max(2, self.params.sort_memory_bytes // max(1, row_bytes))

    def charge_blocks_for_rows(self, num_rows: int, row_bytes: int,
                               direction: str = "read", category: str = "scan") -> int:
        blocks = math.ceil(num_rows * row_bytes / self.params.block_size) if num_rows else 0
        if direction == "read":
            self.io.read(blocks, category=category)
        else:
            self.io.write(blocks, category=category)
        return blocks

    def charged_stream(self, rows: Iterable[tuple], row_bytes: int,
                       category: str = "scan") -> Iterator[tuple]:
        """Yield rows, charging one block read per block's worth of rows.

        Progressive charging (rather than a lump sum at open time) keeps
        the tuples-vs-cost timeline of Experiment A2 honest: an operator
        that stops early stops paying.
        """
        per_block = self.rows_per_block(row_bytes)
        for i, row in enumerate(rows):
            if i % per_block == 0:
                self.io.read(1, category=category)
            yield row

    def meter_start(self, tag: str, estimate: int) -> list:
        """Register one metered operator execution and return its cell.

        The estimate is credited up front (at iterator-open time); the
        caller bumps ``cell[1]`` as actual rows stream through.  Repeated
        executions under the same tag (per-shard subplans, re-runs)
        accumulate into one cell.
        """
        cell = self.operator_rows.get(tag)
        if cell is None:
            cell = [0, 0]
            self.operator_rows[tag] = cell
        cell[0] += estimate
        return cell

    def time_cell(self, tag: str) -> list:
        """The ``[seconds, batches]`` timing cell for *tag* (created on
        first use); like row cells, repeated executions under one tag
        accumulate."""
        cell = self.operator_times.get(tag)
        if cell is None:
            cell = [0.0, 0]
            self.operator_times[tag] = cell
        return cell

    # -- parallel shard driving ----------------------------------------------------------
    def fork(self) -> "ExecutionContext":
        """A child context with fresh accountants (one per shard worker).

        Workers charge their own context; the driver folds the tallies
        back with :meth:`absorb` in shard order, so totals stay
        deterministic regardless of thread interleaving.
        """
        return ExecutionContext(self.catalog, self.params, self.check_orders,
                                self.batch_size, self.columnar,
                                self.meter_timing)

    def tallies(self) -> dict:
        """All counters as a flat, picklable dict.

        The process-pool backend's workers charge their own context and
        ship this dict back with the result rows; the parent folds it in
        with :meth:`absorb_tallies` (in shard order, like :meth:`absorb`),
        so totals stay deterministic across worker scheduling.
        """
        return {
            "blocks_read": self.io.blocks_read,
            "blocks_written": self.io.blocks_written,
            "scan_blocks": self.io.scan_blocks,
            "run_blocks_written": self.io.run_blocks_written,
            "run_blocks_read": self.io.run_blocks_read,
            "partition_blocks": self.io.partition_blocks,
            "comparisons": self.comparisons.value,
            "runs_created": self.sort_metrics.runs_created,
            "segments_sorted": self.sort_metrics.segments_sorted,
            "rows_spilled": self.sort_metrics.rows_spilled,
            "merge_passes": self.sort_metrics.merge_passes,
            "in_memory_sorts": self.sort_metrics.in_memory_sorts,
            "operator_rows": {tag: (cell[0], cell[1])
                              for tag, cell in self.operator_rows.items()},
            "operator_times": {tag: (cell[0], cell[1])
                               for tag, cell in self.operator_times.items()},
        }

    def absorb_tallies(self, tallies: dict) -> None:
        """Fold a :meth:`tallies` dict (e.g. from a worker process) in."""
        self.io.blocks_read += tallies["blocks_read"]
        self.io.blocks_written += tallies["blocks_written"]
        self.io.scan_blocks += tallies["scan_blocks"]
        self.io.run_blocks_written += tallies["run_blocks_written"]
        self.io.run_blocks_read += tallies["run_blocks_read"]
        self.io.partition_blocks += tallies["partition_blocks"]
        self.comparisons.value += tallies["comparisons"]
        self.sort_metrics.runs_created += tallies["runs_created"]
        self.sort_metrics.segments_sorted += tallies["segments_sorted"]
        self.sort_metrics.rows_spilled += tallies["rows_spilled"]
        self.sort_metrics.merge_passes += tallies["merge_passes"]
        self.sort_metrics.in_memory_sorts += tallies["in_memory_sorts"]
        # ``.get``: pre-existing tally dicts (old snapshots, third-party
        # backends) may not carry the per-operator key.
        for tag, (estimated, actual) in tallies.get("operator_rows", {}).items():
            cell = self.operator_rows.get(tag)
            if cell is None:
                self.operator_rows[tag] = [estimated, actual]
            else:
                cell[0] += estimated
                cell[1] += actual
        for tag, (seconds, batches) in tallies.get("operator_times",
                                                   {}).items():
            cell = self.operator_times.get(tag)
            if cell is None:
                self.operator_times[tag] = [seconds, batches]
            else:
                cell[0] += seconds
                cell[1] += batches

    def absorb(self, child: "ExecutionContext") -> None:
        """Fold a forked context's counters into this one."""
        self.absorb_tallies(child.tallies())

    def reset(self) -> None:
        self.io = IOAccountant()
        self.comparisons = ComparisonCounter()
        self.sort_metrics = SortMetrics()
        self.operator_rows = {}
        self.operator_times = {}
