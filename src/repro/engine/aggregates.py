"""Grouping/aggregation operators — batch-vectorized.

* :class:`SortAggregate` ("Group Aggregate" in the paper's plans) —
  streaming aggregation over input sorted on *any permutation* of the
  group-by columns; emits each group as soon as it closes, preserves the
  input's order on the group columns, and needs no memory beyond one
  group (groups freely span batch boundaries).  Its flexible order
  requirement is exactly why grouping participates in the
  interesting-order problem.

* :class:`HashAggregate` — orderless fallback; charges spill I/O when
  the group table exceeds memory (which is why PostgreSQL's hash
  aggregate was the wrong pick for Query 3).

* :class:`SortedGroupCombine` — the final-combine stage of a *sharded*
  aggregation: per-shard partial aggregates arrive key-sorted (gathered
  by a :class:`~repro.engine.exchange.MergeExchange`), and groups split
  across shard boundaries are folded back together with the aggregate's
  combiner (``sum`` of partial sums/counts, ``min`` of partial minima, …).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..expr.aggregates import AGGREGATES, AggSpec, aggregate_output_schema
from .batch import COLUMNAR_MIN_ROWS, BatchBuilder, RowBatch, batches_of
from .context import ExecutionContext
from .iterators import Operator, null_safe_wrap, tuple_getter
from .kernels import OperatorKernels, compile_kernels

#: Aggregates whose partials combine exactly: the combiner applied to
#: per-shard results equals the aggregate over the whole group.  ``avg``
#: is deliberately absent (it would need a sum+count decomposition), so
#: the optimizer only shards aggregations it can recombine bit-exactly.
AGGREGATE_COMBINERS: dict[str, str] = {
    "sum": "sum",
    "count": "sum",
    "count_star": "sum",
    "min": "min",
    "max": "max",
}


def combinable(aggregates: Iterable[AggSpec]) -> bool:
    """Whether every aggregate in the list has an exact combiner."""
    return all(spec.func in AGGREGATE_COMBINERS for spec in aggregates)


class SortAggregate(Operator):
    """Streaming GROUP BY over sorted input.

    ``group_order`` is the permutation of grouping columns the input is
    sorted on (a prefix of the input's guaranteed order); groups close on
    a change of that key.  ``group_columns`` — defaulting to
    ``group_order`` — lists the columns emitted before the aggregates.
    It may be a *superset* of the sort key when the extra columns are
    functionally determined by it (Query 3 groups by ``ps_availqty,
    ps_partkey, ps_suppkey`` but needs to sort only on ``(ps_suppkey,
    ps_partkey)`` because ``{partkey, suppkey} → availqty``); their
    values are taken from the group's first row.
    """

    name = "GroupAggregate"

    def __init__(self, child: Operator, group_order: SortOrder,
                 aggregates: Sequence[AggSpec],
                 group_columns: Optional[Sequence[str]] = None,
                 kernels: Optional[OperatorKernels] = None) -> None:
        if group_columns is None:
            group_columns = list(group_order)
        group_columns = list(group_columns)
        if not set(group_order) <= set(group_columns):
            raise ValueError("group_order must be a subset of group_columns")
        if not child.schema.has_all(group_columns):
            missing = set(group_columns) - set(child.schema.names)
            raise ValueError(f"group columns missing from input: {missing}")
        schema = aggregate_output_schema(group_columns, child.schema, list(aggregates))
        super().__init__(schema, group_order, [child])
        self.group_order = group_order
        self.group_columns = group_columns
        self.aggregates = list(aggregates)
        self._arg_row_fns, self._arg_batch_fns = compile_kernels(
            tuple(spec.arg for spec in self.aggregates), child.schema, kernels)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        child = self.children[0]
        positions = child.schema.positions(list(self.group_order))
        out_getter = tuple_getter(child.schema.positions(self.group_columns))
        arg_fns = self._arg_row_fns
        if arg_fns is None:  # unbound parameters: raise like the seed engine
            arg_fns = tuple(spec.arg.compile(child.schema)
                            for spec in self.aggregates)
        batch_fns = self._arg_batch_fns if ctx.columnar else None
        funcs = [spec.function for spec in self.aggregates]

        batches: Iterable[RowBatch] = child.execute_batches(ctx)
        if ctx.check_orders:
            batches = self._checked_group_batches(batches, positions)

        def stream() -> Iterator[RowBatch]:
            out = BatchBuilder(ctx.batch_size)
            current_key: Optional[tuple] = None
            current_group: Optional[tuple] = None
            states: list = []
            for batch in batches:
                rows = batch.rows
                keys = batch.key_tuples(positions)
                # Aggregate inputs evaluate whole-column when allowed;
                # the per-row group-close logic (and its comparison
                # tally) is identical either way.
                arg_cols = ([fn(batch) for fn in batch_fns]
                            if batch_fns is not None
                            and (batch.is_columnar
                                 or len(batch) >= COLUMNAR_MIN_ROWS)
                            else None)
                for i, key in enumerate(keys):
                    ctx.comparisons.add()
                    if key != current_key:
                        if current_key is not None:
                            emitted = out.append(current_group + tuple(
                                f.final(s) for f, s in zip(funcs, states)))
                            if emitted is not None:
                                yield emitted
                        current_key = key
                        current_group = out_getter(rows[i])
                        states = [f.init() for f in funcs]
                    if arg_cols is None:
                        row = rows[i]
                        for j, func in enumerate(funcs):
                            value = arg_fns[j](row)
                            if value is None and func.ignores_null:
                                continue
                            states[j] = func.step(states[j], value)
                    else:
                        for j, func in enumerate(funcs):
                            value = arg_cols[j][i]
                            if value is None and func.ignores_null:
                                continue
                            states[j] = func.step(states[j], value)
            if current_key is not None:
                emitted = out.append(current_group + tuple(
                    f.final(s) for f, s in zip(funcs, states)))
                if emitted is not None:
                    yield emitted
            tail = out.flush()
            if tail is not None:
                yield tail

        return stream()

    def _checked_group_batches(self, batches: Iterable[RowBatch],
                               positions: Sequence[int]) -> Iterator[RowBatch]:
        seen: set[tuple] = set()
        prev: Optional[tuple] = None
        for batch in batches:
            for row in batch.rows:
                key = tuple(row[i] for i in positions)
                if key != prev:
                    if key in seen:
                        raise AssertionError(
                            f"GroupAggregate: group {key} reappeared — input not "
                            f"grouped on {self.group_order}")
                    seen.add(key)
                    prev = key
            yield batch

    def details(self) -> str:
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"by {self.group_order}: {aggs}"


class SortedGroupCombine(Operator):
    """Fold key-sorted *partial* aggregate rows into final groups.

    The input schema is an aggregate output schema (group columns first,
    then one column per aggregate) whose rows are per-shard partials,
    sorted/grouped on ``group_order``.  Adjacent rows sharing a group key
    — a group that straddled a shard boundary — are combined with each
    aggregate's combiner (:data:`AGGREGATE_COMBINERS`); a group entirely
    inside one shard passes through unchanged.  Output preserves the
    input's order and emits exactly one row per group, so the whole
    per-shard-aggregate → merge → combine pipeline is row-identical to a
    single aggregation over the merged input.
    """

    name = "SortedCombine"

    def __init__(self, child: Operator, group_order: SortOrder,
                 group_columns: Sequence[str],
                 aggregates: Sequence[AggSpec]) -> None:
        group_columns = list(group_columns)
        if not set(group_order) <= set(group_columns):
            raise ValueError("group_order must be a subset of group_columns")
        missing = [spec.func for spec in aggregates
                   if spec.func not in AGGREGATE_COMBINERS]
        if missing:
            raise ValueError(f"aggregates without an exact combiner: {missing}")
        expected = list(group_columns) + [s.output_name for s in aggregates]
        if list(child.schema.names) != expected:
            raise ValueError(
                f"combine input schema {list(child.schema.names)} does not "
                f"match group columns + aggregate outputs {expected}")
        super().__init__(child.schema, group_order, [child])
        self.group_order = group_order
        self.group_columns = group_columns
        self.aggregates = list(aggregates)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        child = self.children[0]
        key_positions = self.schema.positions(list(self.group_order))
        width = len(self.group_columns)
        combiners = [AGGREGATES[AGGREGATE_COMBINERS[spec.func]]
                     for spec in self.aggregates]

        def stream() -> Iterator[RowBatch]:
            out = BatchBuilder(ctx.batch_size)
            current_key: Optional[tuple] = None
            current_group: Optional[tuple] = None
            states: list = []
            for batch in child.execute_batches(ctx):
                rows = batch.rows
                for i, key in enumerate(batch.key_tuples(key_positions)):
                    row = rows[i]
                    ctx.comparisons.add()
                    if key != current_key:
                        if current_key is not None:
                            emitted = out.append(current_group + tuple(
                                f.final(s) for f, s in zip(combiners, states)))
                            if emitted is not None:
                                yield emitted
                        current_key = key
                        current_group = row[:width]
                        states = [f.init() for f in combiners]
                    for j, func in enumerate(combiners):
                        value = row[width + j]
                        if value is None and func.ignores_null:
                            continue
                        states[j] = func.step(states[j], value)
            if current_key is not None:
                emitted = out.append(current_group + tuple(
                    f.final(s) for f, s in zip(combiners, states)))
                if emitted is not None:
                    yield emitted
            tail = out.flush()
            if tail is not None:
                yield tail

        return stream()

    def details(self) -> str:
        aggs = ", ".join(AGGREGATE_COMBINERS[s.func] + f"({s.output_name})"
                         for s in self.aggregates)
        return f"by {self.group_order}: {aggs}"


class HashAggregate(Operator):
    """Hash-based GROUP BY; no order requirement, no order guarantee.

    When the group table exceeds sort memory, charges one spill
    write+read of the group state (the standard two-pass model).
    """

    name = "HashAggregate"

    def __init__(self, child: Operator, group_columns: Sequence[str],
                 aggregates: Sequence[AggSpec],
                 kernels: Optional[OperatorKernels] = None) -> None:
        schema = aggregate_output_schema(list(group_columns), child.schema,
                                         list(aggregates))
        super().__init__(schema, EMPTY_ORDER, [child])
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self._arg_row_fns, self._arg_batch_fns = compile_kernels(
            tuple(spec.arg for spec in self.aggregates), child.schema, kernels)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        child = self.children[0]
        positions = child.schema.positions(self.group_columns)
        arg_fns = self._arg_row_fns
        if arg_fns is None:  # unbound parameters: raise like the seed engine
            arg_fns = tuple(spec.arg.compile(child.schema)
                            for spec in self.aggregates)
        batch_fns = self._arg_batch_fns if ctx.columnar else None
        funcs = [spec.function for spec in self.aggregates]

        groups: dict[tuple, list] = {}
        for batch in child.execute_batches(ctx):
            keys = batch.key_tuples(positions)
            arg_cols = ([fn(batch) for fn in batch_fns]
                        if batch_fns is not None
                        and (batch.is_columnar
                             or len(batch) >= COLUMNAR_MIN_ROWS)
                        else None)
            if arg_cols is None:
                rows = batch.rows
                for i, key in enumerate(keys):
                    states = groups.get(key)
                    if states is None:
                        states = [f.init() for f in funcs]
                        groups[key] = states
                    row = rows[i]
                    for j, func in enumerate(funcs):
                        value = arg_fns[j](row)
                        if value is None and func.ignores_null:
                            continue
                        states[j] = func.step(states[j], value)
            else:
                for i, key in enumerate(keys):
                    states = groups.get(key)
                    if states is None:
                        states = [f.init() for f in funcs]
                        groups[key] = states
                    for j, func in enumerate(funcs):
                        value = arg_cols[j][i]
                        if value is None and func.ignores_null:
                            continue
                        states[j] = func.step(states[j], value)

        state_bytes = len(groups) * self.schema.row_bytes
        if state_bytes > ctx.params.sort_memory_bytes:
            ctx.charge_blocks_for_rows(len(groups), self.schema.row_bytes,
                                       direction="write", category="partition")
            ctx.charge_blocks_for_rows(len(groups), self.schema.row_bytes,
                                       direction="read", category="partition")

        return batches_of(
            (key + tuple(f.final(s) for f, s in zip(funcs, states))
             for key, states in groups.items()),
            ctx.batch_size)

    def details(self) -> str:
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"by {{{', '.join(self.group_columns)}}}: {aggs}"
