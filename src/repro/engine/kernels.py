"""Compiled expression kernels: process-global cache + per-plan bundles.

Expression compilation (:meth:`Expression.compile` /
:meth:`Expression.compile_batch`) is cheap but not free, and the serving
layer re-lowers a cached :class:`~repro.optimizer.plans.PhysicalPlan` to
operators on **every** execution.  Two layers make repeated executions
pay zero compilations:

* :data:`KERNELS` — a process-global LRU cache keyed by
  ``(kind, expression, schema column names)``.  Expressions are frozen
  dataclasses (hashable, structurally equal), so any operator compiled
  against the same schema anywhere in the process reuses the closure.
  Unhashable expressions (a ``Const`` holding a list, say) are compiled
  uncached.
* :func:`attach_plan_kernels` — called once at *prepare* time
  (``QuerySession.prepare``), it walks an optimized plan and attaches an
  :class:`OperatorKernels` bundle to every expression-bearing node as a
  ``"kernels"`` plan arg.  Lowering hands the bundle to the operator
  constructor, so executing a cached plan does not even pay the cache
  lookup.  Nodes whose expressions still contain unbound
  :class:`~repro.expr.expressions.Param` placeholders are skipped — and
  because parameter binding (``bind_plan``) only rebuilds nodes whose
  expressions actually changed, a bundle can never go stale: a node that
  carries one has no parameters to bind.

Bundles close over Python functions and are deliberately **not
picklable**: :func:`repro.engine.subplan.strip_plan` drops the
``"kernels"`` arg before shipping subplans to process-pool workers, and
each worker recompiles against its own catalog snapshot through its own
process-global :data:`KERNELS` — warm after the first task per plan
shape.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

from ..expr.expressions import Expression, UnboundParamError
from .batch import columnar_batches_total, reset_columnar_batches


class OperatorKernels:
    """Compiled row/batch callables for one plan node's expressions.

    ``row_fns[i]`` / ``batch_fns[i]`` are the two compiled forms of the
    node's *i*-th expression (a Filter has one, a Compute one per output,
    an aggregate one per ``AggSpec``).  Bundles compare by identity and
    refuse to pickle — ``strip_plan`` must drop them first.
    """

    __slots__ = ("row_fns", "batch_fns")

    def __init__(self, row_fns: Sequence, batch_fns: Sequence) -> None:
        self.row_fns = tuple(row_fns)
        self.batch_fns = tuple(batch_fns)

    def __reduce__(self):
        raise TypeError(
            "OperatorKernels holds compiled closures and cannot be pickled; "
            "strip_plan() drops the 'kernels' plan arg before worker handoff")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OperatorKernels({len(self.row_fns)} expressions)"


class KernelCache:
    """Thread-safe process-global LRU of compiled expression kernels."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._cache: OrderedDict = OrderedDict()
        self.kernels_compiled = 0
        self.kernel_cache_hits = 0

    def row_fn(self, expr: Expression, schema):
        """The compiled row function of *expr* against *schema*."""
        return self._get("row", expr, schema)

    def batch_fn(self, expr: Expression, schema):
        """The compiled whole-column kernel of *expr* against *schema*."""
        return self._get("batch", expr, schema)

    def _get(self, kind: str, expr: Expression, schema):
        try:
            key = (kind, expr, tuple(schema.names))
            hash(key)
        except TypeError:
            key = None  # unhashable payload (e.g. Const([...])) → uncached
        if key is not None:
            with self._lock:
                fn = self._cache.get(key)
                if fn is not None:
                    self._cache.move_to_end(key)
                    self.kernel_cache_hits += 1
                    return fn
        # Compile outside the lock; UnboundParamError propagates uncounted.
        fn = expr.compile(schema) if kind == "row" else expr.compile_batch(schema)
        with self._lock:
            self.kernels_compiled += 1
            if key is not None:
                self._cache[key] = fn
                if len(self._cache) > self.capacity:
                    self._cache.popitem(last=False)
        return fn

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.kernels_compiled = 0
            self.kernel_cache_hits = 0


#: The process-global kernel cache (one per serving process / pool worker).
KERNELS = KernelCache()


def kernel_stats() -> dict[str, int]:
    """Kernel telemetry counters, flat and picklable.

    Process-global (not per-session): surfaced once by
    ``QuerySession.stats()`` and ``QueryServer.stats()``.
    """
    return {
        "kernels_compiled": KERNELS.kernels_compiled,
        "kernel_cache_hits": KERNELS.kernel_cache_hits,
        "columnar_batches": columnar_batches_total(),
    }


def reset_kernel_stats() -> None:
    """Zero the kernel counters (tests and benchmarks)."""
    KERNELS.reset_stats()
    reset_columnar_batches()


def compile_kernels(exprs: Sequence[Expression], schema,
                    provided: Optional[OperatorKernels] = None):
    """``(row_fns, batch_fns)`` for *exprs*, or ``(None, None)`` if unbound.

    Operators call this from their constructors: a plan-attached bundle
    short-circuits everything; otherwise the global cache supplies (and
    remembers) the closures.  ``(None, None)`` means the expressions
    still contain unbound parameters — the operator defers to execute
    time, where compiling raises the seed engine's ``ValueError``.
    """
    exprs = tuple(exprs)
    if provided is not None and len(provided.row_fns) == len(exprs):
        return provided.row_fns, provided.batch_fns
    try:
        row_fns = tuple(KERNELS.row_fn(e, schema) for e in exprs)
        batch_fns = tuple(KERNELS.batch_fn(e, schema) for e in exprs)
    except UnboundParamError:
        return None, None
    return row_fns, batch_fns


def _node_expressions(plan):
    """The (expressions, input schema) an op's kernels compile against."""
    if plan.op == "Filter":
        return (plan.arg("predicate"),), plan.children[0].schema
    if plan.op == "Compute":
        return tuple(e for _, e in plan.arg("outputs", ())), plan.children[0].schema
    if plan.op in ("SortAggregate", "HashAggregate"):
        specs = plan.arg("aggregates", ())
        return tuple(s.arg for s in specs), plan.children[0].schema
    if plan.op == "NestedLoopsJoin":
        residual = plan.arg("residual")
        if residual is not None:
            return (residual,), plan.schema
    return None


def attach_plan_kernels(plan, _memo: Optional[dict] = None):
    """Return *plan* with kernels compiled and attached to its hot nodes.

    Called once per fresh optimization at prepare time; the returned plan
    carries ``OperatorKernels`` bundles in a ``"kernels"`` arg that
    lowering feeds to operator constructors.  Shared subtrees stay
    shared (identity memo); nodes with unbound parameters or without
    expressions are passed through untouched.
    """
    memo: dict = {} if _memo is None else _memo
    done = memo.get(id(plan))
    if done is not None:
        return done
    children = tuple(attach_plan_kernels(c, memo) for c in plan.children)
    bundle = None
    if plan.arg("kernels") is None:
        spec = _node_expressions(plan)
        if spec is not None and spec[0]:
            exprs, schema = spec
            try:
                bundle = OperatorKernels(
                    [KERNELS.row_fn(e, schema) for e in exprs],
                    [KERNELS.batch_fn(e, schema) for e in exprs])
            except UnboundParamError:
                bundle = None
    if bundle is None and children == plan.children:
        memo[id(plan)] = plan
        return plan
    args = plan.args + (("kernels", bundle),) if bundle is not None else plan.args
    rebuilt = type(plan)(plan.op, plan.schema, plan.order, plan.stats,
                         plan.self_cost, children, args)
    memo[id(plan)] = rebuilt
    return rebuilt
