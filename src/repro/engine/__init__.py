"""Volcano-style execution engine with simulated block I/O."""

from .aggregates import HashAggregate, SortAggregate
from .basic import Compute, Filter, Limit, PartialSort, Project, Sort, TopK
from .context import (
    ComparisonCounter,
    CountedKey,
    ExecutionContext,
    IOAccountant,
    SortMetrics,
)
from .iterators import Operator, key_function, null_safe_wrap
from .joins import HashJoin, MergeJoin, NestedLoopsJoin
from .lowering import operators_from_plan
from .scans import ClusteringIndexScan, CoveringIndexScan, RowSource, TableScan
from .sets import Dedup, HashDedup, MergeUnion, UnionAll
from .sorting import mrs_sort, sort_stream, srs_sort

__all__ = [
    "ClusteringIndexScan",
    "ComparisonCounter",
    "Compute",
    "CountedKey",
    "CoveringIndexScan",
    "Dedup",
    "ExecutionContext",
    "Filter",
    "HashAggregate",
    "HashDedup",
    "HashJoin",
    "IOAccountant",
    "Limit",
    "MergeJoin",
    "MergeUnion",
    "NestedLoopsJoin",
    "Operator",
    "PartialSort",
    "Project",
    "RowSource",
    "Sort",
    "SortAggregate",
    "SortMetrics",
    "TableScan",
    "TopK",
    "UnionAll",
    "key_function",
    "mrs_sort",
    "null_safe_wrap",
    "operators_from_plan",
    "sort_stream",
    "srs_sort",
]
