"""Batch-vectorized Volcano-style execution engine with simulated block I/O."""

from .aggregates import (
    AGGREGATE_COMBINERS,
    HashAggregate,
    SortAggregate,
    SortedGroupCombine,
    combinable,
)
from .basic import Compute, Filter, Limit, PartialSort, Project, Sort, TopK
from .batch import (
    DEFAULT_BATCH_SIZE,
    BatchBuilder,
    BlockCharger,
    RowBatch,
    batches_of,
    collect_rows,
    flatten_batches,
)
from .context import (
    ComparisonCounter,
    CountedKey,
    ExecutionContext,
    IOAccountant,
    SortMetrics,
)
from .exchange import (
    ExchangeUnion,
    MergeExchange,
    partitions_disjoint_on,
    push_sorts_below_exchange,
    shard_scans,
    with_exchange_workers,
)
from .executor import BatchedExecutor
from .iterators import Operator, key_function, null_safe_wrap
from .joins import HashJoin, MergeJoin, NestedLoopsJoin
from .lowering import operators_from_plan
from .scans import (
    ClusteringIndexScan,
    CoveringIndexScan,
    RangePartitionScan,
    RowSource,
    ShardedScan,
    TableScan,
    range_shardable,
    shard_bounds,
    shardable,
)
from .sets import Dedup, HashDedup, MergeUnion, UnionAll
from .sorting import merge_sorted_streams, mrs_sort, sort_stream, srs_sort
from .subplan import (
    assemble,
    exchange_occurrences,
    execute_subplan,
    init_worker,
    shard_subplans,
    strip_plan,
)

__all__ = [
    "AGGREGATE_COMBINERS",
    "BatchBuilder",
    "BatchedExecutor",
    "BlockCharger",
    "ClusteringIndexScan",
    "ComparisonCounter",
    "Compute",
    "CountedKey",
    "CoveringIndexScan",
    "DEFAULT_BATCH_SIZE",
    "Dedup",
    "ExchangeUnion",
    "ExecutionContext",
    "Filter",
    "HashAggregate",
    "HashDedup",
    "HashJoin",
    "IOAccountant",
    "Limit",
    "MergeExchange",
    "MergeJoin",
    "MergeUnion",
    "NestedLoopsJoin",
    "Operator",
    "PartialSort",
    "Project",
    "RangePartitionScan",
    "RowBatch",
    "RowSource",
    "ShardedScan",
    "Sort",
    "SortAggregate",
    "SortMetrics",
    "SortedGroupCombine",
    "TableScan",
    "TopK",
    "UnionAll",
    "assemble",
    "batches_of",
    "collect_rows",
    "combinable",
    "exchange_occurrences",
    "execute_subplan",
    "flatten_batches",
    "init_worker",
    "key_function",
    "merge_sorted_streams",
    "mrs_sort",
    "null_safe_wrap",
    "operators_from_plan",
    "partitions_disjoint_on",
    "push_sorts_below_exchange",
    "range_shardable",
    "shard_bounds",
    "shard_scans",
    "shard_subplans",
    "shardable",
    "sort_stream",
    "srs_sort",
    "strip_plan",
    "with_exchange_workers",
]
