"""Tuple-transforming operators: filter, project, compute, sort
enforcers, limit — batch-vectorized, with whole-column kernel paths.

Filter, project and compute compile their expressions **once, at
construction** (through the process-global kernel cache, or from the
bundle a prepared plan carries — see :mod:`repro.engine.kernels`), in
two forms: a row function and a whole-column batch kernel.  At run time
a batch of at least :data:`~repro.engine.batch.COLUMNAR_MIN_ROWS` rows
is evaluated columnar — one kernel call per batch instead of one Python
call per row — unless the context disables it
(``ExecutionContext(columnar=False)``); tiny batches use the row loop,
whose output is bit-identical.  Selective operators emit one (possibly
smaller) batch per input batch instead of re-buffering.

``Sort`` is the order *enforcer* of the paper: it knows both the target
order and the order already guaranteed by its input, and picks MRS
(partial sort) whenever a non-empty prefix is available — unless
explicitly forced to behave like the standard engines of Experiment A1
(``algorithm="srs"``).  The sort algorithms themselves consume a
flattened row stream (they materialise runs/segments anyway) and
re-batch their output, so comparison and I/O tallies are independent of
the batch size.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder, longest_common_prefix
from ..expr.expressions import Expression, Predicate
from ..storage.schema import Column, Schema
from .batch import COLUMNAR_MIN_ROWS, RowBatch, batches_of, flatten_batches
from .context import CountedKey, ExecutionContext
from .iterators import Operator, key_function
from .kernels import OperatorKernels, compile_kernels
from .sorting import sort_stream


class Filter(Operator):
    """σ: keep rows satisfying a predicate; preserves input order."""

    name = "Filter"

    def __init__(self, child: Operator, predicate: Predicate,
                 kernels: Optional[OperatorKernels] = None) -> None:
        if not child.schema.has_all(predicate.columns()):
            missing = set(predicate.columns()) - set(child.schema.names)
            raise ValueError(f"filter references missing columns {missing}")
        super().__init__(child.schema, child.output_order, [child])
        self.predicate = predicate
        row_fns, batch_fns = compile_kernels((predicate,), child.schema, kernels)
        self._row_fn = row_fns[0] if row_fns else None
        self._batch_fn = batch_fns[0] if batch_fns else None

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        # Unbound parameters surface here, like the seed engine's
        # compile-at-execute did.
        row_fn = self._row_fn or self.predicate.compile(self.schema)
        batch_fn = self._batch_fn if ctx.columnar else None
        return self._filtered(ctx, row_fn, batch_fn)

    def _filtered(self, ctx: ExecutionContext, row_fn,
                  batch_fn) -> Iterator[RowBatch]:
        for batch in self.children[0].execute_batches(ctx):
            if batch_fn is not None and (batch.is_columnar
                                         or len(batch) >= COLUMNAR_MIN_ROWS):
                kept = batch.compress(batch_fn(batch))
            else:
                kept = batch.filter(row_fn)
            if kept:
                yield kept

    def details(self) -> str:
        return repr(self.predicate)


class Project(Operator):
    """π: positional projection to a subset of columns.

    The guaranteed output order is the longest prefix of the input order
    that survives the projection.
    """

    name = "Project"

    def __init__(self, child: Operator, columns: Sequence[str]) -> None:
        schema = child.schema.project(list(columns))
        kept = set(columns)
        order = child.output_order.restrict_prefix_to(kept)
        super().__init__(schema, order, [child])
        self._positions = child.schema.positions(list(columns))
        self._identity = list(self._positions) == list(range(len(child.schema)))

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        child = self.children[0]
        if self._identity:
            # Pure rename: pass batches through untouched (zero copies).
            return child.execute_batches(ctx)
        positions = self._positions
        # ``project`` re-uses the input's column objects when columnar
        # and builds tuples via itemgetter otherwise.
        return (batch.project(positions)
                for batch in child.execute_batches(ctx))

    def details(self) -> str:
        return ", ".join(self.schema.names)


class Compute(Operator):
    """Extend each row with computed expressions (e.g. Quantity*Price).

    Appends one column per ``(name, expression)`` pair; preserves order.
    """

    name = "Compute"

    def __init__(self, child: Operator, outputs: Sequence[tuple[str, Expression]],
                 output_size: int = 8,
                 kernels: Optional[OperatorKernels] = None) -> None:
        new_cols = [Column(name, "num", output_size) for name, _ in outputs]
        schema = Schema(list(child.schema) + new_cols)
        super().__init__(schema, child.output_order, [child])
        self.outputs = list(outputs)
        self._row_fns, self._batch_fns = compile_kernels(
            tuple(expr for _, expr in self.outputs), child.schema, kernels)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        row_fns = self._row_fns
        if row_fns is None:  # unbound parameters: raise like the seed engine
            row_fns = tuple(expr.compile(self.children[0].schema)
                            for _, expr in self.outputs)
        batch_fns = self._batch_fns if ctx.columnar else None
        return self._computed(ctx, row_fns, batch_fns)

    def _computed(self, ctx: ExecutionContext, row_fns,
                  batch_fns) -> Iterator[RowBatch]:
        for batch in self.children[0].execute_batches(ctx):
            if batch_fns is not None and (batch.is_columnar
                                          or len(batch) >= COLUMNAR_MIN_ROWS):
                new_cols = [fn(batch) for fn in batch_fns]
                if batch.is_columnar:
                    cols = list(batch.columns)
                    cols.extend(new_cols)
                    yield RowBatch.from_columns(cols, len(batch))
                elif len(new_cols) == 1:
                    # Row-backed input stays row-backed: append the
                    # kernel's values without transposing the old
                    # columns there and back.
                    yield RowBatch([row + (v,) for row, v
                                    in zip(batch.rows, new_cols[0])])
                else:
                    yield RowBatch([row + ext for row, ext
                                    in zip(batch.rows, zip(*new_cols))])
            else:
                yield RowBatch([row + tuple(fn(row) for fn in row_fns)
                                for row in batch.rows])

    def details(self) -> str:
        return ", ".join(f"{name}={expr}" for name, expr in self.outputs)


class Sort(Operator):
    """Order enforcer: SRS full sort or MRS partial sort.

    ``known_prefix`` defaults to the usable prefix of the child's
    guaranteed order — the paper's partial sort enforcer ``o' → o``.
    """

    name = "Sort"

    def __init__(self, child: Operator, target_order: SortOrder,
                 known_prefix: Optional[SortOrder] = None,
                 algorithm: str = "auto") -> None:
        if not child.schema.has_all(list(target_order)):
            missing = set(target_order) - set(child.schema.names)
            raise ValueError(f"sort references missing columns {missing}")
        if known_prefix is None:
            known_prefix = longest_common_prefix(child.output_order, target_order)
        super().__init__(child.schema, target_order, [child])
        self.known_prefix = known_prefix
        self.algorithm = algorithm

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        child = self.children[0]
        rows = flatten_batches(child.execute_batches(ctx))
        if ctx.check_orders and self.known_prefix:
            rows = self._check_input_prefix(rows, ctx)
        out = sort_stream(rows, self.schema, self.output_order, ctx,
                          known_prefix=self.known_prefix, algorithm=self.algorithm)
        out = self._maybe_checked(out, ctx, self.output_order, "Sort output")
        return batches_of(out, ctx.batch_size)

    def _check_input_prefix(self, rows: Iterator[tuple],
                            ctx: ExecutionContext) -> Iterator[tuple]:
        from .iterators import null_safe_wrap

        positions = self.schema.positions(list(self.known_prefix))
        prev: Optional[tuple] = None
        for row in rows:
            key = null_safe_wrap(tuple(row[i] for i in positions))
            if prev is not None and key < prev:
                raise AssertionError(
                    f"Sort: input violates declared prefix {self.known_prefix}: "
                    f"{key} after {prev}")
            prev = key
            yield row

    @property
    def is_partial(self) -> bool:
        return bool(self.known_prefix) and self.algorithm != "srs"

    def details(self) -> str:
        if self.is_partial:
            return f"{self.known_prefix} --> {self.output_order}"
        return f"ε --> {self.output_order}"

    def explain_name(self) -> str:  # pragma: no cover - cosmetic
        return "PartialSort" if self.is_partial else "Sort"


class PartialSort(Sort):
    """Alias emphasising a partial sort enforcer in explain output."""

    name = "PartialSort"

    def __init__(self, child: Operator, target_order: SortOrder,
                 known_prefix: Optional[SortOrder] = None) -> None:
        super().__init__(child, target_order, known_prefix, algorithm="mrs")


class Limit(Operator):
    """Pass through the first *k* rows (ORDER BY ... LIMIT k on sorted input).

    Stops pulling from the child once *k* rows arrived — early
    termination at batch granularity, so upstream stops paying I/O.
    """

    name = "Limit"

    def __init__(self, child: Operator, k: int) -> None:
        if k < 0:
            raise ValueError("limit must be non-negative")
        super().__init__(child.schema, child.output_order, [child])
        self.k = k

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        remaining = self.k
        if remaining == 0:
            return
        for batch in self.children[0].execute_batches(ctx):
            if len(batch) < remaining:
                remaining -= len(batch)
                yield batch
            else:
                yield batch.head(remaining)
                return

    def details(self) -> str:
        return f"k={self.k}"


class TopK(Operator):
    """Heap-based top-k by an order, for *unsorted* input.

    Keeps a bounded heap of k rows; used as the baseline against the
    MRS + Limit pipeline in the Top-K example (paper §3.1 benefit 2).
    """

    name = "TopK"

    def __init__(self, child: Operator, k: int, order: SortOrder) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        super().__init__(child.schema, order, [child])
        self.k = k

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        key_fn = key_function(self.schema, self.output_order)
        counter = ctx.comparisons
        # nsmallest with counted keys tallies its comparisons.
        rows = heapq.nsmallest(
            self.k, flatten_batches(self.children[0].execute_batches(ctx)),
            key=lambda r: CountedKey(key_fn(r), counter))
        return batches_of(rows, ctx.batch_size)

    def details(self) -> str:
        return f"k={self.k} by {self.output_order}"
