"""Lower optimizer :class:`~repro.optimizer.plans.PhysicalPlan` trees to
executable engine operators.

Payload (``args``) conventions per plan ``op``:

=====================  ==========================================================
op                     args
=====================  ==========================================================
``TableScan``          ``table`` (name)
``ShardedScan``        ``table``, ``shard_count``, ``shard_index``
``RangePartitionScan``  ``table``, ``partition_index``
``ExchangeUnion``      n-ary children; ``max_workers`` (optional)
``MergeExchange``      n-ary children; merge order = plan.order; ``max_workers``
``ClusteringIndexScan``  ``table``
``CoveringIndexScan``  ``table``, ``index`` (names)
``Filter``             ``predicate``
``Project``            ``columns`` (tuple of names)
``Compute``            ``outputs`` (tuple of (name, expression))
``Sort``               target = plan.order; ``prefix``; ``algorithm``
``PartialSort``        same, algorithm forced to MRS
``MergeJoin``          ``predicate`` (pairs in permutation order), ``join_type``
``HashJoin``           ``predicate``, ``join_type``
``NestedLoopsJoin``    ``predicate`` (optional), ``residual`` (optional)
``SortAggregate``      group order = plan.order; ``group_columns``, ``aggregates``
``SortedCombine``      group order = plan.order; ``group_columns``, ``aggregates``
``HashAggregate``      ``group_columns``, ``aggregates``
``MergeUnion``         order = plan.order
``UnionAll``           —
``Dedup``              order = plan.order
``HashDedup``          —
``Limit``              ``k``
=====================  ==========================================================

Expression-bearing ops (``Filter``, ``Compute``, ``NestedLoopsJoin``,
``SortAggregate``, ``HashAggregate``) additionally accept an optional
``kernels`` arg: a pre-compiled
:class:`~repro.engine.kernels.OperatorKernels` bundle attached at
prepare time by :func:`~repro.engine.kernels.attach_plan_kernels`.  It
is advisory — lowering passes it to the operator constructor, which
falls back to compiling (through the process-global kernel cache) when
absent.  Bundles are deliberately unpicklable;
:func:`~repro.engine.subplan.strip_plan` drops them before a plan
crosses a process boundary.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..core.sort_order import EMPTY_ORDER, SortOrder
from .aggregates import HashAggregate, SortAggregate, SortedGroupCombine
from .basic import Compute, Filter, Limit, Project, Sort
from .exchange import ExchangeUnion, MergeExchange
from .iterators import Operator
from .joins import HashJoin, MergeJoin, NestedLoopsJoin
from .scans import (
    ClusteringIndexScan,
    CoveringIndexScan,
    RangePartitionScan,
    ShardedScan,
    TableScan,
)
from .sets import Dedup, HashDedup, MergeUnion, UnionAll

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.catalog import Catalog


#: Ops whose meter tag carries the scanned table's name, so serving-time
#: feedback can attribute actual row counts back to catalog tables.
_TABLE_SCAN_OPS = frozenset((
    "TableScan", "ShardedScan", "RangePartitionScan",
    "ClusteringIndexScan", "CoveringIndexScan",
))


def meter_for(plan) -> Optional[tuple]:
    """The ``(tag, estimated_rows)`` meter for one plan node.

    Scan tags embed the table name (``"TableScan:orders"``); everything
    else meters under its op name.  Estimates are rounded to integers so
    per-shard contributions sum commutatively — gathered and streaming
    absorb orders must produce identical tallies.
    """
    stats = getattr(plan, "stats", None)
    if stats is None:
        return None
    tag = plan.op
    if tag in _TABLE_SCAN_OPS:
        tag = f"{tag}:{plan.arg('table')}"
    return (tag, int(stats.N + 0.5))


def operators_from_plan(plan, catalog: "Catalog",
                        replace: Optional[Callable[..., Optional[Operator]]] = None
                        ) -> Operator:
    """Recursively build the engine operator tree for *plan*.

    *replace*, when given, is consulted on every plan node **before**
    default lowering; returning an operator substitutes the whole
    subtree (its children are not lowered; the hook stamps its own row
    meters, if any).  The process-pool backend uses this to graft
    pre-executed shard results back into the plan
    (:mod:`repro.engine.subplan`).

    Every default-lowered operator carries a :func:`meter_for` stamp, so
    executions report estimated-vs-actual rows per operator through
    ``ExecutionContext.tallies()``.
    """
    if replace is not None:
        substituted = replace(plan)
        if substituted is not None:
            return substituted
    operator = _lower(plan, catalog, replace)
    operator._meter = meter_for(plan)
    return operator


def _lower(plan, catalog: "Catalog",
           replace: Optional[Callable[..., Optional[Operator]]]) -> Operator:
    children = [operators_from_plan(c, catalog, replace) for c in plan.children]
    op = plan.op

    if op == "TableScan":
        return TableScan(catalog.table(plan.arg("table")))
    if op == "ShardedScan":
        return ShardedScan(catalog.table(plan.arg("table")),
                           plan.arg("shard_count"), plan.arg("shard_index"))
    if op == "RangePartitionScan":
        return RangePartitionScan(catalog.table(plan.arg("table")),
                                  plan.arg("partition_index"))
    if op == "ExchangeUnion":
        return ExchangeUnion(children, plan.arg("max_workers", 1))
    if op == "MergeExchange":
        return MergeExchange(children, plan.order, plan.arg("max_workers", 1),
                             declared_disjoint=plan.arg("disjoint", False))
    if op == "ClusteringIndexScan":
        return ClusteringIndexScan(catalog.table(plan.arg("table")))
    if op == "CoveringIndexScan":
        index = next(ix for ix in catalog.indexes_of(plan.arg("table"))
                     if ix.name == plan.arg("index"))
        return CoveringIndexScan(index)
    if op == "Filter":
        return Filter(children[0], plan.arg("predicate"),
                      kernels=plan.arg("kernels"))
    if op == "Project":
        return Project(children[0], list(plan.arg("columns")))
    if op == "Compute":
        return Compute(children[0], list(plan.arg("outputs")),
                       kernels=plan.arg("kernels"))
    if op in ("Sort", "PartialSort"):
        prefix = plan.arg("prefix", EMPTY_ORDER)
        algorithm = plan.arg("algorithm", "auto")
        if op == "PartialSort" and not prefix:
            raise ValueError("PartialSort plan without a known prefix")
        return Sort(children[0], plan.order, known_prefix=prefix,
                    algorithm=algorithm)
    if op == "MergeJoin":
        return MergeJoin(children[0], children[1], plan.arg("predicate"),
                         plan.arg("join_type", "inner"))
    if op == "HashJoin":
        return HashJoin(children[0], children[1], plan.arg("predicate"),
                        plan.arg("join_type", "inner"))
    if op == "NestedLoopsJoin":
        return NestedLoopsJoin(children[0], children[1],
                               plan.arg("predicate"), plan.arg("residual"),
                               kernels=plan.arg("kernels"))
    if op == "SortAggregate":
        return SortAggregate(children[0], plan.order,
                             list(plan.arg("aggregates")),
                             group_columns=list(plan.arg("group_columns")),
                             kernels=plan.arg("kernels"))
    if op == "SortedCombine":
        return SortedGroupCombine(children[0], plan.order,
                                  list(plan.arg("group_columns")),
                                  list(plan.arg("aggregates")))
    if op == "HashAggregate":
        return HashAggregate(children[0], list(plan.arg("group_columns")),
                             list(plan.arg("aggregates")),
                             kernels=plan.arg("kernels"))
    if op == "MergeUnion":
        return MergeUnion(children[0], children[1], plan.order)
    if op == "UnionAll":
        return UnionAll(children[0], children[1])
    if op == "Dedup":
        return Dedup(children[0], plan.order)
    if op == "HashDedup":
        return HashDedup(children[0])
    if op == "Limit":
        return Limit(children[0], plan.arg("k"))
    raise ValueError(f"cannot lower unknown plan op {op!r}")
