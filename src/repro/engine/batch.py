"""Row batches: the unit of data flow between physical operators.

The engine executes **batch-vectorized pull**: ``Operator.execute_batches``
yields :class:`RowBatch` chunks instead of single tuples, so the
Python-level dispatch cost (one generator resumption, one virtual call)
is paid once per *batch* rather than once per *row*.

A batch keeps a **dual representation**: a list of row tuples
(array-of-structs, the seed engine's layout) and a struct-of-arrays
column list.  Either side is materialised lazily from the other with a
single C-level ``zip`` transpose and then cached, so row-level consumers
(``batch.rows``) and whole-column kernels (``batch.column``,
:meth:`Expression.compile_batch <repro.expr.expressions.Expression.compile_batch>`)
each pay at most one transpose per batch.  Column views are zero-copy:
``column()`` returns the cached column object itself, and columnar
projection (:meth:`RowBatch.project`) re-uses the input's column objects
without copying values.

Contract (see ``docs/execution.md``):

* batches are **non-empty**; an empty stream yields no batches;
* batch *sizes are a hint*, not a guarantee — producers aim for
  ``ExecutionContext.batch_size`` rows but selective operators may emit
  smaller batches rather than re-buffer;
* concatenating the batches of a stream yields exactly the rows (and
  row order) the row-at-a-time engine produced — simulated I/O and
  comparison counts are **independent of the batch size** for
  run-to-completion queries (early-terminating consumers pay I/O at
  batch granularity; ``batch_size=1`` reproduces row-level payment);
* the columnar path is an *identical-output* fast path: disabling it
  (``ExecutionContext(columnar=False)``) changes wall-clock only, never
  rows, tallies or block charges.

``BlockCharger`` implements batch-aware block accounting: it charges
each simulated disk block exactly once as the scan cursor crosses it,
which makes the totals identical to the seed engine's per-row
progressive charging for every batch size.
"""

from __future__ import annotations

from itertools import compress, islice
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Optional, Sequence

#: Default number of rows per batch.  Large enough to amortize operator
#: dispatch, small enough that a batch of wide rows stays cache-friendly.
DEFAULT_BATCH_SIZE = 1024

#: Below this many rows, whole-column kernels lose to the plain row loop
#: (the transpose + per-column dispatch overhead dominates), so operators
#: fall back to their compiled row path for tiny batches.
COLUMNAR_MIN_ROWS = 8


class _ColumnarTelemetry:
    """Process-wide count of batches that materialised a columnar side.

    A plain attribute bump (GIL-atomic enough for telemetry); surfaced
    through ``QuerySession.stats()`` / ``QueryServer.stats()`` together
    with the kernel-cache counters.
    """

    __slots__ = ("columnar_batches",)

    def __init__(self) -> None:
        self.columnar_batches = 0


_TELEMETRY = _ColumnarTelemetry()


def columnar_batches_total() -> int:
    """How many batches have been built or transposed columnar so far."""
    return _TELEMETRY.columnar_batches


def reset_columnar_batches() -> None:
    """Reset the columnar-batch counter (tests and benchmarks)."""
    _TELEMETRY.columnar_batches = 0


class RowBatch:
    """A chunk of rows flowing between operators (dual row/column layout).

    Deliberately minimal: iteration, length, indexing, and columnar
    accessors.  The wrapped row list / column lists are owned by the
    batch — operators that need to mutate rows must copy.
    """

    __slots__ = ("_rows", "_cols", "_colmemo", "_length")

    def __init__(self, rows: list[tuple]) -> None:
        self._rows = rows
        self._cols: Optional[list] = None
        self._colmemo: Optional[dict] = None
        self._length = len(rows)

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence], length: int) -> "RowBatch":
        """Build a columnar batch from equal-length column sequences.

        ``length`` is explicit so zero-column schemas keep their row
        count.  The column objects are adopted, not copied.
        """
        batch = cls.__new__(cls)
        batch._rows = None
        batch._cols = list(columns)
        batch._colmemo = None
        batch._length = length
        _TELEMETRY.columnar_batches += 1
        return batch

    # -- representation ---------------------------------------------------------------
    @property
    def is_columnar(self) -> bool:
        """True when the struct-of-arrays side is materialised."""
        return self._cols is not None

    @property
    def rows(self) -> list[tuple]:
        """The rows as a list of tuples (transposed from columns lazily)."""
        if self._rows is None:
            cols = self._cols
            self._rows = list(zip(*cols)) if cols else [()] * self._length
        return self._rows

    @property
    def columns(self) -> list:
        """All columns (transposed from rows lazily; zero-copy thereafter)."""
        if self._cols is None:
            self._cols = list(zip(*self._rows))
            if self._colmemo is None:  # already counted on first column()
                _TELEMETRY.columnar_batches += 1
        return self._cols

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __getitem__(self, i: int) -> tuple:
        return self.rows[i]

    def __bool__(self) -> bool:
        return self._length > 0

    # -- columnar access -------------------------------------------------------------
    def column(self, position: int) -> Sequence:
        """All values of one column (by schema position); zero-copy view.

        On a row-backed batch this extracts *only* the requested column
        (one comprehension) and memoizes it — a kernel touching two of
        ten columns never pays for the other eight.  The full transpose
        happens only when ``columns`` itself is asked for.
        """
        if self._length == 0:
            return []
        cols = self._cols
        if cols is not None:
            return cols[position]
        memo = self._colmemo
        if memo is None:
            memo = self._colmemo = {}
            _TELEMETRY.columnar_batches += 1
        col = memo.get(position)
        if col is None:
            col = memo[position] = [row[position] for row in self._rows]
        return col

    def _is_identity(self, positions: Sequence[int]) -> bool:
        width = (len(self._cols) if self._cols is not None
                 else (len(self._rows[0]) if self._rows else 0))
        return len(positions) == width and list(positions) == list(range(width))

    def take(self, positions: Sequence[int]) -> list[tuple]:
        """Project every row to the given positions.

        Identity projections return the batch's own row list without
        building new tuples.
        """
        if not self._length:
            return []
        if self._is_identity(positions):
            return self.rows
        if len(positions) == 1:
            pos = positions[0]
            return [(v,) for v in self.column(pos)] if self._cols is not None \
                else [(row[pos],) for row in self._rows]
        getter = itemgetter(*positions)
        return [getter(row) for row in self.rows]

    def project(self, positions: Sequence[int]) -> "RowBatch":
        """A batch projected to the given positions.

        Identity projections return ``self``; columnar inputs re-use the
        column objects (zero copies); row-backed inputs build new tuples.
        """
        if self._is_identity(positions):
            return self
        if self._cols is not None:
            cols = self._cols
            return RowBatch.from_columns([cols[p] for p in positions], self._length)
        return RowBatch(self.take(positions))

    def key_tuples(self, positions: Sequence[int]) -> list[tuple]:
        """Per-row key tuples over the given positions (join/group keys)."""
        if not self._length:
            return []
        if not positions:
            return [()] * self._length
        if self._cols is not None:
            cols = self._cols
            if len(positions) == 1:
                return [(v,) for v in cols[positions[0]]]
            return list(zip(*[cols[p] for p in positions]))
        if len(positions) == 1:
            pos = positions[0]
            return [(row[pos],) for row in self._rows]
        getter = itemgetter(*positions)
        return [getter(row) for row in self._rows]

    def filter(self, keep: Callable[[tuple], bool]) -> "RowBatch":
        """A new batch holding only rows satisfying *keep*."""
        return RowBatch([row for row in self.rows if keep(row)])

    def compress(self, mask: Sequence) -> "RowBatch":
        """Rows at truthy mask positions (the selection-vector apply).

        Returns ``self`` untouched when every row survives, and an empty
        (falsy) batch when none do.
        """
        alive = sum(1 for m in mask if m)
        if alive == self._length:
            return self
        if alive == 0:
            return RowBatch([])
        # Prefer the row side when it exists: one zip-filter beats a
        # per-column compress plus the transpose a row consumer would
        # pay downstream.
        if self._rows is not None:
            return RowBatch([row for row, m in zip(self._rows, mask) if m])
        return RowBatch.from_columns(
            [tuple(compress(col, mask)) for col in self._cols], alive)

    def head(self, n: int) -> "RowBatch":
        """The first *n* rows (``self`` when the batch is no longer)."""
        if n >= self._length:
            return self
        if self._rows is not None:
            return RowBatch(self._rows[:n])
        return RowBatch.from_columns([col[:n] for col in self._cols], n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        layout = "columnar" if self._cols is not None else "rows"
        return f"RowBatch({self._length} rows, {layout})"


def batches_of(rows: Iterable[tuple], batch_size: int) -> Iterator[RowBatch]:
    """Chunk a row iterable into non-empty batches of ≤ *batch_size*."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    it = iter(rows)
    while True:
        chunk = list(islice(it, batch_size))
        if not chunk:
            return
        yield RowBatch(chunk)


def flatten_batches(batches: Iterable[RowBatch]) -> Iterator[tuple]:
    """The row stream of a batch stream (for row-level consumers)."""
    for batch in batches:
        yield from batch.rows


def collect_rows(batches: Iterable[RowBatch]) -> list[tuple]:
    """Materialise a batch stream to a row list (drives it to completion)."""
    out: list[tuple] = []
    for batch in batches:
        out.extend(batch.rows)
    return out


class BatchBuilder:
    """Accumulates output rows and emits full batches.

    Usage inside an operator generator::

        out = BatchBuilder(ctx.batch_size)
        for batch in child.execute_batches(ctx):
            for row in batch:
                ...
                full = out.append(result_row)
                if full is not None:
                    yield full
        tail = out.flush()
        if tail is not None:
            yield tail
    """

    __slots__ = ("batch_size", "_rows")

    def __init__(self, batch_size: int) -> None:
        self.batch_size = batch_size
        self._rows: list[tuple] = []

    def append(self, row: tuple) -> Optional[RowBatch]:
        """Add one row; returns a full batch when the buffer fills."""
        self._rows.append(row)
        if len(self._rows) >= self.batch_size:
            return self.flush()
        return None

    def extend(self, rows: Iterable[tuple]) -> Optional[RowBatch]:
        """Add many rows; returns a (possibly oversized) batch when full."""
        self._rows.extend(rows)
        if len(self._rows) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> Optional[RowBatch]:
        """Emit whatever is buffered (None when empty)."""
        if not self._rows:
            return None
        batch = RowBatch(self._rows)
        self._rows = []
        return batch


class BlockCharger:
    """Charges each simulated disk block exactly once per scan.

    Works on *global row indices*: block ``b`` holds rows
    ``[b·per_block, (b+1)·per_block)``.  ``charge_range(start, end)``
    charges every not-yet-charged block overlapping ``[start, end)``.
    For a scan starting at row 0 the total equals the seed engine's
    per-row progressive charging (one block per ``per_block`` rows) for
    any batching; for a sharded scan starting mid-block the opening
    partial block is charged too — a shard really does read it.
    """

    __slots__ = ("io", "per_block", "category", "_last_block")

    def __init__(self, io, per_block: int, category: str = "scan") -> None:
        if per_block < 1:
            raise ValueError("per_block must be >= 1")
        self.io = io
        self.per_block = per_block
        self.category = category
        self._last_block = -1

    def charge_range(self, start: int, end: int) -> int:
        """Charge blocks for rows ``[start, end)``; returns blocks charged."""
        if end <= start:
            return 0
        first = start // self.per_block
        last = (end - 1) // self.per_block
        if first <= self._last_block:
            first = self._last_block + 1
        if last < first:
            return 0
        blocks = last - first + 1
        self.io.read(blocks, category=self.category)
        self._last_block = last
        return blocks
