"""Row batches: the unit of data flow between physical operators.

The engine executes **batch-vectorized pull**: ``Operator.execute_batches``
yields :class:`RowBatch` chunks instead of single tuples, so the
Python-level dispatch cost (one generator resumption, one virtual call)
is paid once per *batch* rather than once per *row*.  A batch is a thin
wrapper over a list of row tuples with columnar accessors; operators
like filter and project process a whole batch with a single list
comprehension.

Contract (see ``docs/execution.md``):

* batches are **non-empty**; an empty stream yields no batches;
* batch *sizes are a hint*, not a guarantee — producers aim for
  ``ExecutionContext.batch_size`` rows but selective operators may emit
  smaller batches rather than re-buffer;
* concatenating the batches of a stream yields exactly the rows (and
  row order) the row-at-a-time engine produced — simulated I/O and
  comparison counts are **independent of the batch size** for
  run-to-completion queries (early-terminating consumers pay I/O at
  batch granularity; ``batch_size=1`` reproduces row-level payment).

``BlockCharger`` implements batch-aware block accounting: it charges
each simulated disk block exactly once as the scan cursor crosses it,
which makes the totals identical to the seed engine's per-row
progressive charging for every batch size.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterable, Iterator, Optional, Sequence

#: Default number of rows per batch.  Large enough to amortize operator
#: dispatch, small enough that a batch of wide rows stays cache-friendly.
DEFAULT_BATCH_SIZE = 1024


class RowBatch:
    """A chunk of row tuples flowing between operators.

    Deliberately minimal: iteration, length, indexing, and columnar
    accessors.  The wrapped list is owned by the batch — operators that
    need to mutate rows must copy.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: list[tuple]) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __getitem__(self, i: int) -> tuple:
        return self.rows[i]

    def __bool__(self) -> bool:
        return bool(self.rows)

    # -- columnar access -------------------------------------------------------------
    def column(self, position: int) -> list:
        """All values of one column (by schema position)."""
        return [row[position] for row in self.rows]

    def take(self, positions: Sequence[int]) -> list[tuple]:
        """Project every row to the given positions (new tuples)."""
        return [tuple(row[i] for i in positions) for row in self.rows]

    def filter(self, keep: Callable[[tuple], bool]) -> "RowBatch":
        """A new batch holding only rows satisfying *keep*."""
        return RowBatch([row for row in self.rows if keep(row)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowBatch({len(self.rows)} rows)"


def batches_of(rows: Iterable[tuple], batch_size: int) -> Iterator[RowBatch]:
    """Chunk a row iterable into non-empty batches of ≤ *batch_size*."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    it = iter(rows)
    while True:
        chunk = list(islice(it, batch_size))
        if not chunk:
            return
        yield RowBatch(chunk)


def flatten_batches(batches: Iterable[RowBatch]) -> Iterator[tuple]:
    """The row stream of a batch stream (for row-level consumers)."""
    for batch in batches:
        yield from batch.rows


def collect_rows(batches: Iterable[RowBatch]) -> list[tuple]:
    """Materialise a batch stream to a row list (drives it to completion)."""
    out: list[tuple] = []
    for batch in batches:
        out.extend(batch.rows)
    return out


class BatchBuilder:
    """Accumulates output rows and emits full batches.

    Usage inside an operator generator::

        out = BatchBuilder(ctx.batch_size)
        for batch in child.execute_batches(ctx):
            for row in batch:
                ...
                full = out.append(result_row)
                if full is not None:
                    yield full
        tail = out.flush()
        if tail is not None:
            yield tail
    """

    __slots__ = ("batch_size", "_rows")

    def __init__(self, batch_size: int) -> None:
        self.batch_size = batch_size
        self._rows: list[tuple] = []

    def append(self, row: tuple) -> Optional[RowBatch]:
        """Add one row; returns a full batch when the buffer fills."""
        self._rows.append(row)
        if len(self._rows) >= self.batch_size:
            return self.flush()
        return None

    def extend(self, rows: Iterable[tuple]) -> Optional[RowBatch]:
        """Add many rows; returns a (possibly oversized) batch when full."""
        self._rows.extend(rows)
        if len(self._rows) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> Optional[RowBatch]:
        """Emit whatever is buffered (None when empty)."""
        if not self._rows:
            return None
        batch = RowBatch(self._rows)
        self._rows = []
        return batch


class BlockCharger:
    """Charges each simulated disk block exactly once per scan.

    Works on *global row indices*: block ``b`` holds rows
    ``[b·per_block, (b+1)·per_block)``.  ``charge_range(start, end)``
    charges every not-yet-charged block overlapping ``[start, end)``.
    For a scan starting at row 0 the total equals the seed engine's
    per-row progressive charging (one block per ``per_block`` rows) for
    any batching; for a sharded scan starting mid-block the opening
    partial block is charged too — a shard really does read it.
    """

    __slots__ = ("io", "per_block", "category", "_last_block")

    def __init__(self, io, per_block: int, category: str = "scan") -> None:
        if per_block < 1:
            raise ValueError("per_block must be >= 1")
        self.io = io
        self.per_block = per_block
        self.category = category
        self._last_block = -1

    def charge_range(self, start: int, end: int) -> int:
        """Charge blocks for rows ``[start, end)``; returns blocks charged."""
        if end <= start:
            return 0
        first = start // self.per_block
        last = (end - 1) // self.per_block
        if first <= self._last_block:
            first = self._last_block + 1
        if last < first:
            return 0
        blocks = last - first + 1
        self.io.read(blocks, category=self.category)
        self._last_block = last
        return blocks
