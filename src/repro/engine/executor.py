"""The batched executor driver: the loop that pulls a plan to completion.

:class:`BatchedExecutor` is the single entry point the serving layer
uses to run a lowered operator tree: it optionally fans table scans out
into shards (:func:`~repro.engine.exchange.shard_scans`), then pulls
batches from the root.  Centralising the drive loop here — instead of
each caller doing ``list(op.execute(ctx))`` — gives one place to hang
parallel shard workers today and the async serving loop later.

Shard-aware enforcement: plans produced by the optimizer with
``parallelism > 1`` already carry their per-shard enforcers and
:class:`~repro.engine.exchange.MergeExchange` gathers where the cost
model chose them; the executor's job is only to honour the thread knob
(``use_threads`` widens every exchange's drain pool) without disturbing
that choice.  Hand-built operator pipelines can opt into the same
rewrite with ``shard_aware_sorts=True``, which pushes a ``Sort`` sitting
above a sharded exchange down into the shards when the cost model says
the per-shard-sort-plus-merge pipeline is cheaper.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .batch import RowBatch, collect_rows
from .context import ExecutionContext
from .exchange import push_sorts_below_exchange, shard_scans, with_exchange_workers
from .iterators import Operator


class BatchedExecutor:
    """Drives operator trees batch-by-batch, optionally sharded.

    ``parallelism`` — number of shards each full table scan is split
    into (1 = leave the plan untouched).  ``use_threads`` — run shards
    on a thread pool (per-shard forked contexts, deterministic merged
    tallies); off by default since CPython threads don't help
    CPU-bound operator code.  ``shard_aware_sorts`` — opt-in rewrite of
    post-union sorts into per-shard sorts under a merge exchange for
    hand-built pipelines; optimizer-produced plans have already made
    this choice, so the serving layer leaves it off.
    """

    def __init__(self, parallelism: int = 1, use_threads: bool = False,
                 batch_size: Optional[int] = None,
                 shard_aware_sorts: bool = False) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.use_threads = use_threads
        self.batch_size = batch_size
        self.shard_aware_sorts = shard_aware_sorts

    def prepare(self, op: Operator, params=None) -> Operator:
        """Apply the sharding rewrites for this executor's parallelism."""
        if self.parallelism > 1:
            max_workers = self.parallelism if self.use_threads else 1
            op = shard_scans(op, self.parallelism, max_workers=max_workers)
            if self.shard_aware_sorts:
                op = push_sorts_below_exchange(op, params)
            if self.use_threads:
                # Plans lowered from the optimizer carry exchanges built
                # with the default serial drain; widen them (and any
                # narrower hand-built ones) without mutating the input.
                op = with_exchange_workers(op, self.parallelism)
        return op

    def _context(self, op: Operator,
                 ctx: Optional[ExecutionContext]) -> ExecutionContext:
        if ctx is not None:
            return ctx
        return ExecutionContext(batch_size=self.batch_size)

    def execute_batches(self, op: Operator,
                        ctx: Optional[ExecutionContext] = None
                        ) -> Iterator[RowBatch]:
        """Batch stream of the (sharded) plan."""
        ctx = self._context(op, ctx)
        return self.prepare(op, ctx.params).execute_batches(ctx)

    def run(self, op: Operator,
            ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        """Execute fully, collecting all result rows."""
        return collect_rows(self.execute_batches(op, ctx))
