"""The batched executor driver: the loop that pulls a plan to completion.

:class:`BatchedExecutor` is the single entry point the serving layer
uses to run a lowered operator tree: it optionally fans table scans out
into shards (:func:`~repro.engine.exchange.shard_scans`), then pulls
batches from the root.  Centralising the drive loop here — instead of
each caller doing ``list(op.execute(ctx))`` — gives one place to hang
parallel shard workers today and the async serving loop later.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .batch import RowBatch, collect_rows
from .context import ExecutionContext
from .exchange import shard_scans
from .iterators import Operator


class BatchedExecutor:
    """Drives operator trees batch-by-batch, optionally sharded.

    ``parallelism`` — number of shards each full table scan is split
    into (1 = leave the plan untouched).  ``use_threads`` — run shards
    on a thread pool (per-shard forked contexts, deterministic merged
    tallies); off by default since CPython threads don't help
    CPU-bound operator code.
    """

    def __init__(self, parallelism: int = 1, use_threads: bool = False,
                 batch_size: Optional[int] = None) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.use_threads = use_threads
        self.batch_size = batch_size

    def prepare(self, op: Operator) -> Operator:
        """Apply the sharding rewrite for this executor's parallelism."""
        if self.parallelism > 1:
            max_workers = self.parallelism if self.use_threads else 1
            op = shard_scans(op, self.parallelism, max_workers=max_workers)
        return op

    def _context(self, op: Operator,
                 ctx: Optional[ExecutionContext]) -> ExecutionContext:
        if ctx is not None:
            return ctx
        return ExecutionContext(batch_size=self.batch_size)

    def execute_batches(self, op: Operator,
                        ctx: Optional[ExecutionContext] = None
                        ) -> Iterator[RowBatch]:
        """Batch stream of the (sharded) plan."""
        ctx = self._context(op, ctx)
        return self.prepare(op).execute_batches(ctx)

    def run(self, op: Operator,
            ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        """Execute fully, collecting all result rows."""
        return collect_rows(self.execute_batches(op, ctx))
