"""Set operators: merge union, union-all, duplicate elimination.

Merge union is the paper's second example (after merge join) of an
operator requiring *the same* sort order from multiple inputs — SYS2's
Query 4 plan was expensive precisely because its two left-outer joins
produced different orders, making the union's dedup costly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from .context import ExecutionContext
from .iterators import Operator, key_function, null_safe_wrap


def _check_compatible(left: Operator, right: Operator, what: str) -> None:
    if len(left.schema) != len(right.schema):
        raise ValueError(f"{what}: inputs have different arity "
                         f"({len(left.schema)} vs {len(right.schema)})")


class UnionAll(Operator):
    """Bag union: concatenate the two inputs; no order guarantee."""

    name = "UnionAll"

    def __init__(self, left: Operator, right: Operator) -> None:
        _check_compatible(left, right, "UnionAll")
        super().__init__(left.schema, EMPTY_ORDER, [left, right])

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for child in self.children:
            yield from child.execute(ctx)


class MergeUnion(Operator):
    """Duplicate-eliminating union of two inputs sorted on *order*.

    *order* must cover every output column (set semantics need a total
    comparison); both inputs must arrive sorted on it.  Output preserves
    the order — a favorable order for operators above.
    """

    name = "MergeUnion"

    def __init__(self, left: Operator, right: Operator, order: SortOrder) -> None:
        _check_compatible(left, right, "MergeUnion")
        if set(order) != set(left.schema.names):
            raise ValueError(
                f"MergeUnion order {order} must be a permutation of all "
                f"columns {left.schema.names}")
        super().__init__(left.schema, order, [left, right])

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        left, right = self.children
        lkey = key_function(left.schema, self.output_order)
        rkey = key_function(right.schema.rename(
            dict(zip(right.schema.names, left.schema.names))), self.output_order)

        lrows = left.execute(ctx)
        rrows = right.execute(ctx)
        if ctx.check_orders:
            lpos = left.schema.positions(list(self.output_order))
            from .joins import _check_sorted_stream
            lrows = _check_sorted_stream(lrows, lpos, "MergeUnion left")
            rrows = _check_sorted_stream(rrows, lpos, "MergeUnion right")

        def stream() -> Iterator[tuple]:
            DONE = object()
            lit, rit = iter(lrows), iter(rrows)
            lrow, rrow = next(lit, DONE), next(rit, DONE)
            last_key: Optional[tuple] = None
            while lrow is not DONE or rrow is not DONE:
                if rrow is DONE or (lrow is not DONE and lkey(lrow) <= rkey(rrow)):
                    row, key = lrow, lkey(lrow)
                    lrow = next(lit, DONE)
                else:
                    row, key = rrow, rkey(rrow)
                    rrow = next(rit, DONE)
                ctx.comparisons.add()
                if key != last_key:
                    yield row
                    last_key = key

        return stream()

    def details(self) -> str:
        return f"on {self.output_order}"


class Dedup(Operator):
    """Streaming DISTINCT over input sorted on a permutation of all columns."""

    name = "Dedup"

    def __init__(self, child: Operator, order: SortOrder) -> None:
        if set(order) != set(child.schema.names):
            raise ValueError("Dedup order must cover every column")
        super().__init__(child.schema, order, [child])

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        key_fn = key_function(self.schema, self.output_order)
        rows = self.children[0].execute(ctx)
        if ctx.check_orders:
            positions = self.schema.positions(list(self.output_order))
            from .joins import _check_sorted_stream
            rows = _check_sorted_stream(rows, positions, "Dedup input")

        def stream() -> Iterator[tuple]:
            last: Optional[tuple] = None
            for row in rows:
                key = key_fn(row)
                ctx.comparisons.add()
                if key != last:
                    yield row
                    last = key

        return stream()

    def details(self) -> str:
        return f"on {self.output_order}"


class HashDedup(Operator):
    """Hash-based DISTINCT; no order requirement or guarantee."""

    name = "HashDedup"

    def __init__(self, child: Operator) -> None:
        super().__init__(child.schema, EMPTY_ORDER, [child])

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        seen: set[tuple] = set()
        distinct: list[tuple] = []
        for row in self.children[0].execute(ctx):
            if row not in seen:
                seen.add(row)
                distinct.append(row)
        if len(distinct) * self.schema.row_bytes > ctx.params.sort_memory_bytes:
            ctx.charge_blocks_for_rows(len(distinct), self.schema.row_bytes,
                                       direction="write", category="partition")
            ctx.charge_blocks_for_rows(len(distinct), self.schema.row_bytes,
                                       direction="read", category="partition")
        return iter(distinct)
