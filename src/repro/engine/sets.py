"""Set operators: merge union, union-all, duplicate elimination —
batch-vectorized.

Merge union is the paper's second example (after merge join) of an
operator requiring *the same* sort order from multiple inputs — SYS2's
Query 4 plan was expensive precisely because its two left-outer joins
produced different orders, making the union's dedup costly.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from .batch import RowBatch, batches_of, flatten_batches
from .context import ExecutionContext
from .iterators import (
    Operator,
    assert_sorted_batches,
    assert_sorted_rows,
    key_function,
    null_safe_wrap,
)


def _check_compatible(left: Operator, right: Operator, what: str) -> None:
    if len(left.schema) != len(right.schema):
        raise ValueError(f"{what}: inputs have different arity "
                         f"({len(left.schema)} vs {len(right.schema)})")


class UnionAll(Operator):
    """Bag union: concatenate the two inputs; no order guarantee."""

    name = "UnionAll"

    def __init__(self, left: Operator, right: Operator) -> None:
        _check_compatible(left, right, "UnionAll")
        super().__init__(left.schema, EMPTY_ORDER, [left, right])

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        for child in self.children:
            yield from child.execute_batches(ctx)


class MergeUnion(Operator):
    """Duplicate-eliminating union of two inputs sorted on *order*.

    *order* must cover every output column (set semantics need a total
    comparison); both inputs must arrive sorted on it.  Output preserves
    the order — a favorable order for operators above.
    """

    name = "MergeUnion"

    def __init__(self, left: Operator, right: Operator, order: SortOrder) -> None:
        _check_compatible(left, right, "MergeUnion")
        if set(order) != set(left.schema.names):
            raise ValueError(
                f"MergeUnion order {order} must be a permutation of all "
                f"columns {left.schema.names}")
        super().__init__(left.schema, order, [left, right])

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        left, right = self.children
        lkey = key_function(left.schema, self.output_order)
        rkey = key_function(right.schema.rename(
            dict(zip(right.schema.names, left.schema.names))), self.output_order)

        lrows = flatten_batches(left.execute_batches(ctx))
        rrows = flatten_batches(right.execute_batches(ctx))
        if ctx.check_orders:
            lpos = left.schema.positions(list(self.output_order))
            lrows = assert_sorted_rows(lrows, lpos, "MergeUnion left")
            rrows = assert_sorted_rows(rrows, lpos, "MergeUnion right")

        def stream() -> Iterator[tuple]:
            DONE = object()
            lit, rit = iter(lrows), iter(rrows)
            lrow, rrow = next(lit, DONE), next(rit, DONE)
            last_key: Optional[tuple] = None
            while lrow is not DONE or rrow is not DONE:
                if rrow is DONE or (lrow is not DONE and lkey(lrow) <= rkey(rrow)):
                    row, key = lrow, lkey(lrow)
                    lrow = next(lit, DONE)
                else:
                    row, key = rrow, rkey(rrow)
                    rrow = next(rit, DONE)
                ctx.comparisons.add()
                if key != last_key:
                    yield row
                    last_key = key

        return batches_of(stream(), ctx.batch_size)

    def details(self) -> str:
        return f"on {self.output_order}"


class Dedup(Operator):
    """Streaming DISTINCT over input sorted on a permutation of all columns."""

    name = "Dedup"

    def __init__(self, child: Operator, order: SortOrder) -> None:
        if set(order) != set(child.schema.names):
            raise ValueError("Dedup order must cover every column")
        super().__init__(child.schema, order, [child])

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        positions = self.schema.positions(list(self.output_order))
        batches = self.children[0].execute_batches(ctx)
        if ctx.check_orders:
            batches = assert_sorted_batches(batches, positions, "Dedup input")

        def stream() -> Iterator[RowBatch]:
            # Keys are compared only for equality, so the raw key tuples
            # from the batch suffice (no null-safe wrapping needed —
            # tuple equality already treats NULLs consistently).
            last: Optional[tuple] = None
            counter = ctx.comparisons
            for batch in batches:
                kept: list[tuple] = []
                for row, key in zip(batch.rows, batch.key_tuples(positions)):
                    counter.add()
                    if key != last:
                        kept.append(row)
                        last = key
                if kept:
                    yield RowBatch(kept)

        return stream()

    def details(self) -> str:
        return f"on {self.output_order}"


class HashDedup(Operator):
    """Hash-based DISTINCT; no order requirement or guarantee."""

    name = "HashDedup"

    def __init__(self, child: Operator) -> None:
        super().__init__(child.schema, EMPTY_ORDER, [child])

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        seen: set[tuple] = set()
        distinct: list[tuple] = []
        for batch in self.children[0].execute_batches(ctx):
            for row in batch.rows:
                if row not in seen:
                    seen.add(row)
                    distinct.append(row)
        if len(distinct) * self.schema.row_bytes > ctx.params.sort_memory_bytes:
            ctx.charge_blocks_for_rows(len(distinct), self.schema.row_bytes,
                                       direction="write", category="partition")
            ctx.charge_blocks_for_rows(len(distinct), self.schema.row_bytes,
                                       direction="read", category="partition")
        return batches_of(distinct, ctx.batch_size)
