"""External sorting: standard and modified replacement selection (Section 3).

Two algorithms:

* :func:`srs_sort` — **SRS**, textbook replacement selection [Knu73]:
  a selection heap produces initial runs (~2× memory on random input, one
  giant run on presorted input), runs are written to the simulated disk
  and merged with fan-in ``M-1``.  On fully-presorted input SRS still
  "writes a single large run to the disk and reads it back; this breaks
  the pipeline and incurs substantial I/O" — exactly the behaviour the
  paper criticises.

* :func:`mrs_sort` — **MRS**, the paper's modified replacement selection:
  given a known partial sort order (a prefix of the target order), tuples
  sharing a prefix value form a *partial sort segment*; each segment is
  sorted independently on the remaining attributes and emitted as soon as
  the next segment starts.  If a segment fits in memory the whole sort
  does **zero** disk I/O, output begins immediately (pipelined), and
  comparisons drop from ``O(n log n)`` to ``O(n log(n/k))`` on fewer
  attributes.

Both charge block transfers to the :class:`~repro.engine.context.ExecutionContext`
and count comparisons, making Experiments A1–A4 reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..core.sort_order import SortOrder
from ..storage.schema import Schema
from .context import CountedKey, ExecutionContext
from .iterators import null_safe_wrap, tuple_getter

KeyFn = Callable[[tuple], tuple]

_SENTINEL = object()


class _RunStore:
    """Simulated disk holding sort runs; charges I/O at write & read time."""

    def __init__(self, ctx: ExecutionContext, row_bytes: int, category: str = "run") -> None:
        self.ctx = ctx
        self.row_bytes = row_bytes
        self.category = category
        self.runs: list[list[tuple]] = []

    def write_run(self, rows: list[tuple]) -> None:
        if not rows:
            return
        self.ctx.charge_blocks_for_rows(len(rows), self.row_bytes,
                                        direction="write", category=self.category)
        self.ctx.sort_metrics.runs_created += 1
        self.ctx.sort_metrics.rows_spilled += len(rows)
        self.runs.append(rows)

    def read_run(self, run: list[tuple]) -> Iterator[tuple]:
        return self.ctx.charged_stream(run, self.row_bytes, category=self.category)


def merge_sorted_streams(streams: Sequence[Iterable[tuple]], key_fn: KeyFn,
                         ctx: ExecutionContext) -> Iterator[tuple]:
    """Stable k-way merge of sorted row streams, tallying comparisons.

    ``heapq.merge`` breaks key ties by stream position, so merging
    per-shard sorted streams *in shard order* reproduces exactly the row
    sequence a stable full sort of the concatenated input would emit —
    the invariant :class:`~repro.engine.exchange.MergeExchange` and the
    run merges below both rely on.
    """
    counter = ctx.comparisons

    def counted_key(row: tuple) -> CountedKey:
        return CountedKey(key_fn(row), counter)

    return heapq.merge(*streams, key=counted_key)


def _merge_runs(store: _RunStore, runs: list[list[tuple]], key_fn: KeyFn,
                ctx: ExecutionContext) -> Iterator[tuple]:
    """Multiway-merge *runs* down to a single sorted stream.

    Intermediate passes happen only when the number of runs exceeds the
    merge fan-in (``M - 1`` input buffers); each pass reads and rewrites
    the merged data, which is what makes the SRS curve jump in Fig. 9.
    """
    # Snapshot: write_run() appends to store.runs, which may be the very
    # list the caller handed us.
    runs = list(runs)
    fan_in = max(2, ctx.params.sort_memory_blocks - 1)

    while len(runs) > fan_in:
        ctx.sort_metrics.merge_passes += 1
        next_runs: list[list[tuple]] = []
        for i in range(0, len(runs), fan_in):
            batch = runs[i:i + fan_in]
            merged = list(merge_sorted_streams(
                [store.read_run(r) for r in batch], key_fn, ctx))
            store.write_run(merged)
            next_runs.append(merged)
        runs = next_runs
    ctx.sort_metrics.merge_passes += 1
    return merge_sorted_streams([store.read_run(r) for r in runs], key_fn, ctx)


def srs_sort(rows: Iterable[tuple], key_fn: KeyFn, ctx: ExecutionContext,
             row_bytes: int) -> Iterator[tuple]:
    """Standard replacement selection external sort.

    If the input fits in sort memory the heap is simply drained (an
    in-memory sort, no I/O) — this matches the cost model's
    ``B(e) ≤ M`` branch.  Otherwise runs go to the simulated disk and are
    merged, charging every transfer.
    """
    # A row wider than sort memory must not yield capacity 0: the first
    # row would become ``overflow_row`` against an empty heap and the
    # replacement-selection loop would silently drop the whole input.
    capacity = max(1, ctx.memory_capacity_rows(row_bytes))
    counter = ctx.comparisons
    heap: list[tuple[int, CountedKey, int, tuple]] = []
    seq = 0
    it = iter(rows)

    overflow_row = _SENTINEL
    for row in it:
        if len(heap) < capacity:
            heapq.heappush(heap, (0, CountedKey(key_fn(row), counter), seq, row))
            seq += 1
        else:
            overflow_row = row
            break

    if overflow_row is _SENTINEL:
        # Entire input fits in memory: no run I/O at all.
        ctx.sort_metrics.in_memory_sorts += 1
        while heap:
            yield heapq.heappop(heap)[3]
        return

    store = _RunStore(ctx, row_bytes)
    current_run = 0
    run_buffer: list[tuple] = []
    pending: object = overflow_row

    def flush_run() -> None:
        nonlocal run_buffer
        store.write_run(run_buffer)
        run_buffer = []

    while heap:
        run_id, popped_key, _, popped_row = heapq.heappop(heap)
        if run_id != current_run:
            flush_run()
            current_run = run_id
        run_buffer.append(popped_row)
        if pending is not _SENTINEL:
            new_key = key_fn(pending)
            counter.add()
            # A new tuple smaller than the last one output cannot join the
            # current run; defer it to the next run.
            target = run_id if new_key >= popped_key.key else run_id + 1
            heapq.heappush(heap, (target, CountedKey(new_key, counter), seq, pending))
            seq += 1
            pending = next(it, _SENTINEL)
    flush_run()

    yield from _merge_runs(store, store.runs, key_fn, ctx)


def mrs_sort(rows: Iterable[tuple], segment_key_fn: KeyFn, suffix_key_fn: KeyFn,
             ctx: ExecutionContext, row_bytes: int,
             full_key_fn: Optional[KeyFn] = None) -> Iterator[tuple]:
    """Modified replacement selection exploiting a known partial sort order.

    ``segment_key_fn`` extracts the already-sorted prefix attributes;
    ``suffix_key_fn`` the remaining attributes to sort within a segment.
    Tuples are emitted segment by segment — output starts as soon as the
    first segment completes, enabling fully pipelined execution.

    Oversized segments (larger than sort memory) degrade gracefully: full
    memory loads are sorted and spilled as runs, then merged — per
    segment, so run counts stay far below SRS until a single segment
    approaches the whole input (the convergence at the right edge of
    Fig. 9).
    """
    # Same ≥ 1 guard as srs_sort: a zero capacity would spill a run per
    # row (and an empty run first) instead of degrading gracefully.
    capacity = max(1, ctx.memory_capacity_rows(row_bytes))
    counter = ctx.comparisons
    full_key_fn = full_key_fn or suffix_key_fn

    def counted_suffix(row: tuple) -> CountedKey:
        return CountedKey(suffix_key_fn(row), counter)

    def emit_segment(segment: list[tuple], store: Optional[_RunStore]) -> Iterator[tuple]:
        ctx.sort_metrics.segments_sorted += 1
        if store is None or not store.runs:
            segment.sort(key=counted_suffix)
            ctx.sort_metrics.in_memory_sorts += 1
            yield from segment
            return
        # The segment spilled: sort the in-memory tail, then merge it with
        # the on-disk runs of this segment only.  The run merge honours the
        # same fan-in limit as SRS (intermediate passes when there are more
        # runs than buffers), so an all-one-segment input converges to SRS
        # cost — the right edge of Fig. 9.
        segment.sort(key=counted_suffix)
        merged_runs = _merge_runs(store, store.runs, suffix_key_fn, ctx)
        yield from heapq.merge(merged_runs, iter(segment), key=counted_suffix)

    current_prefix: object = _SENTINEL
    segment: list[tuple] = []
    store: Optional[_RunStore] = None

    for row in rows:
        prefix = segment_key_fn(row)
        counter.add()  # the segment-boundary test is a key comparison
        if prefix != current_prefix:
            if current_prefix is not _SENTINEL:
                yield from emit_segment(segment, store)
            current_prefix = prefix
            segment = [row]
            store = None
            continue
        segment.append(row)
        if len(segment) >= capacity:
            # Spill one memory load of this segment as a sorted run.
            if store is None:
                store = _RunStore(ctx, row_bytes)
            segment.sort(key=counted_suffix)
            store.write_run(segment)
            segment = []
    if current_prefix is not _SENTINEL:
        yield from emit_segment(segment, store)


def sort_stream(
    rows: Iterable[tuple],
    schema: Schema,
    target_order: SortOrder,
    ctx: ExecutionContext,
    known_prefix: SortOrder = SortOrder(),
    algorithm: str = "auto",
) -> Iterator[tuple]:
    """Sort a row stream to *target_order*, dispatching SRS vs MRS.

    ``known_prefix`` is the sort order already guaranteed on the input
    (must be a prefix of *target_order*).  ``algorithm`` may force
    ``"srs"`` (ignore the prefix, as the systems in Experiment A1 do) or
    ``"mrs"``; ``"auto"`` uses MRS exactly when a usable prefix exists.
    """
    if algorithm not in ("auto", "srs", "mrs"):
        raise ValueError(f"unknown sort algorithm {algorithm!r}")
    if not known_prefix.is_prefix_of(target_order):
        raise ValueError(f"known prefix {known_prefix} is not a prefix of {target_order}")

    row_bytes = schema.row_bytes
    positions = schema.positions(list(target_order))
    k = len(known_prefix)

    full_getter = tuple_getter(positions)

    def full_key(row: tuple) -> tuple:
        return null_safe_wrap(full_getter(row))

    if algorithm == "mrs" and k == 0:
        raise ValueError("MRS requires a non-empty known sort-order prefix")

    use_mrs = algorithm == "mrs" or (algorithm == "auto" and 0 < k)
    if use_mrs and k >= len(target_order):
        # Input already fully sorted; nothing to do.
        return iter(rows)
    if use_mrs:
        prefix_getter = tuple_getter(positions[:k])
        suffix_getter = tuple_getter(positions[k:])

        def segment_key(row: tuple) -> tuple:
            return null_safe_wrap(prefix_getter(row))

        def suffix_key(row: tuple) -> tuple:
            return null_safe_wrap(suffix_getter(row))

        return mrs_sort(rows, segment_key, suffix_key, ctx, row_bytes, full_key)
    return srs_sort(rows, full_key, ctx, row_bytes)
