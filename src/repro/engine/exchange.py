"""Exchange operators: fan N shard streams back into one stream.

:class:`ExchangeUnion` is the gather side of a scan fan-out: its
children are the shards of one logical stream (built by
:func:`shard_scans`), and it concatenates their batches in shard order.
Because :class:`~repro.engine.scans.ShardedScan` partitions a table into
*contiguous* row ranges, concatenation in shard order reproduces the
unsharded scan's row sequence exactly — including its clustering order —
so everything above the exchange is oblivious to the sharding.

:class:`MergeExchange` is the *order-preserving* gather: its children
each deliver rows already sorted on the merge order (typically per-shard
SRS/MRS enforcers over the shards), and it performs a stable k-way heap
merge — ties go to the lowest shard index, so the output is bit-identical
to a stable full sort of the shards concatenated in shard order.  This
is what lets a required order be enforced *below* the exchange, shard by
shard, instead of by one big post-union sort (the shard-aware enforcer
placement; see docs/execution.md).

With ``max_workers > 1`` the children are executed concurrently on a
thread pool, each charging a forked
:class:`~repro.engine.context.ExecutionContext` whose counters are
folded back in shard order — totals stay deterministic regardless of
thread interleaving.  (CPython threads don't speed up pure-Python
operator code, but the pool exercises the exact driver structure the
async serving loop will reuse, and I/O-bound backends benefit today.)
"""

from __future__ import annotations

import copy
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from .basic import Compute, Filter, Project, Sort
from .batch import RowBatch, batches_of, flatten_batches
from .context import ExecutionContext
from .iterators import Operator, assert_sorted_rows, key_function
from .scans import (
    ClusteringIndexScan,
    RangePartitionScan,
    ShardedScan,
    TableScan,
    range_shardable,
    shardable,
)
from .sorting import merge_sorted_streams


def _common_contiguous_order(children: Sequence[Operator]):
    """The order preserved by concatenating *children* in sequence.

    Guaranteed when the children are consecutive contiguous shards of one
    table (the shape :func:`shard_scans` builds), or the full set of
    range partitions of a table *clustered on the partition column* (the
    partitions then tile the clustered row sequence); anything else gets
    ε — concatenating independently sorted streams is not sorted.
    """
    if all(isinstance(c, RangePartitionScan) for c in children):
        table = children[0].table  # type: ignore[attr-defined]
        if (not table.partition_contiguous
                or table.partitioning.num_partitions != len(children)):
            return EMPTY_ORDER
        for i, child in enumerate(children):
            if child.table is not table or child.partition_index != i:  # type: ignore[attr-defined]
                return EMPTY_ORDER
        return children[0].output_order
    if not all(isinstance(c, TableScan) for c in children):
        return EMPTY_ORDER
    table = children[0].table  # type: ignore[attr-defined]
    count = children[0].shard_count  # type: ignore[attr-defined]
    if count != len(children):
        return EMPTY_ORDER
    for i, child in enumerate(children):
        if (child.table is not table or child.shard_count != count
                or child.shard_index != i):  # type: ignore[attr-defined]
            return EMPTY_ORDER
    return children[0].output_order


def _drain_shards(children: Sequence[Operator], ctx: ExecutionContext,
                  max_workers: int) -> list[list[RowBatch]]:
    """Eagerly run every child to completion on a thread pool.

    Each worker charges a forked context; all tallies are absorbed into
    *ctx* **in shard order** — never completion order — before any batch
    is returned, so totals stay deterministic however the workers
    interleave.  The one drain discipline shared by both exchanges.
    """
    def drain(child: Operator) -> tuple[ExecutionContext, list[RowBatch]]:
        forked = ctx.fork()
        return forked, list(child.execute_batches(forked))

    workers = min(max_workers, len(children))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(drain, child) for child in children]
        results = [future.result() for future in futures]
    for forked, _ in results:
        ctx.absorb(forked)
    return [batches for _, batches in results]


class ExchangeUnion(Operator):
    """Concatenate N shard streams in shard order (order-preserving
    gather for contiguous shards)."""

    name = "ExchangeUnion"

    def __init__(self, children: Sequence[Operator], max_workers: int = 1) -> None:
        if not children:
            raise ValueError("ExchangeUnion needs at least one child")
        first = children[0].schema
        for child in children[1:]:
            if child.schema.names != first.names:
                raise ValueError("ExchangeUnion children must share a schema")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        super().__init__(first, _common_contiguous_order(children), children)
        self.max_workers = max_workers

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self.max_workers > 1 and len(self.children) > 1:
            return self._parallel(ctx)
        return self._serial(ctx)

    def _serial(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        for child in self.children:
            yield from child.execute_batches(ctx)

    def _parallel(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Eager gather: every shard runs to completion on the pool.

        All forked tallies are folded into the parent *before* the first
        batch is handed downstream — the work ran, so it is charged even
        if the consumer stops early.  The materialisation this implies is
        the classic eager-exchange trade-off (workers don't pause);
        early-terminating consumers that care about I/O should drive the
        serial path.
        """
        for batches in _drain_shards(self.children, ctx, self.max_workers):
            yield from batches

    def details(self) -> str:
        suffix = f", {self.max_workers} workers" if self.max_workers > 1 else ""
        return f"{len(self.children)} shards{suffix}"


class MergeExchange(Operator):
    """Order-preserving gather: stable k-way merge of per-shard sorted
    streams.

    Every child must deliver rows sorted on *order* (enforced at run time
    under ``ctx.check_orders``).  The merge is stable — equal keys come
    out in shard order, and within a shard in arrival order — so the
    output is bit-identical to what a stable full sort over the
    concatenation of the children (in child order) would produce.  Merge
    comparisons are tallied through the shared
    :class:`~repro.engine.context.CountedKey` machinery, and are
    independent of the batch size.
    """

    name = "MergeExchange"

    def __init__(self, children: Sequence[Operator], order: SortOrder,
                 max_workers: int = 1, declared_disjoint: bool = False) -> None:
        if not children:
            raise ValueError("MergeExchange needs at least one child")
        if not order:
            raise ValueError("MergeExchange needs a non-empty merge order")
        first = children[0].schema
        for child in children[1:]:
            if child.schema.names != first.names:
                raise ValueError("MergeExchange children must share a schema")
        if not first.has_all(list(order)):
            missing = set(order) - set(first.names)
            raise ValueError(f"merge order references missing columns {missing}")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        super().__init__(first, order, children)
        self.max_workers = max_workers
        #: A planner-declared disjointness guarantee.  Re-assembled
        #: serving gathers put :class:`~repro.engine.subplan.RowSource` /
        #: ``StreamSource`` children under the exchange, which carry no
        #: partition bounds for :func:`partitions_disjoint_on` to
        #: re-detect — the plan node's ``disjoint`` arg is the only
        #: surviving witness, so lowering and re-assembly pass it here.
        self.declared_disjoint = declared_disjoint

    @property
    def partition_disjoint(self) -> bool:
        """Whether the children are ascending range partitions disjoint on
        the leading merge column — concatenation is then already globally
        sorted and the k-way heap (with its ``N·log2(k)`` comparisons) is
        skipped entirely.  Either declared by the planner (which proved it
        from the catalog's partitioning) or re-detected from the operator
        shape, so hand-built pipelines get the same fast path."""
        return (self.declared_disjoint
                or partitions_disjoint_on(self.children, self.output_order))

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        streams = self._shard_streams(ctx)
        if ctx.check_orders:
            positions = self.schema.positions(list(self.output_order))
            streams = [assert_sorted_rows(s, positions,
                                          f"MergeExchange input shard {i}")
                       for i, s in enumerate(streams)]
        if self.partition_disjoint:
            # Disjoint ascending partitions: concatenating the per-shard
            # sorted streams is already the global order — no comparisons.
            def concatenated() -> Iterator[tuple]:
                for stream in streams:
                    yield from stream
            return batches_of(concatenated(), ctx.batch_size)
        key_fn = key_function(self.schema, self.output_order)
        merged = merge_sorted_streams(streams, key_fn, ctx)
        return batches_of(merged, ctx.batch_size)

    def _shard_streams(self, ctx: ExecutionContext) -> list[Iterator[tuple]]:
        """One sorted row stream per child, in shard order.

        Serial: lazy generators, so the merge stays pipelined.  Parallel:
        the same eager :func:`_drain_shards` discipline as
        :class:`ExchangeUnion` — all tallies land in *ctx* before the
        merge (which runs on the calling thread) touches a single row.
        """
        if self.max_workers > 1 and len(self.children) > 1:
            return [flatten_batches(batches)
                    for batches in _drain_shards(self.children, ctx,
                                                 self.max_workers)]
        return [flatten_batches(child.execute_batches(ctx))
                for child in self.children]

    def details(self) -> str:
        suffix = f", {self.max_workers} workers" if self.max_workers > 1 else ""
        if self.partition_disjoint:
            suffix += ", disjoint concat"
        return f"{len(self.children)} shards on {self.output_order}{suffix}"


def shard_scans(op: Operator, shard_count: int, max_workers: int = 1) -> Operator:
    """Rewrite full table scans into ExchangeUnion-of-ShardedScan fan-outs.

    Non-destructive: the caller's tree is never touched.  Operators on
    the path to a replaced scan are shallow-copied with rebuilt child
    tuples (the replacement has the same schema and output order, so
    parents' precomputed positions stay valid); untouched subtrees are
    shared.  Re-running or re-sharding the original tree at a different
    parallelism therefore behaves identically.  Scans already sharded,
    stats-only tables and covering-index scans are left alone.
    """
    if shard_count < 2:
        return op
    if (isinstance(op, (TableScan, ClusteringIndexScan))
            and not isinstance(op, (ShardedScan, RangePartitionScan))
            and getattr(op, "shard_count", 1) == 1
            and shardable(op.table, shard_count)):
        # A clustered-contiguous range partitioning that matches the
        # requested width shards along partition boundaries instead of
        # equal row counts: the partitions tile the clustered sequence
        # (concatenation stays exact) and a sort later pushed below the
        # exchange can use the partition-aware (heap-free) merge.
        if (range_shardable(op.table) and op.table.partition_contiguous
                and op.table.partitioning.num_partitions == shard_count):
            shards: list[Operator] = [RangePartitionScan(op.table, i)
                                      for i in range(shard_count)]
        else:
            shards = [ShardedScan(op.table, shard_count, i)
                      for i in range(shard_count)]
        exchange = ExchangeUnion(shards, max_workers=max_workers)
        # The replaced scan's row meter (if lowering stamped one) moves to
        # the gather, which emits the same rows — estimated-vs-actual
        # tallies stay identical across parallelism settings.
        exchange._meter = op._meter
        return exchange
    new_children = tuple(shard_scans(c, shard_count, max_workers)
                         for c in op.children)
    if all(new is old for new, old in zip(new_children, op.children)):
        return op
    clone = copy.copy(op)
    clone.children = new_children
    return clone


#: Per-row unaries that commute with sharding: applying them to each
#: contiguous shard and concatenating equals applying them to the whole
#: stream, and each shard's output order equals the whole-stream order.
_ORDER_PRESERVING_UNARIES = (Filter, Project, Compute)

#: The same whitelist by plan-op name — the optimizer's shard-aware
#: enforcer placement imports this so the engine rewrite and the volcano
#: search can never disagree about which shapes are shard-transparent.
ORDER_PRESERVING_UNARY_OPS = tuple(cls.name for cls in _ORDER_PRESERVING_UNARIES)


def _partition_leaf(op: Operator) -> Optional[RangePartitionScan]:
    """The :class:`RangePartitionScan` under a chain of partition-bound
    preserving unaries, else ``None``.

    Filter/Project/Compute/Sort never move a row's partition-column value
    outside its partition's range, and a streaming group-aggregate emits
    group-column values taken from its input rows — so any such chain
    over a partition scan stays within the partition's value bounds.  A
    merge join is descended through its *left* input: output rows (and
    LEFT OUTER padding) take their left-column values from left input
    rows, so a left-side partition bound survives the join.
    """
    from .aggregates import SortAggregate
    from .joins import MergeJoin

    node = op
    while True:
        if (len(node.children) == 1
                and isinstance(node, _ORDER_PRESERVING_UNARIES
                               + (Sort, SortAggregate))):
            node = node.children[0]
        elif isinstance(node, MergeJoin) and node.join_type in ("inner", "left"):
            node = node.children[0]
        else:
            break
    return node if isinstance(node, RangePartitionScan) else None


def partitions_disjoint_on(children: Sequence[Operator], order: SortOrder) -> bool:
    """Whether *children* are ascending range partitions of one table,
    mutually disjoint on the leading attribute of *order*.

    This is the partition-aware merge condition: every row of child *i*
    compares ≤ every row of child *i+1* on the merge key, so the gather
    can concatenate instead of heap-merging.  Shared with the optimizer's
    cost model via the plans it builds (the engine re-detects the shape
    at run time, so hand-built pipelines get the same fast path).
    """
    if not order or len(children) < 2:
        return False
    leaves = [_partition_leaf(c) for c in children]
    if any(leaf is None for leaf in leaves):
        return False
    table = leaves[0].table
    if any(leaf.table is not table for leaf in leaves):
        return False
    indexes = [leaf.partition_index for leaf in leaves]
    if any(b <= a for a, b in zip(indexes, indexes[1:])):
        return False
    return order.as_tuple[0] == table.partitioning.column


def _exchange_under(op: Operator) -> Optional[tuple[list[Operator], "ExchangeUnion"]]:
    """The (unary path, exchange) below *op* when the subtree has the
    shard fan-out shape, else ``None``.

    Matches ``(Filter|Project|Compute)* → ExchangeUnion(shards of one
    table)`` — exactly what :func:`shard_scans` builds under an enforcer.
    """
    path: list[Operator] = []
    node = op
    while isinstance(node, _ORDER_PRESERVING_UNARIES):
        path.append(node)
        node = node.children[0]
    if not isinstance(node, ExchangeUnion):
        return None
    sharded = all(isinstance(c, TableScan) and c.shard_count > 1
                  for c in node.children)
    ranged = all(isinstance(c, RangePartitionScan) for c in node.children)
    if not (sharded or ranged):
        return None
    return path, node


def _rebuild_path(path: Sequence[Operator], leaf: Operator) -> Operator:
    """Clone the unary chain *path* (outermost first) onto a new leaf."""
    node = leaf
    for op in reversed(path):
        if isinstance(op, Filter):
            node = Filter(node, op.predicate)
        elif isinstance(op, Project):
            node = Project(node, list(op.schema.names))
        else:
            node = Compute(node, list(op.outputs))
    return node


def _derive_chain(stats, path: Sequence[Operator]):
    """Carry a scan-level :class:`StatsView` through the unary path
    (filter selectivities applied, projections narrowing the row width) —
    the same derivation the optimizer's candidate plans carry, so the two
    decisions agree even below selective filters."""
    for op in reversed(path):  # innermost (closest to the exchange) first
        if isinstance(op, Filter):
            stats = stats.scaled(op.predicate.selectivity(stats))
        elif all(name in stats.schema for name in op.schema.names):
            stats = stats.projected(list(op.schema.names))
        # else: a Compute added columns the table stats cannot price;
        # keep the current width as the approximation.
    return stats


def _sort_input_stats(scan: Operator, path: Sequence[Operator]):
    """Estimated statistics of the sort's input (whole stream)."""
    from ..storage.statistics import StatsView

    return _derive_chain(StatsView.of_table(scan.table.schema, scan.table.stats),
                         path)


def _per_shard_input_stats(scan: Operator, path: Sequence[Operator],
                           shard_count: int):
    """Per-shard statistics of the sort's input, measured from the actual
    shard/partition boundaries when the table is materialised (``None``
    falls back to the uniform ``scaled(1/k)`` model)."""
    from ..storage.statistics import StatsView

    table = scan.table
    if isinstance(scan, RangePartitionScan):
        per_table = table.partition_stats()
    else:
        per_table = table.shard_stats(shard_count)
    if per_table is None:
        return None
    return [_derive_chain(StatsView.of_table(table.schema, ts), path)
            for ts in per_table]


def _merge_beats_post_union(sort: Sort, scan: Operator,
                            path: Sequence[Operator], shard_count: int,
                            params) -> bool:
    """Cost-based pushdown decision, mirroring the optimizer's model.

    Uses the exact same ``coe`` / ``sharded_coe`` formulas (and the same
    tie-break) the volcano search applies, over statistics derived along
    the unary path — fed by measured per-shard/per-partition distinct and
    row counts where available — so the engine-level rewrite and the
    optimizer can never pull in opposite directions.
    """
    # Local imports: the engine package must stay importable without
    # dragging the optimizer in at module-import time.
    from ..optimizer.cost import CostModel, prefer_sharded

    stats = _sort_input_stats(scan, path)
    model = CostModel(params)
    partial = sort.algorithm != "srs"
    disjoint = (isinstance(scan, RangePartitionScan) and sort.output_order
                and sort.output_order.as_tuple[0] == scan.partitioning.column)
    post_union = model.coe(stats, sort.known_prefix, sort.output_order,
                           partial_enabled=partial)
    sharded = model.sharded_coe(stats, sort.known_prefix, sort.output_order,
                                shard_count, partial_enabled=partial,
                                shard_stats=_per_shard_input_stats(
                                    scan, path, shard_count),
                                disjoint_merge=bool(disjoint))
    return prefer_sharded(sharded, post_union)


def push_sorts_below_exchange(op: Operator, params=None) -> Operator:
    """Rewrite ``Sort → (unaries) → ExchangeUnion`` into per-shard sorts
    under a :class:`MergeExchange`, where the cost model favours it.

    The per-shard enforcers inherit the original sort's target order,
    known prefix and algorithm, so SRS stays SRS and MRS partial sorts
    keep exploiting the shards' clustering prefix.  Non-destructive like
    :func:`shard_scans`: untouched subtrees are shared, rewritten paths
    are rebuilt.  Applied by the executor only on explicit opt-in
    (optimizer-produced plans have already made this choice).
    """
    if isinstance(op, Sort):
        shape = _exchange_under(op.children[0])
        if shape is not None:
            path, exchange = shape
            if params is None:
                from ..storage.catalog import SystemParameters
                params = SystemParameters()
            scan = exchange.children[0]
            assert isinstance(scan, (TableScan, RangePartitionScan))
            if _merge_beats_post_union(op, scan, path, len(exchange.children),
                                       params):
                shards = [
                    Sort(_rebuild_path(path, shard), op.output_order,
                         known_prefix=op.known_prefix, algorithm=op.algorithm)
                    for shard in exchange.children
                ]
                merged = MergeExchange(shards, op.output_order,
                                       max_workers=exchange.max_workers)
                merged._meter = op._meter
                return merged
    new_children = tuple(push_sorts_below_exchange(c, params)
                         for c in op.children)
    if all(new is old for new, old in zip(new_children, op.children)):
        return op
    clone = copy.copy(op)
    clone.children = new_children
    return clone


def with_exchange_workers(op: Operator, max_workers: int) -> Operator:
    """A copy of *op* whose exchanges drain shards with *max_workers*.

    Non-destructive (the input tree may be a cached plan's lowering or a
    caller-owned pipeline); nodes already at the requested width are
    shared unchanged.
    """
    new_children = tuple(with_exchange_workers(c, max_workers)
                         for c in op.children)
    changed = any(new is not old
                  for new, old in zip(new_children, op.children))
    is_exchange = isinstance(op, (ExchangeUnion, MergeExchange))
    if not changed and not (is_exchange and op.max_workers != max_workers):
        return op
    clone = copy.copy(op)
    clone.children = new_children
    if is_exchange:
        clone.max_workers = max_workers
    return clone
