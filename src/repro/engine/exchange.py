"""Exchange operators: fan N shard streams back into one stream.

:class:`ExchangeUnion` is the gather side of a scan fan-out: its
children are the shards of one logical stream (built by
:func:`shard_scans`), and it concatenates their batches in shard order.
Because :class:`~repro.engine.scans.ShardedScan` partitions a table into
*contiguous* row ranges, concatenation in shard order reproduces the
unsharded scan's row sequence exactly — including its clustering order —
so everything above the exchange is oblivious to the sharding.

With ``max_workers > 1`` the children are executed concurrently on a
thread pool, each charging a forked
:class:`~repro.engine.context.ExecutionContext` whose counters are
folded back in shard order — totals stay deterministic regardless of
thread interleaving.  (CPython threads don't speed up pure-Python
operator code, but the pool exercises the exact driver structure the
async serving loop will reuse, and I/O-bound backends benefit today.)
"""

from __future__ import annotations

import copy
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Sequence

from ..core.sort_order import EMPTY_ORDER
from .batch import RowBatch
from .context import ExecutionContext
from .iterators import Operator
from .scans import ClusteringIndexScan, ShardedScan, TableScan


def _common_contiguous_order(children: Sequence[Operator]):
    """The order preserved by concatenating *children* in sequence.

    Guaranteed only when the children are consecutive contiguous shards
    of one table (the shape :func:`shard_scans` builds); anything else
    gets ε — concatenating independently sorted streams is not sorted.
    """
    if not all(isinstance(c, TableScan) for c in children):
        return EMPTY_ORDER
    table = children[0].table  # type: ignore[attr-defined]
    count = children[0].shard_count  # type: ignore[attr-defined]
    if count != len(children):
        return EMPTY_ORDER
    for i, child in enumerate(children):
        if (child.table is not table or child.shard_count != count
                or child.shard_index != i):  # type: ignore[attr-defined]
            return EMPTY_ORDER
    return children[0].output_order


class ExchangeUnion(Operator):
    """Concatenate N shard streams in shard order (order-preserving
    gather for contiguous shards)."""

    name = "ExchangeUnion"

    def __init__(self, children: Sequence[Operator], max_workers: int = 1) -> None:
        if not children:
            raise ValueError("ExchangeUnion needs at least one child")
        first = children[0].schema
        for child in children[1:]:
            if child.schema.names != first.names:
                raise ValueError("ExchangeUnion children must share a schema")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        super().__init__(first, _common_contiguous_order(children), children)
        self.max_workers = max_workers

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self.max_workers > 1 and len(self.children) > 1:
            return self._parallel(ctx)
        return self._serial(ctx)

    def _serial(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        for child in self.children:
            yield from child.execute_batches(ctx)

    def _parallel(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Eager gather: every shard runs to completion on the pool.

        All forked tallies are folded into the parent *before* the first
        batch is handed downstream — the work ran, so it is charged even
        if the consumer stops early.  The materialisation this implies is
        the classic eager-exchange trade-off (workers don't pause);
        early-terminating consumers that care about I/O should drive the
        serial path.
        """
        def drain(child: Operator) -> tuple[ExecutionContext, list[RowBatch]]:
            forked = ctx.fork()
            return forked, list(child.execute_batches(forked))

        workers = min(self.max_workers, len(self.children))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = [future.result()
                       for future in [pool.submit(drain, child)
                                      for child in self.children]]
        for forked, _ in results:
            ctx.absorb(forked)
        for _, batches in results:
            yield from batches

    def details(self) -> str:
        suffix = f", {self.max_workers} workers" if self.max_workers > 1 else ""
        return f"{len(self.children)} shards{suffix}"


def shard_scans(op: Operator, shard_count: int, max_workers: int = 1) -> Operator:
    """Rewrite full table scans into ExchangeUnion-of-ShardedScan fan-outs.

    Non-destructive: the caller's tree is never touched.  Operators on
    the path to a replaced scan are shallow-copied with rebuilt child
    tuples (the replacement has the same schema and output order, so
    parents' precomputed positions stay valid); untouched subtrees are
    shared.  Re-running or re-sharding the original tree at a different
    parallelism therefore behaves identically.  Scans already sharded,
    stats-only tables and covering-index scans are left alone.
    """
    if shard_count < 2:
        return op
    if (isinstance(op, (TableScan, ClusteringIndexScan))
            and not isinstance(op, ShardedScan)
            and getattr(op, "shard_count", 1) == 1
            and op.table.is_materialized
            and len(op.table.rows) >= shard_count):
        shards = [ShardedScan(op.table, shard_count, i)
                  for i in range(shard_count)]
        return ExchangeUnion(shards, max_workers=max_workers)
    new_children = tuple(shard_scans(c, shard_count, max_workers)
                         for c in op.children)
    if all(new is old for new, old in zip(new_children, op.children)):
        return op
    clone = copy.copy(op)
    clone.children = new_children
    return clone
