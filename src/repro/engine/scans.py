"""Scan operators: table scan, clustering-index scan, covering-index scan.

The distinction the paper draws (Figures 1, 2, 10, 11):

* **Table scan** — reads all data blocks; output carries the table's
  physical (clustering) order since our tables are stored clustered.
* **Clustering-index scan** ("C.Idx Scan") — same block count, output
  order is the clustering order; kept as a separate operator so plans
  read like the paper's.
* **Covering-index scan** ("Cov. Idx Scan") — reads only the (narrower)
  index leaf blocks and delivers the *index key order* without touching
  data pages; this is what makes alternative sort orders cheap and is
  the main motivation for favorable orders.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..storage.table import Index, Table
from .context import ExecutionContext
from .iterators import Operator


class TableScan(Operator):
    """Full scan of a materialised table (blocks charged progressively)."""

    name = "TableScan"

    def __init__(self, table: Table) -> None:
        super().__init__(table.schema, table.clustering_order)
        self.table = table

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        return ctx.charged_stream(self.table.rows, self.schema.row_bytes)

    def details(self) -> str:
        return self.table.name


class ClusteringIndexScan(Operator):
    """Scan in clustering order; identical cost to a table scan here."""

    name = "ClusteringIndexScan"

    def __init__(self, table: Table) -> None:
        if not table.clustering_order:
            raise ValueError(f"table {table.name} has no clustering order")
        super().__init__(table.schema, table.clustering_order)
        self.table = table

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        return ctx.charged_stream(self.table.rows, self.schema.row_bytes)

    def details(self) -> str:
        return f"{self.table.name} via {self.output_order}"


class CoveringIndexScan(Operator):
    """Scan the leaf level of a covering secondary index.

    Yields only the covered columns, in index-key order, charging block
    I/O at the (narrow) index-entry width rather than the full row width.
    """

    name = "CoveringIndexScan"

    def __init__(self, index: Index) -> None:
        super().__init__(index.leaf_schema, index.key)
        self.index = index
        self._entry_bytes = index.entry_bytes()
        self._leaf_rows: Optional[list[tuple]] = None

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if self._leaf_rows is None:
            # Leaf image is built once per plan object; building it is a
            # catalog operation, not a per-execution cost.
            self._leaf_rows = self.index.scan_rows()
        per_block = max(1, ctx.params.block_size // self._entry_bytes)
        rows = self._leaf_rows

        def stream() -> Iterator[tuple]:
            for i, row in enumerate(rows):
                if i % per_block == 0:
                    ctx.io.read(1, category="scan")
                yield row

        return stream()

    def details(self) -> str:
        inc = f" include {list(self.index.included)}" if self.index.included else ""
        return f"{self.index.table.name}.{self.index.name} {self.index.key}{inc}"


class RowSource(Operator):
    """An in-memory row source (for tests and sub-plans); charges no I/O
    unless ``charge_io`` is set."""

    name = "RowSource"

    def __init__(self, schema, rows: list[tuple], output_order: SortOrder = EMPTY_ORDER,
                 charge_io: bool = False) -> None:
        super().__init__(schema, output_order)
        self.rows_data = rows
        self.charge_io = charge_io

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if self.charge_io:
            return ctx.charged_stream(self.rows_data, self.schema.row_bytes)
        return iter(self.rows_data)

    def details(self) -> str:
        return f"{len(self.rows_data)} rows"
