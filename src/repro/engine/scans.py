"""Scan operators: table scan, clustering-index scan, covering-index
scan, and sharded (partitioned) table scans.

The distinction the paper draws (Figures 1, 2, 10, 11):

* **Table scan** — reads all data blocks; output carries the table's
  physical (clustering) order since our tables are stored clustered.
* **Clustering-index scan** ("C.Idx Scan") — same block count, output
  order is the clustering order; kept as a separate operator so plans
  read like the paper's.
* **Covering-index scan** ("Cov. Idx Scan") — reads only the (narrower)
  index leaf blocks and delivers the *index key order* without touching
  data pages; this is what makes alternative sort orders cheap and is
  the main motivation for favorable orders.

Scans are the batch producers of the engine: they slice the table's row
list directly into :class:`~repro.engine.batch.RowBatch` chunks and
charge block I/O per batch via :class:`~repro.engine.batch.BlockCharger`
(totals identical to the seed's per-row progressive charging).

Scan batches are deliberately *row-backed*: storage holds row tuples, so
transposing eagerly here would pay for columns no consumer wants.  The
first columnar consumer above (a kernel-bearing Filter/Compute/aggregate)
triggers the one C-level transpose via ``RowBatch.columns``, and the
batch caches it — scans never transpose on a pure row-pipeline plan.

**Sharding**: every table scan carries a partition spec
``(shard_count, shard_index)``; shard *i* covers the contiguous row
range ``[i·n/count, (i+1)·n/count)``.  Contiguous ranges mean each shard
inherits the table's clustering order *and* concatenating the shards in
index order reproduces the full clustered stream — which is what lets
:class:`~repro.engine.exchange.ExchangeUnion` fan shards back together
without a merge.  A shard whose range starts mid-block charges that
opening partial block too: it really does read it.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..storage.table import Index, Table
from .batch import BlockCharger, RowBatch, batches_of
from .context import ExecutionContext
from .iterators import Operator


def shardable(table: Table, shard_count: int) -> bool:
    """Whether *table* supports a contiguous *shard_count*-way fan-out.

    Shared by the executor's :func:`~repro.engine.exchange.shard_scans`
    rewrite and the optimizer's shard-aware enforcer placement so the two
    can never disagree about which scans may be partitioned: the table
    must hold materialised rows (stats-only tables cannot be scanned) and
    at least one row per shard.
    """
    return (shard_count >= 2 and table.is_materialized
            and len(table.rows) >= shard_count)


def range_shardable(table: Table) -> bool:
    """Whether *table* supports a value-range fan-out: a declared
    :class:`~repro.storage.table.RangePartitioning` over materialised
    rows.  The fan-out width is fixed by the spec, not by the caller."""
    return (table.is_materialized and table.partitioning is not None
            and table.partitioning.num_partitions >= 2)


def shard_bounds(num_rows: int, shard_count: int, shard_index: int) -> tuple[int, int]:
    """Global row range ``[lo, hi)`` of one contiguous shard."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard_index {shard_index} outside [0, {shard_count})")
    lo = shard_index * num_rows // shard_count
    hi = (shard_index + 1) * num_rows // shard_count
    return lo, hi


def _charged_slices(rows: list[tuple], lo: int, hi: int, per_block: int,
                    ctx: ExecutionContext, category: str = "scan"
                    ) -> Iterator[RowBatch]:
    """Batches of ``rows[lo:hi]``, charging blocks as the cursor advances."""
    charger = BlockCharger(ctx.io, per_block, category)
    batch_size = ctx.batch_size
    for start in range(lo, hi, batch_size):
        end = min(start + batch_size, hi)
        charger.charge_range(start, end)
        yield RowBatch(rows[start:end])


class TableScan(Operator):
    """Full scan of a materialised table, optionally one shard of it.

    ``shard_count``/``shard_index`` select a contiguous partition of the
    stored rows; the default ``(1, 0)`` spec scans everything.
    """

    name = "TableScan"

    def __init__(self, table: Table, shard_count: int = 1,
                 shard_index: int = 0) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if not 0 <= shard_index < shard_count:
            raise ValueError(f"shard_index {shard_index} outside [0, {shard_count})")
        super().__init__(table.schema, table.clustering_order)
        self.table = table
        self.shard_count = shard_count
        self.shard_index = shard_index

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        rows = self.table.rows
        lo, hi = shard_bounds(len(rows), self.shard_count, self.shard_index)
        per_block = ctx.rows_per_block(self.schema.row_bytes)
        return _charged_slices(rows, lo, hi, per_block, ctx)

    def details(self) -> str:
        if self.shard_count > 1:
            return f"{self.table.name} shard {self.shard_index}/{self.shard_count}"
        return self.table.name


class ShardedScan(TableScan):
    """One shard of a table scan — explicit name for explain output.

    Semantically identical to ``TableScan(table, shard_count, shard_index)``;
    :func:`~repro.engine.exchange.shard_scans` builds these and fans them
    back together with an ExchangeUnion.
    """

    name = "ShardedScan"

    def __init__(self, table: Table, shard_count: int, shard_index: int) -> None:
        if shard_count < 2:
            raise ValueError("ShardedScan needs shard_count >= 2; "
                             "use TableScan for an unsharded scan")
        super().__init__(table, shard_count, shard_index)


class RangePartitionScan(Operator):
    """Scan one value-range partition of a table.

    When the table is clustered on the partition column the partition is
    a contiguous row range and the scan slices it directly, charging only
    that slice's blocks (like a :class:`ShardedScan` with value-derived
    bounds).  Otherwise the partition's rows are scattered, so the scan
    reads **every** data block and filters — the realistic cost of
    range-sharding a table whose physical layout doesn't match the spec,
    and the reason the optimizer prices the two layouts differently.

    Either way the output preserves the table's clustering order (a
    filter keeps relative order), and consecutive partitions are disjoint
    on the partition column — the property the partition-aware
    :class:`~repro.engine.exchange.MergeExchange` exploits.
    """

    name = "RangePartitionScan"

    def __init__(self, table: Table, partition_index: int) -> None:
        part = table.partitioning
        if part is None:
            raise ValueError(f"table {table.name} has no range partitioning")
        if not 0 <= partition_index < part.num_partitions:
            raise ValueError(f"partition_index {partition_index} outside "
                             f"[0, {part.num_partitions})")
        super().__init__(table.schema, table.clustering_order)
        self.table = table
        self.partitioning = part
        self.partition_index = partition_index

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        rows = self.table.rows
        per_block = ctx.rows_per_block(self.schema.row_bytes)
        bounds = self.table.partition_row_bounds(self.partition_index)
        if bounds is not None:
            lo, hi = bounds
            return _charged_slices(rows, lo, hi, per_block, ctx)
        return self._filtered_scan(rows, per_block, ctx)

    def _filtered_scan(self, rows: list[tuple], per_block: int,
                       ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Full scan keeping only this partition's rows: every block is
        read (and charged), matching rows re-batch as they are found."""
        charger = BlockCharger(ctx.io, per_block, "scan")
        position = self.table.schema.positions([self.partitioning.column])[0]
        index_of = self.partitioning.partition_index
        target = self.partition_index
        batch_size = ctx.batch_size
        for start in range(0, len(rows), batch_size):
            end = min(start + batch_size, len(rows))
            charger.charge_range(start, end)
            kept = [row for row in rows[start:end]
                    if index_of(row[position]) == target]
            if kept:
                yield RowBatch(kept)

    def details(self) -> str:
        part = self.partitioning
        layout = "clustered" if self.table.partition_contiguous else "filtered"
        return (f"{self.table.name} partition {self.partition_index}/"
                f"{part.num_partitions} on {part.column} ({layout})")


class ClusteringIndexScan(Operator):
    """Scan in clustering order; identical cost to a table scan here."""

    name = "ClusteringIndexScan"

    def __init__(self, table: Table) -> None:
        if not table.clustering_order:
            raise ValueError(f"table {table.name} has no clustering order")
        super().__init__(table.schema, table.clustering_order)
        self.table = table

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        rows = self.table.rows
        per_block = ctx.rows_per_block(self.schema.row_bytes)
        return _charged_slices(rows, 0, len(rows), per_block, ctx)

    def details(self) -> str:
        return f"{self.table.name} via {self.output_order}"


class CoveringIndexScan(Operator):
    """Scan the leaf level of a covering secondary index.

    Yields only the covered columns, in index-key order, charging block
    I/O at the (narrow) index-entry width rather than the full row width.
    """

    name = "CoveringIndexScan"

    def __init__(self, index: Index) -> None:
        super().__init__(index.leaf_schema, index.key)
        self.index = index
        self._entry_bytes = index.entry_bytes()
        self._leaf_rows: Optional[list[tuple]] = None

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self._leaf_rows is None:
            # Leaf image is built once per plan object; building it is a
            # catalog operation, not a per-execution cost.
            self._leaf_rows = self.index.scan_rows()
        per_block = max(1, ctx.params.block_size // self._entry_bytes)
        return _charged_slices(self._leaf_rows, 0, len(self._leaf_rows),
                               per_block, ctx)

    def details(self) -> str:
        inc = f" include {list(self.index.included)}" if self.index.included else ""
        return f"{self.index.table.name}.{self.index.name} {self.index.key}{inc}"


class RowSource(Operator):
    """An in-memory row source (for tests and sub-plans); charges no I/O
    unless ``charge_io`` is set."""

    name = "RowSource"

    def __init__(self, schema, rows: list[tuple], output_order: SortOrder = EMPTY_ORDER,
                 charge_io: bool = False) -> None:
        super().__init__(schema, output_order)
        self.rows_data = rows
        self.charge_io = charge_io

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self.charge_io:
            per_block = ctx.rows_per_block(self.schema.row_bytes)
            return _charged_slices(self.rows_data, 0, len(self.rows_data),
                                   per_block, ctx)
        return batches_of(self.rows_data, ctx.batch_size)

    def details(self) -> str:
        return f"{len(self.rows_data)} rows"
