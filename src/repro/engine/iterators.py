"""Physical operator base class (batch-vectorized Volcano model).

Every operator exposes:

* ``schema`` — output :class:`~repro.storage.schema.Schema`;
* ``output_order`` — the :class:`~repro.core.sort_order.SortOrder`
  *guaranteed* on its output stream;
* ``execute_batches(ctx)`` — the **primary** execution method: a
  generator of :class:`~repro.engine.batch.RowBatch` chunks, charging
  simulated I/O and comparisons to the
  :class:`~repro.engine.context.ExecutionContext`;
* ``execute(ctx)`` — row-at-a-time view of the same stream (the seed
  engine's API, kept for compatibility; it simply flattens batches);
* ``explain()`` — a pretty-printed plan tree like the paper's figures.

Operators are *plans*, not live cursors: ``execute``/``execute_batches``
may be called repeatedly (each call is an independent execution), which
the benchmark harness relies on.
"""

from __future__ import annotations

import functools
import time
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..storage.schema import Schema
from .batch import RowBatch, batches_of, collect_rows, flatten_batches
from .context import ExecutionContext


def _counted_batches(batches: Iterator[RowBatch], cell: list) -> Iterator[RowBatch]:
    for batch in batches:
        cell[1] += len(batch)
        yield batch


def _timed_counted_batches(batches: Iterator[RowBatch], cell: list,
                           tcell: list) -> Iterator[RowBatch]:
    """Count rows like :func:`_counted_batches` and accumulate the wall
    time spent *inside* this operator's ``next()`` — inclusive time
    (children included), PostgreSQL's ``actual time`` convention.  Only
    on the EXPLAIN ANALYZE path (``ctx.meter_timing``), so the default
    hot loop pays nothing for it."""
    clock = time.perf_counter
    batches = iter(batches)
    while True:
        started = clock()
        try:
            batch = next(batches)
        except StopIteration:
            tcell[0] += clock() - started
            return
        tcell[0] += clock() - started
        tcell[1] += 1
        cell[1] += len(batch)
        yield batch


def _metered(fn):
    """Wrap an ``execute_batches`` so a meter stamped at lowering time
    (``op._meter = (tag, estimated_rows)``) counts actual output rows
    into ``ctx.operator_rows``.

    Wrapping happens at *class* definition time (see
    ``Operator.__init_subclass__``), not per instance: ``shard_scans``
    and ``with_exchange_workers`` clone operators with ``copy.copy``, and
    a per-instance wrapper would keep executing the original's children
    through its captured bound method.  Unmetered operators (``_meter``
    is ``None`` — anything built outside plan lowering) pay one attribute
    load and branch.
    """
    if getattr(fn, "_meter_wrapped", False):
        return fn

    @functools.wraps(fn)
    def execute_batches(self, ctx):
        meter = self._meter
        batches = fn(self, ctx)
        if meter is None:
            return batches
        cell = ctx.meter_start(meter[0], meter[1])
        if ctx.meter_timing:
            return _timed_counted_batches(batches, cell,
                                          ctx.time_cell(meter[0]))
        return _counted_batches(batches, cell)

    execute_batches._meter_wrapped = True
    return execute_batches


class Operator:
    """Base class of all physical operators."""

    name: str = "operator"

    #: Optional ``(tag, estimated_rows)`` meter, stamped on lowered
    #: instances by :mod:`repro.engine.lowering` from the plan node's
    #: cost-model stats.  ``None`` (the class default) disables metering.
    _meter: Optional[tuple] = None

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if "execute_batches" in cls.__dict__:
            cls.execute_batches = _metered(cls.__dict__["execute_batches"])

    def __init__(self, schema: Schema, output_order: SortOrder = EMPTY_ORDER,
                 children: Sequence["Operator"] = ()) -> None:
        self.schema = schema
        self.output_order = output_order
        self.children: tuple[Operator, ...] = tuple(children)

    # -- execution ---------------------------------------------------------------
    @_metered
    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Yield the output as row batches (the engine's native path).

        The fallback wraps a row-level ``execute`` override into batches,
        so third-party operators written against the seed's row-at-a-time
        API keep working inside a batched plan.
        """
        if type(self).execute is Operator.execute:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither execute_batches "
                f"nor execute")
        return batches_of(self.execute(ctx), ctx.batch_size)

    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        """Row-at-a-time view: flattens :meth:`execute_batches`."""
        return flatten_batches(self.execute_batches(ctx))

    def run(self, ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        """Execute fully and collect the result (convenience for tests)."""
        ctx = ctx or ExecutionContext()
        return collect_rows(self.execute_batches(ctx))

    # -- order verification --------------------------------------------------------
    def _maybe_checked(self, rows: Iterator[tuple], ctx: ExecutionContext,
                       order: SortOrder, what: str) -> Iterator[tuple]:
        """Wrap *rows* with a runtime sortedness assertion when enabled."""
        if not ctx.check_orders or not order or not self.schema.has_all(list(order)):
            return rows
        positions = self.schema.positions(list(order))
        return assert_sorted_rows(rows, positions, what)

    # -- introspection ---------------------------------------------------------------
    def details(self) -> str:
        """One-line operator-specific annotation for ``explain``."""
        return ""

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        extra = self.details()
        order = f" [order: {self.output_order}]" if self.output_order else ""
        line = f"{pad}{self.name}{f' ({extra})' if extra else ''}{order}"
        parts = [line]
        parts.extend(child.explain(indent + 1) for child in self.children)
        return "\n".join(parts)

    def walk(self) -> Iterator["Operator"]:
        """Pre-order traversal of the operator tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.details()})"


class _SortednessProbe:
    """The one sortedness assertion, shared by every checked operator
    (row streams and batch streams alike)."""

    __slots__ = ("positions", "what", "prev")

    def __init__(self, positions: Sequence[int], what: str) -> None:
        self.positions = tuple(positions)
        self.what = what
        self.prev: Optional[tuple] = None

    def check(self, row: tuple) -> None:
        key = null_safe_wrap(tuple(row[i] for i in self.positions))
        if self.prev is not None and key < self.prev:
            raise AssertionError(
                f"{self.what}: stream not sorted — saw {key} after {self.prev}")
        self.prev = key


def assert_sorted_rows(rows: Iterator[tuple], positions: Sequence[int],
                       what: str) -> Iterator[tuple]:
    """Row-granular sortedness check (used on flattened streams)."""
    probe = _SortednessProbe(positions, what)
    for row in rows:
        probe.check(row)
        yield row


def assert_sorted_batches(batches: Iterable[RowBatch],
                          positions: Sequence[int],
                          what: str) -> Iterator[RowBatch]:
    """Batch-granular sortedness check, carrying state across batches."""
    probe = _SortednessProbe(positions, what)
    for batch in batches:
        for row in batch.rows:
            probe.check(row)
        yield batch


def null_safe_wrap(values: tuple) -> tuple:
    """Make a key tuple totally ordered in the presence of SQL NULLs.

    Each element becomes ``(present, value)`` with NULL mapped to
    ``(False, 0)``, so NULLs sort first and never raise ``TypeError``
    against non-NULL values.  Needed because outer-join outputs (Query 4)
    flow into further sorts and merge joins.
    """
    return tuple((False, 0) if v is None else (True, v) for v in values)


def tuple_getter(positions: Sequence[int]) -> Callable[[tuple], tuple]:
    """Row → tuple-of-positions extractor (``itemgetter``-backed).

    Unlike a bare ``itemgetter``, always returns a tuple — including for
    a single position and for no positions at all.
    """
    positions = tuple(positions)
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        pos = positions[0]
        return lambda row: (row[pos],)
    return itemgetter(*positions)


def key_function(schema: Schema, order: SortOrder | Sequence[str]) -> Callable[[tuple], tuple]:
    """Row → null-safe key-tuple extractor for the given attribute sequence."""
    getter = tuple_getter(schema.positions(list(order)))
    return lambda row: null_safe_wrap(getter(row))
