"""Physical operator base class (Volcano iterator model).

Every operator exposes:

* ``schema`` — output :class:`~repro.storage.schema.Schema`;
* ``output_order`` — the :class:`~repro.core.sort_order.SortOrder`
  *guaranteed* on its output stream;
* ``execute(ctx)`` — a generator of row tuples, charging simulated I/O
  and comparisons to the :class:`~repro.engine.context.ExecutionContext`;
* ``explain()`` — a pretty-printed plan tree like the paper's figures.

Operators are *plans*, not live cursors: ``execute`` may be called
repeatedly (each call is an independent execution), which the benchmark
harness relies on.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from ..core.sort_order import EMPTY_ORDER, SortOrder
from ..storage.schema import Schema
from .context import ExecutionContext


class Operator:
    """Base class of all physical operators."""

    name: str = "operator"

    def __init__(self, schema: Schema, output_order: SortOrder = EMPTY_ORDER,
                 children: Sequence["Operator"] = ()) -> None:
        self.schema = schema
        self.output_order = output_order
        self.children: tuple[Operator, ...] = tuple(children)

    # -- execution ---------------------------------------------------------------
    def execute(self, ctx: ExecutionContext) -> Iterator[tuple]:
        raise NotImplementedError

    def run(self, ctx: Optional[ExecutionContext] = None) -> list[tuple]:
        """Execute fully and collect the result (convenience for tests)."""
        ctx = ctx or ExecutionContext()
        return list(self.execute(ctx))

    # -- order verification --------------------------------------------------------
    def _maybe_checked(self, rows: Iterator[tuple], ctx: ExecutionContext,
                       order: SortOrder, what: str) -> Iterator[tuple]:
        """Wrap *rows* with a runtime sortedness assertion when enabled."""
        if not ctx.check_orders or not order or not self.schema.has_all(list(order)):
            return rows
        positions = self.schema.positions(list(order))
        return _assert_sorted(rows, positions, what)

    # -- introspection ---------------------------------------------------------------
    def details(self) -> str:
        """One-line operator-specific annotation for ``explain``."""
        return ""

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        extra = self.details()
        order = f" [order: {self.output_order}]" if self.output_order else ""
        line = f"{pad}{self.name}{f' ({extra})' if extra else ''}{order}"
        parts = [line]
        parts.extend(child.explain(indent + 1) for child in self.children)
        return "\n".join(parts)

    def walk(self) -> Iterator["Operator"]:
        """Pre-order traversal of the operator tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.details()})"


def _assert_sorted(rows: Iterator[tuple], positions: Sequence[int],
                   what: str) -> Iterator[tuple]:
    prev: Optional[tuple] = None
    for row in rows:
        key = null_safe_wrap(tuple(row[i] for i in positions))
        if prev is not None and key < prev:
            raise AssertionError(
                f"{what}: stream not sorted — saw {key} after {prev}")
        prev = key
        yield row


def null_safe_wrap(values: tuple) -> tuple:
    """Make a key tuple totally ordered in the presence of SQL NULLs.

    Each element becomes ``(present, value)`` with NULL mapped to
    ``(False, 0)``, so NULLs sort first and never raise ``TypeError``
    against non-NULL values.  Needed because outer-join outputs (Query 4)
    flow into further sorts and merge joins.
    """
    return tuple((False, 0) if v is None else (True, v) for v in values)


def key_function(schema: Schema, order: SortOrder | Sequence[str]) -> Callable[[tuple], tuple]:
    """Row → null-safe key-tuple extractor for the given attribute sequence."""
    positions = schema.positions(list(order))
    return lambda row: null_safe_wrap(tuple(row[i] for i in positions))
