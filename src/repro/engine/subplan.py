"""Shard-subplan extraction and the process-pool worker entrypoint.

The process-pool backend (:mod:`repro.service.backends`) gives the
sharded enforcers true multi-core parallelism: the per-shard pipelines
the optimizer placed under a :class:`~repro.engine.exchange.MergeExchange`
(or :class:`~repro.engine.exchange.ExchangeUnion`) are shipped — as
picklable :class:`~repro.optimizer.plans.PhysicalPlan` subtrees — to
worker processes, executed there, and gathered back through the same
order-preserving merge in the serving process.  This module supplies the
three pieces:

* :func:`exchange_occurrences` / :func:`shard_subplans` — find the
  *maximal* exchange nodes of a plan (exchanges not nested under another
  exchange) and cut their children out as independent worker tasks;
* :func:`strip_plan` — drop optimizer-only payload (the ``logical``
  back-references candidate generation attaches) before pickling, so
  the shipped bytes carry only what lowering needs;
* :func:`execute_subplan` — the worker entrypoint: lowers a subplan
  against the worker's catalog (installed once per pool by
  :func:`init_worker`) and returns ``(rows, tallies)``;
* :func:`assemble` — rebuild the serving-side operator tree with each
  shipped child replaced by a :class:`~repro.engine.scans.RowSource`
  over the worker's rows, so the gather (stable k-way merge, ties to
  the lowest shard index) and everything above it runs locally and the
  result is **bit-identical** to single-process execution.

Determinism: tasks are generated in plan pre-order and, per exchange, in
shard order; the parent absorbs worker tallies in exactly that order, so
counters never depend on worker scheduling.  One caveat: a gather whose
children were range partitions disjoint on the merge key concatenates
heap-free locally, but the re-assembled gather merges ``RowSource``
children and cannot re-detect partition disjointness — rows are
identical, comparison tallies may be slightly higher.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .context import ExecutionContext
from .executor import BatchedExecutor
from .exchange import ExchangeUnion, MergeExchange
from .iterators import Operator
from .lowering import operators_from_plan
from .scans import RowSource

#: The gather operators whose children are independently executable
#: shard pipelines.
EXCHANGE_OPS = ("MergeExchange", "ExchangeUnion")


def exchange_occurrences(plan) -> list:
    """Maximal exchange nodes of *plan*, in pre-order.

    "Maximal" means not nested under another exchange: an exchange
    buried inside a shipped shard pipeline is executed by the worker
    that runs the pipeline.  The same (memoised) plan object appearing
    at two tree positions yields two occurrences — each is executed
    (and charged) separately, matching local execution.
    """
    out: list = []

    def visit(node) -> None:
        if node.op in EXCHANGE_OPS:
            out.append(node)
            return
        for child in node.children:
            visit(child)

    visit(plan)
    return out


#: Plan args that must never cross a process boundary: ``logical`` is an
#: optimizer-only back-reference; ``kernels`` holds compiled closures
#: (:class:`~repro.engine.kernels.OperatorKernels` refuses to pickle by
#: design — workers recompile against their own catalog snapshot and
#: keep warm per-process kernel caches instead).
_UNPICKLABLE_ARGS = ("logical", "kernels")


def strip_plan(plan):
    """A copy of *plan* without optimizer-only args (``logical``
    back-references into the logical tree) and without compiled kernel
    bundles (unpicklable by construction); lowering in the worker
    recompiles kernels through its process-global cache, and the pickled
    task shrinks accordingly."""
    from ..optimizer.plans import PhysicalPlan

    children = tuple(strip_plan(c) for c in plan.children)
    args = tuple((k, v) for k, v in plan.args if k not in _UNPICKLABLE_ARGS)
    if children == plan.children and args == plan.args:
        return plan
    return PhysicalPlan(plan.op, plan.schema, plan.order, plan.stats,
                        plan.self_cost, children, args)


def shard_subplans(plan) -> tuple[list, list[Any]]:
    """Cut *plan* into worker tasks.

    Returns ``(occurrences, tasks)``: the maximal exchange nodes and the
    flat task list — one stripped subplan per exchange child, ordered by
    occurrence then shard index.  A plan with no exchange at all becomes
    a single whole-plan task (``occurrences == []``): the pool then
    provides inter-query rather than intra-query parallelism.
    """
    occurrences = exchange_occurrences(plan)
    if not occurrences:
        return [], [strip_plan(plan)]
    tasks = [strip_plan(child)
             for node in occurrences for child in node.children]
    return occurrences, tasks


def assemble(plan, occurrences: Sequence[Any],
             shard_rows: Sequence[Sequence[list[tuple]]], catalog) -> Operator:
    """Serving-side operator tree with shipped children grafted back in.

    *shard_rows* holds, per occurrence, one row list per exchange child.
    Each exchange is rebuilt over :class:`RowSource` children declaring
    the exchange's merge order (their streams are sorted on it by
    construction — the workers ran the per-shard enforcers), so a
    ``MergeExchange`` performs the exact stable k-way merge it would
    have performed over live shard streams, and ``check_orders``
    execution still verifies every input.
    """
    remaining = [(node, rows) for node, rows in zip(occurrences, shard_rows)]

    def replace(node) -> Optional[Operator]:
        for i, (occ, rows_per_child) in enumerate(remaining):
            if occ is node:
                del remaining[i]
                if node.op == "MergeExchange":
                    children = [RowSource(c.schema, rows, node.order)
                                for c, rows in zip(node.children,
                                                   rows_per_child)]
                    return MergeExchange(children, node.order)
                children = [RowSource(c.schema, rows)
                            for c, rows in zip(node.children, rows_per_child)]
                return ExchangeUnion(children)
        return None

    root = operators_from_plan(plan, catalog, replace=replace)
    if remaining:  # pragma: no cover - defensive
        raise RuntimeError("assemble: not every shipped exchange was grafted")
    return root


# -- worker side -------------------------------------------------------------------------
#: Installed once per worker process by :func:`init_worker`.
_WORKER_CATALOG = None


def init_worker(payload) -> None:
    """Process-pool initializer: build this worker's catalog copy."""
    global _WORKER_CATALOG
    from ..storage.handoff import build_catalog

    _WORKER_CATALOG = build_catalog(payload)


def execute_subplan(plan, batch_size: Optional[int] = None,
                    check_orders: bool = False) -> tuple[list[tuple], dict]:
    """Worker entrypoint: run one shipped subplan to completion.

    Returns the result rows plus the worker's counter tallies
    (:meth:`~repro.engine.context.ExecutionContext.tallies`); the parent
    absorbs tallies in task order so totals stay deterministic.
    """
    if _WORKER_CATALOG is None:
        raise RuntimeError("worker pool not initialized with a catalog "
                           "payload (init_worker was not run)")
    ctx = ExecutionContext(_WORKER_CATALOG, batch_size=batch_size,
                           check_orders=check_orders)
    rows = BatchedExecutor().run(plan.to_operator(_WORKER_CATALOG), ctx)
    return rows, ctx.tallies()
