"""Shard-subplan extraction and the process-pool worker entrypoint.

The process-pool backend (:mod:`repro.service.backends`) gives the
sharded enforcers true multi-core parallelism: the per-shard pipelines
the optimizer placed under a :class:`~repro.engine.exchange.MergeExchange`
(or :class:`~repro.engine.exchange.ExchangeUnion`) are shipped — as
picklable :class:`~repro.optimizer.plans.PhysicalPlan` subtrees — to
worker processes, executed there, and gathered back through the same
order-preserving merge in the serving process.  This module supplies the
three pieces:

* :func:`exchange_occurrences` / :func:`shard_subplans` — find the
  *maximal* exchange nodes of a plan (exchanges not nested under another
  exchange) and cut their children out as independent worker tasks;
* :func:`strip_plan` — drop optimizer-only payload (the ``logical``
  back-references candidate generation attaches) before pickling, so
  the shipped bytes carry only what lowering needs;
* :func:`execute_subplan` — the worker entrypoint: lowers a subplan
  against the worker's catalog (installed once per pool by
  :func:`init_worker`) and returns ``(rows, tallies)``;
* :func:`execute_subplan_stream` — the *streaming* worker entrypoint:
  instead of returning one whole-row-list pickle through the future, it
  pushes fixed-size row chunks onto the pool's shared results queue as
  they are produced, so the serving-side merge starts consuming the
  fastest shard while the slowest is still sorting;
* :class:`ShardStream` / :class:`StreamSource` — the serving-side
  receiving end: a thread-safe chunk buffer fed by the backend's queue
  router, wrapped as an operator so the exchange gather can merge live
  shard streams exactly as it would merge local children;
* :func:`assemble` / :func:`assemble_streams` — rebuild the serving-side
  operator tree with each shipped child replaced by a
  :class:`~repro.engine.scans.RowSource` over the worker's rows (or a
  :class:`StreamSource` over its live chunk stream), so the gather
  (stable k-way merge, ties to the lowest shard index) and everything
  above it runs locally and the result is **bit-identical** to
  single-process execution.

Workers also keep a small LRU of *lowered* subplans keyed by the task's
pickled fingerprint: operators are plans, not live cursors (they may be
re-executed), and a pool's catalog snapshot is immutable for the pool's
lifetime, so a repeated query — the plan-cache steady state — skips
lowering and kernel lookup entirely on a warm worker.

Determinism: tasks are generated in plan pre-order and, per exchange, in
shard order; the parent absorbs worker tallies in exactly that order, so
counters never depend on worker scheduling.  A gather whose children
were range partitions disjoint on the merge key concatenates heap-free
locally; ``RowSource``/``StreamSource`` children carry no partition
bounds to re-detect that from, so re-assembly forwards the plan node's
``disjoint`` arg (the planner's proof, which survives :func:`strip_plan`)
as the exchange's ``declared_disjoint`` — the re-assembled gather
concatenates exactly where local execution does, keeping comparison
tallies bit-identical across backends.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from typing import Any, Iterator, Optional, Sequence

from ..obs.trace import _NULL_SPAN as _NULL_CM, Trace

from ..core.sort_order import EMPTY_ORDER
from .batch import RowBatch
from .context import ExecutionContext
from .executor import BatchedExecutor
from .exchange import ExchangeUnion, MergeExchange
from .iterators import Operator
from .lowering import meter_for, operators_from_plan
from .scans import RowSource

#: The gather operators whose children are independently executable
#: shard pipelines.
EXCHANGE_OPS = ("MergeExchange", "ExchangeUnion")


def exchange_occurrences(plan) -> list:
    """Maximal exchange nodes of *plan*, in pre-order.

    "Maximal" means not nested under another exchange: an exchange
    buried inside a shipped shard pipeline is executed by the worker
    that runs the pipeline.  The same (memoised) plan object appearing
    at two tree positions yields two occurrences — each is executed
    (and charged) separately, matching local execution.
    """
    out: list = []

    def visit(node) -> None:
        if node.op in EXCHANGE_OPS:
            out.append(node)
            return
        for child in node.children:
            visit(child)

    visit(plan)
    return out


#: Plan args that must never cross a process boundary: ``logical`` is an
#: optimizer-only back-reference; ``kernels`` holds compiled closures
#: (:class:`~repro.engine.kernels.OperatorKernels` refuses to pickle by
#: design — workers recompile against their own catalog snapshot and
#: keep warm per-process kernel caches instead).
_UNPICKLABLE_ARGS = ("logical", "kernels")


def strip_plan(plan):
    """A copy of *plan* without optimizer-only args (``logical``
    back-references into the logical tree) and without compiled kernel
    bundles (unpicklable by construction); lowering in the worker
    recompiles kernels through its process-global cache, and the pickled
    task shrinks accordingly."""
    from ..optimizer.plans import PhysicalPlan

    children = tuple(strip_plan(c) for c in plan.children)
    args = tuple((k, v) for k, v in plan.args if k not in _UNPICKLABLE_ARGS)
    if children == plan.children and args == plan.args:
        return plan
    return PhysicalPlan(plan.op, plan.schema, plan.order, plan.stats,
                        plan.self_cost, children, args)


def shard_subplans(plan) -> tuple[list, list[Any]]:
    """Cut *plan* into worker tasks.

    Returns ``(occurrences, tasks)``: the maximal exchange nodes and the
    flat task list — one stripped subplan per exchange child, ordered by
    occurrence then shard index.  A plan with no exchange at all becomes
    a single whole-plan task (``occurrences == []``): the pool then
    provides inter-query rather than intra-query parallelism.
    """
    occurrences = exchange_occurrences(plan)
    if not occurrences:
        return [], [strip_plan(plan)]
    tasks = [strip_plan(child)
             for node in occurrences for child in node.children]
    return occurrences, tasks


def assemble(plan, occurrences: Sequence[Any],
             shard_rows: Sequence[Sequence[list[tuple]]], catalog) -> Operator:
    """Serving-side operator tree with shipped children grafted back in.

    *shard_rows* holds, per occurrence, one row list per exchange child.
    Each exchange is rebuilt over :class:`RowSource` children declaring
    the exchange's merge order (their streams are sorted on it by
    construction — the workers ran the per-shard enforcers), so a
    ``MergeExchange`` performs the exact stable k-way merge it would
    have performed over live shard streams, and ``check_orders``
    execution still verifies every input.
    """
    remaining = [(node, rows) for node, rows in zip(occurrences, shard_rows)]

    def replace(node) -> Optional[Operator]:
        for i, (occ, rows_per_child) in enumerate(remaining):
            if occ is node:
                del remaining[i]
                if node.op == "MergeExchange":
                    children = [RowSource(c.schema, rows, node.order)
                                for c, rows in zip(node.children,
                                                   rows_per_child)]
                    exchange: Operator = MergeExchange(
                        children, node.order,
                        declared_disjoint=node.arg("disjoint", False))
                else:
                    children = [RowSource(c.schema, rows)
                                for c, rows in zip(node.children,
                                                   rows_per_child)]
                    exchange = ExchangeUnion(children)
                exchange._meter = meter_for(node)
                return exchange
        return None

    root = operators_from_plan(plan, catalog, replace=replace)
    if remaining:  # pragma: no cover - defensive
        raise RuntimeError("assemble: not every shipped exchange was grafted")
    return root


# -- serving side: live shard streams ----------------------------------------------------
class ShardStream:
    """Thread-safe chunk buffer for one in-flight shard.

    The backend's queue-router thread calls :meth:`put` for each row
    chunk a worker ships, :meth:`finish` when the worker's DONE sentinel
    (carrying its tallies) arrives, and :meth:`fail` when the worker's
    future errors or is cancelled.  The consuming merge iterates
    :meth:`batches`, blocking only when it has outrun the producer.

    The buffer is unbounded: the gather ultimately materialises every
    row anyway (the server returns full result sets), so buffering
    chunks early costs no more memory than the whole-list pickle did —
    it just arrives incrementally and overlaps with the merge.
    """

    __slots__ = ("stream_id", "_chunks", "_done", "_error", "_result",
                 "_cond", "chunks_received", "_consumed")

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._chunks: list[list[tuple]] = []
        self._done = False
        self._error: Optional[BaseException] = None
        #: The DONE payload: ``(tallies, cache_hit)`` untraced,
        #: ``(tallies, cache_hit, span_records)`` when traced.
        self._result: Optional[tuple] = None
        self._cond = threading.Condition()
        self.chunks_received = 0
        self._consumed = False

    def put(self, chunk: list[tuple]) -> None:
        with self._cond:
            if self._done:
                return  # stale chunk after a failure: drop it
            self._chunks.append(chunk)
            self.chunks_received += 1
            self._cond.notify_all()

    def finish(self, result: tuple) -> None:
        with self._cond:
            if self._done:
                return
            self._result = result
            self._done = True
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        """Mark the stream broken; a no-op once finished (a worker that
        already delivered its DONE sentinel has nothing left to fail)."""
        with self._cond:
            if self._done:
                return
            self._error = error
            self._done = True
            self._cond.notify_all()

    def batches(self) -> Iterator[list[tuple]]:
        """Yield chunks in arrival order, blocking on the producer;
        raises the stream's failure as soon as it is observed."""
        index = 0
        while True:
            with self._cond:
                while index >= len(self._chunks) and not self._done:
                    self._cond.wait()
                if index < len(self._chunks):
                    chunk = self._chunks[index]
                else:
                    if self._error is not None:
                        raise self._error
                    return
            index += 1
            yield chunk

    @property
    def tallies(self) -> dict:
        """The worker's counter tallies (valid after a clean finish)."""
        if self._result is None:
            raise RuntimeError("shard stream has no tallies "
                               "(not finished, or failed)")
        return self._result[0]

    @property
    def cache_hit(self) -> bool:
        """Whether the worker served this task from its warm subplan
        cache (valid after a clean finish)."""
        if self._result is None:
            raise RuntimeError("shard stream has no result "
                               "(not finished, or failed)")
        return self._result[1]

    @property
    def spans(self) -> Optional[list]:
        """The worker's span records (valid after a clean finish);
        ``None`` for untraced tasks."""
        if self._result is None:
            raise RuntimeError("shard stream has no result "
                               "(not finished, or failed)")
        return self._result[2] if len(self._result) > 2 else None


class StreamSource(Operator):
    """Operator view of a :class:`ShardStream`, for grafting under the
    re-assembled exchange.

    Unlike every other operator, a StreamSource is **one-shot**: the
    underlying stream is consumed as it is read.  The process backend
    builds a fresh one per attempt and never caches the grafted tree, so
    the restriction never escapes; re-execution raises rather than
    silently returning an empty stream.
    """

    name = "StreamSource"

    def __init__(self, schema, stream: ShardStream,
                 output_order=EMPTY_ORDER) -> None:
        super().__init__(schema, output_order)
        self.stream = stream

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if self.stream._consumed:
            raise RuntimeError("StreamSource is one-shot and was already "
                               "executed")
        self.stream._consumed = True
        for chunk in self.stream.batches():
            yield RowBatch(chunk)

    def details(self) -> str:
        return f"shard stream {self.stream.stream_id}"


def assemble_streams(plan, occurrences: Sequence[Any],
                     shard_streams: Sequence[Sequence[ShardStream]],
                     catalog) -> Operator:
    """Streaming twin of :func:`assemble`: graft :class:`StreamSource`
    children (live, still-producing shard streams) instead of
    materialised :class:`RowSource` rows.

    The exchange performs the identical stable merge — each child
    declares the exchange's merge order, ``check_orders`` still verifies
    every input at run time — it just starts as soon as the first chunks
    land instead of after the slowest worker's full pickle.
    """
    remaining = [(node, streams)
                 for node, streams in zip(occurrences, shard_streams)]

    def replace(node) -> Optional[Operator]:
        for i, (occ, streams) in enumerate(remaining):
            if occ is node:
                del remaining[i]
                if node.op == "MergeExchange":
                    children = [StreamSource(c.schema, stream, node.order)
                                for c, stream in zip(node.children, streams)]
                    exchange: Operator = MergeExchange(
                        children, node.order,
                        declared_disjoint=node.arg("disjoint", False))
                else:
                    children = [StreamSource(c.schema, stream)
                                for c, stream in zip(node.children, streams)]
                    exchange = ExchangeUnion(children)
                exchange._meter = meter_for(node)
                return exchange
        return None

    root = operators_from_plan(plan, catalog, replace=replace)
    if remaining:  # pragma: no cover - defensive
        raise RuntimeError("assemble_streams: not every shipped exchange "
                           "was grafted")
    return root


# -- worker side -------------------------------------------------------------------------
#: Installed once per worker process by :func:`init_worker`.
_WORKER_CATALOG = None
#: The pool's shared results queue (streaming transfer); ``None`` when
#: the pool was built without one — streaming entrypoints then refuse.
_WORKER_QUEUE = None
#: Warm cache of lowered subplans, keyed by task fingerprint.  Safe for
#: the pool's lifetime: the worker catalog is an immutable snapshot
#: (rebuilds spawn fresh workers), and operators are re-executable plans.
_SUBPLAN_CACHE: "OrderedDict[str, Operator]" = OrderedDict()
_SUBPLAN_CACHE_SIZE = 32


def init_worker(payload, results_queue=None, cache_size: int = 32) -> None:
    """Process-pool initializer: build this worker's catalog copy, adopt
    the pool's shared results queue (streaming transfer), and size the
    warm subplan cache.  ``results_queue`` must arrive through the pool's
    ``initargs`` — multiprocessing queues only cross the boundary at
    process creation, never inside task pickles."""
    global _WORKER_CATALOG, _WORKER_QUEUE, _SUBPLAN_CACHE_SIZE
    from ..storage.handoff import build_catalog

    _WORKER_CATALOG = build_catalog(payload)
    _WORKER_QUEUE = results_queue
    _SUBPLAN_CACHE_SIZE = max(0, cache_size)
    _SUBPLAN_CACHE.clear()


def _lowered_cached(plan) -> tuple[Operator, bool]:
    """Lower *plan* against the worker catalog, through the warm cache.

    The key is a fingerprint of the pickled task — value-based, so a
    re-shipped identical subplan hits whichever worker it lands on once
    that worker has seen it; parameterised binds differ in the pickle
    and naturally miss.  Returns ``(operator, was_hit)``.
    """
    if _SUBPLAN_CACHE_SIZE <= 0:
        return plan.to_operator(_WORKER_CATALOG), False
    key = hashlib.sha1(
        pickle.dumps(plan, pickle.HIGHEST_PROTOCOL)).hexdigest()
    op = _SUBPLAN_CACHE.get(key)
    if op is not None:
        _SUBPLAN_CACHE.move_to_end(key)
        return op, True
    op = plan.to_operator(_WORKER_CATALOG)
    _SUBPLAN_CACHE[key] = op
    while len(_SUBPLAN_CACHE) > _SUBPLAN_CACHE_SIZE:
        _SUBPLAN_CACHE.popitem(last=False)
    return op, False


def _require_worker_catalog() -> None:
    if _WORKER_CATALOG is None:
        raise RuntimeError("worker pool not initialized with a catalog "
                           "payload (init_worker was not run)")


def _worker_trace(trace_ctx: Optional[tuple]) -> tuple[Optional[Trace],
                                                       Optional[Any]]:
    """Build this task's worker-local trace from a shipped
    ``(trace_id, parent_span_id)`` pair.

    The worker's span ids carry the parent span id as a prefix
    (``"<parent>.<n>"``), so re-attached ids can never collide with the
    serving process's own; its root span's ``parent_id`` is the parent's
    dispatch span, which is what stitches the shipped records into the
    parent tree.  Offsets are worker-relative (epoch = trace creation,
    i.e. task start) — the parent rebases them on attach.
    """
    if trace_ctx is None:
        return None, None
    trace_id, parent_span_id = trace_ctx
    trace = Trace(trace_id, id_prefix=f"{parent_span_id}.")
    root = trace.begin("worker_execute", parent_id=parent_span_id,
                       pid=os.getpid())
    return trace, root


def execute_subplan(plan, batch_size: Optional[int] = None,
                    check_orders: bool = False,
                    meter_timing: bool = False,
                    trace_ctx: Optional[tuple] = None
                    ) -> tuple[list[tuple], dict, Optional[list]]:
    """Worker entrypoint: run one shipped subplan to completion.

    Returns ``(rows, tallies, span_records)``: the result rows, the
    worker's counter tallies
    (:meth:`~repro.engine.context.ExecutionContext.tallies`) — absorbed
    by the parent in task order so totals stay deterministic — and,
    when *trace_ctx* carries a ``(trace_id, parent_span_id)`` pair, the
    worker's span records for re-attachment (``None`` otherwise).
    """
    _require_worker_catalog()
    ctx = ExecutionContext(_WORKER_CATALOG, batch_size=batch_size,
                           check_orders=check_orders,
                           meter_timing=meter_timing)
    trace, root = _worker_trace(trace_ctx)
    if trace is None:
        op, _ = _lowered_cached(plan)
        rows = BatchedExecutor().run(op, ctx)
        return rows, ctx.tallies(), None
    with trace.span("lower", parent=root) as lower_span:
        op, was_hit = _lowered_cached(plan)
        lower_span.tag(cache_hit=was_hit)
    with trace.span("run", parent=root) as run_span:
        rows = BatchedExecutor().run(op, ctx)
        run_span.tag(rows=len(rows))
    trace.finish(root)
    return rows, ctx.tallies(), trace.to_records()


def execute_subplan_stream(plan, stream_id: int,
                           batch_size: Optional[int] = None,
                           check_orders: bool = False,
                           chunk_rows: int = 2048,
                           meter_timing: bool = False,
                           trace_ctx: Optional[tuple] = None) -> None:
    """Streaming worker entrypoint: ship the subplan's rows chunk by
    chunk on the pool's shared results queue.

    Protocol (all items on the one queue, routed by ``stream_id``):

    * ``(stream_id, seq, rows)`` — the next chunk, ``seq`` increasing
      from 0; at most ``chunk_rows`` rows each;
    * ``(stream_id, -1, (tallies, cache_hit[, span_records]))`` — the
      DONE sentinel; the third element rides along exactly like the
      tallies when the task was traced (*trace_ctx* given).  Per-stream
      ordering is guaranteed because one worker produces the whole
      stream sequentially and queue feeds preserve per-process order.

    Errors are **not** sent on the queue: they propagate through the
    task future, whose done-callback fails the parent-side stream.
    """
    _require_worker_catalog()
    if _WORKER_QUEUE is None:
        raise RuntimeError("worker pool has no results queue; streaming "
                           "requires init_worker(..., results_queue=...)")
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    ctx = ExecutionContext(_WORKER_CATALOG, batch_size=batch_size,
                           check_orders=check_orders,
                           meter_timing=meter_timing)
    trace, root = _worker_trace(trace_ctx)
    with (trace.span("lower", parent=root) if trace is not None
          else _NULL_CM) as lower_span:
        op, cache_hit = _lowered_cached(plan)
        lower_span.tag(cache_hit=cache_hit)
    run_span = trace.begin("run", parent_id=root.span_id) \
        if trace is not None else None
    seq = 0
    shipped = 0
    pending: list[tuple] = []
    for batch in op.execute_batches(ctx):
        pending.extend(batch.rows)
        while len(pending) >= chunk_rows:
            _WORKER_QUEUE.put((stream_id, seq, pending[:chunk_rows]))
            shipped += len(pending[:chunk_rows])
            del pending[:chunk_rows]
            seq += 1
    if pending:
        _WORKER_QUEUE.put((stream_id, seq, pending))
        shipped += len(pending)
    if trace is None:
        _WORKER_QUEUE.put((stream_id, -1, (ctx.tallies(), cache_hit)))
        return
    run_span.tag(rows=shipped, chunks=seq + (1 if pending else 0))
    trace.finish(run_span)
    trace.finish(root)
    _WORKER_QUEUE.put((stream_id, -1,
                       (ctx.tallies(), cache_hit, trace.to_records())))
