"""Experiment harness: run plans on the engine, collect metrics, render
paper-style result tables.

Every benchmark in ``benchmarks/`` funnels through :func:`run_plan` /
:func:`measure`, so all experiments report the same triple:

* **wall seconds** — real Python execution time;
* **simulated I/O blocks** — read+written block transfers;
* **comparisons** — key comparisons counted by the sort/join kernels;
* **cost units** — the paper's combined metric
  (``blocks + comparisons / cpu_rate``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..engine.context import ExecutionContext
from ..engine.iterators import Operator
from ..optimizer.plans import PhysicalPlan
from ..storage.catalog import Catalog


@dataclass
class RunResult:
    """Metrics of one plan execution."""

    label: str
    rows: int
    wall_seconds: float
    blocks_read: int
    blocks_written: int
    comparisons: int
    cost_units: float
    runs_created: int = 0
    segments_sorted: int = 0
    output_timeline: list[tuple[int, float]] = field(default_factory=list)

    @property
    def total_blocks(self) -> int:
        return self.blocks_read + self.blocks_written


def run_plan(plan: PhysicalPlan | Operator, catalog: Catalog,
             label: str = "", sample_every: int = 0,
             consume: Optional[Callable[[Iterable[tuple]], int]] = None) -> RunResult:
    """Execute a plan, returning engine metrics.

    ``sample_every`` > 0 records an output timeline — ``(rows_produced,
    cost_units_so_far)`` every that many rows — reproducing Experiment
    A2's rate-of-output curves.
    """
    operator = plan.to_operator(catalog) if isinstance(plan, PhysicalPlan) else plan
    ctx = ExecutionContext(catalog)
    timeline: list[tuple[int, float]] = []
    start = time.perf_counter()
    count = 0
    stream = operator.execute(ctx)
    if consume is not None:
        count = consume(stream)
    else:
        for row in stream:
            count += 1
            if sample_every and count % sample_every == 0:
                timeline.append((count, ctx.cost_units()))
    wall = time.perf_counter() - start
    return RunResult(
        label=label or getattr(plan, "op", operator.name),
        rows=count,
        wall_seconds=wall,
        blocks_read=ctx.io.blocks_read,
        blocks_written=ctx.io.blocks_written,
        comparisons=ctx.comparisons.value,
        cost_units=ctx.cost_units(),
        runs_created=ctx.sort_metrics.runs_created,
        segments_sorted=ctx.sort_metrics.segments_sorted,
        output_timeline=timeline,
    )


def measure(fn: Callable[[], object], label: str = "") -> tuple[float, object]:
    """Time a callable (used for optimization-time experiments)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table like the paper's result listings."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def normalize(costs: dict[str, float], base_key: str,
              scale: float = 100.0) -> dict[str, float]:
    """Normalise costs like the paper's Figure 15 (reference = 100)."""
    base = costs[base_key]
    if base <= 0:
        raise ValueError(f"non-positive base cost for {base_key!r}")
    return {k: scale * v / base for k, v in costs.items()}


def speedup(baseline: RunResult, improved: RunResult,
            metric: str = "cost_units") -> float:
    """How many times better the improved run is on the given metric."""
    denominator = getattr(improved, metric)
    numerator = getattr(baseline, metric)
    if denominator == 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator
