"""Benchmark harness and reconstructed competitor plans."""

from .baselines import (
    postgres_default_q3,
    pyro_o_q3,
    pyro_o_q4,
    sys1_default_q3,
    sys1_merge_q3,
    sys2_union_q4,
    sys_default_q4,
)
from .harness import RunResult, format_table, measure, normalize, run_plan, speedup

__all__ = [
    "RunResult",
    "format_table",
    "measure",
    "normalize",
    "postgres_default_q3",
    "pyro_o_q3",
    "pyro_o_q4",
    "run_plan",
    "speedup",
    "sys1_default_q3",
    "sys1_merge_q3",
    "sys2_union_q4",
    "sys_default_q4",
]
