"""The compared systems' plan shapes, reconstructed from the paper's figures.

Each function returns a :class:`~repro.optimizer.plans.PhysicalPlan`
encoding, operator by operator, the plan a competing system chose —
costed and executable on our engine, so Figures 10–14 (plan shapes) and
Figures 12–13 (runtimes) can be regenerated on one substrate.
"""

from __future__ import annotations

from ..core.sort_order import SortOrder
from ..expr import col
from ..expr.aggregates import agg_sum
from ..optimizer.manual import PlanBuilder
from ..optimizer.plans import PhysicalPlan
from ..storage.catalog import Catalog

Q3_JOIN = [("ps_suppkey", "l_suppkey"), ("ps_partkey", "l_partkey")]
Q3_JOIN_PK_FIRST = [("ps_partkey", "l_partkey"), ("ps_suppkey", "l_suppkey")]
Q3_GROUP = ["ps_suppkey", "ps_partkey", "ps_availqty"]
Q3_AGGS = [agg_sum(col("l_quantity"), "sum_qty")]


def _q3_inputs(builder: PlanBuilder):
    ps = builder.covering_scan("partsupp", "ps_suppkey_cov")
    li = builder.covering_scan("lineitem", "li_suppkey_cov3")
    li = builder.filter(li, col("l_linestatus").eq("O"))
    return ps, li


def postgres_default_q3(catalog: Catalog) -> PhysicalPlan:
    """Figure 10(a): PostgreSQL's default — full sorts to (partkey,
    suppkey), merge join, then a *hash* aggregate and a final sort."""
    b = PlanBuilder(catalog).equate(*Q3_JOIN)
    ps, li = _q3_inputs(b)
    ps = b.sort(ps, SortOrder(["ps_partkey", "ps_suppkey"]), full=True)
    li = b.sort(li, SortOrder(["l_partkey", "l_suppkey"]), full=True)
    join = b.merge_join(ps, li, Q3_JOIN_PK_FIRST, sort_inputs=False)
    agg = b.hash_aggregate(join, Q3_GROUP, Q3_AGGS)
    agg = b.filter(agg, col("sum_qty").gt(col("ps_availqty")))
    return b.sort(agg, SortOrder(["ps_partkey"]), full=True)


def pyro_o_q3(catalog: Catalog) -> PhysicalPlan:
    """Figure 10(b): partial sorts (suppkey) → (suppkey, partkey) over
    both covering indexes, merge join, streaming group aggregate, cheap
    final sort on partkey."""
    b = PlanBuilder(catalog).equate(*Q3_JOIN)
    ps, li = _q3_inputs(b)
    ps = b.sort(ps, SortOrder(["ps_suppkey", "ps_partkey"]))
    li = b.sort(li, SortOrder(["l_suppkey", "l_partkey"]))
    join = b.merge_join(ps, li, Q3_JOIN, sort_inputs=False)
    agg = b.sort_aggregate(join, SortOrder(["ps_suppkey", "ps_partkey"]),
                           Q3_AGGS, group_columns=Q3_GROUP)
    agg = b.filter(agg, col("sum_qty").gt(col("ps_availqty")))
    return b.sort(agg, SortOrder(["ps_partkey"]))


def sys1_default_q3(catalog: Catalog) -> PhysicalPlan:
    """Figure 11(a): SYS1's default — hash join (partsupp build), hash
    aggregate, final sort."""
    b = PlanBuilder(catalog).equate(*Q3_JOIN)
    ps, li = _q3_inputs(b)
    join = b.hash_join(ps, li, Q3_JOIN)
    agg = b.hash_aggregate(join, Q3_GROUP, Q3_AGGS)
    agg = b.filter(agg, col("sum_qty").gt(col("ps_availqty")))
    return b.sort(agg, SortOrder(["ps_partkey"]), full=True)


def sys1_merge_q3(catalog: Catalog) -> PhysicalPlan:
    """Figure 11(b): forced merge join on (partkey, suppkey) — partsupp
    delivered by its clustering index, lineitem fully sorted; group
    aggregate; ORDER BY satisfied by the join order."""
    b = PlanBuilder(catalog).equate(*Q3_JOIN)
    ps = b.clustering_scan("partsupp")
    li = b.covering_scan("lineitem", "li_suppkey_cov3")
    li = b.filter(li, col("l_linestatus").eq("O"))
    li = b.sort(li, SortOrder(["l_partkey", "l_suppkey"]), full=True)
    join = b.merge_join(ps, li, Q3_JOIN_PK_FIRST, sort_inputs=False)
    agg = b.sort_aggregate(join, SortOrder(["ps_partkey", "ps_suppkey"]),
                           Q3_AGGS, group_columns=Q3_GROUP)
    return b.filter(agg, col("sum_qty").gt(col("ps_availqty")))


def sys_default_q4(catalog: Catalog, join_type: str = "full") -> PhysicalPlan:
    """Figure 14(a): SYS1/PostgreSQL — the two joins use sort orders
    with *no common prefix* ((c3,c4,c5) below, (c4,c5,c1) above), so the
    upper join fully re-sorts its 100K-row input.

    *join_type* defaults to the paper's FULL OUTER joins.  Note that a
    full outer merge join guarantees no output order (NULL-padded left
    keys), so with ``"full"`` the prefix choice cannot help the upper
    join; the Fig-14 order-coordination effect shows with ``"inner"``.
    """
    b = PlanBuilder(catalog)
    r1, r2, r3 = (b.table_scan(t) for t in ("r1", "r2", "r3"))
    lower = b.merge_join(
        r1, r2, [("r1_c3", "r2_c3"), ("r1_c4", "r2_c4"), ("r1_c5", "r2_c5")],
        join_type=join_type)
    upper = b.merge_join(
        lower, r3,
        [("r1_c4", "r3_c4"), ("r1_c5", "r3_c5"), ("r1_c1", "r3_c1")],
        join_type=join_type)
    return upper


def pyro_o_q4(catalog: Catalog, join_type: str = "full") -> PhysicalPlan:
    """Figure 14(b): both joins share the (c4, c5) prefix, so (for
    order-propagating joins) the upper join needs only a partial sort of
    the lower join's output."""
    b = PlanBuilder(catalog)
    r1, r2, r3 = (b.table_scan(t) for t in ("r1", "r2", "r3"))
    lower = b.merge_join(
        r1, r2, [("r1_c4", "r2_c4"), ("r1_c5", "r2_c5"), ("r1_c3", "r2_c3")],
        join_type=join_type)
    upper = b.merge_join(
        lower, r3,
        [("r1_c4", "r3_c4"), ("r1_c5", "r3_c5"), ("r1_c1", "r3_c1")],
        join_type=join_type)
    return upper


def sys2_union_q4(catalog: Catalog) -> PhysicalPlan:
    """SYS2's workaround (no native full outer join): a full outer join
    expressed as the union of two left outer joins — with *different*
    sort orders feeding the union's duplicate elimination, as the paper
    observed ("making the union expensive").

    This reconstructs only the lower FOJ of Query 4 (R1 ⋈ R2); the point
    is the coordination failure, which already shows here.
    """
    b = PlanBuilder(catalog)
    pairs = [("r1_c3", "r2_c3"), ("r1_c4", "r2_c4"), ("r1_c5", "r2_c5")]
    left = b.merge_join(b.table_scan("r1"), b.table_scan("r2"), pairs,
                        join_type="left")
    flipped = [("r1_c4", "r2_c4"), ("r1_c5", "r2_c5"), ("r1_c3", "r2_c3")]
    right = b.merge_join(b.table_scan("r1"), b.table_scan("r2"), flipped,
                         join_type="left")
    all_columns = SortOrder(left.schema.names)
    return b.merge_union(left, right, all_columns)
